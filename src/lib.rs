//! # mpass — reproduction of *MPass: Bypassing Learning-based Static
//! Malware Detectors* (DAC 2023)
//!
//! This façade crate re-exports the whole workspace so that examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`binary`] — the format-agnostic [`binary::BinaryFormat`] layer and
//!   the [`binary::BinaryImage`] auto-detecting container,
//! * [`pe`] — the Portable Executable substrate,
//! * [`macho`] — the Mach-O substrate,
//! * [`vm`] — the MVM execution substrate (sandboxed "CPU"),
//! * [`ml`] — tensors, backprop layers and gradient-boosted trees,
//! * [`corpus`] — the synthetic benign/malware sample generator,
//! * [`detectors`] — MalConv, NonNeg, LightGbm, MalGcg and five simulated
//!   commercial ML AVs,
//! * [`sandbox`] — the Cuckoo-style behaviour checker,
//! * [`core`] — the MPass attack itself (PEM, runtime recovery, shuffle,
//!   ensemble-transfer optimization, hard-label loop),
//! * [`engine`] — the work-stealing campaign engine and its
//!   tracing/metrics facade,
//! * [`baselines`] — RLA, MAB, GAMMA, MalRNN, simulated packers and the
//!   ablation attackers,
//! * [`experiments`] — runners that regenerate every table and figure of
//!   the paper.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for paper-vs-measured results.

pub use mpass_baselines as baselines;
pub use mpass_binary as binary;
pub use mpass_core as core;
pub use mpass_corpus as corpus;
pub use mpass_detectors as detectors;
pub use mpass_engine as engine;
pub use mpass_experiments as experiments;
pub use mpass_macho as macho;
pub use mpass_ml as ml;
pub use mpass_pe as pe;
pub use mpass_sandbox as sandbox;
pub use mpass_vm as vm;
