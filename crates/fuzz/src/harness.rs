//! The fuzz oracle: one function per container format that checks every
//! ingestion contract against one byte string.

use mpass_macho::MachoFile;
use mpass_pe::PeFile;
use mpass_vm::{disassemble, DigestSink, Vm, VmLimits};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Resource ceilings fuzz executions run under: tight enough that ten
/// thousand iterations finish in seconds, generous enough that real
/// control flow (loops, unpacker stubs, API floods) still executes.
pub fn fuzz_limits() -> VmLimits {
    VmLimits {
        step_limit: 65_536,
        memory_limit: 32 << 20,
        trace_limit: 4_096,
        jump_chain_limit: 16_384,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Install a no-op panic hook so harness-caught panics do not spray
/// backtraces over a ten-thousand-iteration run. Call once per process,
/// from binaries only.
pub fn silence_panics() {
    std::panic::set_hook(Box::new(|_| {}));
}

/// Check every ingestion contract against `bytes`.
///
/// A graceful parse *rejection* is a pass — hostile bytes are supposed
/// to be turned away. `Err` describes the violated contract:
///
/// * `PeFile::parse` panicked;
/// * the accepted image does not round-trip (`to_bytes` panicked,
///   its output no longer parses, or it parses to a different image);
/// * `disassemble` panicked on a section's bytes;
/// * `Vm::run` panicked (resource exhaustion and faults are graceful
///   terminations, not violations).
pub fn check_bytes(bytes: &[u8]) -> Result<(), String> {
    let parsed = catch_unwind(AssertUnwindSafe(|| PeFile::parse(bytes)))
        .map_err(|p| format!("PeFile::parse panicked: {}", panic_message(&*p)))?;
    let Ok(pe) = parsed else {
        return Ok(());
    };

    let round = catch_unwind(AssertUnwindSafe(|| PeFile::parse(&pe.to_bytes())))
        .map_err(|p| format!("round trip panicked: {}", panic_message(&*p)))?;
    match round {
        Ok(pe2) if pe2 == pe => {}
        Ok(_) => return Err("round trip parsed to a different image".to_owned()),
        Err(e) => return Err(format!("round trip failed to re-parse: {e}")),
    }

    for section in pe.sections() {
        let name = section.name();
        catch_unwind(AssertUnwindSafe(|| {
            let _ = disassemble(section.data());
        }))
        .map_err(|p| {
            format!("disassemble panicked on section {name:?}: {}", panic_message(&*p))
        })?;
    }

    // The VM-terminates property holds under the streaming sink API too:
    // a digest sink materializes no trace, so exhaustion/fault handling is
    // exercised without the recording sink's capacity backstop.
    catch_unwind(AssertUnwindSafe(|| {
        let mut sink = DigestSink::new();
        Vm::load_with(&pe, fuzz_limits()).run_with_sink(&mut sink)
    }))
    .map_err(|p| format!("Vm::run panicked: {}", panic_message(&*p)))?;
    Ok(())
}

/// Check every ingestion contract against `bytes` through the Mach-O
/// backend — the exact mirror of [`check_bytes`]:
///
/// * `MachoFile::parse` (and `parse_strict`) never panic;
/// * an accepted image round-trips through `to_bytes` to an equal image;
/// * `disassemble` never panics on a section's bytes;
/// * `Vm::run` on the loaded image terminates gracefully.
pub fn check_macho_bytes(bytes: &[u8]) -> Result<(), String> {
    catch_unwind(AssertUnwindSafe(|| {
        let _ = MachoFile::parse_strict(bytes);
    }))
    .map_err(|p| format!("MachoFile::parse_strict panicked: {}", panic_message(&*p)))?;
    let parsed = catch_unwind(AssertUnwindSafe(|| MachoFile::parse(bytes)))
        .map_err(|p| format!("MachoFile::parse panicked: {}", panic_message(&*p)))?;
    let Ok(m) = parsed else {
        return Ok(());
    };

    let round = catch_unwind(AssertUnwindSafe(|| MachoFile::parse(&m.to_bytes())))
        .map_err(|p| format!("round trip panicked: {}", panic_message(&*p)))?;
    match round {
        Ok(m2) if m2 == m => {}
        Ok(_) => return Err("round trip parsed to a different image".to_owned()),
        Err(e) => return Err(format!("round trip failed to re-parse: {e}")),
    }

    for i in 0..m.section_count() {
        let Some((_, sec)) = m.section_at(i) else { continue };
        let name = sec.name();
        catch_unwind(AssertUnwindSafe(|| {
            let _ = disassemble(&sec.data);
        }))
        .map_err(|p| {
            format!("disassemble panicked on section {name:?}: {}", panic_message(&*p))
        })?;
    }

    catch_unwind(AssertUnwindSafe(|| {
        let mut sink = DigestSink::new();
        Vm::load_binary(&m, fuzz_limits()).run_with_sink(&mut sink)
    }))
    .map_err(|p| format!("Vm::run panicked: {}", panic_message(&*p)))?;
    Ok(())
}

/// Check the format-dispatch layer itself: `BinaryImage::parse_auto`
/// must never panic, and whatever backend it picks must satisfy that
/// backend's contracts.
pub fn check_auto_bytes(bytes: &[u8]) -> Result<(), String> {
    use mpass_binary::BinaryFormat as _;
    let detected = catch_unwind(AssertUnwindSafe(|| {
        mpass_binary::BinaryImage::parse_auto(bytes).map(|i| i.format())
    }))
    .map_err(|p| format!("BinaryImage::parse_auto panicked: {}", panic_message(&*p)))?;
    match detected {
        Ok(mpass_binary::Format::Pe) => check_bytes(bytes),
        Ok(mpass_binary::Format::MachO) => check_macho_bytes(bytes),
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_corpus::{CorpusConfig, Dataset};

    #[test]
    fn garbage_is_gracefully_rejected() {
        assert_eq!(check_bytes(&[]), Ok(()));
        assert_eq!(check_bytes(b"MZ"), Ok(()));
        assert_eq!(check_bytes(&[0xFF; 4096]), Ok(()));
    }

    #[test]
    fn corpus_samples_satisfy_every_contract() {
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 2,
            n_benign: 2,
            seed: 42,
            no_slack_fraction: 0.0,
        });
        for s in &ds.samples {
            assert_eq!(check_bytes(&s.bytes), Ok(()), "{}", s.name);
        }
    }
}
