//! Regenerate the checked-in malformed regression corpus at
//! `tests/fixtures/malformed/` (or a directory given as the first
//! argument).
//!
//! Each fixture is a deterministic, hand-constructed hostile input that
//! once mapped to a distinct failure mode of the ingestion layer. The
//! workspace test suite replays the directory through the fuzz harness
//! on every run, so these stay fixed forever.

use mpass_fuzz::harness::check_bytes;
use mpass_pe::{CoffHeader, PeBuilder, PeFile, SectionFlags, SECTION_HEADER_SIZE};
use mpass_vm::{Instr, Reg};

fn opt_at(pe: &PeFile) -> usize {
    pe.dos().e_lfanew as usize + 4 + CoffHeader::SIZE
}

fn section_entry_at(pe: &PeFile, i: usize) -> usize {
    opt_at(pe) + pe.coff().size_of_optional_header as usize + i * SECTION_HEADER_SIZE
}

fn put_u32(bytes: &mut [u8], at: usize, v: u32) {
    bytes[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn base(code: &[Instr]) -> PeFile {
    let encoded: Vec<u8> = code.iter().flat_map(|i| i.encode()).collect();
    let mut b = PeBuilder::new();
    b.add_section(".text", encoded, SectionFlags::CODE).expect("fresh section name");
    b.add_section(".data", vec![0x33; 128], SectionFlags::DATA).expect("fresh section name");
    b.set_entry_section(".text", 0).expect("section exists");
    b.build().expect("well-formed by construction")
}

fn plain() -> PeFile {
    base(&[Instr::Movi(Reg::R0, 1), Instr::Jmp(8), Instr::Halt, Instr::Halt])
}

/// `(name, bytes)` for every fixture in the corpus.
fn fixtures() -> Vec<(&'static str, Vec<u8>)> {
    let mut out = Vec::new();

    // A zero-size section whose raw pointer aims far past the file end:
    // inflates the overlay anchor without contributing any data.
    {
        let pe = plain();
        let mut bytes = pe.to_bytes();
        let e = section_entry_at(&pe, 1);
        put_u32(&mut bytes, e + 16, 0); // size_of_raw_data
        put_u32(&mut bytes, e + 20, 0xFFF0_0000); // pointer_to_raw_data
        out.push(("size0_huge_pointer.bin", bytes));
    }

    // size_of_image near the top of the 32-bit range: a faithful mapper
    // would allocate ~4 GiB per execution.
    {
        let pe = plain();
        let mut bytes = pe.to_bytes();
        put_u32(&mut bytes, opt_at(&pe) + 56, 0xFFFF_F000);
        out.push(("huge_size_of_image.bin", bytes));
    }

    // The file ends in the middle of the optional header.
    {
        let pe = plain();
        let mut bytes = pe.to_bytes();
        bytes.truncate(opt_at(&pe) + 40);
        out.push(("truncated_optional_header.bin", bytes));
    }

    // The file ends in the middle of a section's raw data.
    {
        let pe = plain();
        let mut bytes = pe.to_bytes();
        bytes.truncate(pe.optional().size_of_headers as usize + 10);
        out.push(("truncated_section_data.bin", bytes));
    }

    // Two sections whose raw ranges alias the same file bytes.
    {
        let pe = plain();
        let mut bytes = pe.to_bytes();
        let ptr0 = pe.sections()[0].header().pointer_to_raw_data;
        put_u32(&mut bytes, section_entry_at(&pe, 1) + 20, ptr0);
        out.push(("overlapping_raw.bin", bytes));
    }

    // A section whose virtual extent wraps the 32-bit address space.
    {
        let pe = plain();
        let mut bytes = pe.to_bytes();
        let e = section_entry_at(&pe, 1);
        put_u32(&mut bytes, e + 8, 0x2000); // virtual_size
        put_u32(&mut bytes, e + 12, 0xFFFF_F000); // virtual_address
        out.push(("va_overflow.bin", bytes));
    }

    // Entry code whose first jump lands mid-slot in its own stream.
    {
        let pe = base(&[Instr::Jmp(-4), Instr::Halt]);
        out.push(("misaligned_jump.bin", pe.to_bytes()));
    }

    // Entry code that is not decodable at all.
    {
        let encoded = vec![0xEE; 16];
        let mut b = PeBuilder::new();
        b.add_section(".text", encoded, SectionFlags::CODE).expect("fresh section name");
        b.set_entry_section(".text", 0).expect("section exists");
        out.push(("bad_opcode.bin", b.build().expect("builds").to_bytes()));
    }

    out
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "tests/fixtures/malformed".to_owned());
    std::fs::create_dir_all(&dir).expect("create fixture directory");
    let mut bad = 0;
    for (name, bytes) in fixtures() {
        let verdict = match check_bytes(&bytes) {
            Ok(()) => "handled gracefully".to_owned(),
            Err(why) => {
                bad += 1;
                format!("CONTRACT VIOLATION: {why}")
            }
        };
        let path = format!("{dir}/{name}");
        std::fs::write(&path, &bytes).expect("write fixture");
        println!("{path}: {} bytes, {verdict}", bytes.len());
    }
    if bad > 0 {
        eprintln!("gen_fixtures: {bad} fixtures violate the ingestion contracts");
        std::process::exit(1);
    }
}
