//! Regenerate the checked-in malformed regression corpus at
//! `tests/fixtures/malformed/` (or a directory given as the first
//! argument).
//!
//! Each fixture is a deterministic, hand-constructed hostile input that
//! once mapped to a distinct failure mode of the ingestion layer — PE
//! fixtures are plain `*.bin`, Mach-O fixtures are `macho_*.bin`. The
//! workspace test suite replays the directory through the fuzz harness
//! on every run, so these stay fixed forever.

use mpass_binary::SectionKind;
use mpass_fuzz::harness::{check_bytes, check_macho_bytes};
use mpass_macho::{MachoBuilder, MachoFile};
use mpass_pe::{CoffHeader, PeBuilder, PeFile, SectionFlags, SECTION_HEADER_SIZE};
use mpass_vm::{Instr, Reg};

fn opt_at(pe: &PeFile) -> usize {
    pe.dos().e_lfanew as usize + 4 + CoffHeader::SIZE
}

fn section_entry_at(pe: &PeFile, i: usize) -> usize {
    opt_at(pe) + pe.coff().size_of_optional_header as usize + i * SECTION_HEADER_SIZE
}

fn put_u32(bytes: &mut [u8], at: usize, v: u32) {
    bytes[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn base(code: &[Instr]) -> PeFile {
    let encoded: Vec<u8> = code.iter().flat_map(|i| i.encode()).collect();
    let mut b = PeBuilder::new();
    b.add_section(".text", encoded, SectionFlags::CODE).expect("fresh section name");
    b.add_section(".data", vec![0x33; 128], SectionFlags::DATA).expect("fresh section name");
    b.set_entry_section(".text", 0).expect("section exists");
    b.build().expect("well-formed by construction")
}

fn plain() -> PeFile {
    base(&[Instr::Movi(Reg::R0, 1), Instr::Jmp(8), Instr::Halt, Instr::Halt])
}

/// `(name, bytes)` for every fixture in the corpus.
fn fixtures() -> Vec<(&'static str, Vec<u8>)> {
    let mut out = Vec::new();

    // A zero-size section whose raw pointer aims far past the file end:
    // inflates the overlay anchor without contributing any data.
    {
        let pe = plain();
        let mut bytes = pe.to_bytes();
        let e = section_entry_at(&pe, 1);
        put_u32(&mut bytes, e + 16, 0); // size_of_raw_data
        put_u32(&mut bytes, e + 20, 0xFFF0_0000); // pointer_to_raw_data
        out.push(("size0_huge_pointer.bin", bytes));
    }

    // size_of_image near the top of the 32-bit range: a faithful mapper
    // would allocate ~4 GiB per execution.
    {
        let pe = plain();
        let mut bytes = pe.to_bytes();
        put_u32(&mut bytes, opt_at(&pe) + 56, 0xFFFF_F000);
        out.push(("huge_size_of_image.bin", bytes));
    }

    // The file ends in the middle of the optional header.
    {
        let pe = plain();
        let mut bytes = pe.to_bytes();
        bytes.truncate(opt_at(&pe) + 40);
        out.push(("truncated_optional_header.bin", bytes));
    }

    // The file ends in the middle of a section's raw data.
    {
        let pe = plain();
        let mut bytes = pe.to_bytes();
        bytes.truncate(pe.optional().size_of_headers as usize + 10);
        out.push(("truncated_section_data.bin", bytes));
    }

    // Two sections whose raw ranges alias the same file bytes.
    {
        let pe = plain();
        let mut bytes = pe.to_bytes();
        let ptr0 = pe.sections()[0].header().pointer_to_raw_data;
        put_u32(&mut bytes, section_entry_at(&pe, 1) + 20, ptr0);
        out.push(("overlapping_raw.bin", bytes));
    }

    // A section whose virtual extent wraps the 32-bit address space.
    {
        let pe = plain();
        let mut bytes = pe.to_bytes();
        let e = section_entry_at(&pe, 1);
        put_u32(&mut bytes, e + 8, 0x2000); // virtual_size
        put_u32(&mut bytes, e + 12, 0xFFFF_F000); // virtual_address
        out.push(("va_overflow.bin", bytes));
    }

    // Entry code whose first jump lands mid-slot in its own stream.
    {
        let pe = base(&[Instr::Jmp(-4), Instr::Halt]);
        out.push(("misaligned_jump.bin", pe.to_bytes()));
    }

    // Entry code that is not decodable at all.
    {
        let encoded = vec![0xEE; 16];
        let mut b = PeBuilder::new();
        b.add_section(".text", encoded, SectionFlags::CODE).expect("fresh section name");
        b.set_entry_section(".text", 0).expect("section exists");
        out.push(("bad_opcode.bin", b.build().expect("builds").to_bytes()));
    }

    // A zero-size section whose raw pointer sits between the real data
    // end and the file end, with one trailing overlay byte: the overlay
    // anchor must track what serialization writes (found by the seeded
    // fuzzer as a round-trip violation).
    {
        let pe = plain();
        let mut bytes = pe.to_bytes();
        let e = section_entry_at(&pe, 1);
        let past_end = bytes.len() as u32 + 0x200;
        put_u32(&mut bytes, e + 16, 0); // size_of_raw_data
        put_u32(&mut bytes, e + 20, past_end); // pointer_to_raw_data
        bytes.push(0xAA); // one overlay byte
        out.push(("size0_pointer_with_overlay.bin", bytes));
    }

    out
}

fn macho_base(code: &[Instr]) -> MachoFile {
    let encoded: Vec<u8> = code.iter().flat_map(|i| i.encode()).collect();
    let mut b = MachoBuilder::new();
    b.add_section("__text", &encoded, SectionKind::Code)
        .add_section("__data", &[0x33; 128], SectionKind::Data)
        .add_dylib("/usr/lib/libSystem.B.dylib", 2)
        .set_entry_section("__text", 0);
    b.build().expect("well-formed by construction")
}

fn macho_plain() -> MachoFile {
    macho_base(&[Instr::Movi(Reg::R0, 1), Instr::Jmp(8), Instr::Halt, Instr::Halt])
}

fn put_u64(bytes: &mut [u8], at: usize, v: u64) {
    bytes[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

/// Byte offset of the first `LC_SEGMENT_64` command (the mach header is
/// 32 bytes and the builder emits segments first).
const FIRST_SEGMENT_AT: usize = 32;

/// `(name, bytes)` for every Mach-O fixture in the corpus.
fn macho_fixtures() -> Vec<(&'static str, Vec<u8>)> {
    let mut out = Vec::new();

    // The file ends in the middle of the load commands.
    {
        let mut bytes = macho_plain().to_bytes();
        bytes.truncate(FIRST_SEGMENT_AT + 40);
        out.push(("macho_truncated_cmds.bin", bytes));
    }

    // sizeofcmds claims far more than the file holds.
    {
        let mut bytes = macho_plain().to_bytes();
        put_u32(&mut bytes, 20, 0xFFFF_FFF0);
        out.push(("macho_sizeofcmds_overflow.bin", bytes));
    }

    // A segment claiming billions of sections.
    {
        let mut bytes = macho_plain().to_bytes();
        put_u32(&mut bytes, FIRST_SEGMENT_AT + 64, 0x7FFF_FFFF);
        out.push(("macho_huge_nsects.bin", bytes));
    }

    // A section whose virtual extent wraps the 64-bit address space.
    {
        let mut bytes = macho_plain().to_bytes();
        let sect = FIRST_SEGMENT_AT + 72; // first section_64 entry
        put_u64(&mut bytes, sect + 32, 0xFFFF_FFFF_FFFF_F000); // addr
        put_u64(&mut bytes, sect + 40, 0x2000); // size
        out.push(("macho_va_wrap.bin", bytes));
    }

    // An LC_MAIN entry offset far past the file end.
    {
        let macho = macho_plain();
        let mut bytes = macho.to_bytes();
        let mut at = FIRST_SEGMENT_AT;
        for cmd in &macho.commands {
            if cmd.cmd() == mpass_macho::cmds::LC_MAIN {
                put_u64(&mut bytes, at + 8, 0xFFFF_FF00);
                break;
            }
            at += cmd.cmdsize() as usize;
        }
        out.push(("macho_entry_unmapped.bin", bytes));
    }

    // A dylib whose install name carries a non-UTF8 byte: the name must
    // be carried verbatim, not lossily decoded (found by the seeded
    // fuzzer as a round-trip violation).
    {
        let macho = macho_plain();
        let mut bytes = macho.to_bytes();
        let mut at = FIRST_SEGMENT_AT;
        for cmd in &macho.commands {
            if cmd.cmd() == mpass_macho::cmds::LC_LOAD_DYLIB {
                bytes[at + 24 + 6] = 0xFF; // seventh name byte
                break;
            }
            at += cmd.cmdsize() as usize;
        }
        out.push(("macho_non_utf8_dylib.bin", bytes));
    }

    // A fat/universal wrapper: detected as Mach-O, rejected as an
    // unsupported variant rather than misparsed.
    {
        let mut bytes = 0xCAFE_BABEu32.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0x00, 0x00, 0x00, 0x02]); // nfat_arch
        bytes.resize(64, 0x5A);
        out.push(("macho_fat_wrapper.bin", bytes));
    }

    // Entry code that is not decodable at all.
    {
        let encoded = vec![0xEE; 16];
        let mut b = MachoBuilder::new();
        b.add_section("__text", &encoded, SectionKind::Code).set_entry_section("__text", 0);
        out.push(("macho_bad_opcode.bin", b.build().expect("builds").to_bytes()));
    }

    out
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "tests/fixtures/malformed".to_owned());
    std::fs::create_dir_all(&dir).expect("create fixture directory");
    let mut bad = 0;
    let all = fixtures()
        .into_iter()
        .map(|(n, b)| (n, b, check_bytes as fn(&[u8]) -> Result<(), String>))
        .chain(
            macho_fixtures()
                .into_iter()
                .map(|(n, b)| (n, b, check_macho_bytes as fn(&[u8]) -> Result<(), String>)),
        );
    for (name, bytes, check) in all {
        let verdict = match check(&bytes) {
            Ok(()) => "handled gracefully".to_owned(),
            Err(why) => {
                bad += 1;
                format!("CONTRACT VIOLATION: {why}")
            }
        };
        let path = format!("{dir}/{name}");
        std::fs::write(&path, &bytes).expect("write fixture");
        println!("{path}: {} bytes, {verdict}", bytes.len());
    }
    if bad > 0 {
        eprintln!("gen_fixtures: {bad} fixtures violate the ingestion contracts");
        std::process::exit(1);
    }
}
