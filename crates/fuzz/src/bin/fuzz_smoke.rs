//! Deterministic fuzz smoke run: mutate seed images and check every
//! ingestion contract, failing the process on the first violations.
//! Runs two campaigns of `--iterations` each — a PE campaign through
//! [`check_bytes`] and a Mach-O campaign through [`check_macho_bytes`]
//! — from independent deterministic streams.
//!
//! ```text
//! fuzz_smoke [--iterations N] [--seed S] [--save-dir DIR]
//! ```
//!
//! The default configuration (seed `0x4D50_6153_5346_555A`, 10 000
//! iterations per format) is what CI runs; a campaign is a pure
//! function of its arguments, so any reported iteration reproduces
//! exactly.

use mpass_fuzz::harness::{check_bytes, check_macho_bytes, silence_panics};
use mpass_fuzz::minimize::minimize;
use mpass_fuzz::mutate::{MachoMutator, Mutator};
use mpass_fuzz::seeds::{macho_seed_images, seed_images};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const DEFAULT_SEED: u64 = 0x4D50_6153_5346_555A; // "MPaSSFUZ"
const DEFAULT_ITERATIONS: u64 = 10_000;
const MAX_REPORTED: usize = 10;

fn parse_args() -> (u64, u64, Option<String>) {
    let mut iterations = DEFAULT_ITERATIONS;
    let mut seed = DEFAULT_SEED;
    let mut save_dir = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("fuzz_smoke: {name} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--iterations" => {
                iterations = value("--iterations").parse().unwrap_or_else(|e| {
                    eprintln!("fuzz_smoke: bad --iterations: {e}");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                seed = value("--seed").parse().unwrap_or_else(|e| {
                    eprintln!("fuzz_smoke: bad --seed: {e}");
                    std::process::exit(2);
                })
            }
            "--save-dir" => save_dir = Some(value("--save-dir")),
            other => {
                eprintln!("fuzz_smoke: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    (iterations, seed, save_dir)
}

/// Run one `iterations`-long campaign: mutate seeds, check the format's
/// contracts, minimize and optionally save violations. Returns the
/// violation count.
#[allow(clippy::too_many_arguments)]
fn campaign(
    label: &str,
    seeds: &[Vec<u8>],
    mut mutate: impl FnMut(&[u8], &[u8]) -> Vec<u8>,
    check: impl Fn(&[u8]) -> Result<(), String>,
    iterations: u64,
    seed: u64,
    picker_salt: u64,
    save_dir: Option<&str>,
) -> usize {
    let mut picker = ChaCha8Rng::seed_from_u64(seed ^ picker_salt);
    let mut failures = 0usize;
    for i in 0..iterations {
        let base = &seeds[picker.gen_range(0..seeds.len())];
        let donor = &seeds[picker.gen_range(0..seeds.len())];
        let mutant = mutate(base, donor);
        if let Err(why) = check(&mutant) {
            failures += 1;
            eprintln!("{label} iteration {i}: {why}");
            let shrunk = minimize(&mutant, |b| check(b).is_err());
            eprintln!("  minimized from {} to {} bytes", mutant.len(), shrunk.len());
            if let Some(dir) = save_dir {
                let _ = std::fs::create_dir_all(dir);
                let path = format!("{dir}/crash-{label}-{seed:016x}-{i}.bin");
                match std::fs::write(&path, &shrunk) {
                    Ok(()) => eprintln!("  saved {path}"),
                    Err(e) => eprintln!("  could not save {path}: {e}"),
                }
            }
            if failures >= MAX_REPORTED {
                eprintln!("{label}: stopping after {MAX_REPORTED} failures");
                break;
            }
        }
    }
    failures
}

fn main() {
    let (iterations, seed, save_dir) = parse_args();
    silence_panics();

    let pe_seeds = seed_images(seed);
    let mut pe_mutator = Mutator::new(seed);
    let pe_failures = campaign(
        "pe",
        &pe_seeds,
        |b, d| pe_mutator.mutate(b, d),
        check_bytes,
        iterations,
        seed,
        0x9E37_79B9_7F4A_7C15,
        save_dir.as_deref(),
    );

    let macho_seeds = macho_seed_images(seed);
    let mut macho_mutator = MachoMutator::new(seed ^ 0x4D41_4348_4F21_0000); // "MACHO!"
    let macho_failures = campaign(
        "macho",
        &macho_seeds,
        |b, d| macho_mutator.mutate(b, d),
        check_macho_bytes,
        iterations,
        seed,
        0xC2B2_AE3D_27D4_EB4F,
        save_dir.as_deref(),
    );

    let failures = pe_failures + macho_failures;
    println!(
        "fuzz_smoke: seed {seed:#x}, {iterations} iterations per format, {} PE + {} Mach-O seed images, {failures} contract violations ({pe_failures} pe, {macho_failures} macho)",
        pe_seeds.len(),
        macho_seeds.len()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
