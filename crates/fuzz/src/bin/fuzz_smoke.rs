//! Deterministic fuzz smoke run: mutate seed images and check every
//! ingestion contract, failing the process on the first violations.
//!
//! ```text
//! fuzz_smoke [--iterations N] [--seed S] [--save-dir DIR]
//! ```
//!
//! The default configuration (seed `0x4D50_6153_5346_555A`, 10 000
//! iterations) is what CI runs; a campaign is a pure function of its
//! arguments, so any reported iteration reproduces exactly.

use mpass_fuzz::harness::{check_bytes, silence_panics};
use mpass_fuzz::minimize::minimize;
use mpass_fuzz::mutate::Mutator;
use mpass_fuzz::seeds::seed_images;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const DEFAULT_SEED: u64 = 0x4D50_6153_5346_555A; // "MPaSSFUZ"
const DEFAULT_ITERATIONS: u64 = 10_000;
const MAX_REPORTED: usize = 10;

fn parse_args() -> (u64, u64, Option<String>) {
    let mut iterations = DEFAULT_ITERATIONS;
    let mut seed = DEFAULT_SEED;
    let mut save_dir = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("fuzz_smoke: {name} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--iterations" => {
                iterations = value("--iterations").parse().unwrap_or_else(|e| {
                    eprintln!("fuzz_smoke: bad --iterations: {e}");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                seed = value("--seed").parse().unwrap_or_else(|e| {
                    eprintln!("fuzz_smoke: bad --seed: {e}");
                    std::process::exit(2);
                })
            }
            "--save-dir" => save_dir = Some(value("--save-dir")),
            other => {
                eprintln!("fuzz_smoke: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    (iterations, seed, save_dir)
}

fn main() {
    let (iterations, seed, save_dir) = parse_args();
    silence_panics();
    let seeds = seed_images(seed);
    let mut mutator = Mutator::new(seed);
    let mut picker = ChaCha8Rng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut failures = 0usize;

    for i in 0..iterations {
        let base = &seeds[picker.gen_range(0..seeds.len())];
        let donor = &seeds[picker.gen_range(0..seeds.len())];
        let mutant = mutator.mutate(base, donor);
        if let Err(why) = check_bytes(&mutant) {
            failures += 1;
            eprintln!("iteration {i}: {why}");
            let shrunk = minimize(&mutant, |b| check_bytes(b).is_err());
            eprintln!("  minimized from {} to {} bytes", mutant.len(), shrunk.len());
            if let Some(dir) = &save_dir {
                let _ = std::fs::create_dir_all(dir);
                let path = format!("{dir}/crash-{seed:016x}-{i}.bin");
                match std::fs::write(&path, &shrunk) {
                    Ok(()) => eprintln!("  saved {path}"),
                    Err(e) => eprintln!("  could not save {path}: {e}"),
                }
            }
            if failures >= MAX_REPORTED {
                eprintln!("stopping after {MAX_REPORTED} failures");
                break;
            }
        }
    }

    println!(
        "fuzz_smoke: seed {seed:#x}, {iterations} iterations, {} seed images, {failures} contract violations",
        seeds.len()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
