//! Seeded structure-aware mutation of PE and Mach-O images.
//!
//! Every choice is drawn from one ChaCha8 stream, so a mutation
//! campaign is fully determined by its seed: the same `(seed, sequence
//! of calls)` always yields the same mutants.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Values that sit on validation boundaries: zero, one, alignment
/// quanta, and the top of the 32-bit range where additions overflow.
const BOUNDARY: [u32; 10] = [
    0,
    1,
    7,
    8,
    0x1FF,
    0x200,
    0x1000,
    0x7FFF_FFFF,
    0xFFFF_F000,
    0xFFFF_FFFF,
];

fn read_u16(b: &[u8], at: usize) -> Option<u16> {
    b.get(at..at + 2).map(|v| u16::from_le_bytes([v[0], v[1]]))
}

fn read_u32(b: &[u8], at: usize) -> Option<u32> {
    b.get(at..at + 4).map(|v| u32::from_le_bytes([v[0], v[1], v[2], v[3]]))
}

fn write_u32(b: &mut [u8], at: usize, v: u32) {
    if let Some(dst) = b.get_mut(at..at + 4) {
        dst.copy_from_slice(&v.to_le_bytes());
    }
}

/// Best-effort header geometry recovered from raw bytes (no parser
/// involved — the mutator must keep working on images the parser
/// already rejects).
struct Geometry {
    coff_at: usize,
    opt_at: usize,
    table_at: usize,
    n_sections: usize,
}

fn geometry(b: &[u8]) -> Option<Geometry> {
    let e_lfanew = read_u32(b, 0x3C)? as usize;
    let coff_at = e_lfanew.checked_add(4)?;
    let opt_size = read_u16(b, coff_at.checked_add(16)?)? as usize;
    let n_sections = read_u16(b, coff_at.checked_add(2)?)? as usize;
    let opt_at = coff_at.checked_add(20)?;
    let table_at = opt_at.checked_add(opt_size)?;
    if table_at >= b.len() {
        return None;
    }
    Some(Geometry { coff_at, opt_at, table_at, n_sections: n_sections.min(96) })
}

/// The deterministic structure-aware mutator.
pub struct Mutator {
    rng: ChaCha8Rng,
}

impl Mutator {
    /// A mutator whose whole decision stream derives from `seed`.
    pub fn new(seed: u64) -> Self {
        Mutator { rng: ChaCha8Rng::seed_from_u64(seed) }
    }

    /// Produce one mutant of `base`, applying 1–3 mutation operators.
    /// `donor` supplies foreign bytes for splice operations (pass any
    /// other seed image, or `base` itself).
    pub fn mutate(&mut self, base: &[u8], donor: &[u8]) -> Vec<u8> {
        let mut out = base.to_vec();
        for _ in 0..self.rng.gen_range(1..4u32) {
            match self.rng.gen_range(0..6u32) {
                0 => self.flip_header_field(&mut out),
                1 => self.section_surgery(&mut out),
                2 => self.truncate(&mut out),
                3 => self.splice(&mut out, donor),
                4 => self.byte_noise(&mut out),
                _ => self.grow(&mut out, donor),
            }
        }
        out
    }

    fn boundary(&mut self) -> u32 {
        if self.rng.gen_range(0..4u32) == 0 {
            self.rng.gen::<u32>()
        } else {
            BOUNDARY[self.rng.gen_range(0..BOUNDARY.len())]
        }
    }

    /// Overwrite one load-bearing header field with a boundary value.
    fn flip_header_field(&mut self, b: &mut [u8]) {
        let Some(g) = geometry(b) else {
            return self.byte_noise(b);
        };
        // (offset, width) of fields validation logic actually branches on.
        let fields: [(usize, usize); 12] = [
            (0x3C, 4),           // e_lfanew
            (g.coff_at + 2, 2),  // number_of_sections
            (g.coff_at + 16, 2), // size_of_optional_header
            (g.opt_at + 16, 4),  // address_of_entry_point
            (g.opt_at + 20, 4),  // base_of_code
            (g.opt_at + 32, 4),  // section_alignment
            (g.opt_at + 36, 4),  // file_alignment
            (g.opt_at + 56, 4),  // size_of_image
            (g.opt_at + 60, 4),  // size_of_headers
            (g.opt_at + 92, 4),  // number_of_rva_and_sizes
            (g.opt_at + 96 + 8, 4),     // import directory rva
            (g.opt_at + 96 + 8 + 4, 4), // import directory size
        ];
        let (at, width) = fields[self.rng.gen_range(0..fields.len())];
        let v = self.boundary();
        if width == 2 {
            if let Some(dst) = b.get_mut(at..at + 2) {
                dst.copy_from_slice(&(v as u16).to_le_bytes());
            }
        } else {
            write_u32(b, at, v);
        }
    }

    /// Rewrite one field of one section-table entry, or clone an entry
    /// over another.
    fn section_surgery(&mut self, b: &mut [u8]) {
        const ENTRY: usize = 40;
        let Some(g) = geometry(b) else {
            return self.byte_noise(b);
        };
        if g.n_sections == 0 {
            return self.flip_header_field(b);
        }
        let i = self.rng.gen_range(0..g.n_sections);
        let entry_at = g.table_at + i * ENTRY;
        if self.rng.gen_range(0..4u32) == 0 && g.n_sections > 1 {
            // Clone a whole entry over another: duplicate names, aliased
            // raw ranges, identical virtual addresses.
            let j = self.rng.gen_range(0..g.n_sections);
            let src_at = g.table_at + j * ENTRY;
            if src_at + ENTRY <= b.len() && entry_at + ENTRY <= b.len() {
                let src: Vec<u8> = b[src_at..src_at + ENTRY].to_vec();
                b[entry_at..entry_at + ENTRY].copy_from_slice(&src);
            }
            return;
        }
        // virtual_size, virtual_address, size_of_raw_data,
        // pointer_to_raw_data, characteristics.
        let field = [8usize, 12, 16, 20, 36][self.rng.gen_range(0..5)];
        let v = self.boundary();
        write_u32(b, entry_at + field, v);
    }

    /// Cut the image off at a random point.
    fn truncate(&mut self, b: &mut Vec<u8>) {
        if b.is_empty() {
            return;
        }
        let keep = self.rng.gen_range(0..b.len());
        b.truncate(keep);
    }

    /// Overwrite a window of `b` with a window of `donor`.
    fn splice(&mut self, b: &mut [u8], donor: &[u8]) {
        if b.is_empty() || donor.is_empty() {
            return;
        }
        let len = self.rng.gen_range(1..=donor.len().min(b.len()).min(512));
        let from = self.rng.gen_range(0..=donor.len() - len);
        let to = self.rng.gen_range(0..=b.len() - len);
        b[to..to + len].copy_from_slice(&donor[from..from + len]);
    }

    /// Flip a handful of random bytes.
    fn byte_noise(&mut self, b: &mut [u8]) {
        if b.is_empty() {
            return;
        }
        for _ in 0..self.rng.gen_range(1..16u32) {
            let at = self.rng.gen_range(0..b.len());
            b[at] ^= self.rng.gen::<u8>() | 1;
        }
    }

    /// Append donor bytes, turning them into (or extending) an overlay.
    fn grow(&mut self, b: &mut Vec<u8>, donor: &[u8]) {
        if donor.is_empty() {
            return;
        }
        let len = self.rng.gen_range(1..=donor.len().min(256));
        let from = self.rng.gen_range(0..=donor.len() - len);
        b.extend_from_slice(&donor[from..from + len]);
    }
}

/// 64-bit boundary values for Mach-O's wide fields: the 32-bit set plus
/// values where `addr + size` wraps the 64-bit address space.
const BOUNDARY64: [u64; 6] = [
    0x8000_0000,
    0xFFFF_FFFF,
    0x1_0000_0000,
    0x7FFF_FFFF_FFFF_FFFF,
    0xFFFF_FFFF_FFFF_F000,
    0xFFFF_FFFF_FFFF_FFFF,
];

fn write_u64(b: &mut [u8], at: usize, v: u64) {
    if let Some(dst) = b.get_mut(at..at + 8) {
        dst.copy_from_slice(&v.to_le_bytes());
    }
}

/// Best-effort Mach-O geometry recovered from raw bytes (again without
/// the parser: mutants of mutants must stay mutable).
struct MachoGeometry {
    /// Offset of each load command (bounded walk over `ncmds`).
    commands: Vec<(usize, u32)>,
}

fn macho_geometry(b: &[u8]) -> Option<MachoGeometry> {
    const HEADER: usize = 32;
    if b.len() < HEADER {
        return None;
    }
    let ncmds = read_u32(b, 16)? as usize;
    let mut commands = Vec::new();
    let mut at = HEADER;
    for _ in 0..ncmds.min(64) {
        let cmd = read_u32(b, at)?;
        let cmdsize = read_u32(b, at + 4)? as usize;
        commands.push((at, cmd));
        if cmdsize < 8 || at.checked_add(cmdsize)? > b.len() {
            break;
        }
        at += cmdsize;
    }
    if commands.is_empty() {
        return None;
    }
    Some(MachoGeometry { commands })
}

/// The deterministic structure-aware Mach-O mutator: same operator
/// families as [`Mutator`], aimed at the mach header, load commands,
/// `segment_64` fields and `section_64` entries instead of the PE
/// section table.
pub struct MachoMutator {
    rng: ChaCha8Rng,
}

impl MachoMutator {
    /// A mutator whose whole decision stream derives from `seed`.
    pub fn new(seed: u64) -> Self {
        MachoMutator { rng: ChaCha8Rng::seed_from_u64(seed) }
    }

    /// Produce one mutant of `base`, applying 1–3 mutation operators.
    pub fn mutate(&mut self, base: &[u8], donor: &[u8]) -> Vec<u8> {
        let mut out = base.to_vec();
        for _ in 0..self.rng.gen_range(1..4u32) {
            match self.rng.gen_range(0..6u32) {
                0 => self.flip_header_field(&mut out),
                1 => self.command_surgery(&mut out),
                2 => self.truncate(&mut out),
                3 => self.splice(&mut out, donor),
                4 => self.byte_noise(&mut out),
                _ => self.grow(&mut out, donor),
            }
        }
        out
    }

    fn boundary32(&mut self) -> u32 {
        if self.rng.gen_range(0..4u32) == 0 {
            self.rng.gen::<u32>()
        } else {
            BOUNDARY[self.rng.gen_range(0..BOUNDARY.len())]
        }
    }

    fn boundary64(&mut self) -> u64 {
        match self.rng.gen_range(0..4u32) {
            0 => self.rng.gen::<u64>(),
            1 => BOUNDARY[self.rng.gen_range(0..BOUNDARY.len())] as u64,
            _ => BOUNDARY64[self.rng.gen_range(0..BOUNDARY64.len())],
        }
    }

    /// Overwrite one mach-header field with a boundary value.
    fn flip_header_field(&mut self, b: &mut [u8]) {
        if b.len() < 32 {
            return self.byte_noise(b);
        }
        // magic, cputype, filetype, ncmds, sizeofcmds, flags.
        let at = [0usize, 4, 12, 16, 20, 24][self.rng.gen_range(0..6)];
        let v = self.boundary32();
        write_u32(b, at, v);
    }

    /// Rewrite one field of one load command: the command header itself,
    /// a `segment_64` mapping field, an `LC_MAIN` entry offset, or a
    /// `section_64` entry inside a segment.
    fn command_surgery(&mut self, b: &mut [u8]) {
        const LC_SEGMENT_64: u32 = 0x19;
        const LC_MAIN: u32 = 0x8000_0028;
        let Some(g) = macho_geometry(b) else {
            return self.byte_noise(b);
        };
        let (at, cmd) = g.commands[self.rng.gen_range(0..g.commands.len())];
        match cmd {
            LC_SEGMENT_64 if self.rng.gen_range(0..4u32) != 0 => {
                if self.rng.gen_range(0..3u32) == 0 {
                    // nsects / flags words of the segment command.
                    let at = at + [64usize, 68][self.rng.gen_range(0..2)];
                    let v = self.boundary32();
                    write_u32(b, at, v);
                } else if self.rng.gen_range(0..2u32) == 0 {
                    // vmaddr, vmsize, fileoff, filesize.
                    let at = at + [24usize, 32, 40, 48][self.rng.gen_range(0..4)];
                    let v = self.boundary64();
                    write_u64(b, at, v);
                } else {
                    // A section_64 entry: addr, size (u64) or offset (u32).
                    let nsects = read_u32(b, at + 64).unwrap_or(0).min(16) as usize;
                    if nsects == 0 {
                        return self.byte_noise(b);
                    }
                    let entry = at + 72 + self.rng.gen_range(0..nsects) * 80;
                    if self.rng.gen_range(0..3u32) == 0 {
                        let v = self.boundary32();
                        write_u32(b, entry + 48, v); // offset
                    } else {
                        let at = entry + [32usize, 40][self.rng.gen_range(0..2)];
                        let v = self.boundary64();
                        write_u64(b, at, v);
                    }
                }
            }
            LC_MAIN => {
                let v = self.boundary64();
                write_u64(b, at + 8, v); // entryoff
            }
            _ => {
                // cmd or cmdsize of an arbitrary command.
                let at = at + [0usize, 4][self.rng.gen_range(0..2)];
                let v = self.boundary32();
                write_u32(b, at, v);
            }
        }
    }

    /// Cut the image off at a random point.
    fn truncate(&mut self, b: &mut Vec<u8>) {
        if b.is_empty() {
            return;
        }
        let keep = self.rng.gen_range(0..b.len());
        b.truncate(keep);
    }

    /// Overwrite a window of `b` with a window of `donor`.
    fn splice(&mut self, b: &mut [u8], donor: &[u8]) {
        if b.is_empty() || donor.is_empty() {
            return;
        }
        let len = self.rng.gen_range(1..=donor.len().min(b.len()).min(512));
        let from = self.rng.gen_range(0..=donor.len() - len);
        let to = self.rng.gen_range(0..=b.len() - len);
        b[to..to + len].copy_from_slice(&donor[from..from + len]);
    }

    /// Flip a handful of random bytes.
    fn byte_noise(&mut self, b: &mut [u8]) {
        if b.is_empty() {
            return;
        }
        for _ in 0..self.rng.gen_range(1..16u32) {
            let at = self.rng.gen_range(0..b.len());
            b[at] ^= self.rng.gen::<u8>() | 1;
        }
    }

    /// Append donor bytes as (or extending) trailing data.
    fn grow(&mut self, b: &mut Vec<u8>, donor: &[u8]) {
        if donor.is_empty() {
            return;
        }
        let len = self.rng.gen_range(1..=donor.len().min(256));
        let from = self.rng.gen_range(0..=donor.len() - len);
        b.extend_from_slice(&donor[from..from + len]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_mutants() {
        let base: Vec<u8> = (0..1024u32).map(|i| i as u8).collect();
        let mut a = Mutator::new(9);
        let mut b = Mutator::new(9);
        for _ in 0..50 {
            assert_eq!(a.mutate(&base, &base), b.mutate(&base, &base));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let base: Vec<u8> = (0..1024u32).map(|i| i as u8).collect();
        let mut a = Mutator::new(1);
        let mut b = Mutator::new(2);
        let distinct = (0..20).filter(|_| a.mutate(&base, &base) != b.mutate(&base, &base)).count();
        assert!(distinct > 0);
    }

    #[test]
    fn mutator_survives_degenerate_inputs() {
        let mut m = Mutator::new(3);
        for base in [&[][..], &[0x4D][..], &[0u8; 64][..]] {
            for _ in 0..20 {
                let _ = m.mutate(base, base);
            }
        }
    }

    #[test]
    fn macho_mutator_is_deterministic() {
        let base: Vec<u8> = (0..2048u32).map(|i| (i * 7) as u8).collect();
        let mut a = MachoMutator::new(9);
        let mut b = MachoMutator::new(9);
        for _ in 0..50 {
            assert_eq!(a.mutate(&base, &base), b.mutate(&base, &base));
        }
    }

    #[test]
    fn macho_mutator_survives_degenerate_inputs() {
        let mut m = MachoMutator::new(3);
        let magic_only = 0xFEED_FACFu32.to_le_bytes();
        for base in [&[][..], &magic_only[..], &[0u8; 48][..]] {
            for _ in 0..20 {
                let _ = m.mutate(base, base);
            }
        }
    }
}
