//! Seed images the mutator starts from: structurally valid PEs so the
//! fuzz budget is spent just past the validation boundary.

use mpass_corpus::{CorpusConfig, Dataset};
use mpass_pe::{PeBuilder, SectionFlags};
use mpass_vm::Instr;

fn encode(instrs: &[Instr]) -> Vec<u8> {
    instrs.iter().flat_map(|i| i.encode()).collect()
}

/// A minimal hand-built executable: a short code stream ending in
/// `Halt`, plus a data section.
fn minimal() -> Vec<u8> {
    let code = encode(&[
        Instr::Movi(mpass_vm::Reg::R0, 7),
        Instr::Addi(mpass_vm::Reg::R0, 35),
        Instr::Jmp(8),
        Instr::Halt, // skipped by the jump
        Instr::Halt,
    ]);
    let mut b = PeBuilder::new();
    b.add_section(".text", code, SectionFlags::CODE).expect("fresh name");
    b.add_section(".data", vec![0x11; 96], SectionFlags::DATA).expect("fresh name");
    b.set_entry_section(".text", 0).expect("section exists");
    b.build().expect("minimal image builds").to_bytes()
}

/// The seed pool: one minimal hand-built image plus a few synthetic
/// corpus samples (which carry import tables, multiple sections and
/// real entry code). Deterministic in `seed`.
pub fn seed_images(seed: u64) -> Vec<Vec<u8>> {
    let mut seeds = vec![minimal()];
    let ds = Dataset::generate(&CorpusConfig {
        n_malware: 2,
        n_benign: 2,
        seed,
        no_slack_fraction: 0.5,
    });
    seeds.extend(ds.samples.into_iter().map(|s| s.bytes));
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seed_satisfies_the_harness() {
        for (i, s) in seed_images(1).iter().enumerate() {
            assert_eq!(crate::harness::check_bytes(s), Ok(()), "seed {i}");
        }
    }
}
