//! Seed images the mutators start from: structurally valid PEs and
//! Mach-Os so the fuzz budget is spent just past the validation
//! boundary.

use mpass_corpus::{CorpusConfig, Dataset};
use mpass_pe::{PeBuilder, SectionFlags};
use mpass_vm::Instr;

fn encode(instrs: &[Instr]) -> Vec<u8> {
    instrs.iter().flat_map(|i| i.encode()).collect()
}

/// A minimal hand-built executable: a short code stream ending in
/// `Halt`, plus a data section.
fn minimal() -> Vec<u8> {
    let code = encode(&[
        Instr::Movi(mpass_vm::Reg::R0, 7),
        Instr::Addi(mpass_vm::Reg::R0, 35),
        Instr::Jmp(8),
        Instr::Halt, // skipped by the jump
        Instr::Halt,
    ]);
    let mut b = PeBuilder::new();
    b.add_section(".text", code, SectionFlags::CODE).expect("fresh name");
    b.add_section(".data", vec![0x11; 96], SectionFlags::DATA).expect("fresh name");
    b.set_entry_section(".text", 0).expect("section exists");
    b.build().expect("minimal image builds").to_bytes()
}

/// The seed pool: one minimal hand-built image plus a few synthetic
/// corpus samples (which carry import tables, multiple sections and
/// real entry code). Deterministic in `seed`.
pub fn seed_images(seed: u64) -> Vec<Vec<u8>> {
    let mut seeds = vec![minimal()];
    let ds = Dataset::generate(&CorpusConfig {
        n_malware: 2,
        n_benign: 2,
        seed,
        no_slack_fraction: 0.5,
    });
    seeds.extend(ds.samples.into_iter().map(|s| s.bytes));
    seeds
}

/// A minimal hand-built Mach-O: a short code stream ending in `Halt`, a
/// data section and one linked dylib.
fn minimal_macho() -> Vec<u8> {
    let code = encode(&[
        Instr::Movi(mpass_vm::Reg::R0, 7),
        Instr::Addi(mpass_vm::Reg::R0, 35),
        Instr::Jmp(8),
        Instr::Halt, // skipped by the jump
        Instr::Halt,
    ]);
    let mut b = mpass_macho::MachoBuilder::new();
    b.add_section("__text", &code, mpass_binary::SectionKind::Code)
        .add_section("__data", &[0x11; 96], mpass_binary::SectionKind::Data)
        .add_dylib("/usr/lib/libSystem.B.dylib", 2)
        .set_entry_section("__text", 0);
    b.build().expect("minimal mach-o builds").to_bytes()
}

/// The Mach-O seed pool: one minimal hand-built image plus the Mach-O
/// half of a mixed synthetic corpus. Deterministic in `seed`.
pub fn macho_seed_images(seed: u64) -> Vec<Vec<u8>> {
    let mut seeds = vec![minimal_macho()];
    let ds = Dataset::generate_mixed(
        &CorpusConfig {
            n_malware: 3,
            n_benign: 3,
            seed,
            no_slack_fraction: 0.5,
        },
        1.0,
    );
    seeds.extend(ds.samples.into_iter().map(|s| s.bytes));
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seed_satisfies_the_harness() {
        for (i, s) in seed_images(1).iter().enumerate() {
            assert_eq!(crate::harness::check_bytes(s), Ok(()), "seed {i}");
        }
    }

    #[test]
    fn every_macho_seed_satisfies_the_harness() {
        for (i, s) in macho_seed_images(1).iter().enumerate() {
            assert_eq!(crate::harness::check_macho_bytes(s), Ok(()), "macho seed {i}");
        }
    }
}
