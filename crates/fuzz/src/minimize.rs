//! Greedy crasher minimization: shrink a failing input while the
//! caller-supplied predicate keeps failing.

/// Shrink `bytes` while `still_fails` stays true, by repeated tail
/// truncation and interior chunk removal with geometrically decreasing
/// chunk sizes (a light-weight ddmin). The result is 1-minimal with
/// respect to the chunk sizes tried, not globally minimal — good enough
/// to turn a multi-kilobyte mutant into a small checked-in fixture.
pub fn minimize(bytes: &[u8], still_fails: impl Fn(&[u8]) -> bool) -> Vec<u8> {
    let mut cur = bytes.to_vec();
    if !still_fails(&cur) {
        return cur;
    }
    loop {
        let before = cur.len();
        // Tail truncation, halving the cut until single bytes.
        let mut cut = (cur.len() / 2).max(1);
        while cut >= 1 {
            while cur.len() > cut {
                let cand = &cur[..cur.len() - cut];
                if still_fails(cand) {
                    cur.truncate(cur.len() - cut);
                } else {
                    break;
                }
            }
            if cut == 1 {
                break;
            }
            cut /= 2;
        }
        // Interior removal: try deleting each chunk of the current size.
        let mut chunk = (cur.len() / 4).max(1);
        while chunk >= 1 {
            let mut at = 0;
            while at + chunk <= cur.len() {
                let mut cand = Vec::with_capacity(cur.len() - chunk);
                cand.extend_from_slice(&cur[..at]);
                cand.extend_from_slice(&cur[at + chunk..]);
                if still_fails(&cand) {
                    cur = cand;
                } else {
                    at += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        if cur.len() == before {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_failing_core() {
        // "Failure" = contains the byte 0x7F.
        let mut input = vec![0u8; 500];
        input[321] = 0x7F;
        let min = minimize(&input, |b| b.contains(&0x7F));
        assert_eq!(min, vec![0x7F]);
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let input = vec![1, 2, 3];
        assert_eq!(minimize(&input, |_| false), input);
    }

    #[test]
    fn respects_multi_byte_dependencies() {
        // Failure requires the subsequence [9, 9] to survive.
        let mut input = vec![0u8; 64];
        input[10] = 9;
        input[11] = 9;
        let min = minimize(&input, |b| b.windows(2).any(|w| w == [9, 9]));
        assert_eq!(min, vec![9, 9]);
    }
}
