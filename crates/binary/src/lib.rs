//! Closed multi-format binary image.
//!
//! [`BinaryImage`] wraps the two container backends — `mpass-pe` and
//! `mpass-macho` — in one enum that implements
//! [`mpass_binfmt::BinaryFormat`] by delegation. The enum solves what
//! `Box<dyn BinaryFormat>` cannot: images stored inside corpus samples
//! need `Clone`, `PartialEq` and serde, none of which survive type
//! erasure. Pipelines that only read or edit take `&dyn BinaryFormat` /
//! `&mut dyn BinaryFormat`; everything that owns an image holds a
//! `BinaryImage`.
//!
//! Format detection is by magic: `MZ` parses as PE, the `MH_MAGIC_64`
//! family as Mach-O, anything else is a typed
//! [`BinaryError::UnknownMagic`].

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
#![deny(missing_docs)]

pub use mpass_binfmt::{
    detect_format, BinaryError, BinaryFormat, Format, ImportSummary, ModifiableKind,
    ModifiableRegion, ParseMode, SectionKind, SectionMeta,
};
pub use mpass_macho::{MachoError, MachoFile};
pub use mpass_pe::{PeError, PeFile};

use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A parsed binary in any supported container format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BinaryImage {
    /// A Windows Portable Executable. Boxed: `PeFile` is ~5× the size of
    /// `MachoFile`, and corpus samples store thousands of these enums.
    Pe(Box<PeFile>),
    /// A 64-bit Mach-O image.
    MachO(MachoFile),
}

impl From<PeFile> for BinaryImage {
    fn from(pe: PeFile) -> Self {
        BinaryImage::Pe(Box::new(pe))
    }
}

impl From<MachoFile> for BinaryImage {
    fn from(m: MachoFile) -> Self {
        BinaryImage::MachO(m)
    }
}

impl BinaryImage {
    /// Detect the container format by magic and parse accordingly
    /// (loader-tolerant mode).
    ///
    /// # Errors
    ///
    /// [`BinaryError::UnknownMagic`] when the bytes start with no known
    /// magic; otherwise whatever the chosen backend reports.
    pub fn parse_auto(bytes: &[u8]) -> Result<Self, BinaryError> {
        Self::parse_auto_with(bytes, ParseMode::LoaderTolerant)
    }

    /// Detect the format by magic and parse under an explicit mode.
    ///
    /// # Errors
    ///
    /// Same surface as [`BinaryImage::parse_auto`].
    pub fn parse_auto_with(bytes: &[u8], mode: ParseMode) -> Result<Self, BinaryError> {
        Self::parse_as(detect_format(bytes)?, bytes, mode)
    }

    /// Parse as a specific format, overriding detection (the CLI's
    /// `--format` escape hatch).
    ///
    /// # Errors
    ///
    /// Whatever the chosen backend reports.
    pub fn parse_as(format: Format, bytes: &[u8], mode: ParseMode) -> Result<Self, BinaryError> {
        match format {
            Format::Pe => Ok(BinaryImage::Pe(Box::new(PeFile::parse_with(bytes, mode)?))),
            Format::MachO => Ok(BinaryImage::MachO(MachoFile::parse_with(bytes, mode)?)),
        }
    }

    /// The wrapped PE, when this image is one. Format-specific pipelines
    /// (packer baselines, import stamping) use this instead of the trait
    /// and skip or fail cleanly on other formats.
    pub fn as_pe(&self) -> Option<&PeFile> {
        match self {
            BinaryImage::Pe(pe) => Some(pe.as_ref()),
            _ => None,
        }
    }

    /// Mutable access to the wrapped PE, when this image is one.
    pub fn as_pe_mut(&mut self) -> Option<&mut PeFile> {
        match self {
            BinaryImage::Pe(pe) => Some(pe.as_mut()),
            _ => None,
        }
    }

    /// The wrapped Mach-O, when this image is one.
    pub fn as_macho(&self) -> Option<&MachoFile> {
        match self {
            BinaryImage::MachO(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable access to the wrapped Mach-O, when this image is one.
    pub fn as_macho_mut(&mut self) -> Option<&mut MachoFile> {
        match self {
            BinaryImage::MachO(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as the format-neutral trait object.
    pub fn as_dyn(&self) -> &dyn BinaryFormat {
        match self {
            BinaryImage::Pe(pe) => pe.as_ref(),
            BinaryImage::MachO(m) => m,
        }
    }

    /// Mutably borrow as the format-neutral trait object.
    pub fn as_dyn_mut(&mut self) -> &mut dyn BinaryFormat {
        match self {
            BinaryImage::Pe(pe) => pe.as_mut(),
            BinaryImage::MachO(m) => m,
        }
    }
}

impl BinaryFormat for BinaryImage {
    fn format(&self) -> Format {
        self.as_dyn().format()
    }

    fn to_bytes(&self) -> Vec<u8> {
        self.as_dyn().to_bytes()
    }

    fn file_len(&self) -> usize {
        self.as_dyn().file_len()
    }

    fn section_count(&self) -> usize {
        self.as_dyn().section_count()
    }

    fn section_meta(&self, index: usize) -> Option<SectionMeta> {
        self.as_dyn().section_meta(index)
    }

    fn section_data(&self, index: usize) -> Option<&[u8]> {
        self.as_dyn().section_data(index)
    }

    fn section_data_mut(&mut self, index: usize) -> Option<&mut [u8]> {
        self.as_dyn_mut().section_data_mut(index)
    }

    fn add_section(
        &mut self,
        name: &str,
        data: Vec<u8>,
        kind: SectionKind,
    ) -> Result<u64, BinaryError> {
        self.as_dyn_mut().add_section(name, data, kind)
    }

    fn can_add_sections(&self, n: usize) -> bool {
        self.as_dyn().can_add_sections(n)
    }

    fn next_free_va(&self) -> u64 {
        self.as_dyn().next_free_va()
    }

    fn entry_point(&self) -> u64 {
        self.as_dyn().entry_point()
    }

    fn set_entry_point(&mut self, va: u64) -> Result<(), BinaryError> {
        self.as_dyn_mut().set_entry_point(va)
    }

    fn section_index_containing_va(&self, va: u64) -> Option<usize> {
        self.as_dyn().section_index_containing_va(va)
    }

    fn va_to_file_offset(&self, va: u64) -> Option<usize> {
        self.as_dyn().va_to_file_offset(va)
    }

    fn read_virtual(&self, va: u64, len: usize) -> Vec<u8> {
        self.as_dyn().read_virtual(va, len)
    }

    fn write_virtual(&mut self, va: u64, bytes: &[u8]) -> Result<(), BinaryError> {
        self.as_dyn_mut().write_virtual(va, bytes)
    }

    fn overlay(&self) -> &[u8] {
        self.as_dyn().overlay()
    }

    fn append_overlay(&mut self, bytes: &[u8]) {
        self.as_dyn_mut().append_overlay(bytes);
    }

    fn truncate_overlay(&mut self, len: usize) {
        self.as_dyn_mut().truncate_overlay(len);
    }

    fn map_image_bounded(&self, max_bytes: usize) -> Result<Vec<u8>, BinaryError> {
        self.as_dyn().map_image_bounded(max_bytes)
    }

    fn randomize_free_headers(&mut self, rng: &mut dyn RngCore) {
        self.as_dyn_mut().randomize_free_headers(rng);
    }

    fn finalize(&mut self) {
        self.as_dyn_mut().finalize();
    }

    fn timestamp(&self) -> u32 {
        self.as_dyn().timestamp()
    }

    fn modifiable_positions(&self) -> Vec<ModifiableRegion> {
        self.as_dyn().modifiable_positions()
    }

    fn imports_summary(&self) -> Option<ImportSummary> {
        self.as_dyn().imports_summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_macho::MachoBuilder;
    use mpass_pe::{PeBuilder, SectionFlags};

    fn pe() -> PeFile {
        let mut b = PeBuilder::new();
        b.add_section(".text", vec![0x90; 64], SectionFlags::CODE).unwrap();
        b.build().unwrap()
    }

    fn macho() -> MachoFile {
        let mut b = MachoBuilder::new();
        b.add_section("__text", &[0x90; 64], SectionKind::Code).set_entry_section("__text", 0);
        b.build().unwrap()
    }

    #[test]
    fn auto_detection_routes_by_magic() {
        let pe_img = BinaryImage::parse_auto(&pe().to_bytes()).unwrap();
        assert_eq!(pe_img.format(), Format::Pe);
        assert!(pe_img.as_pe().is_some() && pe_img.as_macho().is_none());

        let macho_img = BinaryImage::parse_auto(&MachoFile::to_bytes(&macho())).unwrap();
        assert_eq!(macho_img.format(), Format::MachO);
        assert!(macho_img.as_macho().is_some() && macho_img.as_pe().is_none());

        let err = BinaryImage::parse_auto(b"\x7fELF....what").unwrap_err();
        assert!(matches!(err, BinaryError::UnknownMagic { .. }), "{err:?}");
    }

    #[test]
    fn enum_round_trips_both_formats() {
        for img in [BinaryImage::from(pe()), BinaryImage::from(macho())] {
            let re = BinaryImage::parse_auto(&img.to_bytes()).unwrap();
            assert_eq!(re, img);
        }
    }

    #[test]
    fn serde_round_trips_the_enum() {
        let img = BinaryImage::from(macho());
        let json = serde_json::to_string(&img).unwrap();
        let back: BinaryImage = serde_json::from_str(&json).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn parse_as_overrides_detection() {
        // Forcing the wrong format yields that backend's typed error
        // instead of misparsing.
        let err =
            BinaryImage::parse_as(Format::MachO, &pe().to_bytes(), ParseMode::LoaderTolerant)
                .unwrap_err();
        assert!(matches!(err, BinaryError::BadMagic { .. }), "{err:?}");
    }
}
