//! Cross-process campaign orchestration: spawn a real worker
//! subprocess, SIGKILL it mid-shard, restart coordination, and verify
//! the merged report is byte-identical to an uninterrupted in-process
//! run with no oracle budget double-spent.

use mpass_experiments::journal::scan_journal;
use mpass_experiments::orchestrator::{
    campaign_status, read_events, render_status, run_baseline, run_coordinator, CampaignKind,
    CoordinatorOptions, Manifest,
};
use mpass_experiments::{World, WorldConfig};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn campaign_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mpass-dist-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Total intact records across all shard journals.
fn journalled_records(dir: &std::path::Path, manifest: &Manifest) -> usize {
    manifest
        .shards
        .iter()
        .map(|spec| {
            scan_journal(&manifest.journal_path(dir, spec)).map_or(0, |scan| scan.records)
        })
        .sum()
}

#[test]
fn sigkilled_worker_is_reassigned_and_merge_matches_baseline() {
    // Small stateless-attack grid: sample-level resume is what makes a
    // mid-shard kill budget-neutral (stateful attacks get shard-level
    // resume only).
    let mut config = WorldConfig::quick();
    config.attack_samples = 2;
    let manifest = Manifest::new(
        CampaignKind::Offline,
        config.clone(),
        config.seed,
        None,
        &["MPass".into(), "GAMMA".into()],
        &["MalConv".into()],
    );

    // Uninterrupted in-process baseline through the same code path the
    // merge uses.
    let world = World::build(config);
    let (baseline, _) = run_baseline(&world, &manifest, 0);

    let dir = campaign_dir("sigkill");
    manifest.save(&dir).expect("campaign dir initializes");

    // A real worker subprocess, paced with --hold-ms so the SIGKILL
    // lands mid-shard (after at least one journalled record, before the
    // shard's finishing records).
    let exe = env!("CARGO_BIN_EXE_mpass");
    let mut victim = Command::new(exe)
        .args(["campaign", "work", "--worker-id", "victim"])
        .arg("--dir")
        .arg(&dir)
        .args(["--ttl-ms", "1500", "--heartbeat-ms", "150", "--hold-ms", "400"])
        .stdout(Stdio::null())
        .spawn()
        .expect("worker spawns");

    // Wait for the first journal append (the worker trains its world
    // first, which dominates the wait), then SIGKILL.
    let deadline = Instant::now() + Duration::from_secs(240);
    while journalled_records(&dir, &manifest) == 0 {
        assert!(Instant::now() < deadline, "worker never journalled a record");
        assert!(
            victim.try_wait().expect("try_wait").is_none(),
            "worker exited before the kill could land"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    victim.kill().expect("SIGKILL the worker");
    let _ = victim.wait();

    // Pre-kill accounting: which samples each shard had already paid
    // oracle queries for.
    let mut pre_kill: Vec<(String, Vec<(String, usize)>)> = Vec::new();
    let mut any_unfinished_with_lease = false;
    for spec in &manifest.shards {
        let scan = scan_journal(&manifest.journal_path(&dir, spec)).expect("scan");
        if !scan.is_finished(&spec.label) && manifest.lease_path(&dir, spec).exists() {
            any_unfinished_with_lease = true;
        }
        pre_kill
            .push((spec.label.clone(), scan.sample_queries.get(&spec.label).cloned().unwrap_or_default()));
    }
    assert!(
        any_unfinished_with_lease,
        "the kill must land mid-shard (worker was holding a lease of an unfinished shard)"
    );

    // Restart coordination over the half-written directory: the dead
    // worker's lease is broken, fresh workers finish the remainder.
    let mut opts =
        CoordinatorOptions::new(&dir, vec![exe.to_owned(), "campaign".into(), "work".into()]);
    opts.processes = 2;
    opts.ttl = Duration::from_millis(1500);
    opts.heartbeat = Duration::from_millis(150);
    opts.poll = Duration::from_millis(100);
    opts.deadline = Some(Duration::from_secs(540));
    opts.resume = true;
    let summary = run_coordinator(&manifest, &opts).expect("coordination completes");

    // The acceptance bar: merged output byte-identical to the
    // uninterrupted run, both in memory and on disk.
    assert_eq!(summary.report, baseline, "merged report must be byte-identical to baseline");
    let on_disk = std::fs::read_to_string(&summary.report_path).expect("merged.json");
    assert_eq!(on_disk, baseline, "merged.json bytes must match the baseline");

    // No double-spent oracle budget: every (shard, sample) pair was paid
    // for exactly once, and the pre-kill spend was carried over — not
    // re-bought — by the finishing worker.
    for spec in &manifest.shards {
        let scan = scan_journal(&manifest.journal_path(&dir, spec)).expect("scan");
        let samples = scan.sample_queries.get(&spec.label).cloned().unwrap_or_default();
        let mut names: Vec<&str> = samples.iter().map(|(name, _)| name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate sample records in {} journal", spec.label);
        let pre = &pre_kill.iter().find(|(l, _)| l == &spec.label).expect("pre-kill entry").1;
        for (name, queries) in pre {
            assert_eq!(
                samples.iter().find(|(n, _)| n == name).map(|(_, q)| *q),
                Some(*queries),
                "pre-kill spend for {name} must be replayed verbatim, not re-queried"
            );
        }
        assert!(scan.is_finished(&spec.label), "{} must be finished", spec.label);
    }

    // The dead worker's lease was reclaimed: either cleared on
    // coordinator start (dead pid / expired TTL) or broken by the
    // supervision loop.
    let events = read_events(&dir);
    let reclaimed = summary.reassigned > 0
        || events.iter().any(|(event, _, _)| event == "stale_lease_cleared");
    assert!(reclaimed, "the victim's lease must be reclaimed; events: {events:?}");

    // No leases survive a finished campaign.
    let leases: Vec<_> = std::fs::read_dir(dir.join("leases"))
        .map(|entries| entries.flatten().collect())
        .unwrap_or_default();
    assert!(leases.is_empty(), "leases must be released: {leases:?}");

    // The status view reflects the finished campaign.
    let status = campaign_status(&dir).expect("status");
    let rendered = render_status(&status);
    assert!(rendered.contains("finished by"), "{rendered}");
    assert!(status.shards.iter().all(|s| s.finished), "{rendered}");

    let _ = std::fs::remove_dir_all(&dir);
}
