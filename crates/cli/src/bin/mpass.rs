//! The `mpass` command-line entry point; all logic lives in `mpass_cli`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match mpass_cli::dispatch(&args) {
        Ok(output) => print!("{output}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
