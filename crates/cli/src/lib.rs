//! # mpass-cli — command-line tooling
//!
//! The `mpass` binary exposes the reproduction's substrates as inspection
//! and experimentation tools:
//!
//! ```text
//! mpass gen      --out DIR [--malware N] [--benign N] [--seed S] [--macho-fraction F]
//! mpass inspect  FILE [--format pe|macho]  # headers, sections, imports, entropy
//! mpass disasm   FILE [--section NAME]     # MVM disassembly of a code section
//! mpass run      FILE [--format pe|macho]  # execute in the sandbox, print API trace
//! mpass verify   ORIGINAL MODIFIED         # functionality comparison
//! mpass pack     FILE --packer upx|pespin|aspack --out FILE
//! mpass attack   FILE --out FILE [--seed S]   # MPass one sample vs MalConv
//! mpass score    FILE [FILE...]               # batched MalConv scoring
//! mpass snapshot --out PATH                   # pack trained weights to a file
//! mpass serve    --socket PATH                # persistent scoring daemon
//! mpass campaign coordinate --dir DIR         # distributed campaign coordinator
//! mpass campaign work --dir DIR               # join a campaign as a worker
//! mpass campaign status --dir DIR             # per-shard progress + reassignments
//! mpass campaign fault-matrix --out DIR       # seeded worker-kill sweep
//! ```
//!
//! Every file-taking subcommand auto-detects the container format by magic
//! (`MZ` → PE, the Mach-O magic family → Mach-O); `--format pe|macho`
//! overrides detection, and a file with no known magic is refused with the
//! typed [`mpass_binary::BinaryError::UnknownMagic`] message rather than a
//! PE-specific parse error.
//!
//! Subcommand implementations live here so they can be unit-tested; the
//! binary in `src/bin/mpass.rs` only parses arguments.

use mpass_binary::{BinaryFormat, BinaryImage, Format, ParseMode};
use mpass_corpus::{BenignPool, CorpusConfig, Dataset};
use mpass_detectors::train::training_pairs;
use mpass_detectors::{
    ByteConvConfig, Detector, LightGbm, MalConv, MalGcg, MalGcgConfig, NonNeg,
};
use mpass_pe::{PeFile, SectionKind};
use mpass_sandbox::Sandbox;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::path::Path;

/// Error string type used by all subcommands (messages go straight to the
/// user).
pub type CliResult = Result<String, String>;

fn read(path: &str) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Resolve a `--format` flag value. `None` (flag absent) means
/// auto-detect.
pub fn parse_format_flag(value: Option<&str>) -> Result<Option<Format>, String> {
    match value {
        None => Ok(None),
        Some(name) => Format::from_short_name(name)
            .map(Some)
            .ok_or_else(|| format!("unknown format {name:?} (pe|macho)")),
    }
}

/// Parse `bytes` as a binary image: by magic when `format` is `None`,
/// under the forced backend otherwise.
fn parse_image(bytes: &[u8], path: &str, format: Option<Format>) -> Result<BinaryImage, String> {
    match format {
        None => BinaryImage::parse_auto(bytes)
            .map_err(|e| format!("{path}: {e} (use --format pe|macho to override detection)")),
        Some(f) => BinaryImage::parse_as(f, bytes, ParseMode::LoaderTolerant)
            .map_err(|e| format!("{path}: not a valid {f}: {e}")),
    }
}


/// `mpass gen`: write a synthetic corpus to disk. `macho_fraction`
/// controls the Mach-O share of the corpus (0.0 keeps the historical
/// all-PE output, byte for byte). PE samples get an `.exe` suffix,
/// Mach-O samples `.macho`.
pub fn cmd_gen(
    out_dir: &str,
    n_malware: usize,
    n_benign: usize,
    seed: u64,
    macho_fraction: f64,
) -> CliResult {
    let dir = Path::new(out_dir);
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {out_dir}: {e}"))?;
    let ds = Dataset::generate_mixed(
        &CorpusConfig {
            n_malware,
            n_benign,
            seed,
            no_slack_fraction: 0.1,
        },
        macho_fraction,
    );
    for s in &ds.samples {
        let ext = match s.format() {
            Format::Pe => "exe",
            Format::MachO => "macho",
        };
        let path = dir.join(format!("{}.{ext}", s.name));
        std::fs::write(&path, &s.bytes).map_err(|e| format!("write {path:?}: {e}"))?;
    }
    Ok(format!(
        "wrote {} samples ({} malware, {} benign) to {out_dir}",
        ds.samples.len(),
        n_malware,
        n_benign
    ))
}

/// `mpass inspect`: structural summary of a binary in any supported
/// format. The PE branch keeps its historical output; Mach-O gets the
/// analogous summary through the [`BinaryFormat`] trait.
pub fn cmd_inspect(path: &str, format: Option<Format>) -> CliResult {
    let bytes = read(path)?;
    match parse_image(&bytes, path, format)? {
        BinaryImage::Pe(pe) => inspect_pe(path, &bytes, &pe),
        BinaryImage::MachO(m) => inspect_macho(path, &bytes, &m),
    }
}

fn inspect_pe(path: &str, bytes: &[u8], pe: &PeFile) -> CliResult {
    let mut out = String::new();
    let _ = writeln!(out, "{path}: {} bytes", bytes.len());
    let _ = writeln!(
        out,
        "entry {:#x}  sections {}  image {:#x}  headers {:#x}  timestamp {:#x}",
        pe.entry_point(),
        pe.sections().len(),
        pe.optional().size_of_image,
        pe.optional().size_of_headers,
        pe.coff().time_date_stamp,
    );
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>10} {:>10} {:>9} {:>8}  kind",
        "name", "rva", "vsize", "rawsize", "entropy", "flags"
    );
    for s in pe.sections() {
        let h = s.header();
        let _ = writeln!(
            out,
            "{:<10} {:>8x} {:>10} {:>10} {:>9.3} {:>8x}  {}",
            s.name(),
            h.virtual_address,
            h.virtual_size,
            h.size_of_raw_data,
            s.entropy(),
            h.characteristics.0,
            s.kind(),
        );
    }
    if !pe.overlay().is_empty() {
        let _ = writeln!(
            out,
            "overlay: {} bytes, entropy {:.3}",
            pe.overlay().len(),
            mpass_pe::entropy(pe.overlay())
        );
    }
    match pe.imports() {
        Ok(Some(table)) => {
            for dll in &table.dlls {
                let names: Vec<&str> =
                    dll.entries.iter().filter_map(|e| e.name()).collect();
                let _ = writeln!(
                    out,
                    "imports {} ({} symbols): {}",
                    dll.dll,
                    dll.entries.len(),
                    names.join(", ")
                );
            }
        }
        Ok(None) => {
            let _ = writeln!(out, "imports: none");
        }
        Err(e) => {
            let _ = writeln!(out, "imports: malformed ({e})");
        }
    }
    let _ = writeln!(
        out,
        "statically visible suspicious API invocations: {}",
        mpass_detectors::features::suspicious_api_count(bytes)
    );
    Ok(out)
}

fn inspect_macho(path: &str, bytes: &[u8], m: &mpass_binary::MachoFile) -> CliResult {
    let mut out = String::new();
    let _ = writeln!(out, "{path}: {} bytes (mach-o)", bytes.len());
    let _ = writeln!(
        out,
        "entry {:#x}  sections {}  load commands {:#x} bytes",
        m.entry_point(),
        m.section_count(),
        m.sizeofcmds(),
    );
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>10} {:>10} {:>9}  kind",
        "name", "va", "vsize", "filesize", "entropy"
    );
    for i in 0..m.section_count() {
        let Some(meta) = m.section_meta(i) else { continue };
        let entropy = m.section_data(i).map(mpass_pe::entropy).unwrap_or(0.0);
        let _ = writeln!(
            out,
            "{:<16} {:>10x} {:>10} {:>10} {:>9.3}  {}",
            meta.name, meta.virtual_address, meta.virtual_size, meta.file_size, entropy, meta.kind,
        );
    }
    if !m.overlay().is_empty() {
        let _ = writeln!(
            out,
            "overlay: {} bytes, entropy {:.3}",
            m.overlay().len(),
            mpass_pe::entropy(m.overlay())
        );
    }
    match m.imports_summary() {
        Some(summary) => {
            let _ = writeln!(
                out,
                "linked libraries ({}): {}",
                summary.libraries,
                summary.symbols.join(", ")
            );
        }
        None => {
            let _ = writeln!(out, "linked libraries: none");
        }
    }
    let _ = writeln!(
        out,
        "statically visible suspicious API invocations: {}",
        mpass_detectors::features::suspicious_api_count(bytes)
    );
    Ok(out)
}

/// `mpass disasm`: MVM disassembly of a code section, in any supported
/// container format.
pub fn cmd_disasm(path: &str, section: Option<&str>, format: Option<Format>) -> CliResult {
    let bytes = read(path)?;
    let image = parse_image(&bytes, path, format)?;
    let metas: Vec<_> = (0..image.section_count())
        .filter_map(|i| image.section_meta(i).map(|m| (i, m)))
        .collect();
    let (index, meta) = match section {
        Some(name) => metas
            .into_iter()
            .find(|(_, m)| m.name == name)
            .ok_or_else(|| format!("no section named {name:?}"))?,
        None => metas
            .into_iter()
            .find(|(i, m)| {
                m.kind == SectionKind::Code
                    && image.section_data(*i).is_some_and(|d| !d.is_empty())
            })
            .ok_or_else(|| "no code section".to_owned())?,
    };
    let data = image.section_data(index).unwrap_or_default();
    let mut out = String::new();
    let _ = writeln!(out, "disassembly of {} ({} bytes):", meta.name, data.len());
    let base = meta.virtual_address;
    for (i, chunk) in data.chunks(mpass_vm::INSTR_SIZE).enumerate().take(512) {
        let addr = base + (i * mpass_vm::INSTR_SIZE) as u64;
        match mpass_vm::Instr::decode(chunk) {
            Ok(instr) => {
                let _ = writeln!(out, "  {addr:#08x}  {instr}");
            }
            Err(_) => {
                let _ = writeln!(out, "  {addr:#08x}  (data) {chunk:02x?}");
            }
        }
    }
    Ok(out)
}

/// `mpass run`: execute a binary in the sandbox.
pub fn cmd_run(path: &str, format: Option<Format>) -> CliResult {
    let bytes = read(path)?;
    let image = parse_image(&bytes, path, format)?;
    let exec = Sandbox::new().run_image(image.as_dyn());
    let mut out = String::new();
    let _ = writeln!(out, "outcome: {:?} after {} instructions", exec.outcome, exec.steps);
    for ev in &exec.trace {
        let marker = if ev.api.is_suspicious() { "!" } else { " " };
        let _ = writeln!(out, " {marker} {} (arg {:#x})", ev.api, ev.arg);
    }
    let _ = writeln!(out, "suspicious calls: {}", exec.suspicious_calls().count());
    Ok(out)
}

/// `mpass verify`: behaviour comparison of two files.
pub fn cmd_verify(original: &str, modified: &str) -> CliResult {
    let a = read(original)?;
    let b = read(modified)?;
    let verdict = Sandbox::new().verify_functionality(&a, &b);
    Ok(format!("functionality: {verdict}"))
}

/// `mpass pack`: apply one of the simulated packers (PE-only — the
/// packer profiles model Windows packers).
pub fn cmd_pack(path: &str, packer_name: &str, out_path: &str) -> CliResult {
    let bytes = read(path)?;
    let image = parse_image(&bytes, path, None)?;
    let pe = image
        .as_pe()
        .ok_or_else(|| format!("pack supports PE binaries only ({path} is {})", image.format()))?;
    let profile = mpass_baselines::packer_profiles()
        .into_iter()
        .find(|p| p.name.eq_ignore_ascii_case(packer_name))
        .ok_or_else(|| format!("unknown packer {packer_name:?} (upx|pespin|aspack)"))?;
    let packed = mpass_baselines::Packer::new(profile)
        .pack(pe)
        .map_err(|e| format!("packing failed: {e}"))?;
    std::fs::write(out_path, &packed).map_err(|e| format!("write {out_path}: {e}"))?;
    Ok(format!("packed with {} -> {out_path} ({} bytes)", profile.name, packed.len()))
}

/// `mpass attack`: run the full MPass pipeline on one file against a
/// freshly trained MalConv (demonstration scale). With `faults`, the
/// oracle channel injects a deterministic fault schedule seeded from the
/// given value, and the retry/fault counters are reported.
pub fn cmd_attack(
    path: &str,
    out_path: &str,
    seed: u64,
    faults: Option<u64>,
    format: Option<Format>,
) -> CliResult {
    use mpass_core::{Attack, HardLabelTarget, MPassAttack, MPassConfig, QueryBudget, RetryPolicy};
    use mpass_detectors::{FaultProfile, UnreliableOracle};
    use mpass_engine::metrics;
    let bytes = read(path)?;
    let image = parse_image(&bytes, path, format)?;
    let sample = mpass_corpus::Sample::new(
        Path::new(path).file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default(),
        mpass_corpus::Label::Malware,
        image,
    );
    // Demonstration world: small corpus, tiny models.
    let ds = Dataset::generate(&CorpusConfig {
        n_malware: 24,
        n_benign: 24,
        seed,
        no_slack_fraction: 0.0,
    });
    let samples: Vec<_> = ds.samples.iter().collect();
    let pairs = training_pairs(&samples);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut target = MalConv::new(ByteConvConfig::tiny(), &mut rng);
    target.train(&pairs, 5, 5e-3, &mut rng);
    let mut surrogate = MalGcg::new(MalGcgConfig::tiny(), &mut rng);
    surrogate.train(&pairs, 5, 5e-3, &mut rng);
    let pool = BenignPool::generate(8, seed ^ 0xB00);

    let initial = target.classify(&sample.bytes);
    let config = MPassConfig::builder()
        .seed(seed)
        .build()
        .expect("default MPass config is valid");
    let mut attack = MPassAttack::new(vec![&surrogate], &pool, config);
    let unreliable =
        faults.map(|fault_seed| UnreliableOracle::new(&target, FaultProfile::seeded(fault_seed)));
    let mut oracle = match &unreliable {
        None => HardLabelTarget::new(&target, 100),
        Some(channel) => {
            HardLabelTarget::unreliable(channel, QueryBudget::new(100), RetryPolicy::default())
                .with_retry_seed(seed)
        }
    };
    let previous = metrics::install(metrics::Collector::default());
    let outcome = attack.attack(&sample, &mut oracle);
    let collected = metrics::take().unwrap_or_default().finish("attack", 0.0);
    if let Some(previous) = previous {
        metrics::install(previous);
    }
    let mut out = String::new();
    let _ = writeln!(out, "target MalConv verdict on input: {initial}");
    let _ = writeln!(
        out,
        "attack: evaded={} queries={} size {} -> {}",
        outcome.evaded, outcome.queries, outcome.original_size, outcome.final_size
    );
    if let Some(channel) = &unreliable {
        let counter = |name: &str| collected.counters.get(name).copied().unwrap_or(0);
        let _ = writeln!(
            out,
            "oracle faults: {} injected over {} submissions (retries {}, backoff {} ms, breaker opens {})",
            channel.faults_injected(),
            channel.submissions(),
            counter("oracle/retry"),
            counter("oracle/backoff_ms"),
            counter("oracle/breaker_open"),
        );
    }
    if let Some(ae) = outcome.adversarial {
        // Digest-based validation: baseline the sample once, replay the AE
        // against it with the early-aborting comparing sink.
        let sandbox = Sandbox::new();
        let verdict = match sandbox.baseline_digest(&sample.bytes) {
            Ok(baseline) => sandbox.verify_candidate(&baseline, &ae),
            Err(_) => mpass_sandbox::FunctionalityVerdict::BrokenParse,
        };
        let _ = writeln!(out, "functionality: {verdict}");
        std::fs::write(out_path, &ae).map_err(|e| format!("write {out_path}: {e}"))?;
        let _ = writeln!(out, "adversarial example written to {out_path}");
    }
    Ok(out)
}

/// `mpass score`: classify files with a freshly trained MalConv
/// (demonstration scale, same world as `mpass attack`). Every file is
/// scored on its own thread through the engine's [`BatchScheduler`], so
/// concurrent submissions coalesce into batched `score_batch` calls —
/// the CLI face of the batched serving path. Scores are bit-identical to
/// sequential `score` calls; only the throughput differs.
/// Train the demonstration-scale MalConv every serving-path command
/// uses (same corpus and hyperparameters as `mpass attack`'s world).
fn train_demo_malconv(seed: u64) -> MalConv {
    let ds = Dataset::generate(&CorpusConfig {
        n_malware: 24,
        n_benign: 24,
        seed,
        no_slack_fraction: 0.0,
    });
    let samples: Vec<_> = ds.samples.iter().collect();
    let pairs = training_pairs(&samples);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut target = MalConv::new(ByteConvConfig::tiny(), &mut rng);
    target.train(&pairs, 5, 5e-3, &mut rng);
    target
}

/// `mpass snapshot`: train the named demonstration detector and pack its
/// weights into a versioned, checksummed snapshot file. `mpass serve
/// --snapshot PATH` (and any out-of-process retrain pipeline) hot-loads
/// the file at O(read) cost with scores bit-identical to the model that
/// wrote it.
pub fn cmd_snapshot(out_path: &str, detector: &str, seed: u64) -> CliResult {
    let ds = Dataset::generate(&CorpusConfig {
        n_malware: 24,
        n_benign: 24,
        seed,
        no_slack_fraction: 0.0,
    });
    let samples: Vec<_> = ds.samples.iter().collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let snap = match detector {
        "malconv" => train_demo_malconv(seed).to_snapshot(),
        "nonneg" => {
            let mut m = NonNeg::new(ByteConvConfig::tiny(), &mut rng);
            m.train(&training_pairs(&samples), 5, 5e-3, &mut rng);
            m.to_snapshot()
        }
        "malgcg" => {
            let mut m = MalGcg::new(MalGcgConfig::tiny(), &mut rng);
            m.train(&training_pairs(&samples), 5, 5e-3, &mut rng);
            m.to_snapshot()
        }
        "lightgbm" => {
            LightGbm::train(&samples, mpass_ml::GbdtParams::default(), &mut rng).to_snapshot()
        }
        other => {
            return Err(format!(
                "unknown detector {other:?} (malconv|nonneg|malgcg|lightgbm)"
            ))
        }
    };
    let bytes = snap.to_bytes();
    std::fs::write(out_path, &bytes).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    Ok(format!("wrote {detector} snapshot ({} bytes) to {out_path}\n", bytes.len()))
}

pub fn cmd_score(paths: &[&String], seed: u64, max_batch: usize, linger_ms: u64) -> CliResult {
    use mpass_engine::{BatchPolicy, BatchScheduler};
    if paths.is_empty() {
        return Err("score requires at least one FILE".to_owned());
    }
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        files.push(read(path)?);
    }
    let target = train_demo_malconv(seed);

    let sched = BatchScheduler::new(
        BatchPolicy {
            max_batch: max_batch.max(1),
            max_delay: std::time::Duration::from_millis(linger_ms),
            ..BatchPolicy::default()
        },
        |items: &[&[u8]]| {
            let mut scores = Vec::with_capacity(items.len());
            target.score_batch(items, &mut scores);
            scores
        },
    );
    let scores: Vec<f32> = std::thread::scope(|scope| {
        let handles: Vec<_> = files
            .iter()
            .map(|bytes| {
                let sched = &sched;
                scope.spawn(move || sched.submit(bytes.as_slice()))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("scoring thread panicked")).collect()
    });
    let threshold = target.threshold();
    let mut out = String::new();
    for (path, score) in paths.iter().zip(&scores) {
        let verdict = if *score > threshold {
            mpass_detectors::Verdict::Malicious
        } else {
            mpass_detectors::Verdict::Benign
        };
        let _ = writeln!(out, "{path}: score {score:.4} -> {verdict}");
    }
    Ok(out)
}

/// Options for `mpass serve`, one field per flag.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// `--socket PATH` (required).
    pub socket: std::path::PathBuf,
    /// `--seed S`: corpus/training seed for the demo model.
    pub seed: u64,
    /// `--batch N`: batch flush size.
    pub max_batch: usize,
    /// `--linger-ms MS`: partial-batch linger.
    pub linger_ms: u64,
    /// `--queue N`: scoring-queue bound (overload threshold).
    pub queue: usize,
    /// `--deadline-ms MS`: default per-request deadline.
    pub deadline_ms: u64,
    /// `--rate R`: per-tenant steady-state requests/second.
    pub rate: f64,
    /// `--burst B`: per-tenant token-bucket depth.
    pub burst: u32,
    /// `--tenant-budget N`: per-tenant delivered-verdict budget.
    pub tenant_budget: Option<usize>,
    /// `--metrics-out PATH`: flush a metrics file at drain.
    pub metrics_out: Option<std::path::PathBuf>,
    /// `--snapshot PATH`: serve the model in a weight-snapshot file
    /// instead of training in-process; `reload` re-reads the file.
    pub snapshot: Option<std::path::PathBuf>,
}

/// `mpass serve`: the persistent scoring daemon. Trains the same
/// demonstration MalConv as `mpass score` (or, with `--snapshot PATH`,
/// decodes a weight-snapshot file), serves it hot-reloadably on a Unix
/// socket, and blocks until a `shutdown` command or SIGTERM drains it. A
/// `reload` command retrains with an epoch-derived seed — or re-reads the
/// snapshot file, so a retrain elsewhere lands as an O(read) model swap.
pub fn cmd_serve(opts: &ServeOptions) -> CliResult {
    use mpass_serve::{run_with_sigterm, ReloadableModel, Server, ServerConfig, TenantPolicy};
    use std::sync::Arc;
    use std::time::Duration;

    let seed = opts.seed;
    let model = match &opts.snapshot {
        Some(path) => ReloadableModel::from_snapshot_file(path)?,
        None => ReloadableModel::new(
            Arc::new(train_demo_malconv(seed)),
            move |epoch| {
                // Weekly-learning producer: each epoch retrains on a corpus
                // drawn from an epoch-derived seed.
                let retrain_seed = seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                Ok(Arc::new(train_demo_malconv(retrain_seed)) as Arc<dyn Detector>)
            },
        ),
    };
    let server = Server::new(
        &model,
        ServerConfig {
            socket: opts.socket.clone(),
            max_batch: opts.max_batch.max(1),
            linger: Duration::from_millis(opts.linger_ms),
            queue_capacity: opts.queue.max(1),
            default_deadline: Duration::from_millis(opts.deadline_ms.max(1)),
            tenant: TenantPolicy {
                rate_per_sec: opts.rate,
                burst: opts.burst,
                budget: opts.tenant_budget,
                ..TenantPolicy::default()
            },
            metrics_out: opts.metrics_out.clone(),
            seed,
        },
    );
    let summary = run_with_sigterm(&server)?;
    Ok(format!(
        "serve drained cleanly: admitted {} completed {} shed {} rejected {} \
         client_gone {} reloads {}\nlatency p50 {:.2} ms p99 {:.2} ms, throughput {:.1} req/s\n",
        summary.admitted,
        summary.completed,
        summary.shed,
        summary.rejected,
        summary.client_gone,
        summary.reloads,
        summary.p50_ms,
        summary.p99_ms,
        summary.throughput_rps,
    ))
}

/// `mpass engine-report`: human summary of one or more engine metrics
/// files written next to `results/*.json` by the experiment runners. A
/// directory argument is treated as a campaign directory (the kind
/// `mpass campaign coordinate` produces): per-shard progress,
/// reassignment counts and — once merged — the merged metrics summary.
pub fn cmd_engine_report(paths: &[&String]) -> CliResult {
    if paths.is_empty() {
        return Err(
            "engine-report requires at least one METRICS.json path or campaign directory"
                .to_owned(),
        );
    }
    let mut out = String::new();
    for path in paths {
        let p = Path::new(path.as_str());
        if p.is_dir() {
            let status = mpass_experiments::orchestrator::campaign_status(p)?;
            out.push_str(&mpass_experiments::orchestrator::render_status(&status));
            let merged = p.join("merged.metrics.json");
            if merged.exists() {
                out.push_str(&mpass_engine::MetricsFile::load(&merged)?.summary());
            }
        } else {
            out.push_str(&mpass_engine::MetricsFile::load(p)?.summary());
        }
    }
    Ok(out)
}

/// The worker command prefix campaign subcommands hand to the
/// coordinator: this very binary, re-entered through `campaign work`.
fn self_worker_cmd() -> Result<Vec<String>, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    Ok(vec![exe.to_string_lossy().into_owned(), "campaign".to_owned(), "work".to_owned()])
}

/// Parse `--kill SPAWN:AFTER[,SPAWN:AFTER...]` into a schedule.
fn parse_kill_schedule(value: &str) -> Result<Vec<mpass_experiments::orchestrator::KillPoint>, String> {
    value
        .split(',')
        .filter(|part| !part.is_empty())
        .map(|part| {
            let (spawn, after) = part
                .split_once(':')
                .ok_or_else(|| format!("--kill wants SPAWN:AFTER pairs, got {part:?}"))?;
            Ok(mpass_experiments::orchestrator::KillPoint {
                spawn_index: spawn
                    .parse()
                    .map_err(|_| format!("--kill: bad spawn index {spawn:?}"))?,
                after_records: after
                    .parse()
                    .map_err(|_| format!("--kill: bad record count {after:?}"))?,
            })
        })
        .collect()
}

/// `mpass campaign`: distributed campaign orchestration — coordinator,
/// worker, live status, and the process-fault matrix harness.
pub fn cmd_campaign(args: &[String]) -> CliResult {
    use mpass_experiments::orchestrator::{
        self, CampaignKind, CoordinatorOptions, FaultMatrixOptions, Manifest,
    };
    use mpass_experiments::WorldConfig;
    use std::time::Duration;

    let sub = args.first().map(|s| s.as_str()).unwrap_or("");
    let rest = args.get(1..).unwrap_or_default();
    let has = |name: &str| rest.iter().any(|a| a == name);
    let ms = |name: &str, default: u64| -> u64 {
        flag(rest, name).and_then(|s| s.parse().ok()).unwrap_or(default)
    };
    match sub {
        "coordinate" => {
            let dir = flag(rest, "--dir").ok_or("campaign coordinate requires --dir DIR")?;
            let kind = match flag(rest, "--kind").unwrap_or("offline") {
                "offline" => CampaignKind::Offline,
                "commercial" => CampaignKind::Commercial,
                other => return Err(format!("unknown --kind {other:?} (offline|commercial)")),
            };
            let mut config = if has("--full") { WorldConfig::full() } else { WorldConfig::quick() };
            if let Some(n) = flag(rest, "--samples").and_then(|s| s.parse().ok()) {
                config.attack_samples = n;
            }
            if let Some(seed) = flag(rest, "--seed").and_then(|s| s.parse().ok()) {
                config.seed = seed;
            }
            let attacks: Vec<String> = match flag(rest, "--attacks") {
                Some(list) => list.split(',').map(str::to_owned).collect(),
                None => mpass_experiments::offline::ATTACK_NAMES
                    .iter()
                    .map(|a| (*a).to_owned())
                    .collect(),
            };
            let targets = match flag(rest, "--targets") {
                Some(list) => list.split(',').map(str::to_owned).collect(),
                None => kind.default_targets(),
            };
            let faults = flag(rest, "--faults").and_then(|s| s.parse().ok());
            let manifest =
                Manifest::new(kind, config.clone(), config.seed, faults, &attacks, &targets);
            let mut opts = CoordinatorOptions::new(dir, self_worker_cmd()?);
            opts.processes = flag(rest, "--processes").and_then(|s| s.parse().ok()).unwrap_or(2);
            opts.ttl = Duration::from_millis(ms("--ttl-ms", 10_000));
            opts.poll = Duration::from_millis(ms("--poll-ms", 200));
            opts.heartbeat = Duration::from_millis(ms("--heartbeat-ms", 1_000));
            opts.hold = Duration::from_millis(ms("--hold-ms", 0));
            if let Some(schedule) = flag(rest, "--kill") {
                opts.kill_schedule = parse_kill_schedule(schedule)?;
            }
            if let Some(n) = flag(rest, "--max-respawns").and_then(|s| s.parse().ok()) {
                opts.max_respawns = n;
            }
            if let Some(secs) = flag(rest, "--deadline-s").and_then(|s| s.parse().ok()) {
                opts.deadline = Some(Duration::from_secs(secs));
            }
            opts.resume = has("--resume");
            let summary = orchestrator::run_coordinator(&manifest, &opts)?;
            Ok(format!(
                "campaign merged: {} shard(s), {} reassigned, {} respawned, {} spawned\n\
                 report  {}\nmetrics {}\n",
                summary.shards,
                summary.reassigned,
                summary.respawned,
                summary.spawned,
                summary.report_path.display(),
                summary.metrics_path.display(),
            ))
        }
        "work" => {
            let opts = orchestrator::worker_options_from_args(rest)?;
            let summary = orchestrator::run_worker(&opts)?;
            Ok(format!(
                "worker {}: {} shard(s) run, {} failed\n",
                summary.worker_id, summary.shards_run, summary.shards_failed
            ))
        }
        "status" => {
            let dir = flag(rest, "--dir").ok_or("campaign status requires --dir DIR")?;
            let status = orchestrator::campaign_status(Path::new(dir))?;
            Ok(orchestrator::render_status(&status))
        }
        "fault-matrix" => {
            let out = flag(rest, "--out").ok_or("campaign fault-matrix requires --out DIR")?;
            let opts = FaultMatrixOptions {
                out: out.into(),
                seed: flag(rest, "--seed").and_then(|s| s.parse().ok()).unwrap_or(0xFA17),
                kills: flag(rest, "--kills").and_then(|s| s.parse().ok()).unwrap_or(3),
                processes: flag(rest, "--processes").and_then(|s| s.parse().ok()).unwrap_or(2),
                worker_cmd: self_worker_cmd()?,
                samples: flag(rest, "--samples").and_then(|s| s.parse().ok()).unwrap_or(2),
            };
            orchestrator::run_fault_matrix(&opts)
        }
        "" | "help" => Ok(CAMPAIGN_USAGE.to_owned()),
        other => Err(format!("unknown campaign subcommand {other:?}\n\n{CAMPAIGN_USAGE}")),
    }
}

/// Usage text for `mpass campaign`.
pub const CAMPAIGN_USAGE: &str = "\
mpass campaign — distributed campaign orchestration

USAGE:
  mpass campaign coordinate --dir DIR [--kind offline|commercial] [--full]
                 [--samples N] [--seed S] [--faults SEED] [--processes N]
                 [--attacks A,B,..] [--targets T,U,..] [--ttl-ms MS]
                 [--poll-ms MS] [--heartbeat-ms MS] [--hold-ms MS]
                 [--kill SPAWN:AFTER,..] [--max-respawns N] [--deadline-s S]
                 [--resume]
  mpass campaign work --dir DIR [--worker-id ID] [--ttl-ms MS]
                 [--heartbeat-ms MS] [--poll-ms MS] [--hold-ms MS]
                 [--kill-after N]
  mpass campaign status --dir DIR
  mpass campaign fault-matrix --out DIR [--seed S] [--kills N]
                 [--processes N] [--samples N]

The coordinator shards the campaign grid across worker processes via
lease files, reassigns shards of dead workers, and merges the per-shard
journals into a report byte-identical to an uninterrupted run. `work` is
what spawned workers run (also usable by hand on another terminal for
the same --dir). `fault-matrix` sweeps seeded worker kills and checks
merged-vs-baseline byte identity.
";

/// Top-level usage text.
pub const USAGE: &str = "\
mpass — MPass (DAC 2023) reproduction toolkit

USAGE:
  mpass gen --out DIR [--malware N] [--benign N] [--seed S] [--macho-fraction F]
  mpass inspect FILE [--format pe|macho]
  mpass disasm FILE [--section NAME] [--format pe|macho]
  mpass run FILE [--format pe|macho]
  mpass verify ORIGINAL MODIFIED
  mpass pack FILE --packer upx|pespin|aspack --out FILE
  mpass attack FILE --out FILE [--seed S] [--faults SEED] [--format pe|macho]
  mpass score FILE [FILE ...] [--seed S] [--batch N] [--linger-ms MS]
  mpass snapshot --out PATH [--detector malconv|nonneg|malgcg|lightgbm] [--seed S]
  mpass serve --socket PATH [--seed S] [--batch N] [--linger-ms MS] [--queue N]
              [--deadline-ms MS] [--rate R] [--burst B] [--tenant-budget N]
              [--metrics-out PATH] [--snapshot PATH]
  mpass engine-report METRICS.json|CAMPAIGN_DIR [...]
  mpass campaign coordinate|work|status|fault-matrix ... (see mpass campaign help)

Container formats are auto-detected by magic (MZ -> pe, Mach-O magic
family -> macho); --format forces one backend.
";

/// Tiny flag parser: `--name value` pairs after positional arguments.
pub fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

/// Dispatch a parsed command line (everything after the program name).
pub fn dispatch(args: &[String]) -> CliResult {
    let cmd = args.first().map(|s| s.as_str()).unwrap_or("");
    let positional: Vec<&String> =
        args.iter().skip(1).take_while(|a| !a.starts_with("--")).collect();
    let seed = flag(args, "--seed").and_then(|s| s.parse().ok()).unwrap_or(0xDAC2023);
    let format = parse_format_flag(flag(args, "--format"))?;
    match cmd {
        "gen" => {
            let out = flag(args, "--out").ok_or("gen requires --out DIR")?;
            let m = flag(args, "--malware").and_then(|s| s.parse().ok()).unwrap_or(10);
            let b = flag(args, "--benign").and_then(|s| s.parse().ok()).unwrap_or(10);
            let f = flag(args, "--macho-fraction").and_then(|s| s.parse().ok()).unwrap_or(0.0);
            cmd_gen(out, m, b, seed, f)
        }
        "inspect" => cmd_inspect(positional.first().ok_or("inspect requires FILE")?, format),
        "disasm" => cmd_disasm(
            positional.first().ok_or("disasm requires FILE")?,
            flag(args, "--section"),
            format,
        ),
        "run" => cmd_run(positional.first().ok_or("run requires FILE")?, format),
        "verify" => {
            let orig = positional.first().ok_or("verify requires ORIGINAL MODIFIED")?;
            let modified = positional.get(1).ok_or("verify requires ORIGINAL MODIFIED")?;
            cmd_verify(orig, modified)
        }
        "pack" => cmd_pack(
            positional.first().ok_or("pack requires FILE")?,
            flag(args, "--packer").ok_or("pack requires --packer")?,
            flag(args, "--out").ok_or("pack requires --out FILE")?,
        ),
        "attack" => cmd_attack(
            positional.first().ok_or("attack requires FILE")?,
            flag(args, "--out").ok_or("attack requires --out FILE")?,
            seed,
            flag(args, "--faults").and_then(|s| s.parse().ok()),
            format,
        ),
        "score" => cmd_score(
            &positional,
            seed,
            flag(args, "--batch").and_then(|s| s.parse().ok()).unwrap_or(32),
            flag(args, "--linger-ms").and_then(|s| s.parse().ok()).unwrap_or(5),
        ),
        "snapshot" => cmd_snapshot(
            flag(args, "--out").ok_or("snapshot requires --out PATH")?,
            flag(args, "--detector").unwrap_or("malconv"),
            seed,
        ),
        "serve" => cmd_serve(&ServeOptions {
            socket: flag(args, "--socket").ok_or("serve requires --socket PATH")?.into(),
            seed,
            max_batch: flag(args, "--batch").and_then(|s| s.parse().ok()).unwrap_or(32),
            linger_ms: flag(args, "--linger-ms").and_then(|s| s.parse().ok()).unwrap_or(2),
            queue: flag(args, "--queue").and_then(|s| s.parse().ok()).unwrap_or(256),
            deadline_ms: flag(args, "--deadline-ms").and_then(|s| s.parse().ok()).unwrap_or(1_000),
            rate: flag(args, "--rate").and_then(|s| s.parse().ok()).unwrap_or(200.0),
            burst: flag(args, "--burst").and_then(|s| s.parse().ok()).unwrap_or(50),
            tenant_budget: flag(args, "--tenant-budget").and_then(|s| s.parse().ok()),
            metrics_out: flag(args, "--metrics-out").map(Into::into),
            snapshot: flag(args, "--snapshot").map(Into::into),
        }),
        "engine-report" => cmd_engine_report(&positional),
        "campaign" => cmd_campaign(args.get(1..).unwrap_or_default()),
        "" | "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mpass-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn gen_inspect_run_verify_round_trip() {
        let dir = tempdir();
        let out = dir.join("corpus");
        let msg = dispatch(&strings(&[
            "gen",
            "--out",
            out.to_str().unwrap(),
            "--malware",
            "2",
            "--benign",
            "1",
            "--seed",
            "5",
        ]))
        .unwrap();
        assert!(msg.contains("wrote 3 samples"));
        let mal = out.join("mal_0.exe");
        let mal_str = mal.to_str().unwrap();

        let info = dispatch(&strings(&["inspect", mal_str])).unwrap();
        assert!(info.contains(".data"));
        assert!(info.contains("suspicious API invocations"));

        let dis = dispatch(&strings(&["disasm", mal_str])).unwrap();
        assert!(dis.contains("callapi"));

        let run = dispatch(&strings(&["run", mal_str])).unwrap();
        assert!(run.contains("Halted"));
        assert!(run.contains("suspicious calls"));

        let verify = dispatch(&strings(&["verify", mal_str, mal_str])).unwrap();
        assert!(verify.contains("preserved"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pack_produces_functional_output() {
        let dir = tempdir();
        let out = dir.join("c2");
        dispatch(&strings(&["gen", "--out", out.to_str().unwrap(), "--malware", "1", "--benign", "0"]))
            .unwrap();
        let mal = out.join("mal_0.exe");
        let packed = out.join("packed.exe");
        let msg = dispatch(&strings(&[
            "pack",
            mal.to_str().unwrap(),
            "--packer",
            "upx",
            "--out",
            packed.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(msg.contains("packed with UPX"));
        let verify = dispatch(&strings(&[
            "verify",
            mal.to_str().unwrap(),
            packed.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(verify.contains("preserved"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn macho_gen_inspect_disasm_run_round_trip() {
        let dir = tempdir();
        let out = dir.join("macho-corpus");
        let msg = dispatch(&strings(&[
            "gen",
            "--out",
            out.to_str().unwrap(),
            "--malware",
            "2",
            "--benign",
            "1",
            "--seed",
            "3",
            "--macho-fraction",
            "1.0",
        ]))
        .unwrap();
        assert!(msg.contains("wrote 3 samples"));
        let mal = out.join("mal_0.macho");
        let mal_str = mal.to_str().unwrap();
        assert!(mal.exists(), "fraction 1.0 must emit .macho files");

        // Auto-detected by magic: no --format needed.
        let info = dispatch(&strings(&["inspect", mal_str])).unwrap();
        assert!(info.contains("mach-o"), "{info}");
        assert!(info.contains("__data"), "{info}");
        assert!(info.contains("libSystem"), "{info}");

        let dis = dispatch(&strings(&["disasm", mal_str])).unwrap();
        assert!(dis.contains("disassembly of __"), "{dis}");
        assert!(dis.contains("callapi"), "{dis}");

        let run = dispatch(&strings(&["run", mal_str, "--format", "macho"])).unwrap();
        assert!(run.contains("Halted"), "{run}");

        // The explicit override refuses a mismatched backend.
        let forced = dispatch(&strings(&["inspect", mal_str, "--format", "pe"]));
        assert!(forced.is_err(), "Mach-O bytes must not parse as PE");

        // PE-only subcommands fail cleanly instead of mangling the file.
        let packed = out.join("packed.macho");
        let err = dispatch(&strings(&[
            "pack",
            mal_str,
            "--packer",
            "upx",
            "--out",
            packed.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("PE binaries only"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_magic_is_a_typed_refusal() {
        let dir = tempdir();
        let bogus = dir.join("not-a-binary");
        std::fs::write(&bogus, b"#!/bin/sh\necho hello\n").unwrap();
        let err = dispatch(&strings(&["inspect", bogus.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("unknown container magic"), "{err}");
        assert!(err.contains("--format"), "the refusal must mention the override: {err}");
        assert!(dispatch(&strings(&["inspect", bogus.to_str().unwrap(), "--format", "nope"]))
            .unwrap_err()
            .contains("unknown format"));
        std::fs::remove_file(&bogus).ok();
    }

    #[test]
    fn gen_without_fraction_stays_all_pe() {
        let dir = tempdir();
        let out = dir.join("pe-only");
        dispatch(&strings(&["gen", "--out", out.to_str().unwrap(), "--malware", "1", "--benign", "1"]))
            .unwrap();
        assert!(out.join("mal_0.exe").exists());
        assert!(out.join("ben_0.exe").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_command_and_help() {
        assert!(dispatch(&strings(&["bogus"])).is_err());
        assert!(dispatch(&strings(&["help"])).unwrap().contains("USAGE"));
        assert!(dispatch(&[]).unwrap().contains("USAGE"));
    }

    #[test]
    fn flag_parser() {
        let args = strings(&["cmd", "pos", "--out", "x", "--seed", "7"]);
        assert_eq!(flag(&args, "--out"), Some("x"));
        assert_eq!(flag(&args, "--seed"), Some("7"));
        assert_eq!(flag(&args, "--nope"), None);
    }

    #[test]
    fn engine_report_summarizes_metrics_file() {
        use mpass_engine::{metrics, Engine, EngineConfig, MetricsFile, Shard};
        let engine = Engine::new(EngineConfig { workers: 1, seed: 7 });
        let run = engine.run(vec![Shard::new("demo shard", ())], |_ctx, ()| {
            metrics::counter("queries", 3);
        });
        let file = MetricsFile::from_run("cli-test", &run);
        let dir = tempdir();
        let path = dir.join("cli-test.metrics.json");
        file.save(&path).unwrap();
        let out = dispatch(&strings(&["engine-report", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("experiment `cli-test`"));
        assert!(out.contains("demo shard"));
        assert!(out.contains("3 queries"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn score_batches_files_through_the_scheduler() {
        let dir = tempdir();
        let out = dir.join("score-corpus");
        dispatch(&strings(&[
            "gen",
            "--out",
            out.to_str().unwrap(),
            "--malware",
            "2",
            "--benign",
            "1",
            "--seed",
            "9",
        ]))
        .unwrap();
        let mal = out.join("mal_0.exe");
        let ben = out.join("ben_0.exe");
        let msg = dispatch(&strings(&[
            "score",
            mal.to_str().unwrap(),
            ben.to_str().unwrap(),
            "--seed",
            "9",
            "--batch",
            "2",
        ]))
        .unwrap();
        assert!(msg.contains("mal_0.exe: score"), "{msg}");
        assert!(msg.contains("ben_0.exe: score"), "{msg}");
        assert!(dispatch(&strings(&["score"])).is_err());
        std::fs::remove_dir_all(&out).ok();
    }

    #[test]
    fn engine_report_requires_a_path() {
        assert!(dispatch(&strings(&["engine-report"])).is_err());
    }

    #[test]
    fn serve_requires_a_socket() {
        assert!(dispatch(&strings(&["serve"])).is_err());
    }

    #[test]
    fn snapshot_writes_a_loadable_bit_identical_model() {
        let dir = tempdir();
        let path = dir.join("malconv.mpss");
        let msg = dispatch(&strings(&[
            "snapshot",
            "--out",
            path.to_str().unwrap(),
            "--seed",
            "11",
        ]))
        .unwrap();
        assert!(msg.contains("malconv snapshot"), "{msg}");

        // The file decodes into a detector scoring bit-identically to the
        // demo model it captured.
        let snap = mpass_ml::Snapshot::load_file(&path).expect("snapshot decodes");
        let reloaded = mpass_detectors::detector_from_snapshot(&snap).expect("rebuilds");
        let fresh = train_demo_malconv(11);
        for bytes in [&b"MZ\x90\x00"[..], &[0u8; 0][..], &[0x41; 600][..]] {
            assert_eq!(fresh.score(bytes).to_bits(), reloaded.score(bytes).to_bits());
        }

        assert!(dispatch(&strings(&["snapshot"])).is_err(), "--out is required");
        assert!(
            dispatch(&strings(&[
                "snapshot",
                "--out",
                path.to_str().unwrap(),
                "--detector",
                "mystery",
            ]))
            .is_err(),
            "unknown detectors are refused"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_boots_from_a_snapshot_file() {
        use mpass_serve::{Response, ServeClient};
        let dir = tempdir();
        let snap_path = dir.join("serve-model.mpss");
        dispatch(&strings(&["snapshot", "--out", snap_path.to_str().unwrap(), "--seed", "7"]))
            .unwrap();
        let socket = dir.join("serve-snap.sock");
        let daemon = {
            let args = strings(&[
                "serve",
                "--socket",
                socket.to_str().unwrap(),
                "--snapshot",
                snap_path.to_str().unwrap(),
            ]);
            std::thread::spawn(move || dispatch(&args))
        };
        let mut client = ServeClient::connect_retry(&socket, std::time::Duration::from_secs(60))
            .expect("daemon must come up");
        assert!(matches!(client.ping(1).unwrap(), Response::Pong { epoch: 1, .. }));
        match client.score(2, "cli-test", b"MZ\x90\x00", Some(30_000)).unwrap() {
            Response::Score(resp) => assert_eq!(resp.epoch, 1),
            other => panic!("expected a score, got {other:?}"),
        }
        // Reload re-reads the snapshot file instead of retraining.
        assert!(matches!(client.reload(3).unwrap(), Response::Reloaded { epoch: 2, .. }));
        client.shutdown(4).unwrap();
        let msg = daemon.join().unwrap().unwrap();
        assert!(msg.contains("drained cleanly"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_boots_scores_reloads_and_drains() {
        use mpass_serve::{Response, ServeClient};
        let dir = tempdir();
        let out = dir.join("serve-corpus");
        dispatch(&strings(&[
            "gen",
            "--out",
            out.to_str().unwrap(),
            "--malware",
            "1",
            "--benign",
            "1",
            "--seed",
            "9",
        ]))
        .unwrap();
        let mal = std::fs::read(out.join("mal_0.exe")).unwrap();
        let socket = dir.join("serve-test.sock");
        let metrics = dir.join("serve.metrics.json");
        let daemon = {
            let args = strings(&[
                "serve",
                "--socket",
                socket.to_str().unwrap(),
                "--seed",
                "9",
                "--batch",
                "4",
                "--linger-ms",
                "1",
                "--metrics-out",
                metrics.to_str().unwrap(),
            ]);
            std::thread::spawn(move || dispatch(&args))
        };
        let mut client = ServeClient::connect_retry(&socket, std::time::Duration::from_secs(60))
            .expect("daemon must come up");
        assert!(matches!(client.ping(1).unwrap(), Response::Pong { epoch: 1, .. }));
        match client.score(2, "cli-test", &mal, Some(30_000)).unwrap() {
            Response::Score(resp) => assert_eq!(resp.epoch, 1),
            other => panic!("expected a score, got {other:?}"),
        }
        // Hot reload retrains the demo model and bumps the epoch.
        assert!(matches!(client.reload(3).unwrap(), Response::Reloaded { epoch: 2, .. }));
        match client.score(4, "cli-test", &mal, Some(30_000)).unwrap() {
            Response::Score(resp) => assert_eq!(resp.epoch, 2),
            other => panic!("expected a score, got {other:?}"),
        }
        client.shutdown(5).unwrap();
        let msg = daemon.join().unwrap().unwrap();
        assert!(msg.contains("drained cleanly"), "{msg}");
        assert!(msg.contains("admitted 2"), "{msg}");
        assert!(metrics.exists(), "drain must flush the metrics file");
        let report =
            dispatch(&strings(&["engine-report", metrics.to_str().unwrap()])).unwrap();
        assert!(report.contains("serve"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
