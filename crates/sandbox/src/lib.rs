//! # mpass-sandbox — behavioural functionality verification
//!
//! The paper verifies functionality preservation by running original
//! malware and its adversarial examples in a Cuckoo sandbox and comparing
//! their runtime behaviours (API call sequences, §IV-A). This crate is
//! that check over the MVM substrate: [`Sandbox::run`] auto-detects the
//! container format (PE or Mach-O), executes the image and returns its API
//! trace; [`Sandbox::verify_functionality`] compares an original against a
//! modified sample and explains any divergence.
//!
//! ```
//! use mpass_sandbox::{FunctionalityVerdict, Sandbox};
//! use mpass_corpus::{CorpusConfig, Dataset};
//!
//! let ds = Dataset::generate(&CorpusConfig {
//!     n_malware: 1, n_benign: 0, seed: 1, no_slack_fraction: 0.0,
//! });
//! let sandbox = Sandbox::new();
//! let sample = &ds.samples[0];
//! // A sample trivially preserves its own behaviour.
//! assert_eq!(
//!     sandbox.verify_functionality(&sample.bytes, &sample.bytes),
//!     FunctionalityVerdict::Preserved,
//! );
//! ```

use mpass_binary::{BinaryFormat, BinaryImage};
use mpass_pe::PeFile;
use mpass_vm::{Execution, Vm, VmLimits};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Result of comparing a modified sample against its original.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FunctionalityVerdict {
    /// The modified sample runs to completion with an identical API trace.
    Preserved,
    /// The modified sample no longer parses in any supported container
    /// format.
    BrokenParse,
    /// The modified sample crashed, hung or was otherwise terminated
    /// abnormally.
    BrokenExecution {
        /// The abnormal outcome observed.
        outcome: mpass_vm::Outcome,
    },
    /// The modified sample ran but its API trace diverged.
    BrokenBehavior {
        /// Index of the first diverging API event (or the shorter trace's
        /// length when one is a prefix of the other).
        first_divergence: usize,
    },
}

impl FunctionalityVerdict {
    /// True when functionality is preserved.
    pub fn is_preserved(&self) -> bool {
        *self == FunctionalityVerdict::Preserved
    }
}

impl fmt::Display for FunctionalityVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FunctionalityVerdict::Preserved => write!(f, "preserved"),
            FunctionalityVerdict::BrokenParse => write!(f, "broken (unparseable)"),
            FunctionalityVerdict::BrokenExecution { outcome } => {
                write!(f, "broken (execution: {outcome:?})")
            }
            FunctionalityVerdict::BrokenBehavior { first_divergence } => {
                write!(f, "broken (trace diverges at event {first_divergence})")
            }
        }
    }
}

/// The behavioural sandbox.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sandbox {
    limits: VmLimits,
}

impl Sandbox {
    /// Sandbox with the default resource ceilings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sandbox with a custom instruction budget (other ceilings default).
    pub fn with_step_limit(step_limit: u64) -> Self {
        Sandbox { limits: VmLimits { step_limit, ..VmLimits::default() } }
    }

    /// Sandbox with a full custom set of resource ceilings.
    pub fn with_limits(limits: VmLimits) -> Self {
        Sandbox { limits }
    }

    /// The resource ceilings executions run under.
    pub fn limits(&self) -> VmLimits {
        self.limits
    }

    /// Execute a parsed PE and return the full execution record.
    pub fn run_pe(&self, pe: &PeFile) -> Execution {
        Vm::load_with(pe, self.limits).run()
    }

    /// Execute any parsed [`BinaryFormat`] image — the format-neutral twin
    /// of [`Sandbox::run_pe`].
    pub fn run_image(&self, image: &dyn BinaryFormat) -> Execution {
        Vm::load_binary(image, self.limits).run()
    }

    /// Parse and execute raw bytes, auto-detecting the container format.
    /// `None` when the bytes parse in no supported format.
    pub fn run(&self, bytes: &[u8]) -> Option<Execution> {
        match BinaryImage::parse_auto(bytes) {
            // The PE path stays on the inherent loader so its behaviour is
            // bit-for-bit what the PE-only sandbox produced.
            Ok(BinaryImage::Pe(pe)) => Some(self.run_pe(&pe)),
            Ok(image) => Some(self.run_image(&image)),
            Err(_) => None,
        }
    }

    /// Compare a modified sample's behaviour against the original's.
    ///
    /// Behaviour equality is full API-trace equality (API identifier *and*
    /// first argument per event): data corruption that changes what a
    /// sample exfiltrates or encrypts counts as broken even if control flow
    /// survives.
    pub fn verify_functionality(
        &self,
        original: &[u8],
        modified: &[u8],
    ) -> FunctionalityVerdict {
        let Some(orig_exec) = self.run(original) else {
            return FunctionalityVerdict::BrokenParse;
        };
        let Some(mod_exec) = self.run(modified) else {
            return FunctionalityVerdict::BrokenParse;
        };
        if !mod_exec.completed() {
            return FunctionalityVerdict::BrokenExecution { outcome: mod_exec.outcome };
        }
        if orig_exec.trace == mod_exec.trace {
            FunctionalityVerdict::Preserved
        } else {
            let first_divergence = orig_exec
                .trace
                .iter()
                .zip(&mod_exec.trace)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| orig_exec.trace.len().min(mod_exec.trace.len()));
            FunctionalityVerdict::BrokenBehavior { first_divergence }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_corpus::{CorpusConfig, Dataset};

    fn dataset() -> Dataset {
        Dataset::generate(&CorpusConfig {
            n_malware: 6,
            n_benign: 2,
            seed: 77,
            no_slack_fraction: 0.0,
        })
    }

    #[test]
    fn identity_preserves() {
        let ds = dataset();
        let sb = Sandbox::new();
        for s in &ds.samples {
            assert!(sb.verify_functionality(&s.bytes, &s.bytes).is_preserved(), "{}", s.name);
        }
    }

    #[test]
    fn semantics_free_edits_preserve() {
        let ds = dataset();
        let sb = Sandbox::new();
        let s = &ds.samples[0];
        let mut pe = s.pe().unwrap().clone();
        pe.set_timestamp(0xDEAD_BEEF);
        pe.append_overlay(&[1, 2, 3, 4]);
        assert!(sb.verify_functionality(&s.bytes, &pe.to_bytes()).is_preserved());
    }

    #[test]
    fn code_corruption_is_caught() {
        let ds = dataset();
        let sb = Sandbox::new();
        let s = &ds.samples[0];
        let mut pe = s.pe().unwrap().clone();
        // Trash the first instructions.
        let sec = pe.sections_mut().iter_mut().find(|s| s.header().characteristics.is_code()).unwrap();
        for b in sec.data_mut().iter_mut().take(64) {
            *b = 0xEE;
        }
        let verdict = sb.verify_functionality(&s.bytes, &pe.to_bytes());
        assert!(!verdict.is_preserved(), "got {verdict}");
    }

    #[test]
    fn data_corruption_changes_behavior() {
        let ds = dataset();
        let sb = Sandbox::new();
        // Find a sample whose trace actually depends on data (all malware
        // samples load some API args from .data).
        let mut caught = 0;
        for s in ds.malware() {
            let mut pe = s.pe().unwrap().clone();
            let sec = pe.section_mut(".data").unwrap();
            for b in sec.data_mut().iter_mut().take(128) {
                *b = b.wrapping_add(0x5A);
            }
            let verdict = sb.verify_functionality(&s.bytes, &pe.to_bytes());
            if matches!(verdict, FunctionalityVerdict::BrokenBehavior { .. }) {
                caught += 1;
            }
        }
        assert!(caught >= 3, "data corruption detected in only {caught}/6 samples");
    }

    #[test]
    fn unparseable_modified_is_broken_parse() {
        let ds = dataset();
        let sb = Sandbox::new();
        let s = &ds.samples[0];
        assert_eq!(
            sb.verify_functionality(&s.bytes, &[0u8; 64]),
            FunctionalityVerdict::BrokenParse
        );
    }

    #[test]
    fn hang_is_broken_execution() {
        let ds = dataset();
        let s = &ds.samples[0];
        let mut pe = s.pe().unwrap().clone();
        // Overwrite entry with a tight infinite loop: jmp -8.
        let entry = pe.entry_point();
        let jmp = mpass_vm::Instr::Jmp(-8).encode();
        pe.write_virtual(entry, &jmp).unwrap();
        let sb = Sandbox::with_step_limit(10_000);
        assert!(matches!(
            sb.verify_functionality(&s.bytes, &pe.to_bytes()),
            FunctionalityVerdict::BrokenExecution { outcome: mpass_vm::Outcome::StepLimit }
        ));
    }

    #[test]
    fn resource_exhaustion_is_broken_execution() {
        let ds = dataset();
        let s = &ds.samples[0];
        // A 64-byte memory ceiling stops any real image from mapping; the
        // exhaustion surfaces as a graceful broken-execution verdict.
        let sb = Sandbox::with_limits(VmLimits { memory_limit: 64, ..VmLimits::default() });
        assert!(matches!(
            sb.verify_functionality(&s.bytes, &s.bytes),
            FunctionalityVerdict::BrokenExecution {
                outcome: mpass_vm::Outcome::ResourceExhausted(mpass_vm::Resource::Memory)
            }
        ));
    }

    #[test]
    fn divergence_index_reported() {
        let ds = dataset();
        let sb = Sandbox::new();
        let a = &ds.samples[0];
        let b = &ds.samples[1];
        // Different samples almost surely diverge.
        let verdict = sb.verify_functionality(&a.bytes, &b.bytes);
        assert!(matches!(verdict, FunctionalityVerdict::BrokenBehavior { .. }));
    }
}
