//! # mpass-sandbox — behavioural functionality verification
//!
//! The paper verifies functionality preservation by running original
//! malware and its adversarial examples in a Cuckoo sandbox and comparing
//! their runtime behaviours (API call sequences, §IV-A). This crate is
//! that check over the MVM substrate: [`Sandbox::execute`] auto-detects
//! the container format (PE or Mach-O), executes the image and returns its
//! API trace; [`Sandbox::verify_functionality`] compares an original
//! against a modified sample and explains any divergence.
//!
//! At campaign scale the same original is compared against many candidate
//! modifications, so the validation surface is split in two:
//! [`Sandbox::baseline_digest`] runs the original *once* and captures a
//! [`Baseline`] (reference trace + [`TraceDigest`]), and
//! [`Sandbox::verify_candidate`] / [`Sandbox::validate_batch`] replay each
//! candidate against it with a [`ComparingSink`](mpass_vm::ComparingSink),
//! which aborts execution at the first divergent API event instead of
//! running broken candidates to the step limit.
//!
//! ```
//! use mpass_sandbox::{FunctionalityVerdict, Sandbox};
//! use mpass_corpus::{CorpusConfig, Dataset};
//!
//! let ds = Dataset::generate(&CorpusConfig {
//!     n_malware: 1, n_benign: 0, seed: 1, no_slack_fraction: 0.0,
//! });
//! let sandbox = Sandbox::new();
//! let sample = &ds.samples[0];
//! // Baseline once, validate many candidates against it.
//! let baseline = sandbox.baseline_digest(&sample.bytes).unwrap();
//! let verdicts = sandbox.validate_batch(&baseline, &[&sample.bytes, &sample.bytes]);
//! assert!(verdicts.iter().all(FunctionalityVerdict::is_preserved));
//! ```

use mpass_binary::{BinaryError, BinaryFormat, BinaryImage};
use mpass_pe::PeFile;
use mpass_vm::{
    ComparingSink, Execution, Outcome, ReferenceTrace, RunSummary, TraceDigest, TraceSink, Vm,
    VmLimits,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why the sandbox could not execute a byte string.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SandboxError {
    /// The bytes parse in no supported container format; the underlying
    /// parse failure is preserved.
    Unparseable(BinaryError),
}

impl fmt::Display for SandboxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SandboxError::Unparseable(e) => write!(f, "sample does not parse: {e}"),
        }
    }
}

impl std::error::Error for SandboxError {}

/// Result of comparing a modified sample against its original.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FunctionalityVerdict {
    /// The modified sample runs to completion with an identical API trace.
    Preserved,
    /// The modified sample no longer parses in any supported container
    /// format.
    BrokenParse,
    /// The modified sample crashed, hung or was otherwise terminated
    /// abnormally.
    BrokenExecution {
        /// The abnormal outcome observed.
        outcome: mpass_vm::Outcome,
    },
    /// The modified sample ran but its API trace diverged.
    BrokenBehavior {
        /// Index of the first diverging API event (or the shorter trace's
        /// length when one is a prefix of the other).
        first_divergence: usize,
    },
}

impl FunctionalityVerdict {
    /// True when functionality is preserved.
    pub fn is_preserved(&self) -> bool {
        *self == FunctionalityVerdict::Preserved
    }
}

impl fmt::Display for FunctionalityVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FunctionalityVerdict::Preserved => write!(f, "preserved"),
            FunctionalityVerdict::BrokenParse => write!(f, "broken (unparseable)"),
            FunctionalityVerdict::BrokenExecution { outcome } => {
                write!(f, "broken (execution: {outcome:?})")
            }
            FunctionalityVerdict::BrokenBehavior { first_divergence } => {
                write!(f, "broken (trace diverges at event {first_divergence})")
            }
        }
    }
}

/// The original sample's behaviour, captured once and reused across every
/// candidate derived from it.
///
/// Produced by [`Sandbox::baseline_digest`]. Holds the reference API trace
/// (needed for [`ComparingSink`]'s event-level early abort) together with
/// its streaming [`TraceDigest`], plus the original's own outcome — the
/// sandbox deliberately does *not* require the original to complete, only
/// that candidates reproduce whatever behaviour it exhibited.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Baseline {
    reference: ReferenceTrace,
    outcome: Outcome,
    steps: u64,
}

impl Baseline {
    /// The streaming digest of the original's API trace.
    pub fn digest(&self) -> TraceDigest {
        self.reference.digest()
    }

    /// The materialized reference trace candidates are compared against.
    pub fn reference(&self) -> &ReferenceTrace {
        &self.reference
    }

    /// How the original itself terminated.
    pub fn outcome(&self) -> Outcome {
        self.outcome
    }

    /// Instructions the original executed.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

/// The behavioural sandbox.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sandbox {
    limits: VmLimits,
}

impl Sandbox {
    /// Sandbox with the default resource ceilings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sandbox with a custom instruction budget (other ceilings default).
    pub fn with_step_limit(step_limit: u64) -> Self {
        Sandbox { limits: VmLimits { step_limit, ..VmLimits::default() } }
    }

    /// Sandbox with a full custom set of resource ceilings.
    pub fn with_limits(limits: VmLimits) -> Self {
        Sandbox { limits }
    }

    /// The resource ceilings executions run under.
    pub fn limits(&self) -> VmLimits {
        self.limits
    }

    /// Execute a parsed PE and return the full execution record.
    pub fn run_pe(&self, pe: &PeFile) -> Execution {
        Vm::load_with(pe, self.limits).run()
    }

    /// Execute any parsed [`BinaryFormat`] image — the format-neutral twin
    /// of [`Sandbox::run_pe`].
    pub fn run_image(&self, image: &dyn BinaryFormat) -> Execution {
        Vm::load_binary(image, self.limits).run()
    }

    /// Parse and execute raw bytes, auto-detecting the container format.
    /// [`SandboxError::Unparseable`] preserves the parse failure reason
    /// when the bytes fit no supported format.
    pub fn execute(&self, bytes: &[u8]) -> Result<Execution, SandboxError> {
        match BinaryImage::parse_auto(bytes) {
            // The PE path stays on the inherent loader so its behaviour is
            // bit-for-bit what the PE-only sandbox produced.
            Ok(BinaryImage::Pe(pe)) => Ok(self.run_pe(&pe)),
            Ok(image) => Ok(self.run_image(&image)),
            Err(e) => Err(SandboxError::Unparseable(e)),
        }
    }

    /// Parse and execute raw bytes, discarding the parse failure reason.
    #[deprecated(note = "use Sandbox::execute, which preserves the parse failure reason")]
    pub fn run(&self, bytes: &[u8]) -> Option<Execution> {
        self.execute(bytes).ok()
    }

    /// Parse and execute raw bytes, driving `sink` with every API event
    /// instead of materializing a trace vector.
    pub fn execute_with_sink<S: TraceSink>(
        &self,
        bytes: &[u8],
        sink: &mut S,
    ) -> Result<RunSummary, SandboxError> {
        match BinaryImage::parse_auto(bytes) {
            Ok(BinaryImage::Pe(pe)) => {
                Ok(Vm::load_with(&pe, self.limits).run_with_sink(sink))
            }
            Ok(image) => Ok(Vm::load_binary(&image, self.limits).run_with_sink(sink)),
            Err(e) => Err(SandboxError::Unparseable(e)),
        }
    }

    /// Run the original sample once and capture its behaviour as a
    /// [`Baseline`] for reuse across all of the sample's candidates.
    pub fn baseline_digest(&self, sample: &[u8]) -> Result<Baseline, SandboxError> {
        let exec = self.execute(sample)?;
        Ok(Baseline {
            outcome: exec.outcome,
            steps: exec.steps,
            reference: ReferenceTrace::from_trace(exec.trace),
        })
    }

    /// Compare one candidate's behaviour against a captured [`Baseline`].
    ///
    /// The candidate runs under a [`ComparingSink`], so a divergent
    /// candidate is aborted at its first wrong API event rather than
    /// executed to the step limit — O(1) comparison memory and fail-fast
    /// wall clock for broken adversarial examples.
    pub fn verify_candidate(&self, baseline: &Baseline, candidate: &[u8]) -> FunctionalityVerdict {
        let mut sink = ComparingSink::new(&baseline.reference);
        let run = match self.execute_with_sink(candidate, &mut sink) {
            Ok(run) => run,
            Err(_) => return FunctionalityVerdict::BrokenParse,
        };
        match run.outcome {
            // The sink aborted: a concrete event mismatched the reference.
            Outcome::Aborted => FunctionalityVerdict::BrokenBehavior {
                first_divergence: sink.first_divergence().unwrap_or(sink.matched()),
            },
            Outcome::Halted => {
                if sink.matches() {
                    FunctionalityVerdict::Preserved
                } else {
                    // Completed but emitted only a proper prefix of the
                    // reference trace.
                    FunctionalityVerdict::BrokenBehavior { first_divergence: sink.matched() }
                }
            }
            outcome => FunctionalityVerdict::BrokenExecution { outcome },
        }
    }

    /// Validate a batch of candidates against one [`Baseline`] — the entry
    /// point the engine shard pool feeds. Verdicts are returned in input
    /// order.
    pub fn validate_batch(
        &self,
        baseline: &Baseline,
        candidates: &[&[u8]],
    ) -> Vec<FunctionalityVerdict> {
        candidates.iter().map(|c| self.verify_candidate(baseline, c)).collect()
    }

    /// Compare a modified sample's behaviour against the original's.
    ///
    /// Behaviour equality is full API-trace equality (API identifier *and*
    /// first argument per event): data corruption that changes what a
    /// sample exfiltrates or encrypts counts as broken even if control flow
    /// survives. Internally this is [`Sandbox::baseline_digest`] +
    /// [`Sandbox::verify_candidate`]; when checking many candidates of one
    /// original, capture the baseline once and use
    /// [`Sandbox::validate_batch`] instead.
    pub fn verify_functionality(
        &self,
        original: &[u8],
        modified: &[u8],
    ) -> FunctionalityVerdict {
        let Ok(baseline) = self.baseline_digest(original) else {
            return FunctionalityVerdict::BrokenParse;
        };
        self.verify_candidate(&baseline, modified)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_corpus::{CorpusConfig, Dataset};

    fn dataset() -> Dataset {
        Dataset::generate(&CorpusConfig {
            n_malware: 6,
            n_benign: 2,
            seed: 77,
            no_slack_fraction: 0.0,
        })
    }

    #[test]
    fn identity_preserves() {
        let ds = dataset();
        let sb = Sandbox::new();
        for s in &ds.samples {
            assert!(sb.verify_functionality(&s.bytes, &s.bytes).is_preserved(), "{}", s.name);
        }
    }

    #[test]
    fn semantics_free_edits_preserve() {
        let ds = dataset();
        let sb = Sandbox::new();
        let s = &ds.samples[0];
        let mut pe = s.pe().unwrap().clone();
        pe.set_timestamp(0xDEAD_BEEF);
        pe.append_overlay(&[1, 2, 3, 4]);
        assert!(sb.verify_functionality(&s.bytes, &pe.to_bytes()).is_preserved());
    }

    #[test]
    fn code_corruption_is_caught() {
        let ds = dataset();
        let sb = Sandbox::new();
        let s = &ds.samples[0];
        let mut pe = s.pe().unwrap().clone();
        // Trash the first instructions.
        let sec = pe.sections_mut().iter_mut().find(|s| s.header().characteristics.is_code()).unwrap();
        for b in sec.data_mut().iter_mut().take(64) {
            *b = 0xEE;
        }
        let verdict = sb.verify_functionality(&s.bytes, &pe.to_bytes());
        assert!(!verdict.is_preserved(), "got {verdict}");
    }

    #[test]
    fn data_corruption_changes_behavior() {
        let ds = dataset();
        let sb = Sandbox::new();
        // Find a sample whose trace actually depends on data (all malware
        // samples load some API args from .data).
        let mut caught = 0;
        for s in ds.malware() {
            let mut pe = s.pe().unwrap().clone();
            let sec = pe.section_mut(".data").unwrap();
            for b in sec.data_mut().iter_mut().take(128) {
                *b = b.wrapping_add(0x5A);
            }
            let verdict = sb.verify_functionality(&s.bytes, &pe.to_bytes());
            if matches!(verdict, FunctionalityVerdict::BrokenBehavior { .. }) {
                caught += 1;
            }
        }
        assert!(caught >= 3, "data corruption detected in only {caught}/6 samples");
    }

    #[test]
    fn unparseable_modified_is_broken_parse() {
        let ds = dataset();
        let sb = Sandbox::new();
        let s = &ds.samples[0];
        assert_eq!(
            sb.verify_functionality(&s.bytes, &[0u8; 64]),
            FunctionalityVerdict::BrokenParse
        );
    }

    #[test]
    fn hang_is_broken_execution() {
        let ds = dataset();
        let s = &ds.samples[0];
        let mut pe = s.pe().unwrap().clone();
        // Overwrite entry with a tight infinite loop: jmp -8.
        let entry = pe.entry_point();
        let jmp = mpass_vm::Instr::Jmp(-8).encode();
        pe.write_virtual(entry, &jmp).unwrap();
        let sb = Sandbox::with_step_limit(10_000);
        assert!(matches!(
            sb.verify_functionality(&s.bytes, &pe.to_bytes()),
            FunctionalityVerdict::BrokenExecution { outcome: mpass_vm::Outcome::StepLimit }
        ));
    }

    #[test]
    fn resource_exhaustion_is_broken_execution() {
        let ds = dataset();
        let s = &ds.samples[0];
        // A 64-byte memory ceiling stops any real image from mapping; the
        // exhaustion surfaces as a graceful broken-execution verdict.
        let sb = Sandbox::with_limits(VmLimits { memory_limit: 64, ..VmLimits::default() });
        assert!(matches!(
            sb.verify_functionality(&s.bytes, &s.bytes),
            FunctionalityVerdict::BrokenExecution {
                outcome: mpass_vm::Outcome::ResourceExhausted(mpass_vm::Resource::Memory)
            }
        ));
    }

    #[test]
    fn divergence_index_reported() {
        let ds = dataset();
        let sb = Sandbox::new();
        let a = &ds.samples[0];
        let b = &ds.samples[1];
        // Different samples almost surely diverge.
        let verdict = sb.verify_functionality(&a.bytes, &b.bytes);
        assert!(matches!(verdict, FunctionalityVerdict::BrokenBehavior { .. }));
    }

    #[test]
    fn execute_preserves_parse_reason() {
        let sb = Sandbox::new();
        let err = sb.execute(&[0u8; 64]).unwrap_err();
        let SandboxError::Unparseable(inner) = &err;
        assert_eq!(format!("sample does not parse: {inner}"), err.to_string());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_run_shim_matches_execute() {
        let ds = dataset();
        let sb = Sandbox::new();
        let s = &ds.samples[0];
        assert_eq!(sb.run(&s.bytes), sb.execute(&s.bytes).ok());
        assert_eq!(sb.run(&[0u8; 64]), None);
    }

    /// Pre-redesign digests of the seed-77 corpus, captured when the
    /// recording path and the sink path were verified byte-identical. Any
    /// drift in `Vm::run` trace semantics or the digest format trips this.
    #[test]
    fn recording_trace_golden_regression() {
        let ds = dataset();
        let sb = Sandbox::new();
        let golden: [(usize, u64, u64); 3] = [
            (0, 0x24a3_63a5_aae0_8450, 9),
            (1, 0x6b76_de6a_5291_485a, 6),
            (2, 0xcbac_0221_5b77_9a89, 7),
        ];
        for (i, hash, events) in golden {
            let baseline = sb.baseline_digest(&ds.samples[i].bytes).unwrap();
            assert_eq!(baseline.digest().hash, hash, "sample {i} digest drifted");
            assert_eq!(baseline.digest().events, events, "sample {i} event count drifted");
            // The digest of the materialized trace equals the streamed one.
            let exec = sb.execute(&ds.samples[i].bytes).unwrap();
            assert_eq!(exec.trace.len() as u64, events);
            assert_eq!(exec.digest(), baseline.digest());
        }
    }

    /// The pre-redesign vector-comparison algorithm, kept verbatim as the
    /// reference the digest path must agree with.
    fn verify_vector(sb: &Sandbox, original: &[u8], modified: &[u8]) -> FunctionalityVerdict {
        let Ok(orig_exec) = sb.execute(original) else {
            return FunctionalityVerdict::BrokenParse;
        };
        let Ok(mod_exec) = sb.execute(modified) else {
            return FunctionalityVerdict::BrokenParse;
        };
        if !mod_exec.completed() {
            return FunctionalityVerdict::BrokenExecution { outcome: mod_exec.outcome };
        }
        if orig_exec.trace == mod_exec.trace {
            FunctionalityVerdict::Preserved
        } else {
            let first_divergence = orig_exec
                .trace
                .iter()
                .zip(&mod_exec.trace)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| orig_exec.trace.len().min(mod_exec.trace.len()));
            FunctionalityVerdict::BrokenBehavior { first_divergence }
        }
    }

    /// Corpus of executions used by the agreement / digest property tests:
    /// every sample plus seeded data-corrupted variants of each.
    fn corpus_with_mutants() -> Vec<Vec<u8>> {
        use rand::{Rng, SeedableRng};
        let ds = dataset();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xD1_6E57);
        let mut out: Vec<Vec<u8>> = ds.samples.iter().map(|s| s.bytes.clone()).collect();
        for s in &ds.samples {
            let mut pe = s.pe().unwrap().clone();
            if let Some(sec) = pe.section_mut(".data") {
                let n = sec.data_mut().len().min(96);
                for b in sec.data_mut().iter_mut().take(n) {
                    *b ^= rng.gen_range(0..=255u32) as u8;
                }
            }
            out.push(pe.to_bytes());
        }
        out
    }

    #[test]
    fn digest_verify_agrees_with_vector_comparison() {
        let sb = Sandbox::new();
        let corpus = corpus_with_mutants();
        for original in &corpus {
            for modified in &corpus {
                let old = verify_vector(&sb, original, modified);
                let new = sb.verify_functionality(original, modified);
                assert_eq!(
                    old.is_preserved(),
                    new.is_preserved(),
                    "preservation disagreement: old={old:?} new={new:?}"
                );
                // When the candidate completes, the digest path reproduces
                // the vector path's verdict exactly, divergence index
                // included; early abort can only relabel non-completing
                // divergent candidates.
                if sb.execute(modified).map(|e| e.completed()).unwrap_or(false) {
                    assert_eq!(old, new, "verdict disagreement on completing candidate");
                }
            }
        }
    }

    #[test]
    fn digest_equality_iff_trace_equality() {
        let sb = Sandbox::new();
        let execs: Vec<Execution> = corpus_with_mutants()
            .iter()
            .filter_map(|bytes| sb.execute(bytes).ok())
            .collect();
        assert!(execs.len() >= 8);
        for a in &execs {
            for b in &execs {
                assert_eq!(
                    a.digest() == b.digest(),
                    a.trace == b.trace,
                    "digest/trace equality mismatch"
                );
            }
        }
    }

    #[test]
    fn comparing_sink_aborts_with_fewer_steps_than_full_run() {
        let ds = dataset();
        let sb = Sandbox::new();
        let a = &ds.samples[0];
        let b = &ds.samples[1];
        let full = sb.execute(&b.bytes).unwrap();
        let baseline = sb.baseline_digest(&a.bytes).unwrap();
        let mut sink = ComparingSink::new(baseline.reference());
        let run = sb.execute_with_sink(&b.bytes, &mut sink).unwrap();
        assert_eq!(run.outcome, Outcome::Aborted);
        assert!(sink.first_divergence().is_some());
        assert!(
            run.steps < full.steps,
            "early abort ({}) should execute fewer steps than the full run ({})",
            run.steps,
            full.steps
        );
    }

    #[test]
    fn validate_batch_returns_verdicts_in_order() {
        let ds = dataset();
        let sb = Sandbox::new();
        let a = &ds.samples[0];
        let b = &ds.samples[1];
        let baseline = sb.baseline_digest(&a.bytes).unwrap();
        let garbage = [0u8; 64];
        let verdicts =
            sb.validate_batch(&baseline, &[&a.bytes, &b.bytes, &garbage, &a.bytes]);
        assert_eq!(verdicts.len(), 4);
        assert!(verdicts[0].is_preserved());
        assert!(matches!(verdicts[1], FunctionalityVerdict::BrokenBehavior { .. }));
        assert_eq!(verdicts[2], FunctionalityVerdict::BrokenParse);
        assert!(verdicts[3].is_preserved());
        // Batch agrees with the one-shot surface.
        assert_eq!(verdicts[1], sb.verify_functionality(&a.bytes, &b.bytes));
    }
}
