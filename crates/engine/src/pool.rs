//! Work-stealing shard pool with deterministic per-shard RNG seeding.
//!
//! An experiment is split into **shards** — one attack campaign against
//! one target, say — and the pool runs each shard closure exactly once
//! on a scoped worker thread. Two properties make this the campaign
//! execution substrate for every experiment runner:
//!
//! * **Determinism.** Each shard's RNG is seeded from
//!   `mix(engine seed, fnv1a(shard label))`, never from thread identity
//!   or scheduling order, so results are bit-identical whether the pool
//!   runs with 1 worker or 16.
//! * **Observability.** A fresh [`metrics::Collector`] is installed
//!   around each shard closure; anything the shard (or code it calls
//!   into) records through the metrics facade comes back as one
//!   [`ShardMetrics`] per shard, in input order.
//! * **Panic isolation.** A panicking shard closure is caught with
//!   `catch_unwind` and recorded as a [`ShardFailure`]; the campaign
//!   completes with every other shard's result intact instead of
//!   aborting wholesale.
//!
//! Scheduling is per-worker deques with stealing: shards are dealt
//! round-robin, each worker drains its own deque from the front and
//! steals from the back of others when idle. With coarse shards this
//! keeps long campaigns (MPass vs the hardest target) from serializing
//! behind a static partition.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::metrics::{self, Collector, ShardMetrics};

/// Pool configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker thread count; `0` means one per available CPU.
    pub workers: usize,
    /// Base seed mixed into every shard's RNG.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { workers: 0, seed: 0x004D_5061_7373 } // "MPass"
    }
}

/// One unit of work: a label (which also keys the RNG) plus its input.
#[derive(Clone, Debug)]
pub struct Shard<T> {
    pub label: String,
    pub item: T,
}

impl<T> Shard<T> {
    pub fn new(label: impl Into<String>, item: T) -> Self {
        Shard { label: label.into(), item }
    }
}

/// Per-shard execution context handed to the shard closure.
pub struct ShardCtx {
    /// Deterministically seeded from the engine seed and shard label.
    pub rng: ChaCha8Rng,
    label: String,
}

impl ShardCtx {
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// A shard whose closure panicked. The campaign keeps going; the panic
/// is recorded here (and in the metrics sink) instead of propagating.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardFailure {
    /// The shard's position in the input shard list.
    pub index: usize,
    /// The shard's label.
    pub label: String,
    /// The panic payload, if it was a string (the overwhelmingly common
    /// case); otherwise a placeholder.
    pub panic: String,
}

/// The outcome of [`Engine::run`]: results and metrics in input order.
///
/// `results` holds the output of every shard that completed;
/// `failures` the shards whose closure panicked. `shard_metrics` always
/// covers *all* shards in input order — a failed shard still reports
/// whatever it recorded before panicking, plus an `engine/shard_panic`
/// counter.
#[derive(Debug)]
pub struct EngineRun<R> {
    pub results: Vec<R>,
    /// Shards that panicked instead of producing a result.
    pub failures: Vec<ShardFailure>,
    pub shard_metrics: Vec<ShardMetrics>,
    /// Wall-clock milliseconds for the whole pool run.
    pub wall_ms: f64,
    /// Worker threads actually used.
    pub workers: usize,
    /// The engine seed the run was keyed on.
    pub seed: u64,
}

impl<R> EngineRun<R> {
    /// Whether every shard produced a result.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The shard pool itself. Cheap to construct; threads live only for the
/// duration of each [`Engine::run`] call.
#[derive(Clone, Debug, Default)]
pub struct Engine {
    config: EngineConfig,
}

struct Task<T> {
    index: usize,
    label: String,
    item: T,
}

impl Engine {
    pub fn new(config: EngineConfig) -> Self {
        Engine { config }
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Worker count for a run over `shard_count` shards.
    pub fn workers_for(&self, shard_count: usize) -> usize {
        let available = if self.config.workers > 0 {
            self.config.workers
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        };
        available.clamp(1, shard_count.max(1))
    }

    /// The RNG seed a given shard label resolves to under this engine.
    pub fn shard_seed(&self, label: &str) -> u64 {
        shard_seed(self.config.seed, label)
    }

    /// Run `work` once per shard across the worker pool. Results come
    /// back in input order regardless of completion order. A panic in a
    /// shard closure is caught and isolated: the shard is reported in
    /// [`EngineRun::failures`] (with an `engine/shard_panic` metrics
    /// counter) and every other shard's result survives.
    pub fn run<T, R, F>(&self, shards: Vec<Shard<T>>, work: F) -> EngineRun<R>
    where
        T: Send,
        R: Send,
        F: Fn(&mut ShardCtx, T) -> R + Sync,
    {
        let shard_count = shards.len();
        let workers = self.workers_for(shard_count);
        let started = Instant::now();

        // Deal shards round-robin into per-worker deques.
        let queues: Vec<Mutex<VecDeque<Task<T>>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (index, shard) in shards.into_iter().enumerate() {
            queues[index % workers]
                .lock()
                .expect("queue lock")
                .push_back(Task { index, label: shard.label, item: shard.item });
        }

        type Slot<R> = Mutex<Option<(Result<R, String>, ShardMetrics)>>;
        let slots: Vec<Slot<R>> = (0..shard_count).map(|_| Mutex::new(None)).collect();

        let seed = self.config.seed;
        let queues = &queues;
        let slots = &slots;
        let work = &work;
        std::thread::scope(|scope| {
            for me in 0..workers {
                scope.spawn(move || {
                    while let Some(task) = claim_task(queues, me) {
                        let mut ctx = ShardCtx {
                            rng: ChaCha8Rng::seed_from_u64(shard_seed(seed, &task.label)),
                            label: task.label,
                        };
                        let previous = metrics::install(Collector::default());
                        let shard_started = Instant::now();
                        // AssertUnwindSafe: on panic the closure's
                        // captures are only read by the *caller* (world,
                        // journal), never resumed by this shard, and the
                        // shard's own partial state dies with the slot.
                        let outcome =
                            catch_unwind(AssertUnwindSafe(|| work(&mut ctx, task.item)))
                                .map_err(|payload| {
                                    // Recorded while this shard's
                                    // collector is still installed.
                                    metrics::counter("engine/shard_panic", 1);
                                    panic_message(payload.as_ref())
                                });
                        let wall_ms = shard_started.elapsed().as_secs_f64() * 1e3;
                        let collector = metrics::take().unwrap_or_default();
                        if let Some(previous) = previous {
                            metrics::install(previous);
                        }
                        *slots[task.index].lock().expect("slot lock") =
                            Some((outcome, collector.finish(ctx.label, wall_ms)));
                    }
                });
            }
        });

        let mut results = Vec::with_capacity(shard_count);
        let mut failures = Vec::new();
        let mut shard_metrics = Vec::with_capacity(shard_count);
        for (index, slot) in slots.iter().enumerate() {
            let (outcome, metrics) = slot
                .lock()
                .expect("slot lock")
                .take()
                .expect("every shard produces a result");
            match outcome {
                Ok(result) => results.push(result),
                Err(panic) => {
                    failures.push(ShardFailure { index, label: metrics.label.clone(), panic })
                }
            }
            shard_metrics.push(metrics);
        }
        EngineRun {
            results,
            failures,
            shard_metrics,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            workers,
            seed,
        }
    }
}

/// Extract a printable message from a caught panic payload. `panic!`
/// with a literal yields `&str`; with a format string, `String`.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Pop from our own deque's front, or steal from the back of another
/// worker's deque. `None` only once every deque is empty, which (since
/// no shard enqueues new work) means the run is complete.
fn claim_task<T>(queues: &[Mutex<VecDeque<Task<T>>>], me: usize) -> Option<Task<T>> {
    if let Some(task) = queues[me].lock().expect("queue lock").pop_front() {
        return Some(task);
    }
    let n = queues.len();
    for offset in 1..n {
        let victim = (me + offset) % n;
        if let Some(task) = queues[victim].lock().expect("queue lock").pop_back() {
            return Some(task);
        }
    }
    None
}

/// Mix the engine seed with an FNV-1a hash of the shard label through a
/// SplitMix64 finalizer. Labels, not queue positions, key the stream, so
/// reordering or re-sharding an experiment never perturbs other shards.
fn shard_seed(seed: u64, label: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = seed ^ h;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn campaign(labels: &[&str], workers: usize) -> Vec<Vec<u32>> {
        let engine = Engine::new(EngineConfig { workers, seed: 42 });
        let shards: Vec<Shard<usize>> =
            labels.iter().enumerate().map(|(i, l)| Shard::new(*l, i)).collect();
        engine
            .run(shards, |ctx, _item| (0..8).map(|_| ctx.rng.gen::<u32>()).collect())
            .results
    }

    #[test]
    fn results_are_identical_across_worker_counts() {
        let labels = ["a", "b", "c", "d", "e", "f", "g"];
        let single = campaign(&labels, 1);
        for workers in [2, 3, 8] {
            assert_eq!(campaign(&labels, workers), single, "workers={workers}");
        }
    }

    #[test]
    fn results_come_back_in_input_order() {
        let engine = Engine::new(EngineConfig { workers: 4, seed: 1 });
        let shards: Vec<Shard<usize>> =
            (0..16).map(|i| Shard::new(format!("shard{i}"), i)).collect();
        let run = engine.run(shards, |_ctx, item| item * 10);
        assert_eq!(run.results, (0..16).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(run.shard_metrics.len(), 16);
        assert_eq!(run.shard_metrics[3].label, "shard3");
    }

    #[test]
    fn shard_rng_depends_on_label_not_position() {
        let engine = Engine::new(EngineConfig { workers: 2, seed: 9 });
        let draw = |labels: &[&str]| -> Vec<u64> {
            let shards: Vec<Shard<()>> =
                labels.iter().map(|l| Shard::new(*l, ())).collect();
            engine.run(shards, |ctx, ()| ctx.rng.gen::<u64>()).results
        };
        let forward = draw(&["x", "y"]);
        let reversed = draw(&["y", "x"]);
        assert_eq!(forward[0], reversed[1]);
        assert_eq!(forward[1], reversed[0]);
        // Distinct labels get distinct streams.
        assert_ne!(forward[0], forward[1]);
    }

    #[test]
    fn metrics_are_collected_per_shard() {
        let engine = Engine::new(EngineConfig { workers: 3, seed: 7 });
        let shards: Vec<Shard<u64>> =
            (0..6u64).map(|i| Shard::new(format!("s{i}"), i)).collect();
        let run = engine.run(shards, |_ctx, item| {
            metrics::begin_sample("only");
            metrics::counter("queries", item + 1);
            metrics::end_sample();
            item
        });
        for (i, shard) in run.shard_metrics.iter().enumerate() {
            assert_eq!(shard.counters["queries"], i as u64 + 1);
            assert_eq!(shard.samples.len(), 1);
        }
    }

    #[test]
    fn panicking_shard_is_isolated() {
        let engine = Engine::new(EngineConfig { workers: 4, seed: 3 });
        let shards: Vec<Shard<usize>> =
            (0..6).map(|i| Shard::new(format!("s{i}"), i)).collect();
        let run = engine.run(shards, |_ctx, item| {
            metrics::counter("work", 1);
            if item == 2 {
                panic!("shard {item} blew up");
            }
            item * 10
        });
        // Every other shard's result survives, in input order.
        assert_eq!(run.results, vec![0, 10, 30, 40, 50]);
        assert!(!run.is_complete());
        assert_eq!(run.failures.len(), 1);
        let failure = &run.failures[0];
        assert_eq!(failure.index, 2);
        assert_eq!(failure.label, "s2");
        assert_eq!(failure.panic, "shard 2 blew up");
        // Metrics still cover all shards; the failed one carries the
        // panic counter plus whatever it recorded before dying.
        assert_eq!(run.shard_metrics.len(), 6);
        assert_eq!(run.shard_metrics[2].counters["engine/shard_panic"], 1);
        assert_eq!(run.shard_metrics[2].counters["work"], 1);
        assert!(!run.shard_metrics[0].counters.contains_key("engine/shard_panic"));
    }

    #[test]
    fn all_shards_panicking_still_completes() {
        let engine = Engine::new(EngineConfig { workers: 2, seed: 3 });
        let shards: Vec<Shard<()>> =
            (0..3).map(|i| Shard::new(format!("p{i}"), ())).collect();
        let run: EngineRun<u8> = engine.run(shards, |_ctx, ()| panic!("down"));
        assert!(run.results.is_empty());
        assert_eq!(run.failures.len(), 3);
        assert_eq!(run.shard_metrics.len(), 3);
    }

    #[test]
    fn empty_shard_list_is_a_no_op() {
        let engine = Engine::default();
        let run = engine.run(Vec::<Shard<()>>::new(), |_ctx, ()| 0u8);
        assert!(run.results.is_empty());
        assert!(run.shard_metrics.is_empty());
    }

    #[test]
    fn worker_count_resolution() {
        let auto = Engine::new(EngineConfig { workers: 0, seed: 0 });
        assert!(auto.workers_for(100) >= 1);
        let fixed = Engine::new(EngineConfig { workers: 8, seed: 0 });
        assert_eq!(fixed.workers_for(3), 3);
        assert_eq!(fixed.workers_for(100), 8);
        assert_eq!(fixed.workers_for(0), 1);
    }
}
