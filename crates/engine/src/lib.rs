//! # mpass-engine
//!
//! Shared execution and observability layer for the MPass reproduction.
//! Every experiment runner drives its attack campaigns through one
//! [`Engine`]: a work-stealing, shard-parallel thread pool whose
//! per-shard RNG streams are keyed on shard *labels*, making campaign
//! results bit-identical across worker counts.
//!
//! Around the pool sit three supporting pieces:
//!
//! * [`metrics`] — a zero-dependency tracing facade (spans, counters,
//!   series) that instrumented code calls unconditionally; the pool
//!   installs a collector per shard, everything else is a no-op.
//! * [`QueryBudget`] — the first-class oracle-query allowance shared by
//!   `HardLabelTarget` and the metrics sink.
//! * [`fault`] — the fault model for unreliable oracle channels: the
//!   [`OracleFault`]/[`QueryError`] taxonomy, [`RetryPolicy`] backoff,
//!   and the query-counted [`CircuitBreaker`].
//! * [`MetricsFile`] — the JSON schema written next to each runner's
//!   `results/*.json` and summarized by `mpass engine-report`.
//! * [`BatchScheduler`] — cross-shard coalescing of single-item scoring
//!   requests into detector-level batches under a size/deadline
//!   [`BatchPolicy`].

pub mod batch;
pub mod budget;
pub mod fault;
pub mod metrics;
pub mod pool;
pub mod sink;

pub use batch::{BatchPolicy, BatchScheduler, SubmitError};
pub use budget::{QueryBudget, QueryBudgetExhausted};
pub use fault::{CircuitBreaker, OracleFault, QueryError, RetryPolicy};
pub use metrics::{Collector, SampleMetrics, ShardMetrics, TimingSummary};
pub use pool::{Engine, EngineConfig, EngineRun, Shard, ShardCtx, ShardFailure};
pub use sink::{metrics_path, EngineInfo, MetricsFile};
