//! Cross-shard batch coalescing for detector-level scoring.
//!
//! Engine shards produce candidates one at a time (each attack round
//! yields one query), but the detectors underneath them score far cheaper
//! per item when handed a whole batch (`Detector::score_batch` amortizes
//! embedding scratch, feature buffers, and pad-window work). The
//! [`BatchScheduler`] sits between the two: shards submit individual
//! items and block for their result, while a flush policy coalesces
//! everything pending across shards into one batched scorer call.
//!
//! ## Flush policy
//!
//! A batch is flushed when either trigger fires:
//!
//! * **size** — the pending queue reaches [`BatchPolicy::max_batch`], or
//! * **deadline** — the oldest pending item has waited
//!   [`BatchPolicy::max_delay`].
//!
//! The submitting thread whose item trips a trigger becomes the *leader*:
//! it drains the queue, runs the scorer closure outside the lock, and
//! wakes every waiter whose result arrived. Items that arrive while a
//! flush is in flight queue up for the next one — nothing is lost and
//! nothing is scored twice. A lone submitter therefore pays at most
//! `max_delay` latency; a saturated pool pays none, because the size
//! trigger fires first.
//!
//! Flush sizes are recorded to the `engine/batch_flush` counter and
//! `engine/batch_size` series, so the metrics file shows how well a
//! campaign's traffic coalesced.

use crate::metrics as trace;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// When to flush pending items into a scorer call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush as soon as this many items are pending.
    pub max_batch: usize,
    /// Flush when the oldest pending item has waited this long.
    pub max_delay: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy { max_batch: 32, max_delay: Duration::from_millis(2) }
    }
}

struct SchedState<T, R> {
    /// Tickets waiting to be scored, in arrival order.
    pending: Vec<(u64, T)>,
    /// Results keyed by ticket, claimed by their submitter.
    results: HashMap<u64, R>,
    next_ticket: u64,
    /// Whether a leader is currently running the scorer.
    flushing: bool,
}

/// Coalesces items submitted from many threads into batched scorer calls.
///
/// `score` receives the drained batch in arrival order and must return
/// one result per item, in the same order. [`BatchScheduler::submit`]
/// blocks the calling thread until its item's result is available —
/// semantically it behaves exactly like calling the scorer on a
/// single-item batch, which is what makes the scheduler transparent to
/// shard code.
pub struct BatchScheduler<'s, T, R> {
    #[allow(clippy::type_complexity)]
    score: Box<dyn Fn(&[T]) -> Vec<R> + Send + Sync + 's>,
    policy: BatchPolicy,
    state: Mutex<SchedState<T, R>>,
    cond: Condvar,
}

impl<'s, T: Send, R: Send> BatchScheduler<'s, T, R> {
    /// A scheduler flushing per `policy` into `score`.
    pub fn new<F>(policy: BatchPolicy, score: F) -> Self
    where
        F: Fn(&[T]) -> Vec<R> + Send + Sync + 's,
    {
        BatchScheduler {
            score: Box::new(score),
            policy,
            state: Mutex::new(SchedState {
                pending: Vec::new(),
                results: HashMap::new(),
                next_ticket: 0,
                flushing: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Submit one item and block until its result is available.
    pub fn submit(&self, item: T) -> R {
        let deadline = Instant::now() + self.policy.max_delay;
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.pending.push((ticket, item));
        loop {
            if let Some(result) = state.results.remove(&ticket) {
                return result;
            }
            let item_pending = state.pending.iter().any(|(t, _)| *t == ticket);
            if item_pending && !state.flushing {
                let size_trip = state.pending.len() >= self.policy.max_batch;
                let deadline_trip = Instant::now() >= deadline;
                if size_trip || deadline_trip {
                    state = self.flush_locked(state);
                    continue;
                }
            }
            // Wait for a leader to deliver, or for our deadline to make
            // us the leader. While a flush is in flight the leader's
            // notify_all will wake us; cap the wait either way so a
            // deadline trip is never missed.
            let wait = deadline
                .saturating_duration_since(Instant::now())
                .max(Duration::from_micros(100));
            let (next, _) =
                self.cond.wait_timeout(state, wait).unwrap_or_else(|p| p.into_inner());
            state = next;
        }
    }

    /// Flush everything currently pending, regardless of policy. Useful at
    /// shutdown so stragglers don't wait out their deadline.
    pub fn flush(&self) {
        let state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if state.pending.is_empty() || state.flushing {
            return;
        }
        drop(self.flush_locked(state));
    }

    /// Drain the queue and run the scorer outside the lock; the caller
    /// becomes the leader. Returns the re-acquired guard.
    fn flush_locked<'g>(
        &'g self,
        mut state: std::sync::MutexGuard<'g, SchedState<T, R>>,
    ) -> std::sync::MutexGuard<'g, SchedState<T, R>> {
        state.flushing = true;
        let batch = std::mem::take(&mut state.pending);
        drop(state);
        let (tickets, items): (Vec<u64>, Vec<T>) = batch.into_iter().unzip();
        let results = (self.score)(&items);
        debug_assert_eq!(results.len(), tickets.len(), "scorer must be 1:1");
        trace::counter("engine/batch_flush", 1);
        trace::series("engine/batch_size", tickets.len() as f64);
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        for (ticket, result) in tickets.into_iter().zip(results) {
            state.results.insert(ticket, result);
        }
        state.flushing = false;
        self.cond.notify_all();
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_match_items_across_threads() {
        let calls = AtomicUsize::new(0);
        let sched = BatchScheduler::new(
            BatchPolicy { max_batch: 8, max_delay: Duration::from_millis(5) },
            |items: &[u32]| {
                calls.fetch_add(1, Ordering::SeqCst);
                items.iter().map(|&i| i * 10).collect()
            },
        );
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..32u32)
                .map(|i| {
                    let sched = &sched;
                    scope.spawn(move || (i, sched.submit(i)))
                })
                .collect();
            for h in handles {
                let (i, r) = h.join().expect("submitter panicked");
                assert_eq!(r, i * 10, "item {i} got someone else's result");
            }
        });
        let n = calls.load(Ordering::SeqCst);
        assert!(n >= 1, "scorer never ran");
        assert!(n <= 32, "more flushes than items");
    }

    #[test]
    fn size_trigger_coalesces_a_full_batch() {
        let max_seen = Mutex::new(0usize);
        let sched = BatchScheduler::new(
            // A deadline far beyond the test's runtime: only the size
            // trigger can flush, so all items must coalesce.
            BatchPolicy { max_batch: 4, max_delay: Duration::from_secs(30) },
            |items: &[usize]| {
                let mut max = max_seen.lock().unwrap();
                *max = (*max).max(items.len());
                items.to_vec()
            },
        );
        std::thread::scope(|scope| {
            for i in 0..4 {
                let sched = &sched;
                scope.spawn(move || assert_eq!(sched.submit(i), i));
            }
        });
        assert_eq!(*max_seen.lock().unwrap(), 4, "size trigger never saw a full batch");
    }

    #[test]
    fn deadline_trigger_serves_a_lone_submitter() {
        let sched = BatchScheduler::new(
            BatchPolicy { max_batch: 1024, max_delay: Duration::from_millis(1) },
            |items: &[u8]| items.iter().map(|&b| b as u16 + 1).collect(),
        );
        // Nobody else is submitting: only the deadline can flush this.
        assert_eq!(sched.submit(41), 42);
    }

    #[test]
    fn explicit_flush_drains_pending() {
        let sched = BatchScheduler::new(
            BatchPolicy { max_batch: 1024, max_delay: Duration::from_secs(30) },
            |items: &[u8]| items.to_vec(),
        );
        std::thread::scope(|scope| {
            let sched = &sched;
            let h = scope.spawn(move || sched.submit(7));
            // Wait until the submitter has enqueued, then force the flush
            // it would otherwise wait 30 s for.
            loop {
                {
                    let state = sched.state.lock().unwrap();
                    if !state.pending.is_empty() {
                        break;
                    }
                }
                std::thread::yield_now();
            }
            sched.flush();
            assert_eq!(h.join().expect("submitter panicked"), 7);
        });
    }
}
