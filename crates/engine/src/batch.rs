//! Cross-shard batch coalescing for detector-level scoring.
//!
//! Engine shards produce candidates one at a time (each attack round
//! yields one query), but the detectors underneath them score far cheaper
//! per item when handed a whole batch (`Detector::score_batch` amortizes
//! embedding scratch, feature buffers, and pad-window work). The
//! [`BatchScheduler`] sits between the two: shards submit individual
//! items and block for their result, while a flush policy coalesces
//! everything pending across shards into one batched scorer call.
//!
//! ## Flush policy
//!
//! A batch is flushed when either trigger fires:
//!
//! * **size** — the pending queue reaches [`BatchPolicy::max_batch`], or
//! * **deadline** — the oldest pending item has waited
//!   [`BatchPolicy::max_delay`].
//!
//! The submitting thread whose item trips a trigger becomes the *leader*:
//! it drains the queue, runs the scorer closure outside the lock, and
//! wakes every waiter whose result arrived. Items that arrive while a
//! flush is in flight queue up for the next one — nothing is lost and
//! nothing is scored twice. A lone submitter therefore pays at most
//! `max_delay` latency; a saturated pool pays none, because the size
//! trigger fires first.
//!
//! ## Overload behaviour
//!
//! Long-lived services ([`mpass serve`]) need the scheduler to *refuse*
//! work rather than queue it without bound, and to *shed* work that has
//! already missed its latency target rather than burn scorer time on an
//! answer nobody is waiting for. [`BatchScheduler::try_submit`] provides
//! both:
//!
//! * the pending queue is bounded by [`BatchPolicy::queue_capacity`] —
//!   a submission against a full queue fails immediately with
//!   [`SubmitError::QueueFull`] and is never enqueued, keeping the
//!   latency of *admitted* items bounded instead of collapsing under
//!   overload, and
//! * each item may carry a deadline — an item whose deadline passes
//!   while it waits is shed **before scoring** (dropped from the batch
//!   the leader hands the scorer, or removed by its own waiter), failing
//!   with [`SubmitError::DeadlineExpired`] without costing scorer time.
//!
//! [`BatchScheduler::submit`] keeps its original infallible contract: no
//! deadline, exempt from the capacity bound, blocks until scored.
//!
//! Flush sizes are recorded to the `engine/batch_flush` counter and
//! `engine/batch_size` series; refused and shed items to the
//! `engine/batch_rejected` and `engine/batch_shed` counters, so the
//! metrics file shows how well a campaign's traffic coalesced and how
//! hard a service had to push back.
//!
//! [`mpass serve`]: ../../mpass_serve/index.html

use crate::metrics as trace;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// When to flush pending items into a scorer call, and how much may wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush as soon as this many items are pending.
    pub max_batch: usize,
    /// Flush when the oldest pending item has waited this long.
    pub max_delay: Duration,
    /// Bound on the pending queue enforced by
    /// [`BatchScheduler::try_submit`] (never by the infallible
    /// [`BatchScheduler::submit`]). Defaults to `usize::MAX` — unbounded.
    pub queue_capacity: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            queue_capacity: usize::MAX,
        }
    }
}

/// Why a bounded submission returned no result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The pending queue already holds [`BatchPolicy::queue_capacity`]
    /// items; this item was refused without being enqueued.
    QueueFull {
        /// The capacity that was hit.
        capacity: usize,
    },
    /// The item's deadline passed before a scorer call picked it up; it
    /// was shed without being scored.
    DeadlineExpired,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "batch queue full ({capacity} pending)")
            }
            SubmitError::DeadlineExpired => write!(f, "deadline expired before scoring"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct Pending<T> {
    ticket: u64,
    item: T,
    /// `None` — the item can wait forever (plain `submit`).
    deadline: Option<Instant>,
}

/// What a flush (or a waiter's own deadline check) decided for a ticket.
enum Slot<R> {
    Done(R),
    Shed,
}

struct SchedState<T, R> {
    /// Tickets waiting to be scored, in arrival order.
    pending: Vec<Pending<T>>,
    /// Results keyed by ticket, claimed by their submitter.
    results: HashMap<u64, Slot<R>>,
    next_ticket: u64,
    /// Whether a leader is currently running the scorer.
    flushing: bool,
}

/// Coalesces items submitted from many threads into batched scorer calls.
///
/// `score` receives the drained batch in arrival order and must return
/// one result per item, in the same order. [`BatchScheduler::submit`]
/// blocks the calling thread until its item's result is available —
/// semantically it behaves exactly like calling the scorer on a
/// single-item batch, which is what makes the scheduler transparent to
/// shard code. [`BatchScheduler::try_submit`] adds the bounded-queue and
/// deadline behaviour services need (see the module docs).
pub struct BatchScheduler<'s, T, R> {
    #[allow(clippy::type_complexity)]
    score: Box<dyn Fn(&[T]) -> Vec<R> + Send + Sync + 's>,
    policy: BatchPolicy,
    state: Mutex<SchedState<T, R>>,
    cond: Condvar,
}

impl<'s, T: Send, R: Send> BatchScheduler<'s, T, R> {
    /// A scheduler flushing per `policy` into `score`.
    pub fn new<F>(policy: BatchPolicy, score: F) -> Self
    where
        F: Fn(&[T]) -> Vec<R> + Send + Sync + 's,
    {
        BatchScheduler {
            score: Box::new(score),
            policy,
            state: Mutex::new(SchedState {
                pending: Vec::new(),
                results: HashMap::new(),
                next_ticket: 0,
                flushing: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// The flush policy in force.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Submit one item and block until its result is available. Exempt
    /// from the queue bound and never shed (no deadline).
    pub fn submit(&self, item: T) -> R {
        match self.submit_inner(item, None, false) {
            Ok(result) => result,
            // No deadline and no bound: neither error can occur.
            Err(_) => unreachable!("unbounded submit cannot be refused or shed"),
        }
    }

    /// Submit one item against the queue bound, optionally with a
    /// deadline, and block until it is scored, refused, or shed.
    ///
    /// * Returns [`SubmitError::QueueFull`] immediately — without
    ///   enqueueing — when [`BatchPolicy::queue_capacity`] items are
    ///   already pending.
    /// * Returns [`SubmitError::DeadlineExpired`] when `deadline` passes
    ///   before a scorer call picks the item up. Expired items are shed
    ///   *before scoring*: the leader drops them from the batch it hands
    ///   the scorer, and a waiter that notices its own expiry removes
    ///   itself from the queue. An item the scorer has already been
    ///   handed is always scored and returns `Ok` — shedding never
    ///   discards work the scorer spent time on.
    pub fn try_submit(&self, item: T, deadline: Option<Instant>) -> Result<R, SubmitError> {
        self.submit_inner(item, deadline, true)
    }

    fn submit_inner(
        &self,
        item: T,
        item_deadline: Option<Instant>,
        bounded: bool,
    ) -> Result<R, SubmitError> {
        let flush_deadline = Instant::now() + self.policy.max_delay;
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if bounded && state.pending.len() >= self.policy.queue_capacity {
            trace::counter("engine/batch_rejected", 1);
            return Err(SubmitError::QueueFull { capacity: self.policy.queue_capacity });
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.pending.push(Pending { ticket, item, deadline: item_deadline });
        loop {
            if let Some(slot) = state.results.remove(&ticket) {
                return match slot {
                    Slot::Done(result) => Ok(result),
                    Slot::Shed => Err(SubmitError::DeadlineExpired),
                };
            }
            let item_pending = state.pending.iter().any(|p| p.ticket == ticket);
            if item_pending {
                // Shed ourselves the moment our deadline passes while we
                // still sit in the queue — before any scorer sees us.
                if item_deadline.is_some_and(|d| Instant::now() >= d) {
                    state.pending.retain(|p| p.ticket != ticket);
                    trace::counter("engine/batch_shed", 1);
                    return Err(SubmitError::DeadlineExpired);
                }
                if !state.flushing {
                    let size_trip = state.pending.len() >= self.policy.max_batch;
                    let deadline_trip = Instant::now() >= flush_deadline;
                    if size_trip || deadline_trip {
                        state = self.flush_locked(state);
                        continue;
                    }
                }
            }
            // Wait for a leader to deliver, or for our flush deadline to
            // make us the leader (or our item deadline to shed us). While
            // a flush is in flight the leader's notify_all will wake us;
            // cap the wait either way so no deadline is missed.
            let wake_at = match item_deadline {
                Some(d) => flush_deadline.min(d),
                None => flush_deadline,
            };
            let wait = wake_at
                .saturating_duration_since(Instant::now())
                .max(Duration::from_micros(100));
            let (next, _) =
                self.cond.wait_timeout(state, wait).unwrap_or_else(|p| p.into_inner());
            state = next;
        }
    }

    /// Flush everything currently pending, regardless of policy. Useful at
    /// shutdown so stragglers don't wait out their deadline.
    pub fn flush(&self) {
        let state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if state.pending.is_empty() || state.flushing {
            return;
        }
        drop(self.flush_locked(state));
    }

    /// Drain the queue, shed entries whose deadline already passed, and
    /// run the scorer on the survivors outside the lock; the caller
    /// becomes the leader. Returns the re-acquired guard.
    fn flush_locked<'g>(
        &'g self,
        mut state: std::sync::MutexGuard<'g, SchedState<T, R>>,
    ) -> std::sync::MutexGuard<'g, SchedState<T, R>> {
        state.flushing = true;
        let batch = std::mem::take(&mut state.pending);
        drop(state);
        let now = Instant::now();
        let mut shed: Vec<u64> = Vec::new();
        let mut tickets: Vec<u64> = Vec::with_capacity(batch.len());
        let mut items: Vec<T> = Vec::with_capacity(batch.len());
        for p in batch {
            if p.deadline.is_some_and(|d| now >= d) {
                shed.push(p.ticket);
            } else {
                tickets.push(p.ticket);
                items.push(p.item);
            }
        }
        let results = if items.is_empty() { Vec::new() } else { (self.score)(&items) };
        debug_assert_eq!(results.len(), tickets.len(), "scorer must be 1:1");
        if !shed.is_empty() {
            trace::counter("engine/batch_shed", shed.len() as u64);
        }
        if !tickets.is_empty() {
            trace::counter("engine/batch_flush", 1);
            trace::series("engine/batch_size", tickets.len() as f64);
        }
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        for (ticket, result) in tickets.into_iter().zip(results) {
            state.results.insert(ticket, Slot::Done(result));
        }
        for ticket in shed {
            state.results.insert(ticket, Slot::Shed);
        }
        state.flushing = false;
        self.cond.notify_all();
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_match_items_across_threads() {
        let calls = AtomicUsize::new(0);
        let sched = BatchScheduler::new(
            BatchPolicy {
                max_batch: 8,
                max_delay: Duration::from_millis(5),
                ..BatchPolicy::default()
            },
            |items: &[u32]| {
                calls.fetch_add(1, Ordering::SeqCst);
                items.iter().map(|&i| i * 10).collect()
            },
        );
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..32u32)
                .map(|i| {
                    let sched = &sched;
                    scope.spawn(move || (i, sched.submit(i)))
                })
                .collect();
            for h in handles {
                let (i, r) = h.join().expect("submitter panicked");
                assert_eq!(r, i * 10, "item {i} got someone else's result");
            }
        });
        let n = calls.load(Ordering::SeqCst);
        assert!(n >= 1, "scorer never ran");
        assert!(n <= 32, "more flushes than items");
    }

    #[test]
    fn size_trigger_coalesces_a_full_batch() {
        let max_seen = Mutex::new(0usize);
        let sched = BatchScheduler::new(
            // A deadline far beyond the test's runtime: only the size
            // trigger can flush, so all items must coalesce.
            BatchPolicy {
                max_batch: 4,
                max_delay: Duration::from_secs(30),
                ..BatchPolicy::default()
            },
            |items: &[usize]| {
                let mut max = max_seen.lock().unwrap();
                *max = (*max).max(items.len());
                items.to_vec()
            },
        );
        std::thread::scope(|scope| {
            for i in 0..4 {
                let sched = &sched;
                scope.spawn(move || assert_eq!(sched.submit(i), i));
            }
        });
        assert_eq!(*max_seen.lock().unwrap(), 4, "size trigger never saw a full batch");
    }

    #[test]
    fn deadline_trigger_serves_a_lone_submitter() {
        let sched = BatchScheduler::new(
            BatchPolicy {
                max_batch: 1024,
                max_delay: Duration::from_millis(1),
                ..BatchPolicy::default()
            },
            |items: &[u8]| items.iter().map(|&b| b as u16 + 1).collect(),
        );
        // Nobody else is submitting: only the deadline can flush this.
        assert_eq!(sched.submit(41), 42);
    }

    #[test]
    fn explicit_flush_drains_pending() {
        let sched = BatchScheduler::new(
            BatchPolicy {
                max_batch: 1024,
                max_delay: Duration::from_secs(30),
                ..BatchPolicy::default()
            },
            |items: &[u8]| items.to_vec(),
        );
        std::thread::scope(|scope| {
            let sched = &sched;
            let h = scope.spawn(move || sched.submit(7));
            // Wait until the submitter has enqueued, then force the flush
            // it would otherwise wait 30 s for.
            loop {
                {
                    let state = sched.state.lock().unwrap();
                    if !state.pending.is_empty() {
                        break;
                    }
                }
                std::thread::yield_now();
            }
            sched.flush();
            assert_eq!(h.join().expect("submitter panicked"), 7);
        });
    }

    #[test]
    fn try_submit_refuses_beyond_capacity() {
        // Scorer blocked forever is unnecessary: a 30 s flush delay means
        // nothing drains while we fill the queue from this one thread...
        // except the filler would block too. Fill from helper threads that
        // stay parked in the queue, then overflow from the main thread.
        let sched = BatchScheduler::new(
            BatchPolicy {
                max_batch: 1024,
                max_delay: Duration::from_secs(30),
                queue_capacity: 2,
            },
            |items: &[u8]| items.to_vec(),
        );
        std::thread::scope(|scope| {
            let sched = &sched;
            let parked: Vec<_> = (0..2u8)
                .map(|i| scope.spawn(move || sched.try_submit(i, None)))
                .collect();
            // Wait until both fillers are enqueued.
            loop {
                {
                    let state = sched.state.lock().unwrap();
                    if state.pending.len() == 2 {
                        break;
                    }
                }
                std::thread::yield_now();
            }
            assert_eq!(
                sched.try_submit(9, None),
                Err(SubmitError::QueueFull { capacity: 2 }),
                "third item must be refused, not enqueued"
            );
            // The refusal must not have disturbed the queue.
            assert_eq!(sched.state.lock().unwrap().pending.len(), 2);
            // Plain submit ignores the bound entirely.
            let h = scope.spawn(move || sched.submit(7));
            loop {
                {
                    let state = sched.state.lock().unwrap();
                    if state.pending.len() == 3 {
                        break;
                    }
                }
                std::thread::yield_now();
            }
            sched.flush();
            for p in parked {
                assert!(p.join().unwrap().is_ok());
            }
            assert_eq!(h.join().unwrap(), 7);
        });
    }

    #[test]
    fn expired_items_are_shed_before_scoring() {
        let scored = Mutex::new(Vec::<u8>::new());
        let sched = BatchScheduler::new(
            BatchPolicy {
                max_batch: 1024,
                max_delay: Duration::from_millis(20),
                ..BatchPolicy::default()
            },
            |items: &[u8]| {
                scored.lock().unwrap().extend_from_slice(items);
                items.to_vec()
            },
        );
        // The deadline (now) is already behind the flush delay: the item
        // must come back shed, and the scorer must never see it.
        let result = sched.try_submit(42, Some(Instant::now()));
        assert_eq!(result, Err(SubmitError::DeadlineExpired));
        assert!(scored.lock().unwrap().is_empty(), "shed item reached the scorer");
        // A live deadline scores normally.
        let result = sched.try_submit(7, Some(Instant::now() + Duration::from_secs(5)));
        assert_eq!(result, Ok(7));
        assert_eq!(*scored.lock().unwrap(), vec![7]);
    }

    #[test]
    fn leader_flush_sheds_expired_items_from_a_mixed_batch() {
        let scored = Mutex::new(Vec::<u8>::new());
        let sched = BatchScheduler::new(
            BatchPolicy {
                max_batch: 2,
                max_delay: Duration::from_secs(30),
                ..BatchPolicy::default()
            },
            |items: &[u8]| {
                // Leader's flush runs once the second item arrives; give
                // the first item's deadline time to pass first.
                scored.lock().unwrap().extend_from_slice(items);
                items.to_vec()
            },
        );
        std::thread::scope(|scope| {
            let sched = &sched;
            // Item with a deadline that expires while it waits.
            let doomed = scope.spawn(move || {
                sched.try_submit(1, Some(Instant::now() + Duration::from_millis(10)))
            });
            // Give it time to enqueue and expire.
            std::thread::sleep(Duration::from_millis(30));
            // Second item trips the size trigger; the leader must shed
            // item 1 and score only item 2.
            let ok = scope.spawn(move || sched.submit(2u8));
            assert_eq!(doomed.join().unwrap(), Err(SubmitError::DeadlineExpired));
            assert_eq!(ok.join().unwrap(), 2);
        });
        assert_eq!(*scored.lock().unwrap(), vec![2], "expired item must not be scored");
    }

    #[test]
    fn metrics_count_rejected_and_shed() {
        crate::metrics::install(crate::metrics::Collector::default());
        let sched = BatchScheduler::new(
            BatchPolicy {
                max_batch: 1024,
                max_delay: Duration::from_millis(5),
                queue_capacity: 0,
            },
            |items: &[u8]| items.to_vec(),
        );
        assert!(matches!(
            sched.try_submit(1, None),
            Err(SubmitError::QueueFull { capacity: 0 })
        ));
        drop(sched);
        let sched = BatchScheduler::new(
            BatchPolicy {
                max_batch: 1024,
                max_delay: Duration::from_millis(5),
                ..BatchPolicy::default()
            },
            |items: &[u8]| items.to_vec(),
        );
        assert_eq!(sched.try_submit(2, Some(Instant::now())), Err(SubmitError::DeadlineExpired));
        let shard = crate::metrics::take().unwrap().finish("t", 0.0);
        assert_eq!(shard.counters["engine/batch_rejected"], 1);
        assert_eq!(shard.counters["engine/batch_shed"], 1);
    }

    #[test]
    fn submit_error_displays() {
        assert!(SubmitError::QueueFull { capacity: 8 }.to_string().contains('8'));
        assert!(SubmitError::DeadlineExpired.to_string().contains("deadline"));
    }
}
