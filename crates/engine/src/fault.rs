//! Fault model for unreliable oracle channels.
//!
//! The paper's commercial experiments query real cloud AV services,
//! which time out, rate-limit, and occasionally go dark. This module is
//! the workspace's shared vocabulary for those failure modes:
//!
//! * [`OracleFault`] — what a single *submission attempt* can report.
//! * [`QueryError`] — what a budgeted, retried *query* surfaces to the
//!   attack loop after policy has been applied.
//! * [`RetryPolicy`] — attempt caps, exponential backoff with
//!   deterministic jitter, and circuit-breaker thresholds.
//! * [`CircuitBreaker`] — a per-target breaker whose open/cooldown state
//!   is counted in *queries*, never wall-clock time, so campaigns stay
//!   bit-reproducible under fault injection.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::budget::QueryBudgetExhausted;

/// One failed submission attempt on an oracle channel.
///
/// Faults are attempt-level: the retry loop in `HardLabelTarget::query`
/// decides whether a fault is survivable ([`OracleFault::Transient`],
/// [`OracleFault::RateLimited`]) or terminal ([`OracleFault::Fatal`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OracleFault {
    /// A transient failure (timeout, dropped connection); retryable.
    Transient,
    /// The service shed load and asked the client to come back later.
    RateLimited {
        /// The service's suggested minimum wait before retrying.
        retry_after_ms: u64,
    },
    /// The service is down or rejected the client permanently; no number
    /// of retries will help.
    Fatal,
}

impl OracleFault {
    /// Whether the retry policy may attempt this submission again.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, OracleFault::Fatal)
    }
}

impl fmt::Display for OracleFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleFault::Transient => write!(f, "transient oracle failure"),
            OracleFault::RateLimited { retry_after_ms } => {
                write!(f, "rate limited (retry after {retry_after_ms} ms)")
            }
            OracleFault::Fatal => write!(f, "fatal oracle outage"),
        }
    }
}

impl std::error::Error for OracleFault {}

/// Why a budgeted query returned no verdict.
///
/// This replaces the bare [`QueryBudgetExhausted`] of earlier revisions:
/// exhaustion is still the common case attack loops terminate on, but an
/// unreliable channel can also fail a query outright after retries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The query budget is spent. Delivered verdicts — and only
    /// delivered verdicts — consume budget, so this is exactly the old
    /// `QueryBudgetExhausted` condition.
    BudgetExhausted(QueryBudgetExhausted),
    /// Every attempt allowed by the [`RetryPolicy`] failed transiently.
    Transient {
        /// Submission attempts made before giving up.
        attempts: u32,
    },
    /// The final allowed attempt was still rate-limited.
    RateLimited {
        /// The service's last retry-after hint.
        retry_after_ms: u64,
    },
    /// The channel reported a fatal outage, or the circuit breaker is
    /// open and refused to submit at all.
    Fatal,
    /// The candidate failed pre-submission validation (it does not
    /// re-parse or round-trip as a PE) and was never sent to the oracle;
    /// no budget was consumed.
    InvalidCandidate,
}

impl QueryError {
    /// Whether this error is budget exhaustion (the normal end of an
    /// attack loop) rather than a channel failure.
    pub fn is_budget_exhausted(&self) -> bool {
        matches!(self, QueryError::BudgetExhausted(_))
    }
}

impl From<QueryBudgetExhausted> for QueryError {
    fn from(e: QueryBudgetExhausted) -> Self {
        QueryError::BudgetExhausted(e)
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::BudgetExhausted(e) => e.fmt(f),
            QueryError::Transient { attempts } => {
                write!(f, "query failed transiently after {attempts} attempts")
            }
            QueryError::RateLimited { retry_after_ms } => {
                write!(f, "query rate-limited (last retry-after {retry_after_ms} ms)")
            }
            QueryError::Fatal => write!(f, "oracle channel is down"),
            QueryError::InvalidCandidate => {
                write!(f, "candidate failed adversarial-example validation")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Retry/backoff/breaker configuration for one oracle channel.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Submission attempts per query, including the first (min 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt, in milliseconds.
    pub base_backoff_ms: u64,
    /// Multiplier applied per further attempt.
    pub backoff_multiplier: u32,
    /// Backoff ceiling in milliseconds.
    pub max_backoff_ms: u64,
    /// Consecutive failed *queries* that trip the circuit breaker;
    /// `0` disables the breaker.
    pub breaker_threshold: u32,
    /// Queries refused (fail-fast) while the breaker is open, before a
    /// half-open probe is allowed through.
    pub breaker_cooldown: u32,
    /// Whether to actually sleep through backoff waits. Off by default:
    /// simulated campaigns want the schedule (it is still recorded in
    /// the `oracle/backoff_ms` counter) without the wall-clock cost.
    pub sleep: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 50,
            backoff_multiplier: 2,
            max_backoff_ms: 2_000,
            breaker_threshold: 3,
            breaker_cooldown: 8,
            sleep: false,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and never trips the breaker — the
    /// behaviour of a perfectly reliable channel.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            backoff_multiplier: 1,
            max_backoff_ms: 0,
            breaker_threshold: 0,
            breaker_cooldown: 0,
            sleep: false,
        }
    }

    /// The wait before retry number `attempt` (1 = after the first
    /// failure): exponential growth capped at `max_backoff_ms`, with a
    /// deterministic ±25 % jitter drawn from `(seed, attempt)` so two
    /// runs of the same campaign back off identically.
    pub fn backoff_ms(&self, attempt: u32, seed: u64) -> u64 {
        if self.base_backoff_ms == 0 {
            return 0;
        }
        let factor = u64::from(self.backoff_multiplier.max(1))
            .saturating_pow(attempt.saturating_sub(1).min(32));
        let exp = self.base_backoff_ms.saturating_mul(factor).min(self.max_backoff_ms);
        let quarter = exp / 4;
        if quarter == 0 {
            return exp;
        }
        let jitter = splitmix(seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            % (2 * quarter + 1);
        exp - quarter + jitter
    }
}

/// SplitMix64 finalizer: the workspace's standard bit mixer.
fn splitmix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A per-target circuit breaker counted in queries, not wall-clock.
///
/// After `breaker_threshold` consecutive failed queries the breaker
/// opens: the next `breaker_cooldown` queries fail fast without touching
/// the channel, then one half-open probe is let through. A successful
/// probe closes the breaker; a failed probe re-opens it immediately.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CircuitBreaker {
    consecutive_failures: u32,
    cooldown_remaining: u32,
    times_opened: u64,
}

impl CircuitBreaker {
    /// Whether the next query may reach the channel. While open, each
    /// refused query counts down the cooldown; when it reaches zero the
    /// breaker half-opens and the following query probes the channel.
    pub fn allows(&mut self) -> bool {
        if self.cooldown_remaining > 0 {
            self.cooldown_remaining -= 1;
            return false;
        }
        true
    }

    /// Whether the breaker is currently refusing queries.
    pub fn is_open(&self) -> bool {
        self.cooldown_remaining > 0
    }

    /// How many times the breaker has tripped.
    pub fn times_opened(&self) -> u64 {
        self.times_opened
    }

    /// Record a query that delivered a verdict.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
    }

    /// Record a query that failed after exhausting its retries. The
    /// failure streak is *not* reset when the breaker opens, so a failed
    /// half-open probe re-opens it immediately.
    pub fn record_failure(&mut self, policy: &RetryPolicy) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if policy.breaker_threshold > 0
            && self.consecutive_failures >= policy.breaker_threshold
        {
            self.cooldown_remaining = policy.breaker_cooldown;
            self.times_opened += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy { base_backoff_ms: 100, ..RetryPolicy::default() };
        // Jitter is ±25 %, so nominal 100/200/400 stay in disjoint bands.
        let b1 = policy.backoff_ms(1, 7);
        let b2 = policy.backoff_ms(2, 7);
        let b3 = policy.backoff_ms(3, 7);
        assert!((75..=125).contains(&b1), "{b1}");
        assert!((150..=250).contains(&b2), "{b2}");
        assert!((300..=500).contains(&b3), "{b3}");
        // Far attempts hit the cap (±25 % of 2000).
        let b20 = policy.backoff_ms(20, 7);
        assert!((1_500..=2_500).contains(&b20), "{b20}");
    }

    #[test]
    fn backoff_is_deterministic_in_seed_and_attempt() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff_ms(3, 42), policy.backoff_ms(3, 42));
        // Different attempts draw different jitter (overwhelmingly).
        let draws: Vec<u64> = (1..=2).map(|a| policy.backoff_ms(a, 42)).collect();
        assert_ne!(draws[0], draws[1]);
    }

    #[test]
    fn none_policy_never_waits() {
        let policy = RetryPolicy::none();
        assert_eq!(policy.max_attempts, 1);
        assert_eq!(policy.backoff_ms(1, 9), 0);
        assert_eq!(policy.breaker_threshold, 0);
    }

    #[test]
    fn breaker_opens_after_threshold_and_half_opens() {
        let policy =
            RetryPolicy { breaker_threshold: 2, breaker_cooldown: 3, ..RetryPolicy::default() };
        let mut b = CircuitBreaker::default();
        assert!(b.allows());
        b.record_failure(&policy);
        assert!(b.allows());
        b.record_failure(&policy); // second consecutive failure: trips
        assert!(b.is_open());
        assert_eq!(b.times_opened(), 1);
        // Cooldown: three refused queries...
        assert!(!b.allows());
        assert!(!b.allows());
        assert!(!b.allows());
        // ...then the half-open probe is allowed through.
        assert!(b.allows());
        // A failed probe re-opens immediately (streak not reset).
        b.record_failure(&policy);
        assert!(b.is_open());
        assert_eq!(b.times_opened(), 2);
    }

    #[test]
    fn breaker_closes_on_successful_probe() {
        let policy =
            RetryPolicy { breaker_threshold: 1, breaker_cooldown: 1, ..RetryPolicy::default() };
        let mut b = CircuitBreaker::default();
        b.record_failure(&policy);
        assert!(!b.allows()); // cooldown query
        assert!(b.allows()); // half-open probe
        b.record_success();
        // Closed again: takes a full threshold of failures to re-open.
        assert!(b.allows());
        assert!(!b.is_open());
    }

    #[test]
    fn zero_threshold_disables_breaker() {
        let policy = RetryPolicy { breaker_threshold: 0, ..RetryPolicy::default() };
        let mut b = CircuitBreaker::default();
        for _ in 0..100 {
            b.record_failure(&policy);
            assert!(b.allows());
        }
        assert_eq!(b.times_opened(), 0);
    }

    #[test]
    fn query_error_displays_and_converts() {
        let e: QueryError = QueryBudgetExhausted { limit: 7 }.into();
        assert!(e.is_budget_exhausted());
        assert!(e.to_string().contains('7'));
        assert!(!QueryError::Fatal.is_budget_exhausted());
        assert!(QueryError::Transient { attempts: 3 }.to_string().contains('3'));
        assert!(QueryError::RateLimited { retry_after_ms: 20 }.to_string().contains("20"));
    }

    #[test]
    fn fault_retryability() {
        assert!(OracleFault::Transient.is_retryable());
        assert!(OracleFault::RateLimited { retry_after_ms: 5 }.is_retryable());
        assert!(!OracleFault::Fatal.is_retryable());
    }

    #[test]
    fn fault_serde_round_trip() {
        for fault in [
            OracleFault::Transient,
            OracleFault::RateLimited { retry_after_ms: 33 },
            OracleFault::Fatal,
        ] {
            let text = serde_json::to_string(&fault).unwrap();
            let back: OracleFault = serde_json::from_str(&text).unwrap();
            assert_eq!(back, fault);
        }
    }
}
