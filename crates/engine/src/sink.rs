//! JSON metrics sink: serializes an [`EngineRun`]'s observability data
//! next to the experiment's results file, and renders the human summary
//! behind `mpass engine-report`.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::metrics::ShardMetrics;
use crate::pool::{EngineRun, ShardFailure};

/// Pool facts recorded alongside the per-shard metrics.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineInfo {
    pub workers: usize,
    pub seed: u64,
    pub shards: usize,
}

/// The on-disk schema (see DESIGN.md, "Metrics schema").
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct MetricsFile {
    /// Experiment name, e.g. `"offline"`.
    pub experiment: String,
    pub engine: EngineInfo,
    /// Wall-clock milliseconds of the whole pool run.
    pub wall_ms: f64,
    pub shards: Vec<ShardMetrics>,
    /// Shards whose closure panicked (empty on a clean run).
    pub failures: Vec<ShardFailure>,
}

// Hand-written so metrics files from before the fault layer (no
// `failures` key) still load; the derive treats missing fields as shape
// errors.
impl serde::Deserialize for MetricsFile {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(MetricsFile {
            experiment: serde::Deserialize::from_value(serde::field(value, "experiment")?)?,
            engine: serde::Deserialize::from_value(serde::field(value, "engine")?)?,
            wall_ms: serde::Deserialize::from_value(serde::field(value, "wall_ms")?)?,
            shards: serde::Deserialize::from_value(serde::field(value, "shards")?)?,
            failures: match value.get("failures") {
                Some(v) => serde::Deserialize::from_value(v)?,
                None => Vec::new(),
            },
        })
    }
}

impl MetricsFile {
    /// Capture the metrics side of a finished engine run.
    pub fn from_run<R>(experiment: impl Into<String>, run: &EngineRun<R>) -> Self {
        MetricsFile {
            experiment: experiment.into(),
            engine: EngineInfo {
                workers: run.workers,
                seed: run.seed,
                shards: run.shard_metrics.len(),
            },
            wall_ms: run.wall_ms,
            shards: run.shard_metrics.clone(),
            failures: run.failures.clone(),
        }
    }

    /// Write pretty JSON to `path`, creating parent directories.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let text = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        std::fs::write(path, text)
    }

    /// Parse a metrics file previously written by [`MetricsFile::save`].
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Multi-line human summary: pool shape, per-shard query/timing
    /// breakdown, and experiment-wide stage totals.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "experiment `{}`: {} shards on {} workers (seed {:#x}), wall {:.1} ms\n",
            self.experiment, self.engine.shards, self.engine.workers, self.engine.seed, self.wall_ms
        ));

        let mut total_queries = 0u64;
        let mut stage_totals: std::collections::BTreeMap<String, (u64, f64)> =
            std::collections::BTreeMap::new();
        let mut sample_queries: Vec<u64> = Vec::new();

        for shard in &self.shards {
            let queries = shard.counters.get("queries").copied().unwrap_or(0);
            total_queries += queries;
            out.push_str(&format!(
                "  {}: wall {:.1} ms, {} samples, {} queries\n",
                shard.label,
                shard.wall_ms,
                shard.samples.len(),
                queries
            ));
            // Campaign lifecycle and validation-volume counters are part
            // of the per-shard story (quarantines, AEs digest-validated,
            // digest mismatches); other counters stay aggregate-only.
            for (name, value) in &shard.counters {
                if name.starts_with("campaign/") || name.starts_with("validation/") {
                    out.push_str(&format!("    {name}: {value}\n"));
                }
            }
            for (stage, t) in &shard.timings {
                out.push_str(&format!(
                    "    {}: {} calls, {:.1} ms\n",
                    stage, t.count, t.total_ms
                ));
                let entry = stage_totals.entry(stage.clone()).or_default();
                entry.0 += t.count;
                entry.1 += t.total_ms;
            }
            for (name, values) in &shard.series {
                if let (Some(first), Some(last)) = (values.first(), values.last()) {
                    out.push_str(&format!(
                        "    {}: {} points, {:.4} -> {:.4}\n",
                        name,
                        values.len(),
                        first,
                        last
                    ));
                }
            }
            sample_queries
                .extend(shard.samples.iter().map(|s| {
                    s.counters.get("queries").copied().unwrap_or(0)
                }));
        }

        for failure in &self.failures {
            out.push_str(&format!("  FAILED {}: panicked: {}\n", failure.label, failure.panic));
        }

        out.push_str(&format!("totals: {total_queries} queries"));
        if !sample_queries.is_empty() {
            let mean = sample_queries.iter().sum::<u64>() as f64 / sample_queries.len() as f64;
            let max = sample_queries.iter().max().copied().unwrap_or(0);
            out.push_str(&format!(
                " across {} samples (mean {:.1}/sample, max {})",
                sample_queries.len(),
                mean,
                max
            ));
        }
        out.push('\n');
        for (stage, (count, ms)) in &stage_totals {
            out.push_str(&format!("  stage {stage}: {count} calls, {ms:.1} ms total\n"));
        }
        out
    }
}

/// The conventional sibling path for a results file's metrics: the
/// runner that writes `results/offline.json` writes its metrics to
/// `results/offline.metrics.json`.
pub fn metrics_path(results_path: &Path) -> PathBuf {
    results_path.with_extension("metrics.json")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{self, Collector};
    use crate::pool::{Engine, EngineConfig, Shard};

    fn sample_file() -> MetricsFile {
        metrics::install(Collector::default());
        metrics::begin_sample("mal_0");
        metrics::counter("queries", 12);
        {
            let _span = metrics::span("optimize");
        }
        metrics::end_sample();
        metrics::series("optimize/loss", 0.9);
        metrics::series("optimize/loss", 0.1);
        let shard = metrics::take().unwrap().finish("MPass vs MalConv", 3.25);
        MetricsFile {
            experiment: "offline".into(),
            engine: EngineInfo { workers: 4, seed: 42, shards: 1 },
            wall_ms: 3.5,
            shards: vec![shard],
            failures: Vec::new(),
        }
    }

    #[test]
    fn save_load_round_trip() {
        let file = sample_file();
        let dir = std::env::temp_dir().join("mpass-engine-sink-test");
        let path = dir.join("offline.metrics.json");
        file.save(&path).unwrap();
        let back = MetricsFile::load(&path).unwrap();
        assert_eq!(back, file);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn summary_reports_queries_and_stages() {
        let text = sample_file().summary();
        assert!(text.contains("experiment `offline`"));
        assert!(text.contains("MPass vs MalConv"));
        assert!(text.contains("12 queries"));
        assert!(text.contains("optimize"));
        assert!(text.contains("mean 12.0/sample"));
    }

    #[test]
    fn from_run_captures_pool_shape() {
        let engine = Engine::new(EngineConfig { workers: 2, seed: 5 });
        let shards = vec![Shard::new("a", ()), Shard::new("b", ())];
        let run = engine.run(shards, |_ctx, ()| {
            metrics::counter("queries", 1);
        });
        let file = MetricsFile::from_run("demo", &run);
        assert_eq!(file.engine.shards, 2);
        assert_eq!(file.engine.seed, 5);
        assert_eq!(file.shards[0].label, "a");
        assert_eq!(file.shards[1].counters["queries"], 1);
    }

    #[test]
    fn failures_round_trip_and_summarize() {
        let mut file = sample_file();
        file.failures.push(ShardFailure {
            index: 1,
            label: "RLA vs NonNeg".into(),
            panic: "index out of bounds".into(),
        });
        let text = serde_json::to_string_pretty(&file).unwrap();
        let back: MetricsFile = serde_json::from_str(&text).unwrap();
        assert_eq!(back, file);
        let summary = file.summary();
        assert!(summary.contains("FAILED RLA vs NonNeg"));
        assert!(summary.contains("index out of bounds"));
    }

    #[test]
    fn pre_fault_layer_files_still_load() {
        // A metrics file written before `failures` existed has no such
        // key; loading must default it to empty, not error.
        let legacy = r#"{
            "experiment": "offline",
            "engine": {"workers": 2, "seed": 7, "shards": 0},
            "wall_ms": 1.5,
            "shards": []
        }"#;
        let file: MetricsFile = serde_json::from_str(legacy).unwrap();
        assert_eq!(file.experiment, "offline");
        assert!(file.failures.is_empty());
    }

    #[test]
    fn from_run_records_failures() {
        let engine = Engine::new(EngineConfig { workers: 2, seed: 5 });
        let shards = vec![Shard::new("ok", false), Shard::new("boom", true)];
        let run = engine.run(shards, |_ctx, explode| {
            if explode {
                panic!("boom shard");
            }
        });
        let file = MetricsFile::from_run("demo", &run);
        assert_eq!(file.failures.len(), 1);
        assert_eq!(file.failures[0].label, "boom");
        assert_eq!(file.engine.shards, 2);
    }

    #[test]
    fn metrics_path_is_a_sibling() {
        assert_eq!(
            metrics_path(Path::new("results/offline.json")),
            PathBuf::from("results/offline.metrics.json")
        );
    }
}
