//! Explicit query budgets for hard-label attacks.
//!
//! The paper's threat model gives an attacker a fixed number of oracle
//! queries per sample. Earlier revisions tracked this with a bare
//! counter inside `HardLabelTarget` and signalled exhaustion with
//! `Option::None`, which call sites routinely conflated with "benign
//! verdict missing". [`QueryBudget`] makes the resource first-class:
//! consuming a query either succeeds or returns the typed
//! [`QueryBudgetExhausted`] error, and the spent/limit counters feed the
//! engine metrics sink unchanged.

use std::fmt;

/// A per-sample allowance of detector oracle queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryBudget {
    limit: usize,
    used: usize,
}

impl QueryBudget {
    /// A budget allowing exactly `limit` queries.
    pub fn new(limit: usize) -> Self {
        QueryBudget { limit, used: 0 }
    }

    /// A budget that never exhausts (`usize::MAX` queries).
    pub fn unlimited() -> Self {
        QueryBudget::new(usize::MAX)
    }

    /// Spend one query, or report exhaustion without consuming anything.
    pub fn try_consume(&mut self) -> Result<(), QueryBudgetExhausted> {
        if self.used >= self.limit {
            return Err(QueryBudgetExhausted { limit: self.limit });
        }
        self.used += 1;
        Ok(())
    }

    /// Queries spent so far.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Queries still available.
    pub fn remaining(&self) -> usize {
        self.limit - self.used
    }

    /// The configured allowance.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Whether the next [`QueryBudget::try_consume`] would fail.
    pub fn is_exhausted(&self) -> bool {
        self.used >= self.limit
    }
}

/// Error returned when an attack asks for a query beyond its allowance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryBudgetExhausted {
    /// The allowance that was exceeded.
    pub limit: usize,
}

impl fmt::Display for QueryBudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query budget of {} oracle calls exhausted", self.limit)
    }
}

impl std::error::Error for QueryBudgetExhausted {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_counts_down_then_errors() {
        let mut b = QueryBudget::new(3);
        assert_eq!(b.remaining(), 3);
        for used in 1..=3 {
            assert!(b.try_consume().is_ok());
            assert_eq!(b.used(), used);
        }
        assert!(b.is_exhausted());
        assert_eq!(b.try_consume(), Err(QueryBudgetExhausted { limit: 3 }));
        // A failed consume does not advance the counter.
        assert_eq!(b.used(), 3);
    }

    #[test]
    fn zero_budget_is_immediately_exhausted() {
        let mut b = QueryBudget::new(0);
        assert!(b.is_exhausted());
        assert!(b.try_consume().is_err());
    }

    #[test]
    fn unlimited_budget_never_errors() {
        let mut b = QueryBudget::unlimited();
        for _ in 0..10_000 {
            assert!(b.try_consume().is_ok());
        }
    }
}
