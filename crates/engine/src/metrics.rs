//! Lightweight tracing/metrics facade.
//!
//! Instrumented code (the attack loop, the optimizer, PEM, detector
//! caches) calls the free functions in this module — [`counter`],
//! [`series`], [`span`], [`begin_sample`]/[`end_sample`] — without
//! knowing whether anyone is listening. The engine pool installs a
//! thread-local [`Collector`] around each shard; outside a shard every
//! call is a cheap no-op, so unit tests and library consumers pay
//! nothing.
//!
//! The collector aggregates three primitives:
//!
//! * **counters** — monotonically increasing `u64`s ("queries",
//!   "pem/cache_hit", ...),
//! * **timings** — call count + total wall time per stage, fed by
//!   [`span`] guards,
//! * **series** — ordered `f64` observations (optimizer loss curves).
//!
//! While a sample is active (between `begin_sample` and `end_sample`)
//! counters and timings are *also* attributed to that sample, which is
//! how the sink gets per-sample query counts and per-stage timings.
//! All maps are `BTreeMap`-backed so serialized output is deterministic.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Aggregate wall time spent in one named stage.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TimingSummary {
    /// Number of completed spans.
    pub count: u64,
    /// Total elapsed milliseconds across those spans.
    pub total_ms: f64,
}

/// Metrics attributed to a single sample inside a shard.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleMetrics {
    pub name: String,
    pub counters: BTreeMap<String, u64>,
    pub timings: BTreeMap<String, TimingSummary>,
}

/// Everything one shard recorded: shard-wide aggregates plus the
/// per-sample breakdown.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardMetrics {
    /// The shard label, e.g. `"MPass vs MalConv"`.
    pub label: String,
    /// Wall-clock milliseconds the shard closure ran for.
    pub wall_ms: f64,
    pub counters: BTreeMap<String, u64>,
    pub timings: BTreeMap<String, TimingSummary>,
    pub series: BTreeMap<String, Vec<f64>>,
    pub samples: Vec<SampleMetrics>,
}

/// The mutable recording state installed per worker while a shard runs.
#[derive(Debug, Default)]
pub struct Collector {
    counters: BTreeMap<String, u64>,
    timings: BTreeMap<String, TimingSummary>,
    series: BTreeMap<String, Vec<f64>>,
    samples: Vec<SampleMetrics>,
    current: Option<SampleMetrics>,
}

impl Collector {
    fn add_counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_default() += delta;
        if let Some(sample) = self.current.as_mut() {
            *sample.counters.entry(name.to_owned()).or_default() += delta;
        }
    }

    fn add_timing(&mut self, name: &str, elapsed_ms: f64) {
        let entry = self.timings.entry(name.to_owned()).or_default();
        entry.count += 1;
        entry.total_ms += elapsed_ms;
        if let Some(sample) = self.current.as_mut() {
            let entry = sample.timings.entry(name.to_owned()).or_default();
            entry.count += 1;
            entry.total_ms += elapsed_ms;
        }
    }

    fn push_series(&mut self, name: &str, value: f64) {
        self.series.entry(name.to_owned()).or_default().push(value);
    }

    fn begin_sample(&mut self, name: &str) {
        // An unfinished sample is flushed rather than lost.
        self.end_sample();
        self.current = Some(SampleMetrics { name: name.to_owned(), ..Default::default() });
    }

    fn end_sample(&mut self) {
        if let Some(sample) = self.current.take() {
            self.samples.push(sample);
        }
    }

    /// Seal the collector into the serializable per-shard record.
    pub fn finish(mut self, label: impl Into<String>, wall_ms: f64) -> ShardMetrics {
        self.end_sample();
        ShardMetrics {
            label: label.into(),
            wall_ms,
            counters: self.counters,
            timings: self.timings,
            series: self.series,
            samples: self.samples,
        }
    }
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Install a collector on the current thread, returning whatever was
/// installed before (normally `None`).
pub fn install(collector: Collector) -> Option<Collector> {
    COLLECTOR.with(|slot| slot.borrow_mut().replace(collector))
}

/// Remove and return the current thread's collector, ending recording.
pub fn take() -> Option<Collector> {
    COLLECTOR.with(|slot| slot.borrow_mut().take())
}

/// Whether a collector is currently recording on this thread.
pub fn is_active() -> bool {
    COLLECTOR.with(|slot| slot.borrow().is_some())
}

fn with_collector(f: impl FnOnce(&mut Collector)) {
    COLLECTOR.with(|slot| {
        if let Some(collector) = slot.borrow_mut().as_mut() {
            f(collector);
        }
    });
}

/// Add `delta` to a named counter (shard-wide, and to the active sample
/// if one is open).
pub fn counter(name: &str, delta: u64) {
    with_collector(|c| c.add_counter(name, delta));
}

/// Append one observation to a named series.
pub fn series(name: &str, value: f64) {
    with_collector(|c| c.push_series(name, value));
}

/// Mark the start of work attributed to `name`; closes any still-open
/// sample first.
pub fn begin_sample(name: &str) {
    with_collector(|c| c.begin_sample(name));
}

/// Close the active sample and commit its metrics.
pub fn end_sample() {
    with_collector(Collector::end_sample);
}

/// Time a stage: the returned guard records elapsed wall time into the
/// named timing when dropped. When no collector is installed the guard
/// is inert.
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard { name, start: is_active().then(Instant::now) }
}

/// RAII guard produced by [`span`].
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
            with_collector(|c| c.add_timing(self.name, elapsed_ms));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_is_inert_without_collector() {
        assert!(!is_active());
        counter("queries", 3);
        series("loss", 1.0);
        begin_sample("s");
        drop(span("stage"));
        end_sample();
        assert!(take().is_none());
    }

    #[test]
    fn counters_attribute_to_active_sample() {
        install(Collector::default());
        counter("queries", 1);
        begin_sample("mal_0");
        counter("queries", 4);
        end_sample();
        begin_sample("mal_1");
        counter("queries", 2);
        end_sample();
        let shard = take().unwrap().finish("test", 0.0);
        assert_eq!(shard.counters["queries"], 7);
        assert_eq!(shard.samples.len(), 2);
        assert_eq!(shard.samples[0].name, "mal_0");
        assert_eq!(shard.samples[0].counters["queries"], 4);
        assert_eq!(shard.samples[1].counters["queries"], 2);
    }

    #[test]
    fn spans_record_count_and_time() {
        install(Collector::default());
        for _ in 0..3 {
            let _guard = span("stage/pem");
        }
        let shard = take().unwrap().finish("test", 0.0);
        let t = &shard.timings["stage/pem"];
        assert_eq!(t.count, 3);
        assert!(t.total_ms >= 0.0);
    }

    #[test]
    fn dangling_sample_is_flushed_on_finish() {
        install(Collector::default());
        begin_sample("left_open");
        counter("queries", 1);
        let shard = take().unwrap().finish("test", 1.5);
        assert_eq!(shard.samples.len(), 1);
        assert_eq!(shard.samples[0].name, "left_open");
    }

    #[test]
    fn shard_metrics_round_trip_json() {
        install(Collector::default());
        begin_sample("m0");
        counter("queries", 9);
        drop(span("optimize"));
        end_sample();
        series("optimize/loss", 0.75);
        series("optimize/loss", 0.25);
        let shard = take().unwrap().finish("MPass vs MalConv", 12.5);
        let text = serde_json::to_string_pretty(&shard).unwrap();
        let back: ShardMetrics = serde_json::from_str(&text).unwrap();
        assert_eq!(back, shard);
    }
}
