//! Emit validation-throughput measurements (full-trace vs digest vs
//! early-abort) to `results/BENCH_validate.json`.
//!
//! Functionality validation is the per-candidate cost floor of every
//! campaign: each adversarial candidate must be shown to preserve the
//! original's API trace before it counts. The pre-redesign path ran the
//! *original* again for every candidate, materialized both trace vectors
//! and compared them element-wise. The digest path
//! (`Sandbox::baseline_digest` + `Sandbox::validate_batch`) baselines the
//! original once per sample and replays each candidate under a
//! `ComparingSink` that aborts at the first divergent API event.
//!
//! Three candidate waves isolate where the win comes from:
//!
//! * `preserved-wave` — semantics-free edits (timestamp, overlay): every
//!   candidate runs to completion, so the speedup is pure baseline
//!   amortization (one original execution instead of N),
//! * `diverging-wave` — data-corrupted candidates whose traces diverge:
//!   the comparing sink aborts early instead of running each candidate to
//!   its halt, stacking early-abort on top of amortization,
//! * `mixed-wave` — half and half, the realistic campaign mix.
//!
//! Both paths are timed in the same process over the same bytes, so the
//! reported `speedup` is a machine-independent ratio. `--gate PATH`
//! fails (exit 1) if any wave's speedup regressed more than 20% relative
//! to a committed report — the same regression contract as
//! `bench_serve`.
//!
//! Usage:
//!
//! * `bench_validate` — measure and write `results/BENCH_validate.json`,
//! * `--quick` — fewer repetitions (CI smoke),
//! * `--out PATH` — alternative output path,
//! * `--gate PATH` — fail if a speedup regressed >20% vs the report at
//!   PATH.

use mpass_bench::bench_fixture;
use mpass_sandbox::{FunctionalityVerdict, Sandbox};
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::time::Instant;

/// Full-trace vs digest validation cost for one candidate wave.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ValidateMeasurement {
    /// Wave tag (`preserved-wave`, `diverging-wave`, `mixed-wave`).
    name: String,
    /// Candidates validated per pass.
    candidates: usize,
    /// Pre-redesign path: re-run original + run candidate + compare
    /// trace vectors, microseconds per candidate.
    full_trace_us_per_candidate: f64,
    /// Digest path: baseline once, comparing-sink replay per candidate,
    /// microseconds per candidate.
    digest_us_per_candidate: f64,
    /// `full_trace / digest` (higher means the digest path pays).
    speedup: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ValidateReport {
    /// Human description of the fixture the numbers were taken on.
    fixture: String,
    measurements: Vec<ValidateMeasurement>,
}

const FIXTURE_DESC: &str = "two originals x 48-candidate waves: corpus- rows use bench sample \
     mal_0 (seed 0xBE7C4, parse-dominated); hot- rows use a synthetic 4096-event API loop \
     (execution-dominated, campaign-representative). Waves: preserved (timestamp/overlay \
     edits), diverging (first API event differs), mixed (24/24)";

/// Synthetic execution-dominated original: a loop that emits
/// `HOT_EVENTS` API events before halting, so validation cost is the
/// *run*, not the parse — the regime a real campaign sample sits in.
/// `api` parameterizes the call so a candidate can diverge at event 1
/// while keeping byte length and instruction count identical.
const HOT_EVENTS: i32 = 4096;

fn hot_sample(api: mpass_vm::ApiId) -> Vec<u8> {
    use mpass_vm::{Asm, Instr, Reg};
    let mut asm = Asm::new();
    asm.push(Instr::Movi(Reg::R1, HOT_EVENTS));
    asm.push(Instr::CallApi(api)); // loop body: r0 chains through api_result
    asm.push(Instr::Addi(Reg::R1, -1));
    asm.push(Instr::Jnz(Reg::R1, -24));
    asm.push(Instr::Halt);
    let code = asm.assemble().expect("hot sample assembles");
    let mut pe = mpass_pe::PeBuilder::new();
    pe.add_section(".text", code, mpass_pe::SectionFlags::CODE).expect("section fits");
    pe.set_entry_section(".text", 0).expect("entry resolves");
    pe.build().expect("hot sample builds").to_bytes()
}

/// The pre-redesign validation algorithm, kept verbatim as the timing
/// reference: execute the original *and* the candidate, materialize both
/// trace vectors, compare element-wise.
fn verify_full_trace(sb: &Sandbox, original: &[u8], modified: &[u8]) -> FunctionalityVerdict {
    let Ok(orig_exec) = sb.execute(original) else {
        return FunctionalityVerdict::BrokenParse;
    };
    let Ok(mod_exec) = sb.execute(modified) else {
        return FunctionalityVerdict::BrokenParse;
    };
    if !mod_exec.completed() {
        return FunctionalityVerdict::BrokenExecution { outcome: mod_exec.outcome };
    }
    if orig_exec.trace == mod_exec.trace {
        FunctionalityVerdict::Preserved
    } else {
        let first_divergence = orig_exec
            .trace
            .iter()
            .zip(&mod_exec.trace)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| orig_exec.trace.len().min(mod_exec.trace.len()));
        FunctionalityVerdict::BrokenBehavior { first_divergence }
    }
}

/// A candidate that preserves behaviour: semantics-free header/overlay
/// edits keyed on `i` so every candidate is distinct bytes.
fn preserved_candidate(original: &mpass_pe::PeFile, i: u32) -> Vec<u8> {
    let mut pe = original.clone();
    pe.set_timestamp(0x5EED_0000 ^ i);
    pe.append_overlay(&i.to_le_bytes());
    pe.to_bytes()
}

/// A candidate whose behaviour diverges: corrupt the data section the
/// sample loads API arguments from, keyed on `i`.
fn diverging_candidate(original: &mpass_pe::PeFile, i: u32) -> Vec<u8> {
    let mut pe = original.clone();
    if let Some(sec) = pe.section_mut(".data") {
        for (j, b) in sec.data_mut().iter_mut().take(128).enumerate() {
            *b = b.wrapping_add(0x5A).rotate_left((i + j as u32) % 8);
        }
    }
    pe.to_bytes()
}

fn time_pair_us(reps: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let mut a_us = f64::INFINITY;
    let mut b_us = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        a();
        a_us = a_us.min(t.elapsed().as_secs_f64() * 1e6);
        let t = Instant::now();
        b();
        b_us = b_us.min(t.elapsed().as_secs_f64() * 1e6);
    }
    (a_us, b_us)
}

fn measure_wave(
    sb: &Sandbox,
    name: &str,
    original: &[u8],
    candidates: &[Vec<u8>],
    reps: usize,
) -> ValidateMeasurement {
    let refs: Vec<&[u8]> = candidates.iter().map(Vec::as_slice).collect();
    // Correctness first, outside the timed region: both paths must agree
    // on which candidates preserve functionality.
    let baseline = sb.baseline_digest(original).expect("bench original parses");
    let digest_verdicts = sb.validate_batch(&baseline, &refs);
    for (c, dv) in refs.iter().zip(&digest_verdicts) {
        let fv = verify_full_trace(sb, original, c);
        assert_eq!(
            fv.is_preserved(),
            dv.is_preserved(),
            "{name}: digest path disagrees with full-trace path"
        );
    }

    let (full_us, digest_us) = time_pair_us(
        reps,
        || {
            for c in &refs {
                black_box(verify_full_trace(sb, original, c));
            }
        },
        || {
            let baseline = sb.baseline_digest(original).expect("bench original parses");
            black_box(sb.validate_batch(&baseline, &refs));
        },
    );
    let n = refs.len() as f64;
    ValidateMeasurement {
        name: name.to_owned(),
        candidates: refs.len(),
        full_trace_us_per_candidate: full_us / n,
        digest_us_per_candidate: digest_us / n,
        speedup: full_us / digest_us,
    }
}

fn measure(reps: usize) -> Vec<ValidateMeasurement> {
    let (ds, _pool) = bench_fixture();
    let sb = Sandbox::new();
    const WAVE: u32 = 48;

    let mut rows = Vec::new();

    // Corpus rows: parse-dominated toy samples — the speedup here is
    // baseline amortization alone.
    let sample = &ds.samples[0];
    let pe = sample.pe().expect("bench sample parses");
    let preserved: Vec<Vec<u8>> = (0..WAVE).map(|i| preserved_candidate(pe, i)).collect();
    let diverging: Vec<Vec<u8>> = (0..WAVE).map(|i| diverging_candidate(pe, i)).collect();
    let mixed: Vec<Vec<u8>> = (0..WAVE)
        .map(|i| {
            if i % 2 == 0 {
                preserved_candidate(pe, i)
            } else {
                diverging_candidate(pe, i)
            }
        })
        .collect();
    rows.push(measure_wave(&sb, "corpus-preserved-wave", &sample.bytes, &preserved, reps));
    rows.push(measure_wave(&sb, "corpus-diverging-wave", &sample.bytes, &diverging, reps));
    rows.push(measure_wave(&sb, "corpus-mixed-wave", &sample.bytes, &mixed, reps));

    // Hot rows: execution-dominated synthetic — early abort pays on top
    // of amortization, the regime the >=5x digest claim is made in.
    let hot_original = hot_sample(mpass_vm::api::READ_FILE);
    let hot_pe = mpass_pe::PeFile::parse(&hot_original).expect("hot sample parses");
    let hot_preserved: Vec<Vec<u8>> =
        (0..WAVE).map(|i| preserved_candidate(&hot_pe, i)).collect();
    let hot_diverging: Vec<Vec<u8>> = (0..WAVE)
        .map(|i| {
            // Same shape, different API id: every event diverges, so the
            // comparing sink aborts at event 1 of HOT_EVENTS.
            let mut pe = mpass_pe::PeFile::parse(&hot_sample(mpass_vm::api::GET_SYSTEM_TIME))
                .expect("hot variant parses");
            pe.set_timestamp(i);
            pe.to_bytes()
        })
        .collect();
    let hot_mixed: Vec<Vec<u8>> = (0..WAVE)
        .map(|i| {
            if i % 2 == 0 {
                hot_preserved[i as usize].clone()
            } else {
                hot_diverging[i as usize].clone()
            }
        })
        .collect();
    rows.push(measure_wave(&sb, "hot-preserved-wave", &hot_original, &hot_preserved, reps));
    rows.push(measure_wave(&sb, "hot-diverging-wave", &hot_original, &hot_diverging, reps));
    rows.push(measure_wave(&sb, "hot-mixed-wave", &hot_original, &hot_mixed, reps));

    rows
}

/// Same clamp-then-compare contract as `bench_serve`: ratios only, both
/// sides clamped so timer noise on very large speedups cannot fail CI,
/// while a collapse toward 1× still does.
const GATE_SPEEDUP_CAP: f64 = 8.0;

fn check_gate(report: &ValidateReport, path: &str) -> Result<usize, Vec<String>> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| vec![format!("cannot read gate baseline {path}: {e}")])?;
    let base: ValidateReport =
        serde_json::from_str(&text).map_err(|e| vec![format!("bad gate baseline {path}: {e}")])?;
    let mut failures = Vec::new();
    let mut checked = 0usize;
    for bm in &base.measurements {
        if let Some(cur) = report.measurements.iter().find(|m| m.name == bm.name) {
            checked += 1;
            let (cur_s, base_s) =
                (cur.speedup.min(GATE_SPEEDUP_CAP), bm.speedup.min(GATE_SPEEDUP_CAP));
            if cur_s < base_s * 0.8 {
                failures.push(format!(
                    "{}: digest speedup {:.2}x fell >20% below baseline {:.2}x",
                    bm.name, cur.speedup, bm.speedup
                ));
            }
        }
    }
    if failures.is_empty() {
        Ok(checked)
    } else {
        Err(failures)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("results/BENCH_validate.json")
        .to_owned();
    let gate = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let reps = if quick { 5 } else { 25 };

    let measurements = measure(reps);
    for m in &measurements {
        eprintln!(
            "{:<22} full-trace {:>8.1} us/cand  digest {:>8.1} us/cand  speedup {:.2}x",
            m.name, m.full_trace_us_per_candidate, m.digest_us_per_candidate, m.speedup
        );
    }

    let report = ValidateReport { fixture: FIXTURE_DESC.to_owned(), measurements };
    if let Some(parent) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| {
        eprintln!("could not write {out}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out}");

    if let Some(baseline) = gate {
        match check_gate(&report, &baseline) {
            Ok(checked) => println!("gate vs {baseline}: {checked} rows within 20% of baseline"),
            Err(failures) => {
                for f in &failures {
                    eprintln!("GATE FAIL {f}");
                }
                std::process::exit(1);
            }
        }
    }
}
