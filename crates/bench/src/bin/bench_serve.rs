//! Emit batched-vs-sequential scoring throughput and daemon load
//! measurements to `results/BENCH_serve.json`.
//!
//! The batch-first detector API (`Detector::classify_batch`) promises
//! throughput, not new numerics — scores are bit-identical to a
//! sequential loop by contract. This binary quantifies the throughput
//! side: for each roster detector it classifies the full bench corpus
//! once through a sequential `classify` loop and once through one
//! `classify_batch` call, and reports microseconds per item and the
//! resulting speedup. Detector configs are the *default* (paper-shaped)
//! sizes, not the tiny test configs: batched serving earns its keep on
//! the 16 KiB-window models where most conv windows of a typical sample
//! lie in the padding region and the batched path replicates them
//! instead of recomputing them.
//!
//! On top of the in-process numbers, two daemon scenarios drive the
//! `mpass-serve` Unix-socket daemon end to end (real sockets, real
//! client threads, the trained MalConv behind the batch scheduler):
//!
//! * `daemon-sustained` — concurrent clients inside capacity; reports
//!   throughput and p50/p99 of delivered verdicts,
//! * `daemon-overload` — more clients than a deliberately tiny queue
//!   can hold; reports how much was shed (typed refusals, no waiting)
//!   and that the p99 of *admitted* requests stays bounded.
//!
//! A third tier times the inference kernels themselves — conv forward,
//! linear forward, embedding lookup, GBDT predict, and their int8
//! variants — each as optimized-vs-scalar-reference *within one
//! process*, so the reported speedup is a machine-independent ratio.
//! `--gate PATH` compares those ratios (and the detector speedups)
//! against a committed report and fails if any regresses more than 20%
//! relative: the per-kernel regression gate CI runs on every push.
//!
//! Usage:
//!
//! * `bench_serve` — measure and write `results/BENCH_serve.json`,
//! * `--quick` — fewer repetitions (CI smoke; kernel reps stay high),
//! * `--out PATH` — alternative output path,
//! * `--gate PATH` — fail (exit 1) if any speedup ratio regressed >20%
//!   against the report at PATH.

use mpass_bench::bench_fixture;
use mpass_detectors::train::training_pairs;
use mpass_detectors::{
    ByteConvConfig, Detector, LightGbm, MalConv, MalGcg, MalGcgConfig, NonNeg,
};
use mpass_ml::{
    Conv1d, Embedding, Gbdt, GbdtParams, Linear, QuantizedConv1d, QuantizedLinear, QuantizedVec,
};
use mpass_serve::{ReloadableModel, Response, ServeClient, Server, ServerConfig, TenantPolicy};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Batched-vs-sequential classify cost for one detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServeMeasurement {
    /// Detector name.
    name: String,
    /// Items per pass (the whole bench corpus).
    items: usize,
    /// Sequential `classify` loop, microseconds per item.
    sequential_us_per_item: f64,
    /// One `classify_batch` call, microseconds per item.
    batched_us_per_item: f64,
    /// `sequential / batched` (higher means batching pays).
    speedup: f64,
}

/// One end-to-end daemon load scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DaemonMeasurement {
    /// Scenario tag (`daemon-sustained`, `daemon-overload`).
    scenario: String,
    /// Concurrent client connections.
    clients: usize,
    /// Requests sent across all clients.
    requests: u64,
    /// Requests past admission (all of them, under permissive tenants).
    admitted: u64,
    /// Admitted requests shed by the bounded queue or their deadline.
    shed: u64,
    /// Admitted requests that returned a verdict.
    completed: u64,
    /// Delivered verdicts per second over the daemon's lifetime.
    throughput_rps: f64,
    /// Latency percentiles of *completed* requests, milliseconds.
    p50_ms: f64,
    p99_ms: f64,
}

/// One inference-kernel micro-benchmark: the optimized path against the
/// scalar reference it replaced, timed in the same process. The
/// regression gate compares `speedup` — a ratio of two same-machine
/// timings — rather than wall-clock, so it survives hardware variance.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct KernelMeasurement {
    /// Kernel tag (`conv-forward`, `linear-forward-int8`, ...).
    kernel: String,
    /// What the optimized path is measured against.
    reference: String,
    /// Optimized path, microseconds per pass.
    optimized_us: f64,
    /// Scalar reference, microseconds per pass.
    reference_us: f64,
    /// `reference / optimized` (higher means the kernel pays).
    speedup: f64,
}

/// The on-disk report consumed by the README throughput table.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServeReport {
    /// Fixture description (seeds are fixed inside the binary).
    fixture: String,
    measurements: Vec<ServeMeasurement>,
    /// Per-kernel optimized-vs-scalar ratios (the gated rows).
    kernels: Vec<KernelMeasurement>,
    /// End-to-end daemon scenarios (`mpass-serve` over Unix sockets).
    daemon: Vec<DaemonMeasurement>,
}

const FIXTURE_DESC: &str = "corpus seed 0xBE7C4 (12+12), default detector configs, \
     train seed 1, classify over all 24 samples per pass";

/// Interleaved min-of-reps timing of two alternatives, in microseconds:
/// every repetition times one pass of `a` then one pass of `b`, so a
/// machine-load burst lands on both alike — and the per-variant
/// *minimum* (the least-interfered-with pass) then discards it. Every
/// row in the report is a speedup *ratio* of the two, and this pairing
/// is what keeps the ratio reproducible on a shared box, where a median
/// drifts with whatever else the machine is doing.
fn time_pair_us(reps: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let mut a_us = f64::INFINITY;
    let mut b_us = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        a();
        a_us = a_us.min(t.elapsed().as_secs_f64() * 1e6);
        let t = Instant::now();
        b();
        b_us = b_us.min(t.elapsed().as_secs_f64() * 1e6);
    }
    (a_us, b_us)
}

fn measure_detector(name: &str, det: &dyn Detector, items: &[&[u8]], reps: usize) -> ServeMeasurement {
    let mut out = Vec::with_capacity(items.len());
    let (sequential, batched) = time_pair_us(
        reps,
        || {
            for bytes in items {
                std::hint::black_box(det.classify(std::hint::black_box(bytes)));
            }
        },
        || {
            out.clear();
            det.classify_batch(std::hint::black_box(items), &mut out);
            std::hint::black_box(&out);
        },
    );
    // The contract behind the speedup claim: identical verdicts.
    let seq_verdicts: Vec<_> = items.iter().map(|b| det.classify(b)).collect();
    assert_eq!(out, seq_verdicts, "{name}: classify_batch diverged from classify");
    let n = items.len() as f64;
    ServeMeasurement {
        name: name.to_owned(),
        items: items.len(),
        sequential_us_per_item: sequential / n,
        batched_us_per_item: batched / n,
        speedup: sequential / batched,
    }
}

/// Batched-vs-sequential cost of the int8 scoring path. The bit-identity
/// of batch and sequential quantized scores is asserted (it is the same
/// contract as the f32 pair), and the quantized scores are checked
/// against the f32 scores within the property-test bound.
fn measure_quantized(
    name: &str,
    det: &dyn Detector,
    items: &[&[u8]],
    reps: usize,
) -> ServeMeasurement {
    assert!(det.has_quantized_path(), "{name} has no quantized path");
    let mut out = Vec::with_capacity(items.len());
    let (sequential, batched) = time_pair_us(
        reps,
        || {
            for bytes in items {
                std::hint::black_box(det.score_quantized(std::hint::black_box(bytes)));
            }
        },
        || {
            out.clear();
            det.score_quantized_batch(std::hint::black_box(items), &mut out);
            std::hint::black_box(&out);
        },
    );
    for (bytes, q) in items.iter().zip(&out) {
        let seq = det.score_quantized(bytes);
        assert_eq!(
            q.to_bits(),
            seq.to_bits(),
            "{name}: quantized batch diverged from sequential"
        );
        let f = det.score(bytes);
        assert!((f - q).abs() <= 1e-2, "{name}: int8 score {q} drifted from f32 {f}");
    }
    let n = items.len() as f64;
    ServeMeasurement {
        name: format!("{name}-int8"),
        items: items.len(),
        sequential_us_per_item: sequential / n,
        batched_us_per_item: batched / n,
        speedup: sequential / batched,
    }
}

fn measure(reps: usize) -> (Vec<ServeMeasurement>, MalConv, Vec<Vec<u8>>) {
    let (ds, _pool) = bench_fixture();
    let samples: Vec<_> = ds.samples.iter().collect();
    let pairs = training_pairs(&samples);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut malconv = MalConv::new(ByteConvConfig::default(), &mut rng);
    malconv.train(&pairs, 2, 5e-3, &mut rng);
    let mut nonneg = NonNeg::new(ByteConvConfig::default(), &mut rng);
    nonneg.train(&pairs, 2, 5e-3, &mut rng);
    let mut malgcg = MalGcg::new(MalGcgConfig::default(), &mut rng);
    malgcg.train(&pairs, 2, 5e-3, &mut rng);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let lightgbm = LightGbm::train(&samples, GbdtParams::default(), &mut rng);

    let items: Vec<&[u8]> = ds.samples.iter().map(|s| s.bytes.as_slice()).collect();
    let roster: [(&str, &dyn Detector); 4] = [
        ("MalConv", &malconv),
        ("NonNeg", &nonneg),
        ("MalGCG", &malgcg),
        ("LightGBM", &lightgbm),
    ];
    let mut rows: Vec<ServeMeasurement> =
        roster.iter().map(|(name, det)| measure_detector(name, *det, &items, reps)).collect();
    rows.push(measure_quantized("MalConv", &malconv, &items, reps));
    rows.push(measure_quantized("MalGCG", &malgcg, &items, reps));
    let payloads: Vec<Vec<u8>> = ds.samples.iter().map(|s| s.bytes.clone()).collect();
    (rows, malconv, payloads)
}

/// One optimized-vs-reference kernel row, timed as interleaved
/// min-of-reps pairs ([`time_pair_us`]).
fn ratio_row(
    kernel: &str,
    reference: &str,
    reps: usize,
    optimized: impl FnMut(),
    reference_pass: impl FnMut(),
) -> KernelMeasurement {
    let (ref_us, opt_us) = time_pair_us(reps, reference_pass, optimized);
    KernelMeasurement {
        kernel: kernel.to_owned(),
        reference: reference.to_owned(),
        optimized_us: opt_us,
        reference_us: ref_us,
        speedup: ref_us / opt_us,
    }
}

/// Deterministic pseudo-weights/activations: no rng, identical across
/// machines, dense enough that nothing folds to a constant.
fn ramp(n: usize, phase: f32) -> Vec<f32> {
    (0..n).map(|i| ((i as f32 + phase) * 0.137).sin() * 0.5).collect()
}

/// Micro-benchmark the inference kernels, each against the scalar
/// reference it replaced. Kernel passes are cheap, so repetitions stay
/// high even under `--quick` — the gate needs stable ratios more than
/// the detector tier does.
fn measure_kernels(reps: usize) -> Vec<KernelMeasurement> {
    let reps = reps.max(50);
    let mut rows = Vec::new();

    // MalConv-shaped convolution: 8 -> 16 channels, kernel 256, one pass
    // = 64 windows (a 16 KiB window's worth at stride 256).
    let (dim, filters, kernel, windows) = (8usize, 16usize, 256usize, 64usize);
    let conv = Conv1d::from_weights(
        dim,
        filters,
        kernel,
        kernel,
        ramp(filters * kernel * dim, 0.3),
        ramp(filters, 0.7),
    );
    let x = ramp(windows * kernel * dim, 1.1);
    let mut opt_row = vec![0.0f32; filters];
    let mut ref_row = vec![0.0f32; filters];
    rows.push(ratio_row(
        "conv-forward",
        "scalar Conv1d::forward_window_into",
        reps,
        || {
            // The batch paths hoist the transpose once per batch; one pass
            // here is one 64-window batch, so the copy pays its real share.
            let xp = conv.transposed();
            for w in 0..windows {
                xp.forward_window_into(&x, w, &mut opt_row);
                std::hint::black_box(&opt_row);
            }
        },
        || {
            for w in 0..windows {
                conv.forward_window_into(&x, w, &mut ref_row);
                std::hint::black_box(&ref_row);
            }
        },
    ));

    let qconv = QuantizedConv1d::from_f32(&conv);
    let mut qx = QuantizedVec::from_f32(&[]);
    rows.push(ratio_row(
        "conv-forward-int8",
        "scalar f32 conv pass (incl. activation quantization)",
        reps,
        || {
            // Dynamic activation quantization is part of the per-item cost.
            qx.quantize(&x);
            for w in 0..windows {
                qconv.forward_window_into(&qx, w, &mut opt_row);
                std::hint::black_box(&opt_row);
            }
        },
        || {
            for w in 0..windows {
                conv.forward_window_into(&x, w, &mut ref_row);
                std::hint::black_box(&ref_row);
            }
        },
    ));

    // A dense layer big enough to time: 256 -> 256, 16 calls per pass.
    let (in_dim, out_dim, calls) = (256usize, 256usize, 16usize);
    let lin = Linear::from_weights(
        in_dim,
        out_dim,
        ramp(out_dim * in_dim, 0.9),
        ramp(out_dim, 0.2),
    );
    let lx = ramp(in_dim, 2.3);
    let mut y = vec![0.0f32; out_dim];
    rows.push(ratio_row(
        "linear-forward",
        "scalar allocating Linear::forward",
        reps,
        || {
            let wt = lin.weight_xposed();
            for _ in 0..calls {
                lin.forward_xposed_into(&wt, std::hint::black_box(&lx), &mut y);
                std::hint::black_box(&y);
            }
        },
        || {
            for _ in 0..calls {
                std::hint::black_box(lin.forward(std::hint::black_box(&lx)));
            }
        },
    ));

    let qlin = QuantizedLinear::from_f32(&lin);
    rows.push(ratio_row(
        "linear-forward-int8",
        "scalar allocating Linear::forward (incl. activation quantization)",
        reps,
        || {
            for _ in 0..calls {
                qx.quantize(std::hint::black_box(&lx));
                qlin.forward_into(&qx, &mut y);
                std::hint::black_box(&y);
            }
        },
        || {
            for _ in 0..calls {
                std::hint::black_box(lin.forward(std::hint::black_box(&lx)));
            }
        },
    ));

    // Token embedding lookup over a 16 KiB stream: reused scratch buffer
    // versus the allocating `Embedding::forward`.
    let emb = Embedding::from_weights(257, dim, ramp(257 * dim, 3.1));
    let tokens: Vec<usize> = (0..16 * 1024).map(|i| (i * 31) % 256 + 1).collect();
    let mut ex = vec![0.0f32; tokens.len() * dim];
    rows.push(ratio_row(
        "embedding-lookup",
        "allocating Embedding::forward",
        reps,
        || {
            // Batch-path idiom: one buffer reused across every item.
            for (chunk, &t) in ex.chunks_exact_mut(dim).zip(&tokens) {
                chunk.copy_from_slice(emb.vector(t));
            }
            std::hint::black_box(&ex);
        },
        || {
            std::hint::black_box(emb.forward(std::hint::black_box(&tokens)));
        },
    ));

    // GBDT predict: flattened node-array traversal versus the
    // pointer-chasing tree walk, over 64 feature vectors per pass.
    let feats: Vec<Vec<f32>> = (0..64).map(|i| ramp(32, i as f32)).collect();
    let labels: Vec<f32> = (0..64).map(|i| (i % 2) as f32).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let gbdt = Gbdt::train(&feats, &labels, GbdtParams::default(), &mut rng);
    for f in &feats {
        // Warm the cached flat forest and hold the exact-equality contract.
        assert_eq!(
            gbdt.logit(f).to_bits(),
            gbdt.logit_treewalk(f).to_bits(),
            "flattened GBDT diverged from the tree walk"
        );
    }
    rows.push(ratio_row(
        "gbdt-predict",
        "pointer-chasing Gbdt::logit_treewalk",
        reps,
        || {
            for f in &feats {
                std::hint::black_box(gbdt.logit(std::hint::black_box(f)));
            }
        },
        || {
            for f in &feats {
                std::hint::black_box(gbdt.logit_treewalk(std::hint::black_box(f)));
            }
        },
    ));

    rows
}

/// Compare `report` against the committed report at `path`: every row
/// present in both (by detector name / kernel tag) must keep at least
/// 80% of its recorded speedup. Only same-process ratios are gated —
/// never raw microseconds — so the gate holds across machines. Ratios
/// are clamped to [`GATE_SPEEDUP_CAP`] on both sides first: a 19×
/// kernel dividing a multi-millisecond reference by a ~200 µs optimized
/// pass swings ±25% with timer noise alone, and a drop from 19× to 14×
/// is not a regression worth failing CI over — losing the advantage
/// (falling toward 1×) is, and the clamp keeps exactly that signal.
const GATE_SPEEDUP_CAP: f64 = 8.0;

fn check_gate(report: &ServeReport, path: &str) -> Result<usize, Vec<String>> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| vec![format!("cannot read gate baseline {path}: {e}")])?;
    let base: ServeReport =
        serde_json::from_str(&text).map_err(|e| vec![format!("bad gate baseline {path}: {e}")])?;
    let mut failures = Vec::new();
    let mut checked = 0usize;
    for bm in &base.measurements {
        if let Some(cur) = report.measurements.iter().find(|m| m.name == bm.name) {
            checked += 1;
            let (cur_s, base_s) =
                (cur.speedup.min(GATE_SPEEDUP_CAP), bm.speedup.min(GATE_SPEEDUP_CAP));
            if cur_s < base_s * 0.8 {
                failures.push(format!(
                    "{}: batched speedup {:.2}x fell >20% below baseline {:.2}x",
                    bm.name, cur.speedup, bm.speedup
                ));
            }
        }
    }
    for bk in &base.kernels {
        if let Some(cur) = report.kernels.iter().find(|k| k.kernel == bk.kernel) {
            checked += 1;
            let (cur_s, base_s) =
                (cur.speedup.min(GATE_SPEEDUP_CAP), bk.speedup.min(GATE_SPEEDUP_CAP));
            if cur_s < base_s * 0.8 {
                failures.push(format!(
                    "{}: kernel speedup {:.2}x fell >20% below baseline {:.2}x",
                    bk.kernel, cur.speedup, bk.speedup
                ));
            }
        }
    }
    if failures.is_empty() {
        Ok(checked)
    } else {
        Err(failures)
    }
}

/// Run one daemon scenario: boot `mpass-serve` over `model`, hammer it
/// from `clients` connections sending `per_client` requests each, drain
/// gracefully, and report the summary.
fn measure_daemon(
    scenario: &str,
    model: &ReloadableModel,
    payloads: &[Vec<u8>],
    clients: usize,
    per_client: u64,
    config: ServerConfig,
) -> DaemonMeasurement {
    let socket = config.socket.clone();
    let server = Server::new(model, config);
    let summary = std::thread::scope(|scope| {
        let server = &server;
        let daemon = scope.spawn(move || server.run());
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let socket = socket.clone();
                scope.spawn(move || {
                    let mut client = ServeClient::connect_retry(&socket, Duration::from_secs(60))
                        .expect("daemon boots");
                    for r in 0..per_client {
                        let payload =
                            &payloads[(c as u64 * per_client + r) as usize % payloads.len()];
                        match client.score(r, &format!("bench-{c}"), payload, None) {
                            // Verdicts and typed refusals both count as
                            // answered; anything else is a harness bug.
                            Ok(Response::Score(_) | Response::Error(_)) => {}
                            Ok(other) => panic!("unexpected response {other:?}"),
                            Err(e) => panic!("daemon stopped answering: {e}"),
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("client thread panicked");
        }
        let mut control =
            ServeClient::connect_retry(&socket, Duration::from_secs(60)).expect("control connects");
        control.shutdown(0).expect("shutdown acknowledged");
        daemon.join().expect("daemon thread panicked").expect("daemon ran")
    });
    DaemonMeasurement {
        scenario: scenario.to_owned(),
        clients,
        requests: clients as u64 * per_client,
        admitted: summary.admitted,
        shed: summary.shed,
        completed: summary.completed,
        throughput_rps: summary.throughput_rps,
        p50_ms: summary.p50_ms,
        p99_ms: summary.p99_ms,
    }
}

fn measure_daemons(quick: bool, malconv: MalConv, payloads: Vec<Vec<u8>>) -> Vec<DaemonMeasurement> {
    let model =
        ReloadableModel::new(Arc::new(malconv), |_| Err("bench model is static".to_owned()));
    // Admission limits out of the way: these scenarios probe the queue
    // and the scheduler, not the tenant policy.
    let tenant = TenantPolicy {
        rate_per_sec: 1_000_000.0,
        burst: 100_000,
        budget: None,
        breaker_threshold: 0,
        ..TenantPolicy::default()
    };
    let pid = std::process::id();
    let sustained = measure_daemon(
        "daemon-sustained",
        &model,
        &payloads,
        4,
        if quick { 15 } else { 100 },
        ServerConfig {
            socket: std::env::temp_dir().join(format!("mpass-bench-sustained-{pid}.sock")),
            max_batch: 8,
            linger: Duration::from_millis(1),
            queue_capacity: 1_024,
            default_deadline: Duration::from_secs(30),
            tenant: tenant.clone(),
            ..ServerConfig::default()
        },
    );
    let overload = measure_daemon(
        "daemon-overload",
        &model,
        &payloads,
        8,
        if quick { 10 } else { 40 },
        ServerConfig {
            socket: std::env::temp_dir().join(format!("mpass-bench-overload-{pid}.sock")),
            max_batch: 4,
            linger: Duration::from_millis(1),
            queue_capacity: 2,
            default_deadline: Duration::from_millis(50),
            tenant,
            ..ServerConfig::default()
        },
    );
    vec![sustained, overload]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("results/BENCH_serve.json")
        .to_owned();
    let gate = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let reps = if quick { 3 } else { 15 };

    let (measurements, malconv, payloads) = measure(reps);
    for m in &measurements {
        eprintln!(
            "{:<13} sequential {:>8.1} us/item  batched {:>8.1} us/item  speedup {:.2}x",
            m.name, m.sequential_us_per_item, m.batched_us_per_item, m.speedup
        );
    }
    let kernels = measure_kernels(reps);
    for k in &kernels {
        eprintln!(
            "{:<20} optimized {:>8.1} us/pass  reference {:>8.1} us/pass  speedup {:.2}x",
            k.kernel, k.optimized_us, k.reference_us, k.speedup
        );
    }
    let daemon = measure_daemons(quick, malconv, payloads);
    for d in &daemon {
        eprintln!(
            "{:<17} clients {:>2}  requests {:>4}  completed {:>4}  shed {:>4}  \
             {:>7.1} req/s  p50 {:>6.2} ms  p99 {:>6.2} ms",
            d.scenario, d.clients, d.requests, d.completed, d.shed, d.throughput_rps, d.p50_ms,
            d.p99_ms
        );
    }

    let report = ServeReport { fixture: FIXTURE_DESC.to_owned(), measurements, kernels, daemon };
    if let Some(parent) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| {
        eprintln!("could not write {out}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out}");

    if let Some(baseline) = gate {
        match check_gate(&report, &baseline) {
            Ok(checked) => println!("gate vs {baseline}: {checked} rows within 20% of baseline"),
            Err(failures) => {
                for f in &failures {
                    eprintln!("GATE FAIL {f}");
                }
                std::process::exit(1);
            }
        }
    }
}
