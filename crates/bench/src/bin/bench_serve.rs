//! Emit batched-vs-sequential scoring throughput and daemon load
//! measurements to `results/BENCH_serve.json`.
//!
//! The batch-first detector API (`Detector::classify_batch`) promises
//! throughput, not new numerics — scores are bit-identical to a
//! sequential loop by contract. This binary quantifies the throughput
//! side: for each roster detector it classifies the full bench corpus
//! once through a sequential `classify` loop and once through one
//! `classify_batch` call, and reports microseconds per item and the
//! resulting speedup. Detector configs are the *default* (paper-shaped)
//! sizes, not the tiny test configs: batched serving earns its keep on
//! the 16 KiB-window models where most conv windows of a typical sample
//! lie in the padding region and the batched path replicates them
//! instead of recomputing them.
//!
//! On top of the in-process numbers, two daemon scenarios drive the
//! `mpass-serve` Unix-socket daemon end to end (real sockets, real
//! client threads, the trained MalConv behind the batch scheduler):
//!
//! * `daemon-sustained` — concurrent clients inside capacity; reports
//!   throughput and p50/p99 of delivered verdicts,
//! * `daemon-overload` — more clients than a deliberately tiny queue
//!   can hold; reports how much was shed (typed refusals, no waiting)
//!   and that the p99 of *admitted* requests stays bounded.
//!
//! Usage:
//!
//! * `bench_serve` — measure and write `results/BENCH_serve.json`,
//! * `--quick` — fewer repetitions (CI smoke),
//! * `--out PATH` — alternative output path.

use mpass_bench::bench_fixture;
use mpass_detectors::train::training_pairs;
use mpass_detectors::{
    ByteConvConfig, Detector, LightGbm, MalConv, MalGcg, MalGcgConfig, NonNeg,
};
use mpass_ml::GbdtParams;
use mpass_serve::{ReloadableModel, Response, ServeClient, Server, ServerConfig, TenantPolicy};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Batched-vs-sequential classify cost for one detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServeMeasurement {
    /// Detector name.
    name: String,
    /// Items per pass (the whole bench corpus).
    items: usize,
    /// Sequential `classify` loop, microseconds per item.
    sequential_us_per_item: f64,
    /// One `classify_batch` call, microseconds per item.
    batched_us_per_item: f64,
    /// `sequential / batched` (higher means batching pays).
    speedup: f64,
}

/// One end-to-end daemon load scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DaemonMeasurement {
    /// Scenario tag (`daemon-sustained`, `daemon-overload`).
    scenario: String,
    /// Concurrent client connections.
    clients: usize,
    /// Requests sent across all clients.
    requests: u64,
    /// Requests past admission (all of them, under permissive tenants).
    admitted: u64,
    /// Admitted requests shed by the bounded queue or their deadline.
    shed: u64,
    /// Admitted requests that returned a verdict.
    completed: u64,
    /// Delivered verdicts per second over the daemon's lifetime.
    throughput_rps: f64,
    /// Latency percentiles of *completed* requests, milliseconds.
    p50_ms: f64,
    p99_ms: f64,
}

/// The on-disk report consumed by the README throughput table.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServeReport {
    /// Fixture description (seeds are fixed inside the binary).
    fixture: String,
    measurements: Vec<ServeMeasurement>,
    /// End-to-end daemon scenarios (`mpass-serve` over Unix sockets).
    daemon: Vec<DaemonMeasurement>,
}

const FIXTURE_DESC: &str = "corpus seed 0xBE7C4 (12+12), default detector configs, \
     train seed 1, classify over all 24 samples per pass";

/// Median wall time of `reps` calls to `f`, in microseconds.
fn time_us<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
    times[times.len() / 2]
}

fn measure_detector(name: &str, det: &dyn Detector, items: &[&[u8]], reps: usize) -> ServeMeasurement {
    let sequential = time_us(reps, || {
        for bytes in items {
            std::hint::black_box(det.classify(std::hint::black_box(bytes)));
        }
    });
    let mut out = Vec::with_capacity(items.len());
    let batched = time_us(reps, || {
        out.clear();
        det.classify_batch(std::hint::black_box(items), &mut out);
        std::hint::black_box(&out);
    });
    // The contract behind the speedup claim: identical verdicts.
    let seq_verdicts: Vec<_> = items.iter().map(|b| det.classify(b)).collect();
    assert_eq!(out, seq_verdicts, "{name}: classify_batch diverged from classify");
    let n = items.len() as f64;
    ServeMeasurement {
        name: name.to_owned(),
        items: items.len(),
        sequential_us_per_item: sequential / n,
        batched_us_per_item: batched / n,
        speedup: sequential / batched,
    }
}

fn measure(reps: usize) -> (Vec<ServeMeasurement>, MalConv, Vec<Vec<u8>>) {
    let (ds, _pool) = bench_fixture();
    let samples: Vec<_> = ds.samples.iter().collect();
    let pairs = training_pairs(&samples);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut malconv = MalConv::new(ByteConvConfig::default(), &mut rng);
    malconv.train(&pairs, 2, 5e-3, &mut rng);
    let mut nonneg = NonNeg::new(ByteConvConfig::default(), &mut rng);
    nonneg.train(&pairs, 2, 5e-3, &mut rng);
    let mut malgcg = MalGcg::new(MalGcgConfig::default(), &mut rng);
    malgcg.train(&pairs, 2, 5e-3, &mut rng);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let lightgbm = LightGbm::train(&samples, GbdtParams::default(), &mut rng);

    let items: Vec<&[u8]> = ds.samples.iter().map(|s| s.bytes.as_slice()).collect();
    let roster: [(&str, &dyn Detector); 4] = [
        ("MalConv", &malconv),
        ("NonNeg", &nonneg),
        ("MalGCG", &malgcg),
        ("LightGBM", &lightgbm),
    ];
    let rows =
        roster.iter().map(|(name, det)| measure_detector(name, *det, &items, reps)).collect();
    let payloads: Vec<Vec<u8>> = ds.samples.iter().map(|s| s.bytes.clone()).collect();
    (rows, malconv, payloads)
}

/// Run one daemon scenario: boot `mpass-serve` over `model`, hammer it
/// from `clients` connections sending `per_client` requests each, drain
/// gracefully, and report the summary.
fn measure_daemon(
    scenario: &str,
    model: &ReloadableModel,
    payloads: &[Vec<u8>],
    clients: usize,
    per_client: u64,
    config: ServerConfig,
) -> DaemonMeasurement {
    let socket = config.socket.clone();
    let server = Server::new(model, config);
    let summary = std::thread::scope(|scope| {
        let server = &server;
        let daemon = scope.spawn(move || server.run());
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let socket = socket.clone();
                scope.spawn(move || {
                    let mut client = ServeClient::connect_retry(&socket, Duration::from_secs(60))
                        .expect("daemon boots");
                    for r in 0..per_client {
                        let payload =
                            &payloads[(c as u64 * per_client + r) as usize % payloads.len()];
                        match client.score(r, &format!("bench-{c}"), payload, None) {
                            // Verdicts and typed refusals both count as
                            // answered; anything else is a harness bug.
                            Ok(Response::Score(_) | Response::Error(_)) => {}
                            Ok(other) => panic!("unexpected response {other:?}"),
                            Err(e) => panic!("daemon stopped answering: {e}"),
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("client thread panicked");
        }
        let mut control =
            ServeClient::connect_retry(&socket, Duration::from_secs(60)).expect("control connects");
        control.shutdown(0).expect("shutdown acknowledged");
        daemon.join().expect("daemon thread panicked").expect("daemon ran")
    });
    DaemonMeasurement {
        scenario: scenario.to_owned(),
        clients,
        requests: clients as u64 * per_client,
        admitted: summary.admitted,
        shed: summary.shed,
        completed: summary.completed,
        throughput_rps: summary.throughput_rps,
        p50_ms: summary.p50_ms,
        p99_ms: summary.p99_ms,
    }
}

fn measure_daemons(quick: bool, malconv: MalConv, payloads: Vec<Vec<u8>>) -> Vec<DaemonMeasurement> {
    let model =
        ReloadableModel::new(Arc::new(malconv), |_| Err("bench model is static".to_owned()));
    // Admission limits out of the way: these scenarios probe the queue
    // and the scheduler, not the tenant policy.
    let tenant = TenantPolicy {
        rate_per_sec: 1_000_000.0,
        burst: 100_000,
        budget: None,
        breaker_threshold: 0,
        ..TenantPolicy::default()
    };
    let pid = std::process::id();
    let sustained = measure_daemon(
        "daemon-sustained",
        &model,
        &payloads,
        4,
        if quick { 15 } else { 100 },
        ServerConfig {
            socket: std::env::temp_dir().join(format!("mpass-bench-sustained-{pid}.sock")),
            max_batch: 8,
            linger: Duration::from_millis(1),
            queue_capacity: 1_024,
            default_deadline: Duration::from_secs(30),
            tenant: tenant.clone(),
            ..ServerConfig::default()
        },
    );
    let overload = measure_daemon(
        "daemon-overload",
        &model,
        &payloads,
        8,
        if quick { 10 } else { 40 },
        ServerConfig {
            socket: std::env::temp_dir().join(format!("mpass-bench-overload-{pid}.sock")),
            max_batch: 4,
            linger: Duration::from_millis(1),
            queue_capacity: 2,
            default_deadline: Duration::from_millis(50),
            tenant,
            ..ServerConfig::default()
        },
    );
    vec![sustained, overload]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("results/BENCH_serve.json")
        .to_owned();
    let reps = if quick { 3 } else { 15 };

    let (measurements, malconv, payloads) = measure(reps);
    for m in &measurements {
        eprintln!(
            "{:<10} sequential {:>8.1} us/item  batched {:>8.1} us/item  speedup {:.2}x",
            m.name, m.sequential_us_per_item, m.batched_us_per_item, m.speedup
        );
    }
    let daemon = measure_daemons(quick, malconv, payloads);
    for d in &daemon {
        eprintln!(
            "{:<17} clients {:>2}  requests {:>4}  completed {:>4}  shed {:>4}  \
             {:>7.1} req/s  p50 {:>6.2} ms  p99 {:>6.2} ms",
            d.scenario, d.clients, d.requests, d.completed, d.shed, d.throughput_rps, d.p50_ms,
            d.p99_ms
        );
    }

    let report = ServeReport { fixture: FIXTURE_DESC.to_owned(), measurements, daemon };
    if let Some(parent) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| {
        eprintln!("could not write {out}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out}");
}
