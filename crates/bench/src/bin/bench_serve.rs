//! Emit batched-vs-sequential scoring throughput to
//! `results/BENCH_serve.json`.
//!
//! The batch-first detector API (`Detector::classify_batch`) promises
//! throughput, not new numerics — scores are bit-identical to a
//! sequential loop by contract. This binary quantifies the throughput
//! side: for each roster detector it classifies the full bench corpus
//! once through a sequential `classify` loop and once through one
//! `classify_batch` call, and reports microseconds per item and the
//! resulting speedup. Detector configs are the *default* (paper-shaped)
//! sizes, not the tiny test configs: batched serving earns its keep on
//! the 16 KiB-window models where most conv windows of a typical sample
//! lie in the padding region and the batched path replicates them
//! instead of recomputing them.
//!
//! Usage:
//!
//! * `bench_serve` — measure and write `results/BENCH_serve.json`,
//! * `--quick` — fewer repetitions (CI smoke),
//! * `--out PATH` — alternative output path.

use mpass_bench::bench_fixture;
use mpass_detectors::train::training_pairs;
use mpass_detectors::{
    ByteConvConfig, Detector, LightGbm, MalConv, MalGcg, MalGcgConfig, NonNeg,
};
use mpass_ml::GbdtParams;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Batched-vs-sequential classify cost for one detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServeMeasurement {
    /// Detector name.
    name: String,
    /// Items per pass (the whole bench corpus).
    items: usize,
    /// Sequential `classify` loop, microseconds per item.
    sequential_us_per_item: f64,
    /// One `classify_batch` call, microseconds per item.
    batched_us_per_item: f64,
    /// `sequential / batched` (higher means batching pays).
    speedup: f64,
}

/// The on-disk report consumed by the README throughput table.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServeReport {
    /// Fixture description (seeds are fixed inside the binary).
    fixture: String,
    measurements: Vec<ServeMeasurement>,
}

const FIXTURE_DESC: &str = "corpus seed 0xBE7C4 (12+12), default detector configs, \
     train seed 1, classify over all 24 samples per pass";

/// Median wall time of `reps` calls to `f`, in microseconds.
fn time_us<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
    times[times.len() / 2]
}

fn measure_detector(name: &str, det: &dyn Detector, items: &[&[u8]], reps: usize) -> ServeMeasurement {
    let sequential = time_us(reps, || {
        for bytes in items {
            std::hint::black_box(det.classify(std::hint::black_box(bytes)));
        }
    });
    let mut out = Vec::with_capacity(items.len());
    let batched = time_us(reps, || {
        out.clear();
        det.classify_batch(std::hint::black_box(items), &mut out);
        std::hint::black_box(&out);
    });
    // The contract behind the speedup claim: identical verdicts.
    let seq_verdicts: Vec<_> = items.iter().map(|b| det.classify(b)).collect();
    assert_eq!(out, seq_verdicts, "{name}: classify_batch diverged from classify");
    let n = items.len() as f64;
    ServeMeasurement {
        name: name.to_owned(),
        items: items.len(),
        sequential_us_per_item: sequential / n,
        batched_us_per_item: batched / n,
        speedup: sequential / batched,
    }
}

fn measure(reps: usize) -> Vec<ServeMeasurement> {
    let (ds, _pool) = bench_fixture();
    let samples: Vec<_> = ds.samples.iter().collect();
    let pairs = training_pairs(&samples);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut malconv = MalConv::new(ByteConvConfig::default(), &mut rng);
    malconv.train(&pairs, 2, 5e-3, &mut rng);
    let mut nonneg = NonNeg::new(ByteConvConfig::default(), &mut rng);
    nonneg.train(&pairs, 2, 5e-3, &mut rng);
    let mut malgcg = MalGcg::new(MalGcgConfig::default(), &mut rng);
    malgcg.train(&pairs, 2, 5e-3, &mut rng);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let lightgbm = LightGbm::train(&samples, GbdtParams::default(), &mut rng);

    let items: Vec<&[u8]> = ds.samples.iter().map(|s| s.bytes.as_slice()).collect();
    let roster: [(&str, &dyn Detector); 4] = [
        ("MalConv", &malconv),
        ("NonNeg", &nonneg),
        ("MalGCG", &malgcg),
        ("LightGBM", &lightgbm),
    ];
    roster.iter().map(|(name, det)| measure_detector(name, *det, &items, reps)).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("results/BENCH_serve.json")
        .to_owned();
    let reps = if quick { 3 } else { 15 };

    let measurements = measure(reps);
    for m in &measurements {
        eprintln!(
            "{:<10} sequential {:>8.1} us/item  batched {:>8.1} us/item  speedup {:.2}x",
            m.name, m.sequential_us_per_item, m.batched_us_per_item, m.speedup
        );
    }

    let report = ServeReport { fixture: FIXTURE_DESC.to_owned(), measurements };
    if let Some(parent) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| {
        eprintln!("could not write {out}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out}");
}
