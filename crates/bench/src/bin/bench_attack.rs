//! Emit machine-readable attack-path timings to `results/BENCH_attack.json`.
//!
//! Criterion benches are great for local iteration but leave no artifact a
//! later PR can diff against. This binary times the four dominant costs of
//! the attack loop on a fixed seeded fixture and writes them as JSON,
//! establishing the perf trajectory the ROADMAP asks every PR to advance:
//!
//! * `inference_us` — one `Detector::score` call per byte-conv model,
//! * `gradient_us` — one `benign_loss_grad_into` call per model,
//! * `optimizer_round_us` — one `EnsembleOptimizer::run` round (gradient +
//!   byte-mapping) over the full known-model ensemble,
//! * `pem_per_sample_us` — PEM Shapley attribution cost per (model, sample).
//!
//! Usage:
//!
//! * `bench_attack --record-baseline` — write the measurements into the
//!   `baseline` slot (run this *before* an optimization lands),
//! * `bench_attack` — write them into `current` and compute
//!   `speedup = baseline / current` against the stored baseline,
//! * `--quick` — fewer repetitions (CI smoke), `--out PATH` — alternative
//!   output path (so CI never dirties the committed trajectory).

use mpass_bench::bench_fixture;
use mpass_core::modify::{modify, ModificationConfig};
use mpass_core::optimize::{EnsembleOptimizer, OptimizerConfig};
use mpass_core::pem::{run_pem, PemConfig};
use mpass_detectors::train::training_pairs;
use mpass_detectors::{
    ByteConvConfig, Detector, DetectorExt, MalConv, MalGcg, MalGcgConfig, NonNeg,
    WhiteBoxModel,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One set of measurements, all in microseconds per operation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Measurements {
    /// Mean `Detector::score` latency across the byte-conv models.
    inference_us: f64,
    /// Mean `benign_loss_grad_into` latency across the white-box models.
    gradient_us: f64,
    /// One optimizer round (gradients + byte-mapping, 3-model ensemble).
    optimizer_round_us: f64,
    /// PEM Shapley cost per (model, sample) pair.
    pem_per_sample_us: f64,
}

/// Ratios `baseline / current` (higher is faster).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Speedup {
    inference: f64,
    gradient: f64,
    optimizer_round: f64,
    pem_per_sample: f64,
}

/// The on-disk trajectory: a frozen pre-optimization baseline, the latest
/// measurement, and their ratio.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchReport {
    /// Fixture description (seeds are fixed inside the binary).
    fixture: String,
    baseline: Option<Measurements>,
    current: Option<Measurements>,
    speedup: Option<Speedup>,
}

const FIXTURE_DESC: &str = "corpus seed 0xBE7C4 (12+12), tiny byte-conv configs, \
     train seed 1, optimizer lr 0.05 x 4 iterations, PEM default config over 4 samples";

/// Median wall time of `reps` calls to `f`, in microseconds.
fn time_us<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
    times[times.len() / 2]
}

fn measure(reps: usize) -> Measurements {
    let (ds, pool) = bench_fixture();
    let samples: Vec<_> = ds.samples.iter().collect();
    let pairs = training_pairs(&samples);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut malconv = MalConv::new(ByteConvConfig::tiny(), &mut rng);
    malconv.train(&pairs, 4, 5e-3, &mut rng);
    let mut nonneg = NonNeg::new(ByteConvConfig::tiny(), &mut rng);
    nonneg.train(&pairs, 4, 5e-3, &mut rng);
    let mut malgcg = MalGcg::new(MalGcgConfig::tiny(), &mut rng);
    malgcg.train(&pairs, 4, 5e-3, &mut rng);
    let mal = ds.malware()[0];

    let detectors: [&dyn Detector; 3] = [&malconv, &nonneg, &malgcg];
    let inference_us = time_us(reps, || {
        for d in detectors {
            std::hint::black_box(d.score(std::hint::black_box(&mal.bytes)));
        }
    }) / detectors.len() as f64;

    let white: Vec<&dyn WhiteBoxModel> = vec![&malconv, &nonneg, &malgcg];
    let mut ws = mpass_ml::Workspace::default();
    let mut grad = Vec::new();
    let gradient_us = time_us(reps, || {
        for m in &white {
            std::hint::black_box(m.benign_loss_grad_into(
                std::hint::black_box(&mal.bytes),
                &mut ws,
                &mut grad,
            ));
        }
    }) / white.len() as f64;

    // One optimizer round = cfg.iterations gradient+mapping iterations; we
    // report the whole `run` so mapping cost is included, divided by the
    // iteration count to get a per-round figure.
    let opt_cfg = OptimizerConfig { lr: 0.05, iterations: 4 };
    let mut mod_rng = ChaCha8Rng::seed_from_u64(2);
    let ms0 = modify(mal, &pool, &ModificationConfig::default(), &mut mod_rng)
        .expect("fixture sample must admit modification");
    let optimizer_round_us = time_us(reps.max(3), || {
        let mut ms = ms0.clone();
        let mut opt = EnsembleOptimizer::new(white.clone(), &ms, opt_cfg);
        std::hint::black_box(opt.run(&mut ms));
    }) / opt_cfg.iterations as f64;

    let pem_samples: Vec<_> = ds.malware().into_iter().take(4).collect();
    let pem_models: Vec<(&str, &dyn DetectorExt)> =
        vec![("MalConv", &malconv), ("MalGCG", &malgcg)];
    let pem_pairs = (pem_samples.len() * pem_models.len()) as f64;
    let pem_per_sample_us = time_us(reps.clamp(3, 5), || {
        std::hint::black_box(run_pem(&pem_models, &pem_samples, &PemConfig::default()));
    }) / pem_pairs;

    Measurements { inference_us, gradient_us, optimizer_round_us, pem_per_sample_us }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let record_baseline = args.iter().any(|a| a == "--record-baseline");
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("results/BENCH_attack.json")
        .to_owned();
    let reps = if quick { 3 } else { 15 };

    let m = measure(reps);
    eprintln!(
        "inference {:.1}us  gradient {:.1}us  optimizer round {:.1}us  pem/sample {:.1}us",
        m.inference_us, m.gradient_us, m.optimizer_round_us, m.pem_per_sample_us
    );

    let mut report = std::fs::read_to_string(&out)
        .ok()
        .and_then(|s| serde_json::from_str::<BenchReport>(&s).ok())
        .unwrap_or(BenchReport {
            fixture: FIXTURE_DESC.to_owned(),
            baseline: None,
            current: None,
            speedup: None,
        });
    if record_baseline {
        report.baseline = Some(m);
    } else {
        report.current = Some(m);
    }
    if let (Some(b), Some(c)) = (report.baseline, report.current) {
        report.speedup = Some(Speedup {
            inference: b.inference_us / c.inference_us,
            gradient: b.gradient_us / c.gradient_us,
            optimizer_round: b.optimizer_round_us / c.optimizer_round_us,
            pem_per_sample: b.pem_per_sample_us / c.pem_per_sample_us,
        });
    }
    if let Some(parent) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| {
        eprintln!("could not write {out}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out}");
}
