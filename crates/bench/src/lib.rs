//! # mpass-bench — benchmark support
//!
//! The benches live in `benches/`:
//!
//! * `substrates` — PE parse/serialize, MVM execution, stub layouting.
//! * `detectors` — per-detector inference latency and training epochs.
//! * `attack_pipeline` — modification, optimization and full MPass attack
//!   cost per sample.
//! * `paper_tables` — one benchmark group per paper table/figure, running
//!   the corresponding experiment at reduced scale and reporting the
//!   regenerated numbers via `eprintln!` alongside the timing.
//!
//! This library crate only hosts shared fixtures.

use mpass_corpus::{BenignPool, CorpusConfig, Dataset};

/// A small deterministic corpus + pool fixture shared by the benches.
pub fn bench_fixture() -> (Dataset, BenignPool) {
    let ds = Dataset::generate(&CorpusConfig {
        n_malware: 12,
        n_benign: 12,
        seed: 0xBE7C4,
        no_slack_fraction: 0.1,
    });
    let pool = BenignPool::generate(4, 0xBE7C4);
    (ds, pool)
}
