//! Inference and training cost of each detector family.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use mpass_bench::bench_fixture;
use mpass_detectors::train::training_pairs;
use mpass_detectors::{
    commercial::default_profiles, ByteConvConfig, CommercialAv, Detector, LightGbm, MalConv,
    MalGcg, MalGcgConfig, NonNeg,
};
use mpass_ml::GbdtParams;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_inference(c: &mut Criterion) {
    let (ds, _) = bench_fixture();
    let samples: Vec<_> = ds.samples.iter().collect();
    let pairs = training_pairs(&samples);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut malconv = MalConv::new(ByteConvConfig::default(), &mut rng);
    malconv.train(&pairs, 2, 5e-3, &mut rng);
    let mut malgcg = MalGcg::new(MalGcgConfig::default(), &mut rng);
    malgcg.train(&pairs, 2, 5e-3, &mut rng);
    let lightgbm = LightGbm::train(&samples, GbdtParams::default(), &mut rng);
    let av = CommercialAv::train(default_profiles().remove(0), &samples);
    let bytes = &ds.samples[0].bytes;

    let mut group = c.benchmark_group("inference");
    group.bench_function("malconv_score", |b| {
        b.iter(|| malconv.score(std::hint::black_box(bytes)))
    });
    group.bench_function("malgcg_score", |b| b.iter(|| malgcg.score(std::hint::black_box(bytes))));
    group.bench_function("lightgbm_score", |b| {
        b.iter(|| lightgbm.score(std::hint::black_box(bytes)))
    });
    group.bench_function("commercial_av_score", |b| {
        b.iter(|| av.score(std::hint::black_box(bytes)))
    });
    group.bench_function("malconv_gradient", |b| {
        use mpass_detectors::WhiteBoxModel;
        let mut ws = mpass_ml::Workspace::default();
        let mut grad = Vec::new();
        b.iter(|| {
            malconv.benign_loss_grad_into(std::hint::black_box(bytes), &mut ws, &mut grad)
        })
    });
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    let (ds, _) = bench_fixture();
    let samples: Vec<_> = ds.samples.iter().collect();
    let pairs = training_pairs(&samples);
    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(8));
    group.bench_function("malconv_epoch", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let mut m = MalConv::new(ByteConvConfig::tiny(), &mut rng);
            m.train(&pairs, 1, 5e-3, &mut rng)
        })
    });
    group.bench_function("nonneg_epoch", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let mut m = NonNeg::new(ByteConvConfig::tiny(), &mut rng);
            m.train(&pairs, 1, 5e-3, &mut rng)
        })
    });
    group.bench_function("gbdt_train", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            LightGbm::train(&samples, GbdtParams { trees: 20, ..GbdtParams::default() }, &mut rng)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_inference, bench_training);
criterion_main!(benches);
