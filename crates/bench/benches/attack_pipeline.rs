//! Cost of each MPass pipeline stage: modification (recovery + shuffle),
//! one optimization round, and a full attack against a trained target.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;
use mpass_bench::bench_fixture;
use mpass_core::modify::{modify, ModificationConfig};
use mpass_core::optimize::{EnsembleOptimizer, OptimizerConfig};
use mpass_core::{Attack, HardLabelTarget, MPassAttack, MPassConfig};
use mpass_detectors::train::training_pairs;
use mpass_detectors::{ByteConvConfig, MalConv, MalGcg, MalGcgConfig, WhiteBoxModel};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_pipeline(c: &mut Criterion) {
    let (ds, pool) = bench_fixture();
    let samples: Vec<_> = ds.samples.iter().collect();
    let pairs = training_pairs(&samples);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut malconv = MalConv::new(ByteConvConfig::tiny(), &mut rng);
    malconv.train(&pairs, 4, 5e-3, &mut rng);
    let mut malgcg = MalGcg::new(MalGcgConfig::tiny(), &mut rng);
    malgcg.train(&pairs, 4, 5e-3, &mut rng);
    let sample = ds.malware()[0];

    let mut group = c.benchmark_group("attack_pipeline");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(8));
    group.bench_function("modify", |b| {
        b.iter_batched(
            || ChaCha8Rng::seed_from_u64(2),
            |mut rng| modify(sample, &pool, &ModificationConfig::default(), &mut rng).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("optimize_round", |b| {
        b.iter_batched(
            || {
                let mut rng = ChaCha8Rng::seed_from_u64(2);
                modify(sample, &pool, &ModificationConfig::default(), &mut rng).unwrap()
            },
            |mut ms| {
                let models: Vec<&dyn WhiteBoxModel> = vec![&malgcg];
                let mut opt = EnsembleOptimizer::new(
                    models,
                    &ms,
                    OptimizerConfig { lr: 0.05, iterations: 2 },
                );
                opt.run(&mut ms)
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("full_attack_vs_malconv", |b| {
        b.iter(|| {
            let mut attack =
                MPassAttack::new(vec![&malgcg], &pool, MPassConfig::default());
            let mut target = HardLabelTarget::new(&malconv, 100);
            attack.attack(sample, &mut target)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
