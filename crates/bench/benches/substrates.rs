//! Microbenchmarks of the PE and MVM substrates.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mpass_bench::bench_fixture;
use mpass_core::recovery::{generate_recovery_stub, EncodedRegion};
use mpass_core::shuffle::{layout_sequential, layout_shuffled};
use mpass_pe::PeFile;
use mpass_vm::Vm;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_pe(c: &mut Criterion) {
    let (ds, _) = bench_fixture();
    let bytes = ds.samples[0].bytes.clone();
    let pe = ds.samples[0].pe().unwrap().clone();
    let mut group = c.benchmark_group("pe");
    group.bench_function("parse", |b| {
        b.iter(|| PeFile::parse(std::hint::black_box(&bytes)).unwrap())
    });
    group.bench_function("serialize", |b| b.iter(|| std::hint::black_box(&pe).to_bytes()));
    group.bench_function("map_image", |b| b.iter(|| std::hint::black_box(&pe).map_image()));
    group.bench_function("add_section", |b| {
        b.iter_batched(
            || pe.clone(),
            |mut pe| {
                pe.add_section(".bx", vec![0xAB; 1024], mpass_pe::SectionFlags::DATA).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("checksum", |b| b.iter(|| std::hint::black_box(&pe).compute_checksum()));
    group.finish();
}

fn bench_vm(c: &mut Criterion) {
    let (ds, _) = bench_fixture();
    let mut group = c.benchmark_group("vm");
    let pe = ds.malware()[0].pe().unwrap().clone();
    group.bench_function("execute_malware", |b| b.iter(|| Vm::load(&pe).run()));
    group.finish();
}

fn bench_stub(c: &mut Criterion) {
    let regions = [
        EncodedRegion { rva: 0x1000, len: 3000, key_rva: 0x8000 },
        EncodedRegion { rva: 0x3000, len: 2000, key_rva: 0x8C00 },
    ];
    let stub = generate_recovery_stub(&regions, 0x1000);
    let mut group = c.benchmark_group("stub");
    group.bench_function("generate", |b| {
        b.iter(|| generate_recovery_stub(std::hint::black_box(&regions), 0x1000))
    });
    group.bench_function("layout_sequential", |b| {
        b.iter(|| layout_sequential(std::hint::black_box(&stub), 0x9000))
    });
    group.bench_function("layout_shuffled", |b| {
        b.iter_batched(
            || ChaCha8Rng::seed_from_u64(7),
            |mut rng| {
                let mut filler = |len: usize| vec![0u8; len];
                layout_shuffled(&stub, 0x9000, 3, &mut filler, &mut rng)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_pe, bench_vm, bench_stub);
criterion_main!(benches);
