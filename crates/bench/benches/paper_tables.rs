//! One benchmark per paper table/figure: each runs the corresponding
//! experiment at reduced scale, timing the regeneration and printing the
//! regenerated numbers to stderr for eyeballing against the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use mpass_experiments::offline::Metric;
use mpass_experiments::{
    ablation, advtrain, commercial, functionality, learning, offline, packers, pem, World,
    WorldConfig,
};
use std::sync::OnceLock;
use std::time::Duration;

fn bench_world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut cfg = WorldConfig::quick();
        cfg.attack_samples = 2;
        World::build(cfg)
    })
}

fn bench_pem_ranking(c: &mut Criterion) {
    let world = bench_world();
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(10));
    group.bench_function("pem_ranking", |b| {
        b.iter(|| pem::run(world, 4));
    });
    group.finish();
    eprintln!("{}", pem::run(world, 4).summary());
}

fn bench_tables_1_2_3(c: &mut Criterion) {
    let world = bench_world();
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(10));
    group.bench_function("tables1_2_3_offline", |b| {
        b.iter(|| offline::run(world));
    });
    group.finish();
    let r = offline::run(world);
    eprintln!("{}", r.table(Metric::Asr));
    eprintln!("{}", r.table(Metric::Avq));
    eprintln!("{}", r.table(Metric::Apr));
    eprintln!("{}", functionality::run(&r).summary());
}

fn bench_fig3_commercial(c: &mut Criterion) {
    let world = bench_world();
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(10));
    group.bench_function("fig3_commercial_asr", |b| {
        b.iter(|| commercial::run(world));
    });
    group.finish();
    eprintln!("{}", commercial::run(world).figure3());
}

fn bench_fig4_learning(c: &mut Criterion) {
    let world = bench_world();
    let fig3 = commercial::run(world);
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(10));
    group.bench_function("fig4_learning", |b| {
        b.iter(|| learning::run(world, &fig3, 4));
    });
    group.finish();
}

fn bench_table4_packers(c: &mut Criterion) {
    let world = bench_world();
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(10));
    group.bench_function("table4_packers", |b| {
        b.iter(|| packers::run(world, None));
    });
    group.finish();
    eprintln!("{}", packers::run(world, None).table4());
}

fn bench_tables_5_6_ablation(c: &mut Criterion) {
    let world = bench_world();
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(10));
    group.bench_function("tables5_6_ablation", |b| {
        b.iter(|| ablation::run(world, None));
    });
    group.finish();
    let r = ablation::run(world, None);
    eprintln!("{}", r.table5());
    eprintln!("{}", r.table6());
}

fn bench_advtrain(c: &mut Criterion) {
    let world = bench_world();
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(10));
    group.bench_function("advtrain", |b| {
        b.iter(|| advtrain::run(world));
    });
    group.finish();
    eprintln!("{}", advtrain::run(world).summary());
}

criterion_group!(
    benches,
    bench_pem_ranking,
    bench_tables_1_2_3,
    bench_fig3_commercial,
    bench_fig4_learning,
    bench_table4_packers,
    bench_tables_5_6_ablation,
    bench_advtrain
);
criterion_main!(benches);
