//! Property tests of the MVM ISA: encoding round-trips, don't-care
//! robustness, and interpreter safety on arbitrary byte soup.

use mpass_vm::{disassemble, Asm, Instr, Reg, Vm, INSTR_SIZE};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..8).prop_map(|i| Reg::from_index(i).expect("in range"))
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (arb_reg(), any::<i32>()).prop_map(|(r, i)| Instr::Movi(r, i)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Instr::Mov(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Instr::Add(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Instr::Sub(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Instr::Xor(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Instr::Mul(a, b)),
        (arb_reg(), any::<i32>()).prop_map(|(r, i)| Instr::Addi(r, i)),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(a, b, i)| Instr::Ld8(a, b, i)),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(a, b, i)| Instr::St8(a, b, i)),
        any::<i32>().prop_map(Instr::Jmp),
        (arb_reg(), any::<i32>()).prop_map(|(r, i)| Instr::Jz(r, i)),
        (arb_reg(), any::<i32>()).prop_map(|(r, i)| Instr::Jnz(r, i)),
        any::<u16>().prop_map(|id| Instr::CallApi(mpass_vm::ApiId(id))),
        Just(Instr::Halt),
        Just(Instr::Nop),
        arb_reg().prop_map(Instr::Push),
        arb_reg().prop_map(Instr::Pop),
        any::<i32>().prop_map(Instr::Call),
        Just(Instr::Ret),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_round_trip(instr in arb_instr()) {
        let enc = instr.encode();
        prop_assert_eq!(Instr::decode(&enc).unwrap(), instr);
    }

    #[test]
    fn dont_care_bytes_never_change_decoding(instr in arb_instr(), junk in any::<[u8; 8]>()) {
        let mut enc = instr.encode();
        for (i, free) in instr.dont_care_mask().iter().enumerate() {
            if *free {
                enc[i] = junk[i];
            }
        }
        prop_assert_eq!(Instr::decode(&enc).unwrap(), instr);
    }

    #[test]
    fn disassemble_round_trips_programs(instrs in prop::collection::vec(arb_instr(), 1..64)) {
        let bytes: Vec<u8> = instrs.iter().flat_map(|i| i.encode()).collect();
        prop_assert_eq!(disassemble(&bytes).unwrap(), instrs);
    }

    /// The interpreter must never panic or loop forever on arbitrary
    /// memory images — it either halts, faults or hits the step limit.
    #[test]
    fn interpreter_is_total_on_byte_soup(
        image in prop::collection::vec(any::<u8>(), 64..2048),
        entry in 0u32..2048,
    ) {
        let exec = Vm::from_image(image, entry).with_step_limit(5_000).run();
        prop_assert!(exec.steps <= 5_000);
        // Any outcome is acceptable; reaching here means no panic/hang.
        let _ = exec.outcome;
    }

    /// Assembled straight-line programs (no jumps) always halt with one
    /// step per instruction.
    #[test]
    fn straight_line_programs_halt(
        instrs in prop::collection::vec(
            prop_oneof![
                (arb_reg(), any::<i32>()).prop_map(|(r, i)| Instr::Movi(r, i)),
                (arb_reg(), arb_reg()).prop_map(|(a, b)| Instr::Add(a, b)),
                (arb_reg(), arb_reg()).prop_map(|(a, b)| Instr::Xor(a, b)),
                Just(Instr::Nop),
            ],
            0..32,
        ),
    ) {
        let mut asm = Asm::new();
        for i in &instrs {
            asm.push(*i);
        }
        asm.push(Instr::Halt);
        let code = asm.assemble().unwrap();
        let mut mem = vec![0u8; 4096];
        mem[..code.len()].copy_from_slice(&code);
        let exec = Vm::from_image(mem, 0).run();
        prop_assert!(exec.completed());
        prop_assert_eq!(exec.steps as usize, instrs.len() + 1);
    }

    /// Store-then-load through arbitrary in-bounds addresses is identity.
    #[test]
    fn memory_round_trip(addr in 8u32..4000, value in any::<u8>()) {
        let mut asm = Asm::new();
        asm.push(Instr::Movi(Reg::R0, value as i32));
        asm.push(Instr::Movi(Reg::R1, addr as i32));
        asm.push(Instr::St8(Reg::R0, Reg::R1, 0));
        asm.push(Instr::Ld8(Reg::R2, Reg::R1, 0));
        asm.push(Instr::Halt);
        let code = asm.assemble().unwrap();
        let mut mem = vec![0u8; 4096];
        // Keep the program clear of the store target.
        prop_assume!(addr as usize >= code.len() || (addr as usize) < 4096 - INSTR_SIZE);
        mem[..code.len()].copy_from_slice(&code);
        let mut vm = Vm::from_image(mem, 0);
        let exec = vm.run_in_place();
        if addr as usize >= code.len() {
            prop_assert!(exec.completed());
            prop_assert_eq!(vm.regs()[2], value as u32);
        }
    }
}
