//! Property-style tests of the MVM ISA: encoding round-trips, don't-care
//! robustness, and interpreter safety on arbitrary byte soup. Cases are
//! drawn from a seeded ChaCha8 stream so every run explores the same
//! space deterministically.

use mpass_vm::{disassemble, Asm, Instr, Reg, Vm, INSTR_SIZE};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CASES: u64 = 256;

fn arb_reg(rng: &mut ChaCha8Rng) -> Reg {
    Reg::from_index(rng.gen_range(0..8u32) as u8).expect("in range")
}

fn arb_instr(rng: &mut ChaCha8Rng) -> Instr {
    match rng.gen_range(0..19u32) {
        0 => Instr::Movi(arb_reg(rng), rng.gen::<i32>()),
        1 => Instr::Mov(arb_reg(rng), arb_reg(rng)),
        2 => Instr::Add(arb_reg(rng), arb_reg(rng)),
        3 => Instr::Sub(arb_reg(rng), arb_reg(rng)),
        4 => Instr::Xor(arb_reg(rng), arb_reg(rng)),
        5 => Instr::Mul(arb_reg(rng), arb_reg(rng)),
        6 => Instr::Addi(arb_reg(rng), rng.gen::<i32>()),
        7 => Instr::Ld8(arb_reg(rng), arb_reg(rng), rng.gen::<i32>()),
        8 => Instr::St8(arb_reg(rng), arb_reg(rng), rng.gen::<i32>()),
        9 => Instr::Jmp(rng.gen::<i32>()),
        10 => Instr::Jz(arb_reg(rng), rng.gen::<i32>()),
        11 => Instr::Jnz(arb_reg(rng), rng.gen::<i32>()),
        12 => Instr::CallApi(mpass_vm::ApiId(rng.gen::<u16>())),
        13 => Instr::Halt,
        14 => Instr::Nop,
        15 => Instr::Push(arb_reg(rng)),
        16 => Instr::Pop(arb_reg(rng)),
        17 => Instr::Call(rng.gen::<i32>()),
        _ => Instr::Ret,
    }
}

#[test]
fn encode_decode_round_trip() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x15A1);
    for _ in 0..CASES {
        let instr = arb_instr(&mut rng);
        let enc = instr.encode();
        assert_eq!(Instr::decode(&enc).unwrap(), instr);
    }
}

#[test]
fn dont_care_bytes_never_change_decoding() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x15A2);
    for _ in 0..CASES {
        let instr = arb_instr(&mut rng);
        let junk: Vec<u8> = (0..8).map(|_| rng.gen::<u8>()).collect();
        let mut enc = instr.encode();
        for (i, free) in instr.dont_care_mask().iter().enumerate() {
            if *free {
                enc[i] = junk[i];
            }
        }
        assert_eq!(Instr::decode(&enc).unwrap(), instr);
    }
}

#[test]
fn disassemble_round_trips_programs() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x15A3);
    for _ in 0..CASES {
        let n = rng.gen_range(1..64);
        let instrs: Vec<Instr> = (0..n).map(|_| arb_instr(&mut rng)).collect();
        let bytes: Vec<u8> = instrs.iter().flat_map(|i| i.encode()).collect();
        assert_eq!(disassemble(&bytes).unwrap(), instrs);
    }
}

/// The interpreter must never panic or loop forever on arbitrary memory
/// images — it either halts, faults or hits the step limit.
#[test]
fn interpreter_is_total_on_byte_soup() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x15A4);
    for _ in 0..CASES {
        let len = rng.gen_range(64..2048);
        let image: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
        let entry = rng.gen_range(0..2048u32);
        let exec = Vm::from_image(image, entry).with_step_limit(5_000).run();
        assert!(exec.steps <= 5_000);
        // Any outcome is acceptable; reaching here means no panic/hang.
        let _ = exec.outcome;
    }
}

/// Assembled straight-line programs (no jumps) always halt with one step
/// per instruction.
#[test]
fn straight_line_programs_halt() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x15A5);
    for _ in 0..CASES {
        let n = rng.gen_range(0..32);
        let instrs: Vec<Instr> = (0..n)
            .map(|_| match rng.gen_range(0..4u32) {
                0 => Instr::Movi(arb_reg(&mut rng), rng.gen::<i32>()),
                1 => Instr::Add(arb_reg(&mut rng), arb_reg(&mut rng)),
                2 => Instr::Xor(arb_reg(&mut rng), arb_reg(&mut rng)),
                _ => Instr::Nop,
            })
            .collect();
        let mut asm = Asm::new();
        for i in &instrs {
            asm.push(*i);
        }
        asm.push(Instr::Halt);
        let code = asm.assemble().unwrap();
        let mut mem = vec![0u8; 4096];
        mem[..code.len()].copy_from_slice(&code);
        let exec = Vm::from_image(mem, 0).run();
        assert!(exec.completed());
        assert_eq!(exec.steps as usize, instrs.len() + 1);
    }
}

/// Store-then-load through arbitrary in-bounds addresses is identity.
#[test]
fn memory_round_trip() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x15A6);
    for _ in 0..CASES {
        let addr = rng.gen_range(8u32..4000);
        let value = rng.gen::<u8>();
        let mut asm = Asm::new();
        asm.push(Instr::Movi(Reg::R0, value as i32));
        asm.push(Instr::Movi(Reg::R1, addr as i32));
        asm.push(Instr::St8(Reg::R0, Reg::R1, 0));
        asm.push(Instr::Ld8(Reg::R2, Reg::R1, 0));
        asm.push(Instr::Halt);
        let code = asm.assemble().unwrap();
        let mut mem = vec![0u8; 4096];
        // Keep the program clear of the store target.
        if !(addr as usize >= code.len() || (addr as usize) < 4096 - INSTR_SIZE) {
            continue;
        }
        mem[..code.len()].copy_from_slice(&code);
        let mut vm = Vm::from_image(mem, 0);
        let exec = vm.run_in_place();
        if addr as usize >= code.len() {
            assert!(exec.completed());
            assert_eq!(vm.regs()[2], value as u32);
        }
    }
}
