//! # mpass-vm — the MVM execution substrate
//!
//! The MPass paper's central claim is *functionality preservation*: after
//! the attack encodes a malware's code and data sections and injects a
//! runtime-recovery stub, the modified binary must still exhibit the same
//! runtime behaviour. Verifying that claim requires actually *executing*
//! binaries — the paper uses a Cuckoo sandbox on real Windows malware; this
//! reproduction uses MVM, a compact register ISA whose programs live inside
//! PE code sections and whose "system calls" are numbered OS APIs.
//!
//! The crate provides:
//!
//! * [`Instr`] — the instruction set, with fixed 8-byte encoding
//!   ([`Instr::encode`] / [`Instr::decode`]) so that instruction-level
//!   shuffling and jump patching (MPass §III-C) are well defined,
//! * [`Asm`] — a label-resolving assembler for writing programs and stubs,
//! * [`disassemble`] — the inverse of assembly, used by the shuffle engine,
//! * [`Vm`] — the interpreter, which maps a PE image the way a loader
//!   would, executes from the entry point, and records the API-call
//!   [`trace`](Execution::trace) that the sandbox compares,
//! * [`ApiId`] — the API namespace with a benign/suspicious split that the
//!   synthetic corpus uses to plant ground-truth malicious behaviour,
//! * [`TraceSink`] and the stock sinks ([`RecordingSink`], [`DigestSink`],
//!   [`ComparingSink`]) — the event-listener interface that
//!   [`Vm::run_with_sink`] drives, so validation can stream a
//!   [`TraceDigest`] or abort on first divergence instead of materializing
//!   a trace vector.
//!
//! ## Example: assemble, run, observe behaviour
//!
//! ```
//! use mpass_vm::{Asm, Instr, Reg, Vm, api};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut asm = Asm::new();
//! asm.push(Instr::Movi(Reg::R0, 42));
//! asm.push(Instr::CallApi(api::MESSAGE_BOX));
//! asm.push(Instr::Halt);
//! let code = asm.assemble()?;
//!
//! let mut pe = mpass_pe::PeBuilder::new();
//! pe.add_section(".text", code, mpass_pe::SectionFlags::CODE)?;
//! pe.set_entry_section(".text", 0)?;
//! let pe = pe.build()?;
//!
//! let exec = Vm::load(&pe).run();
//! assert!(exec.completed());
//! assert_eq!(exec.trace.len(), 1);
//! assert_eq!(exec.trace[0].api, api::MESSAGE_BOX);
//! # Ok(())
//! # }
//! ```
//!
//! ## Hostile input
//!
//! The VM executes attacker-controlled bytes, so the crate is total: no
//! input reachable from untrusted data can panic, and every execution
//! terminates under the [`VmLimits`] resource ceilings (step budget,
//! memory ceiling, trace cap, jump-chain depth) with a typed
//! [`Outcome`] — see [`Outcome::ResourceExhausted`].

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod api;
mod asm;
mod interp;
mod isa;
pub mod sink;

pub use api::{ApiEvent, ApiId};
pub use asm::{Asm, AsmError};
pub use interp::{
    Execution, Outcome, Resource, RunSummary, Vm, VmFault, VmLimits, DEFAULT_JUMP_CHAIN_LIMIT,
    DEFAULT_MEMORY_LIMIT, DEFAULT_STEP_LIMIT, DEFAULT_TRACE_LIMIT,
};
pub use isa::{disassemble, DecodeError, Instr, Reg, INSTR_SIZE};
pub use sink::{
    ComparingSink, DigestSink, RecordingSink, ReferenceTrace, SinkControl, TraceDigest, TraceSink,
    TRACE_DIGEST_VERSION,
};
