//! A small label-resolving assembler for MVM programs.
//!
//! Programs (and the MPass recovery stub) are written as sequences of
//! [`Instr`] plus symbolic jump targets; [`Asm::assemble`] resolves labels
//! into PC-relative displacements.

use crate::isa::{Instr, INSTR_SIZE};
use std::collections::HashMap;
use std::fmt;

/// Errors from assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A jump references a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// A symbolic jump was requested on an instruction without a relative
    /// target field.
    NotAJump(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label {l:?}"),
            AsmError::DuplicateLabel(l) => write!(f, "label {l:?} defined twice"),
            AsmError::NotAJump(l) => {
                write!(f, "symbolic target {l:?} attached to a non-jump instruction")
            }
        }
    }
}

impl std::error::Error for AsmError {}

/// One assembler item: a literal instruction, optionally carrying a
/// symbolic target to resolve.
#[derive(Debug, Clone)]
struct Item {
    instr: Instr,
    target: Option<String>,
}

/// Label-resolving assembler.
///
/// ```
/// use mpass_vm::{Asm, Instr, Reg};
/// # fn main() -> Result<(), mpass_vm::AsmError> {
/// let mut asm = Asm::new();
/// asm.push(Instr::Movi(Reg::R0, 3));
/// asm.label("loop");
/// asm.push(Instr::Addi(Reg::R0, -1));
/// asm.jump_to(Instr::Jnz(Reg::R0, 0), "loop");
/// asm.push(Instr::Halt);
/// let bytes = asm.assemble()?;
/// assert_eq!(bytes.len(), 4 * 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Asm {
    items: Vec<Item>,
    labels: HashMap<String, usize>,
    errors: Vec<AsmError>,
}

impl Asm {
    /// Create an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a literal instruction.
    pub fn push(&mut self, instr: Instr) -> &mut Self {
        self.items.push(Item { instr, target: None });
        self
    }

    /// Append a control-transfer instruction whose displacement will be
    /// resolved to `label`. The displacement inside `instr` is ignored.
    pub fn jump_to(&mut self, instr: Instr, label: &str) -> &mut Self {
        if instr.relative_target().is_none() {
            self.errors.push(AsmError::NotAJump(label.to_owned()));
        }
        self.items.push(Item { instr, target: Some(label.to_owned()) });
        self
    }

    /// Define `label` at the current position.
    pub fn label(&mut self, label: &str) -> &mut Self {
        if self.labels.insert(label.to_owned(), self.items.len()).is_some() {
            self.errors.push(AsmError::DuplicateLabel(label.to_owned()));
        }
        self
    }

    /// Number of instructions appended so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no instructions have been appended.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Resolve every symbolic target into a concrete instruction list.
    fn resolve(&self) -> Result<Vec<Instr>, AsmError> {
        if let Some(e) = self.errors.first() {
            return Err(e.clone());
        }
        let mut out = Vec::with_capacity(self.items.len());
        for (idx, item) in self.items.iter().enumerate() {
            let instr = match &item.target {
                None => item.instr,
                Some(label) => {
                    let target_idx = *self
                        .labels
                        .get(label)
                        .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
                    let next = (idx + 1) * INSTR_SIZE;
                    let disp = target_idx as i64 * INSTR_SIZE as i64 - next as i64;
                    item.instr
                        .with_relative_target(disp as i32)
                        .ok_or_else(|| AsmError::NotAJump(label.clone()))?
                }
            };
            out.push(instr);
        }
        Ok(out)
    }

    /// Resolve labels and emit the encoded program.
    ///
    /// # Errors
    ///
    /// Returns the first recorded [`AsmError`] (undefined/duplicate label,
    /// symbolic target on a non-jump).
    pub fn assemble(&self) -> Result<Vec<u8>, AsmError> {
        let instrs = self.resolve()?;
        let mut out = Vec::with_capacity(instrs.len() * INSTR_SIZE);
        for instr in &instrs {
            out.extend_from_slice(&instr.encode());
        }
        Ok(out)
    }

    /// Resolve labels and return the instruction list (used by tests and
    /// the shuffle engine, which operates on instructions rather than
    /// bytes).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Asm::assemble`].
    pub fn instructions(&self) -> Result<Vec<Instr>, AsmError> {
        self.resolve()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut asm = Asm::new();
        asm.label("start");
        asm.push(Instr::Movi(Reg::R0, 1));
        asm.jump_to(Instr::Jmp(0), "end");
        asm.jump_to(Instr::Jmp(0), "start");
        asm.label("end");
        asm.push(Instr::Halt);
        let instrs = asm.instructions().unwrap();
        // jmp "end": at idx 1, target idx 3 → (3-2)*8 = +8
        assert_eq!(instrs[1], Instr::Jmp(8));
        // jmp "start": at idx 2, target idx 0 → (0-3)*8 = -24
        assert_eq!(instrs[2], Instr::Jmp(-24));
    }

    #[test]
    fn zero_displacement_falls_through() {
        let mut asm = Asm::new();
        asm.jump_to(Instr::Jmp(0), "next");
        asm.label("next");
        asm.push(Instr::Halt);
        assert_eq!(asm.instructions().unwrap()[0], Instr::Jmp(0));
    }

    #[test]
    fn undefined_label_errors() {
        let mut asm = Asm::new();
        asm.jump_to(Instr::Jmp(0), "nowhere");
        assert_eq!(asm.assemble(), Err(AsmError::UndefinedLabel("nowhere".into())));
    }

    #[test]
    fn duplicate_label_errors() {
        let mut asm = Asm::new();
        asm.label("x");
        asm.push(Instr::Nop);
        asm.label("x");
        assert_eq!(asm.assemble(), Err(AsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn non_jump_with_target_errors() {
        let mut asm = Asm::new();
        asm.jump_to(Instr::Nop, "x");
        asm.label("x");
        assert_eq!(asm.assemble(), Err(AsmError::NotAJump("x".into())));
    }

    #[test]
    fn literal_displacements_pass_through() {
        let mut asm = Asm::new();
        asm.push(Instr::Jmp(16));
        asm.push(Instr::Halt);
        assert_eq!(asm.instructions().unwrap()[0], Instr::Jmp(16));
    }
}
