//! Event-listener tracing: the [`TraceSink`] interface the interpreter
//! drives, and the stock sinks built on it.
//!
//! [`Vm::run_with_sink`](crate::Vm::run_with_sink) pushes every API event
//! at a sink as it happens instead of materializing an owned
//! `Vec<ApiEvent>`. The sink decides what to retain and whether execution
//! should continue:
//!
//! * [`RecordingSink`] materializes the trace and enforces the trace-length
//!   ceiling — it reproduces the pre-sink `Execution::trace` bit for bit
//!   and is what [`Vm::run`](crate::Vm::run) drives internally,
//! * [`DigestSink`] folds every event into a streaming [`TraceDigest`]
//!   (FNV-1a over the `(api, arg)` pairs plus an event count) in O(1)
//!   memory — the cheap path for trace *equality* at campaign scale,
//! * [`ComparingSink`] locks onto a [`ReferenceTrace`] and aborts the run
//!   at the first divergent event, so a broken candidate fails in as many
//!   steps as it takes to reach the divergence instead of running to its
//!   natural end.
//!
//! The dispatch is monomorphized (`run_with_sink` is generic over the
//! sink), so a sink whose [`TraceSink::on_step`] is the default no-op pays
//! nothing for it.

use crate::api::ApiEvent;
use crate::interp::{Resource, VmFault};
use serde::{Deserialize, Serialize};

/// Version tag of the trace digest format. Folded into the digest's
/// initial state, so digests computed under different versions never
/// compare equal by accident. Bump when the absorbed byte layout changes.
pub const TRACE_DIGEST_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming digest of an API trace: a 64-bit FNV-1a hash over each
/// event's `(api, arg)` bytes plus the event count, computed in O(1)
/// memory. Two digests are equal exactly when the traces they were fed
/// are equal (up to the negligible 64-bit collision probability — pinned
/// against full trace comparison by property test).
///
/// The hash state is seeded from [`TRACE_DIGEST_VERSION`], so persisted
/// digests from an incompatible format version cannot collide with
/// current ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceDigest {
    /// FNV-1a hash over the event stream.
    pub hash: u64,
    /// Number of events absorbed.
    pub events: u64,
}

impl TraceDigest {
    /// The digest of an empty trace.
    pub fn empty() -> TraceDigest {
        let mut hash = FNV_OFFSET;
        for b in TRACE_DIGEST_VERSION.to_le_bytes() {
            hash = (hash ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        TraceDigest { hash, events: 0 }
    }

    /// Fold one event into the digest.
    pub fn absorb(&mut self, event: ApiEvent) {
        let mut hash = self.hash;
        for b in event.api.0.to_le_bytes() {
            hash = (hash ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        for b in event.arg.to_le_bytes() {
            hash = (hash ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self.hash = hash;
        self.events += 1;
    }

    /// Digest an already-materialized trace (the batch twin of feeding a
    /// [`DigestSink`] event by event).
    pub fn of_trace(events: &[ApiEvent]) -> TraceDigest {
        let mut digest = TraceDigest::empty();
        for e in events {
            digest.absorb(*e);
        }
        digest
    }
}

impl Default for TraceDigest {
    fn default() -> Self {
        TraceDigest::empty()
    }
}

/// What a sink tells the interpreter after receiving an API event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkControl {
    /// Keep executing.
    Continue,
    /// The sink's recording capacity is exhausted: terminate with
    /// `Outcome::ResourceExhausted(Resource::Trace)`. The event that
    /// tripped the ceiling is *not* recorded and the API's pseudo-result
    /// is not applied — exactly the pre-sink trace-limit behaviour.
    Exhausted,
    /// The sink has learned what it needs (e.g. a divergence): terminate
    /// with `Outcome::Aborted`. The aborting event is likewise not
    /// applied.
    Abort,
}

/// An event listener driven by [`Vm::run_with_sink`](crate::Vm::run_with_sink).
///
/// Callback contract, in interpreter order:
///
/// 1. [`on_step`](TraceSink::on_step) fires once per decoded instruction,
///    after the step counter increments and before the instruction
///    executes (so a fault inside the instruction still follows its
///    `on_step`).
/// 2. [`on_api_event`](TraceSink::on_api_event) fires for every `CallApi`
///    with the event that *would* be traced; its [`SinkControl`] decides
///    whether the call takes effect and the run continues.
/// 3. Exactly one of [`on_fault`](TraceSink::on_fault) /
///    [`on_exhausted`](TraceSink::on_exhausted) fires when the run ends
///    abnormally (nothing fires for a clean halt, a step-limit stop, or a
///    sink-requested abort — the caller sees those in the returned
///    outcome).
pub trait TraceSink {
    /// An API call is about to take effect. The returned [`SinkControl`]
    /// decides whether it does.
    fn on_api_event(&mut self, event: ApiEvent) -> SinkControl;

    /// One instruction was decoded and charged against the step budget.
    /// `steps` is the post-increment counter. Default: no-op.
    fn on_step(&mut self, steps: u64) {
        let _ = steps;
    }

    /// The run is terminating with a fault. Default: no-op.
    fn on_fault(&mut self, fault: VmFault) {
        let _ = fault;
    }

    /// The run is terminating because a governed resource ceiling
    /// tripped. Default: no-op.
    fn on_exhausted(&mut self, resource: Resource) {
        let _ = resource;
    }
}

/// The materializing sink: records every event into a `Vec<ApiEvent>` and
/// enforces a trace-length ceiling, reproducing the pre-sink
/// `Execution::trace` (and its `ResourceExhausted(Trace)` termination)
/// bit for bit.
#[derive(Debug, Clone)]
pub struct RecordingSink {
    trace: Vec<ApiEvent>,
    limit: usize,
}

impl RecordingSink {
    /// Record up to `limit` events, then report exhaustion — the value to
    /// pass is `VmLimits::trace_limit`.
    pub fn with_limit(limit: usize) -> RecordingSink {
        RecordingSink { trace: Vec::new(), limit }
    }

    /// Record without a ceiling (callers that bound the run elsewhere).
    pub fn unbounded() -> RecordingSink {
        Self::with_limit(usize::MAX)
    }

    /// The events recorded so far.
    pub fn trace(&self) -> &[ApiEvent] {
        &self.trace
    }

    /// Consume the sink, yielding the recorded trace.
    pub fn into_trace(self) -> Vec<ApiEvent> {
        self.trace
    }
}

impl TraceSink for RecordingSink {
    fn on_api_event(&mut self, event: ApiEvent) -> SinkControl {
        if self.trace.len() >= self.limit {
            return SinkControl::Exhausted;
        }
        self.trace.push(event);
        SinkControl::Continue
    }
}

/// The streaming sink: folds every event into a [`TraceDigest`] in O(1)
/// memory. It enforces no trace ceiling — there is nothing to allocate,
/// so an API flood is bounded by the step budget alone.
#[derive(Debug, Clone, Default)]
pub struct DigestSink {
    digest: TraceDigest,
}

impl DigestSink {
    /// A fresh sink with the empty digest.
    pub fn new() -> DigestSink {
        DigestSink::default()
    }

    /// The digest of everything absorbed so far.
    pub fn digest(&self) -> TraceDigest {
        self.digest
    }
}

impl TraceSink for DigestSink {
    fn on_api_event(&mut self, event: ApiEvent) -> SinkControl {
        self.digest.absorb(event);
        SinkControl::Continue
    }
}

/// A baseline trace prepared for streaming comparison: the recorded event
/// stream plus its [`TraceDigest`]. Computed once per original sample and
/// locked against by any number of [`ComparingSink`] candidate runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReferenceTrace {
    digest: TraceDigest,
    events: Vec<ApiEvent>,
}

impl ReferenceTrace {
    /// Build a reference from a recorded trace.
    pub fn from_trace(events: Vec<ApiEvent>) -> ReferenceTrace {
        ReferenceTrace { digest: TraceDigest::of_trace(&events), events }
    }

    /// The digest of the full reference stream.
    pub fn digest(&self) -> TraceDigest {
        self.digest
    }

    /// The reference events.
    pub fn events(&self) -> &[ApiEvent] {
        &self.events
    }

    /// Number of reference events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the reference trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The early-abort sink: checks each incoming event against a
/// [`ReferenceTrace`] and aborts the run at the first divergence —
/// whether a mismatched event or an event past the reference's end — so
/// broken candidates cost only the steps up to the divergence.
///
/// After the run, [`matches`](ComparingSink::matches) reports whether the
/// candidate's stream was exactly the reference (a completed run with
/// `matches() == true` implies digest equality by construction), and
/// [`first_divergence`](ComparingSink::first_divergence) recovers the
/// event index a full vector comparison would have reported.
#[derive(Debug, Clone)]
pub struct ComparingSink<'a> {
    reference: &'a ReferenceTrace,
    matched: usize,
    diverged: bool,
}

impl<'a> ComparingSink<'a> {
    /// Lock onto `reference`.
    pub fn new(reference: &'a ReferenceTrace) -> ComparingSink<'a> {
        ComparingSink { reference, matched: 0, diverged: false }
    }

    /// Events matched against the reference so far.
    pub fn matched(&self) -> usize {
        self.matched
    }

    /// True when the observed stream ended as exactly the reference
    /// stream (no divergence, every reference event consumed).
    pub fn matches(&self) -> bool {
        !self.diverged && self.matched == self.reference.len()
    }

    /// The index of the first divergent event, in the convention of the
    /// vector comparison this sink replaces: the position of the first
    /// mismatch, or the shorter stream's length when one stream is a
    /// proper prefix of the other. `None` when the streams agree.
    pub fn first_divergence(&self) -> Option<usize> {
        if self.diverged || self.matched < self.reference.len() {
            Some(self.matched)
        } else {
            None
        }
    }
}

impl TraceSink for ComparingSink<'_> {
    fn on_api_event(&mut self, event: ApiEvent) -> SinkControl {
        match self.reference.events().get(self.matched) {
            Some(expected) if *expected == event => {
                self.matched += 1;
                SinkControl::Continue
            }
            _ => {
                // Mismatch, or the candidate outran the reference: either
                // way the streams differ at index `matched`.
                self.diverged = true;
                SinkControl::Abort
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{self, ApiId};

    fn ev(api: ApiId, arg: u32) -> ApiEvent {
        ApiEvent { api, arg }
    }

    #[test]
    fn digest_is_order_and_value_sensitive() {
        let a = ev(api::READ_FILE, 1);
        let b = ev(api::WRITE_FILE, 1);
        let c = ev(api::READ_FILE, 2);
        assert_eq!(TraceDigest::of_trace(&[a, b]), TraceDigest::of_trace(&[a, b]));
        assert_ne!(TraceDigest::of_trace(&[a, b]), TraceDigest::of_trace(&[b, a]));
        assert_ne!(TraceDigest::of_trace(&[a]), TraceDigest::of_trace(&[c]));
        assert_ne!(TraceDigest::of_trace(&[]), TraceDigest::of_trace(&[a]));
    }

    #[test]
    fn digest_counts_events_and_streams_like_batch() {
        let events = [ev(api::READ_FILE, 7), ev(api::HTTP_EXFILTRATE, 9), ev(api::READ_FILE, 7)];
        let mut sink = DigestSink::new();
        for e in events {
            assert_eq!(sink.on_api_event(e), SinkControl::Continue);
        }
        assert_eq!(sink.digest(), TraceDigest::of_trace(&events));
        assert_eq!(sink.digest().events, 3);
    }

    #[test]
    fn empty_digest_is_version_seeded() {
        // The empty digest must not be the bare FNV offset basis, or a
        // version bump could leave stale persisted digests comparable.
        assert_ne!(TraceDigest::empty().hash, FNV_OFFSET);
        assert_eq!(TraceDigest::empty(), TraceDigest::of_trace(&[]));
    }

    #[test]
    fn recording_sink_enforces_its_ceiling() {
        let mut sink = RecordingSink::with_limit(2);
        assert_eq!(sink.on_api_event(ev(api::READ_FILE, 0)), SinkControl::Continue);
        assert_eq!(sink.on_api_event(ev(api::READ_FILE, 1)), SinkControl::Continue);
        assert_eq!(sink.on_api_event(ev(api::READ_FILE, 2)), SinkControl::Exhausted);
        // The tripping event is not recorded.
        assert_eq!(sink.trace().len(), 2);
    }

    #[test]
    fn comparing_sink_aborts_at_first_divergence() {
        let reference =
            ReferenceTrace::from_trace(vec![ev(api::READ_FILE, 1), ev(api::HTTP_EXFILTRATE, 2)]);
        let mut sink = ComparingSink::new(&reference);
        assert_eq!(sink.on_api_event(ev(api::READ_FILE, 1)), SinkControl::Continue);
        assert_eq!(sink.on_api_event(ev(api::HTTP_EXFILTRATE, 99)), SinkControl::Abort);
        assert!(!sink.matches());
        assert_eq!(sink.first_divergence(), Some(1));
    }

    #[test]
    fn comparing_sink_flags_prefix_and_overrun() {
        let reference =
            ReferenceTrace::from_trace(vec![ev(api::READ_FILE, 1), ev(api::HTTP_EXFILTRATE, 2)]);
        // Candidate stops short: no abort, but no match either.
        let mut short = ComparingSink::new(&reference);
        assert_eq!(short.on_api_event(ev(api::READ_FILE, 1)), SinkControl::Continue);
        assert!(!short.matches());
        assert_eq!(short.first_divergence(), Some(1));
        // Candidate outruns the reference: abort at the extra event.
        let mut long = ComparingSink::new(&reference);
        assert_eq!(long.on_api_event(ev(api::READ_FILE, 1)), SinkControl::Continue);
        assert_eq!(long.on_api_event(ev(api::HTTP_EXFILTRATE, 2)), SinkControl::Continue);
        assert_eq!(long.on_api_event(ev(api::READ_FILE, 3)), SinkControl::Abort);
        assert_eq!(long.first_divergence(), Some(2));
        // Exact consumption matches.
        let mut exact = ComparingSink::new(&reference);
        exact.on_api_event(ev(api::READ_FILE, 1));
        exact.on_api_event(ev(api::HTTP_EXFILTRATE, 2));
        assert!(exact.matches());
        assert_eq!(exact.first_divergence(), None);
    }

    #[test]
    fn reference_trace_exposes_digest_and_events() {
        let events = vec![ev(api::READ_FILE, 1)];
        let r = ReferenceTrace::from_trace(events.clone());
        assert_eq!(r.digest(), TraceDigest::of_trace(&events));
        assert_eq!(r.events(), &events[..]);
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }
}
