//! The MVM instruction set and its fixed-width binary encoding.
//!
//! Every instruction occupies exactly [`INSTR_SIZE`] bytes:
//! `[opcode, a, b, c, imm₀, imm₁, imm₂, imm₃]` with a little-endian signed
//! 32-bit immediate. The fixed width is a deliberate substrate choice: the
//! MPass shuffle strategy permutes individual instructions and patches
//! relative jumps, which requires unambiguous instruction boundaries.
//!
//! Control flow is PC-relative: a jump with immediate `d` transfers to
//! `address_of_next_instruction + d`. Relative addressing is exactly what
//! the shuffle engine must re-patch when instructions move (§III-C).

use crate::api::ApiId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Size in bytes of every encoded instruction.
pub const INSTR_SIZE: usize = 8;

/// One of the eight MVM general-purpose registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
}

impl Reg {
    /// All registers in index order.
    pub const ALL: [Reg; 8] =
        [Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6, Reg::R7];

    /// The register's index 0..8.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Register from an index.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::BadRegister`] for indices ≥ 8.
    pub fn from_index(i: u8) -> Result<Reg, DecodeError> {
        Reg::ALL.get(i as usize).copied().ok_or(DecodeError::BadRegister(i))
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

/// Errors from decoding instruction bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Register field out of range.
    BadRegister(u8),
    /// Fewer than [`INSTR_SIZE`] bytes available.
    Truncated(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::BadRegister(r) => write!(f, "register index {r} out of range"),
            DecodeError::Truncated(n) => write!(f, "need {INSTR_SIZE} bytes, found {n}"),
        }
    }
}

impl std::error::Error for DecodeError {}

mod op {
    pub const MOVI: u8 = 0x01;
    pub const MOV: u8 = 0x02;
    pub const ADD: u8 = 0x03;
    pub const SUB: u8 = 0x04;
    pub const XOR: u8 = 0x05;
    pub const AND: u8 = 0x06;
    pub const OR: u8 = 0x07;
    pub const SHL: u8 = 0x08;
    pub const SHR: u8 = 0x09;
    pub const MUL: u8 = 0x0A;
    pub const ADDI: u8 = 0x0B;
    pub const LD8: u8 = 0x10;
    pub const ST8: u8 = 0x11;
    pub const LD32: u8 = 0x12;
    pub const ST32: u8 = 0x13;
    pub const JMP: u8 = 0x20;
    pub const JZ: u8 = 0x21;
    pub const JNZ: u8 = 0x22;
    pub const JLT: u8 = 0x23;
    pub const CALLAPI: u8 = 0x30;
    pub const HALT: u8 = 0x31;
    pub const NOP: u8 = 0x32;
    pub const PUSH: u8 = 0x40;
    pub const POP: u8 = 0x41;
    pub const CALL: u8 = 0x42;
    pub const RET: u8 = 0x43;
}

/// An MVM instruction.
///
/// Arithmetic wraps (two's complement); `Sub` is the workhorse of the
/// MPass recovery module, which restores original bytes via
/// `x = b − k` exactly as Eq. (recovery) in §III-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instr {
    /// `r[a] = imm`
    Movi(Reg, i32),
    /// `r[a] = r[b]`
    Mov(Reg, Reg),
    /// `r[a] += r[b]` (wrapping)
    Add(Reg, Reg),
    /// `r[a] -= r[b]` (wrapping)
    Sub(Reg, Reg),
    /// `r[a] ^= r[b]`
    Xor(Reg, Reg),
    /// `r[a] &= r[b]`
    And(Reg, Reg),
    /// `r[a] |= r[b]`
    Or(Reg, Reg),
    /// `r[a] <<= (r[b] & 31)`
    Shl(Reg, Reg),
    /// `r[a] >>= (r[b] & 31)` (logical)
    Shr(Reg, Reg),
    /// `r[a] *= r[b]` (wrapping)
    Mul(Reg, Reg),
    /// `r[a] += imm` (wrapping)
    Addi(Reg, i32),
    /// `r[a] = mem8[r[b] + imm]` (zero-extended)
    Ld8(Reg, Reg, i32),
    /// `mem8[r[b] + imm] = low8(r[a])`
    St8(Reg, Reg, i32),
    /// `r[a] = mem32[r[b] + imm]` (little-endian)
    Ld32(Reg, Reg, i32),
    /// `mem32[r[b] + imm] = r[a]`
    St32(Reg, Reg, i32),
    /// `pc = next + imm`
    Jmp(i32),
    /// `if r[a] == 0 { pc = next + imm }`
    Jz(Reg, i32),
    /// `if r[a] != 0 { pc = next + imm }`
    Jnz(Reg, i32),
    /// `if r[a] < r[b] { pc = next + imm }` (unsigned)
    Jlt(Reg, Reg, i32),
    /// Invoke OS API `id` with args `r0..r3`; result in `r0`.
    CallApi(ApiId),
    /// Stop execution successfully.
    Halt,
    /// No operation.
    Nop,
    /// Push `r[a]` on the data stack.
    Push(Reg),
    /// Pop the data stack into `r[a]`.
    Pop(Reg),
    /// Push return address, `pc = next + imm`.
    Call(i32),
    /// Pop return address into `pc`.
    Ret,
}

impl Instr {
    /// Encode into the fixed 8-byte form.
    pub fn encode(&self) -> [u8; INSTR_SIZE] {
        let (opc, a, b, c, imm): (u8, u8, u8, u8, i32) = match *self {
            Instr::Movi(r, imm) => (op::MOVI, r.index() as u8, 0, 0, imm),
            Instr::Mov(a, b) => (op::MOV, a.index() as u8, b.index() as u8, 0, 0),
            Instr::Add(a, b) => (op::ADD, a.index() as u8, b.index() as u8, 0, 0),
            Instr::Sub(a, b) => (op::SUB, a.index() as u8, b.index() as u8, 0, 0),
            Instr::Xor(a, b) => (op::XOR, a.index() as u8, b.index() as u8, 0, 0),
            Instr::And(a, b) => (op::AND, a.index() as u8, b.index() as u8, 0, 0),
            Instr::Or(a, b) => (op::OR, a.index() as u8, b.index() as u8, 0, 0),
            Instr::Shl(a, b) => (op::SHL, a.index() as u8, b.index() as u8, 0, 0),
            Instr::Shr(a, b) => (op::SHR, a.index() as u8, b.index() as u8, 0, 0),
            Instr::Mul(a, b) => (op::MUL, a.index() as u8, b.index() as u8, 0, 0),
            Instr::Addi(r, imm) => (op::ADDI, r.index() as u8, 0, 0, imm),
            Instr::Ld8(a, b, imm) => (op::LD8, a.index() as u8, b.index() as u8, 0, imm),
            Instr::St8(a, b, imm) => (op::ST8, a.index() as u8, b.index() as u8, 0, imm),
            Instr::Ld32(a, b, imm) => (op::LD32, a.index() as u8, b.index() as u8, 0, imm),
            Instr::St32(a, b, imm) => (op::ST32, a.index() as u8, b.index() as u8, 0, imm),
            Instr::Jmp(imm) => (op::JMP, 0, 0, 0, imm),
            Instr::Jz(r, imm) => (op::JZ, r.index() as u8, 0, 0, imm),
            Instr::Jnz(r, imm) => (op::JNZ, r.index() as u8, 0, 0, imm),
            Instr::Jlt(a, b, imm) => (op::JLT, a.index() as u8, b.index() as u8, 0, imm),
            Instr::CallApi(id) => (op::CALLAPI, 0, 0, 0, id.0 as i32),
            Instr::Halt => (op::HALT, 0, 0, 0, 0),
            Instr::Nop => (op::NOP, 0, 0, 0, 0),
            Instr::Push(r) => (op::PUSH, r.index() as u8, 0, 0, 0),
            Instr::Pop(r) => (op::POP, r.index() as u8, 0, 0, 0),
            Instr::Call(imm) => (op::CALL, 0, 0, 0, imm),
            Instr::Ret => (op::RET, 0, 0, 0, 0),
        };
        let i = imm.to_le_bytes();
        [opc, a, b, c, i[0], i[1], i[2], i[3]]
    }

    /// Decode from an 8-byte slice.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] for truncated input, unknown opcodes or bad register
    /// indices.
    pub fn decode(bytes: &[u8]) -> Result<Instr, DecodeError> {
        if bytes.len() < INSTR_SIZE {
            return Err(DecodeError::Truncated(bytes.len()));
        }
        let imm = i32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        let ra = || Reg::from_index(bytes[1]);
        let rb = || Reg::from_index(bytes[2]);
        Ok(match bytes[0] {
            op::MOVI => Instr::Movi(ra()?, imm),
            op::MOV => Instr::Mov(ra()?, rb()?),
            op::ADD => Instr::Add(ra()?, rb()?),
            op::SUB => Instr::Sub(ra()?, rb()?),
            op::XOR => Instr::Xor(ra()?, rb()?),
            op::AND => Instr::And(ra()?, rb()?),
            op::OR => Instr::Or(ra()?, rb()?),
            op::SHL => Instr::Shl(ra()?, rb()?),
            op::SHR => Instr::Shr(ra()?, rb()?),
            op::MUL => Instr::Mul(ra()?, rb()?),
            op::ADDI => Instr::Addi(ra()?, imm),
            op::LD8 => Instr::Ld8(ra()?, rb()?, imm),
            op::ST8 => Instr::St8(ra()?, rb()?, imm),
            op::LD32 => Instr::Ld32(ra()?, rb()?, imm),
            op::ST32 => Instr::St32(ra()?, rb()?, imm),
            op::JMP => Instr::Jmp(imm),
            op::JZ => Instr::Jz(ra()?, imm),
            op::JNZ => Instr::Jnz(ra()?, imm),
            op::JLT => Instr::Jlt(ra()?, rb()?, imm),
            op::CALLAPI => Instr::CallApi(ApiId(imm as u16)),
            op::HALT => Instr::Halt,
            op::NOP => Instr::Nop,
            op::PUSH => Instr::Push(ra()?),
            op::POP => Instr::Pop(ra()?),
            op::CALL => Instr::Call(imm),
            op::RET => Instr::Ret,
            other => return Err(DecodeError::BadOpcode(other)),
        })
    }

    /// Which bytes of the 8-byte encoding the decoder *ignores* for this
    /// instruction (unused register fields, unused immediate bytes).
    ///
    /// Ignored bytes may hold arbitrary values without changing semantics
    /// — [`Instr::decode`] reconstructs the same instruction. The MPass
    /// shuffle strategy randomizes them per sample so the recovery stub
    /// has no fixed byte pattern for adaptive AVs to learn (§III-C).
    pub fn dont_care_mask(&self) -> [bool; INSTR_SIZE] {
        // Encoding layout: [op, a, b, c, imm0, imm1, imm2, imm3].
        let (a, b, c, imm) = match *self {
            // a + imm used.
            Instr::Movi(..) | Instr::Addi(..) | Instr::Jz(..) | Instr::Jnz(..) => {
                (false, true, true, false)
            }
            // a + b used.
            Instr::Mov(..)
            | Instr::Add(..)
            | Instr::Sub(..)
            | Instr::Xor(..)
            | Instr::And(..)
            | Instr::Or(..)
            | Instr::Shl(..)
            | Instr::Shr(..)
            | Instr::Mul(..) => (false, false, true, true),
            // a + b + imm used.
            Instr::Ld8(..) | Instr::St8(..) | Instr::Ld32(..) | Instr::St32(..)
            | Instr::Jlt(..) => (false, false, true, false),
            // imm only.
            Instr::Jmp(..) | Instr::Call(..) => (true, true, true, false),
            // low 16 bits of imm only (ApiId is u16).
            Instr::CallApi(..) => (true, true, true, false),
            // a only.
            Instr::Push(..) | Instr::Pop(..) => (false, true, true, true),
            // opcode only.
            Instr::Halt | Instr::Nop | Instr::Ret => (true, true, true, true),
        };
        // CallApi's imm bytes 2..4 are ignored (u16 truncation).
        let api_hi = matches!(self, Instr::CallApi(..));
        [false, a, b, c, imm, imm, imm || api_hi, imm || api_hi]
    }

    /// The PC-relative jump displacement carried by this instruction, if it
    /// is a control-transfer instruction whose target moves with code
    /// layout. Used by the shuffle engine's relative-address patching.
    pub fn relative_target(&self) -> Option<i32> {
        match *self {
            Instr::Jmp(d)
            | Instr::Jz(_, d)
            | Instr::Jnz(_, d)
            | Instr::Jlt(_, _, d)
            | Instr::Call(d) => Some(d),
            _ => None,
        }
    }

    /// Replace the relative displacement of a control-transfer instruction.
    ///
    /// Returns `None` for instructions that carry no relative target —
    /// exactly those for which [`Instr::relative_target`] is `None` — so
    /// callers handle the mismatch as data instead of a panic path.
    pub fn with_relative_target(&self, d: i32) -> Option<Instr> {
        match *self {
            Instr::Jmp(_) => Some(Instr::Jmp(d)),
            Instr::Jz(r, _) => Some(Instr::Jz(r, d)),
            Instr::Jnz(r, _) => Some(Instr::Jnz(r, d)),
            Instr::Jlt(a, b, _) => Some(Instr::Jlt(a, b, d)),
            Instr::Call(_) => Some(Instr::Call(d)),
            _ => None,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Movi(r, i) => write!(f, "movi {r}, {i}"),
            Instr::Mov(a, b) => write!(f, "mov {a}, {b}"),
            Instr::Add(a, b) => write!(f, "add {a}, {b}"),
            Instr::Sub(a, b) => write!(f, "sub {a}, {b}"),
            Instr::Xor(a, b) => write!(f, "xor {a}, {b}"),
            Instr::And(a, b) => write!(f, "and {a}, {b}"),
            Instr::Or(a, b) => write!(f, "or {a}, {b}"),
            Instr::Shl(a, b) => write!(f, "shl {a}, {b}"),
            Instr::Shr(a, b) => write!(f, "shr {a}, {b}"),
            Instr::Mul(a, b) => write!(f, "mul {a}, {b}"),
            Instr::Addi(r, i) => write!(f, "addi {r}, {i}"),
            Instr::Ld8(a, b, i) => write!(f, "ld8 {a}, [{b}{i:+}]"),
            Instr::St8(a, b, i) => write!(f, "st8 [{b}{i:+}], {a}"),
            Instr::Ld32(a, b, i) => write!(f, "ld32 {a}, [{b}{i:+}]"),
            Instr::St32(a, b, i) => write!(f, "st32 [{b}{i:+}], {a}"),
            Instr::Jmp(i) => write!(f, "jmp {i:+}"),
            Instr::Jz(r, i) => write!(f, "jz {r}, {i:+}"),
            Instr::Jnz(r, i) => write!(f, "jnz {r}, {i:+}"),
            Instr::Jlt(a, b, i) => write!(f, "jlt {a}, {b}, {i:+}"),
            Instr::CallApi(id) => write!(f, "callapi {}", id.name()),
            Instr::Halt => write!(f, "halt"),
            Instr::Nop => write!(f, "nop"),
            Instr::Push(r) => write!(f, "push {r}"),
            Instr::Pop(r) => write!(f, "pop {r}"),
            Instr::Call(i) => write!(f, "call {i:+}"),
            Instr::Ret => write!(f, "ret"),
        }
    }
}

/// Decode a whole buffer of back-to-back instructions.
///
/// # Errors
///
/// Fails on the first undecodable instruction; the buffer length must be a
/// multiple of [`INSTR_SIZE`] to decode fully (a trailing partial
/// instruction yields [`DecodeError::Truncated`]).
pub fn disassemble(bytes: &[u8]) -> Result<Vec<Instr>, DecodeError> {
    let mut out = Vec::with_capacity(bytes.len() / INSTR_SIZE);
    let mut at = 0;
    while at < bytes.len() {
        out.push(Instr::decode(&bytes[at..])?);
        at += INSTR_SIZE;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api;

    fn all_variants() -> Vec<Instr> {
        use Instr::*;
        vec![
            Movi(Reg::R0, -7),
            Mov(Reg::R1, Reg::R2),
            Add(Reg::R3, Reg::R4),
            Sub(Reg::R5, Reg::R6),
            Xor(Reg::R7, Reg::R0),
            And(Reg::R1, Reg::R1),
            Or(Reg::R2, Reg::R3),
            Shl(Reg::R4, Reg::R5),
            Shr(Reg::R6, Reg::R7),
            Mul(Reg::R0, Reg::R1),
            Addi(Reg::R2, 1024),
            Ld8(Reg::R3, Reg::R4, 16),
            St8(Reg::R5, Reg::R6, -16),
            Ld32(Reg::R7, Reg::R0, 0),
            St32(Reg::R1, Reg::R2, 4),
            Jmp(-8),
            Jz(Reg::R3, 24),
            Jnz(Reg::R4, -24),
            Jlt(Reg::R5, Reg::R6, 8),
            CallApi(api::READ_FILE),
            Halt,
            Nop,
            Push(Reg::R7),
            Pop(Reg::R0),
            Call(64),
            Ret,
        ]
    }

    #[test]
    fn encode_decode_round_trip_every_variant() {
        for i in all_variants() {
            let enc = i.encode();
            assert_eq!(Instr::decode(&enc).unwrap(), i, "{i}");
        }
    }

    #[test]
    fn disassemble_round_trip() {
        let instrs = all_variants();
        let bytes: Vec<u8> = instrs.iter().flat_map(|i| i.encode()).collect();
        assert_eq!(disassemble(&bytes).unwrap(), instrs);
    }

    #[test]
    fn bad_opcode_rejected() {
        let bytes = [0xFFu8, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(Instr::decode(&bytes), Err(DecodeError::BadOpcode(0xFF)));
    }

    #[test]
    fn bad_register_rejected() {
        let mut bytes = Instr::Mov(Reg::R0, Reg::R0).encode();
        bytes[1] = 9;
        assert_eq!(Instr::decode(&bytes), Err(DecodeError::BadRegister(9)));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(Instr::decode(&[1, 2, 3]), Err(DecodeError::Truncated(3)));
        let bytes: Vec<u8> = Instr::Halt.encode()[..5].to_vec();
        let mut full = Instr::Nop.encode().to_vec();
        full.extend_from_slice(&bytes);
        assert!(matches!(disassemble(&full), Err(DecodeError::Truncated(_))));
    }

    #[test]
    fn relative_target_accessors() {
        assert_eq!(Instr::Jmp(16).relative_target(), Some(16));
        assert_eq!(Instr::Jz(Reg::R0, -8).relative_target(), Some(-8));
        assert_eq!(Instr::Halt.relative_target(), None);
        assert_eq!(Instr::Jmp(16).with_relative_target(24), Some(Instr::Jmp(24)));
        assert_eq!(
            Instr::Jlt(Reg::R1, Reg::R2, 0).with_relative_target(-40),
            Some(Instr::Jlt(Reg::R1, Reg::R2, -40))
        );
    }

    #[test]
    fn with_relative_target_is_none_on_non_jump() {
        assert_eq!(Instr::Nop.with_relative_target(8), None);
        assert_eq!(Instr::Halt.with_relative_target(0), None);
        assert_eq!(Instr::Ret.with_relative_target(-8), None);
    }

    #[test]
    fn dont_care_bytes_really_dont_matter() {
        // Filling every don't-care byte with arbitrary junk must decode to
        // the same instruction.
        for i in all_variants() {
            let mask = i.dont_care_mask();
            assert!(!mask[0], "opcode is never a don't-care");
            let mut enc = i.encode();
            for (j, &free) in mask.iter().enumerate() {
                if free {
                    enc[j] = 0xA5u8.wrapping_add(j as u8).wrapping_mul(37);
                }
            }
            assert_eq!(Instr::decode(&enc).unwrap(), i, "{i}");
        }
    }

    #[test]
    fn used_bytes_are_not_marked_dont_care() {
        // Changing a *used* byte must change the decoded instruction (or
        // make it invalid) — spot-check a few.
        let i = Instr::Movi(Reg::R1, 7);
        let mask = i.dont_care_mask();
        assert!(!mask[1], "register field is used");
        assert!(!mask[4], "immediate is used");
        let j = Instr::Jmp(16);
        assert!(j.dont_care_mask()[1], "jmp register fields are free");
        assert!(!j.dont_care_mask()[4], "jmp displacement is used");
        let c = Instr::CallApi(crate::api::READ_FILE);
        assert!(!c.dont_care_mask()[4], "api id low byte is used");
        assert!(c.dont_care_mask()[6], "api id upper bytes are free");
    }

    #[test]
    fn display_is_nonempty() {
        for i in all_variants() {
            assert!(!i.to_string().is_empty());
        }
    }

    #[test]
    fn negative_immediates_survive() {
        let i = Instr::Movi(Reg::R7, i32::MIN);
        assert_eq!(Instr::decode(&i.encode()).unwrap(), i);
        let j = Instr::Jmp(-1);
        assert_eq!(Instr::decode(&j.encode()).unwrap(), j);
    }
}
