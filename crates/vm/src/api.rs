//! The OS API namespace that MVM programs call into.
//!
//! MVM "system calls" are numbered APIs split into a benign set and a
//! suspicious set. The synthetic corpus plants suspicious-API call
//! sequences as ground-truth malicious behaviour; the sandbox records the
//! API-call sequence as the behaviour trace that must be preserved by
//! function-preserving attacks.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one OS API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ApiId(pub u16);

macro_rules! apis {
    ($($konst:ident = $id:expr, $name:expr, $susp:expr;)*) => {
        $(
            #[doc = concat!("The `", $name, "` API.")]
            pub const $konst: ApiId = ApiId($id);
        )*

        /// All defined API identifiers.
        pub const ALL: &[ApiId] = &[$($konst),*];

        impl ApiId {
            /// Human-readable API name; unknown ids format as `api_<n>`.
            pub fn name(self) -> String {
                match self.0 {
                    $($id => $name.to_owned(),)*
                    other => format!("api_{other}"),
                }
            }

            /// Whether this API belongs to the suspicious set (the
            /// behaviours malware exhibits and detectors key on).
            pub fn is_suspicious(self) -> bool {
                match self.0 {
                    $($id => $susp,)*
                    _ => false,
                }
            }

            /// Whether the id is one of the defined APIs.
            // The macro expands each id literal separately; whether they
            // form a contiguous range depends on the invocation.
            #[allow(clippy::manual_range_patterns)]
            pub fn is_known(self) -> bool {
                matches!(self.0, $($id)|*)
            }
        }
    };
}

apis! {
    // ---- benign APIs (1..=16) ----
    CREATE_WINDOW = 1, "CreateWindow", false;
    READ_FILE = 2, "ReadFile", false;
    WRITE_FILE = 3, "WriteFile", false;
    GET_SYSTEM_TIME = 4, "GetSystemTime", false;
    LOAD_LIBRARY = 5, "LoadLibrary", false;
    GET_PROC_ADDRESS = 6, "GetProcAddress", false;
    MESSAGE_BOX = 7, "MessageBox", false;
    REG_QUERY_VALUE = 8, "RegQueryValue", false;
    OPEN_FILE = 9, "OpenFile", false;
    CLOSE_HANDLE = 10, "CloseHandle", false;
    SLEEP = 11, "Sleep", false;
    GET_USER_NAME = 12, "GetUserName", false;
    CREATE_THREAD = 13, "CreateThread", false;
    PRINT_CONSOLE = 14, "PrintConsole", false;
    ALLOC_MEM = 15, "AllocMem", false;
    FREE_MEM = 16, "FreeMem", false;
    // ---- suspicious APIs (17..=32) ----
    REG_SET_PERSIST = 17, "RegSetValuePersist", true;
    CREATE_REMOTE_THREAD = 18, "CreateRemoteThread", true;
    HTTP_EXFILTRATE = 19, "HttpExfiltrate", true;
    ENCRYPT_USER_FILES = 20, "EncryptUserFiles", true;
    KEYLOG_START = 21, "KeyLogStart", true;
    DISABLE_DEFENDER = 22, "DisableDefender", true;
    INJECT_SHELLCODE = 23, "InjectShellcode", true;
    OPEN_PROCESS_TOKEN = 24, "OpenProcessToken", true;
    WALLET_SCAN = 25, "CryptoWalletScan", true;
    SCREEN_CAPTURE = 26, "ScreenCapture", true;
    DOWNLOAD_EXECUTE = 27, "DownloadExecute", true;
    DELETE_SHADOW_COPIES = 28, "DeleteShadowCopies", true;
    REVERSE_SHELL = 29, "SpawnReverseShell", true;
    HOOK_KEYBOARD = 30, "HookKeyboard", true;
    SELF_REPLICATE = 31, "SelfReplicate", true;
    MODIFY_HOSTS = 32, "ModifyHostsFile", true;
}

/// The benign API subset.
pub fn benign() -> Vec<ApiId> {
    ALL.iter().copied().filter(|a| !a.is_suspicious()).collect()
}

/// The suspicious API subset.
pub fn suspicious() -> Vec<ApiId> {
    ALL.iter().copied().filter(|a| a.is_suspicious()).collect()
}

impl fmt::Display for ApiId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// One recorded API invocation: the behaviour-trace unit the sandbox
/// compares between original malware and its adversarial example.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ApiEvent {
    /// Which API was invoked.
    pub api: ApiId,
    /// The first argument register (`r0`) at call time. Including one
    /// argument in the trace makes behaviour comparison sensitive to data
    /// corruption, not just control flow.
    pub arg: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_and_suspicious_partition_all() {
        let b = benign();
        let s = suspicious();
        assert_eq!(b.len() + s.len(), ALL.len());
        assert!(b.iter().all(|a| !a.is_suspicious()));
        assert!(s.iter().all(|a| a.is_suspicious()));
        assert_eq!(ALL.len(), 32);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = ALL.iter().map(|a| a.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ALL.len());
    }

    #[test]
    fn unknown_api_formats_and_is_not_suspicious() {
        let id = ApiId(999);
        assert_eq!(id.name(), "api_999");
        assert!(!id.is_suspicious());
        assert!(!id.is_known());
    }

    #[test]
    fn known_examples() {
        assert!(ENCRYPT_USER_FILES.is_suspicious());
        assert!(!READ_FILE.is_suspicious());
        assert!(READ_FILE.is_known());
        assert_eq!(READ_FILE.to_string(), "ReadFile");
    }
}
