//! The MVM interpreter: loads a PE image the way the OS loader would and
//! executes from the entry point, recording the API-call behaviour trace.

use crate::api::{ApiEvent, ApiId};
use crate::isa::{Instr, Reg, INSTR_SIZE};
use crate::sink::{RecordingSink, SinkControl, TraceDigest, TraceSink};
use mpass_pe::PeFile;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default bound on executed instructions, generous enough for every
/// corpus program plus recovery stubs over full code/data sections.
pub const DEFAULT_STEP_LIMIT: u64 = 20_000_000;

/// Default ceiling on the mapped image size. A hostile `size_of_image` can
/// claim up to 4 GiB of virtual space; no corpus or attack-produced image
/// approaches this bound.
pub const DEFAULT_MEMORY_LIMIT: usize = 256 << 20;

/// Default cap on recorded API events. Every API call costs a step, so the
/// trace can never outgrow the step limit; this bound keeps the trace
/// allocation itself governed when callers raise the step limit.
pub const DEFAULT_TRACE_LIMIT: usize = 4_000_000;

/// Default cap on *consecutive* taken control transfers. A program that
/// branches this many times without executing a single non-jump instruction
/// is doing no work; the cap breaks hostile jump chains long before the
/// step limit would.
pub const DEFAULT_JUMP_CHAIN_LIMIT: u64 = 1_000_000;

/// Resource ceilings applied to one execution. Every bound terminates the
/// run gracefully with [`Outcome::ResourceExhausted`] (or
/// [`Outcome::StepLimit`] for the step budget) — never a panic or an
/// unbounded allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmLimits {
    /// Maximum instructions executed before the run counts as a hang.
    pub step_limit: u64,
    /// Maximum mapped image size in bytes.
    pub memory_limit: usize,
    /// Maximum recorded API events.
    pub trace_limit: usize,
    /// Maximum consecutive taken control transfers.
    pub jump_chain_limit: u64,
}

impl Default for VmLimits {
    fn default() -> Self {
        VmLimits {
            step_limit: DEFAULT_STEP_LIMIT,
            memory_limit: DEFAULT_MEMORY_LIMIT,
            trace_limit: DEFAULT_TRACE_LIMIT,
            jump_chain_limit: DEFAULT_JUMP_CHAIN_LIMIT,
        }
    }
}

/// Which governed resource an execution ran out of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Resource {
    /// The image exceeded [`VmLimits::memory_limit`] at load time.
    Memory,
    /// The API trace reached [`VmLimits::trace_limit`].
    Trace,
    /// Consecutive taken jumps exceeded [`VmLimits::jump_chain_limit`].
    JumpChain,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Memory => write!(f, "memory ceiling"),
            Resource::Trace => write!(f, "trace length cap"),
            Resource::JumpChain => write!(f, "jump-chain depth cap"),
        }
    }
}

/// A fault that terminates execution abnormally. Any fault on an
/// adversarial example that the original did not exhibit means the attack
/// destroyed functionality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VmFault {
    /// PC left the mapped image or was mid-instruction at the image edge.
    PcOutOfBounds(u32),
    /// A taken jump landed strictly inside an 8-byte instruction slot of
    /// the sequential stream it is executing in (overlapping-instruction
    /// execution); carries the offending target address. Jumps that leave
    /// the current stream re-anchor the slot grid instead — instruction
    /// streams have no global alignment (packer stubs start at arbitrary
    /// byte offsets).
    MisalignedPc(u32),
    /// The bytes at PC did not decode to an instruction.
    IllegalInstruction(u32),
    /// A load/store touched an unmapped address.
    MemoryOutOfBounds(u32),
    /// `Pop`/`Ret` on an empty stack.
    StackUnderflow,
    /// The data or call stack grew past its bound.
    StackOverflow,
}

impl fmt::Display for VmFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmFault::PcOutOfBounds(pc) => write!(f, "pc {pc:#x} outside mapped image"),
            VmFault::MisalignedPc(pc) => {
                write!(f, "pc {pc:#x} inside an instruction slot")
            }
            VmFault::IllegalInstruction(pc) => write!(f, "illegal instruction at {pc:#x}"),
            VmFault::MemoryOutOfBounds(a) => write!(f, "memory access at {a:#x} out of bounds"),
            VmFault::StackUnderflow => write!(f, "stack underflow"),
            VmFault::StackOverflow => write!(f, "stack overflow"),
        }
    }
}

impl std::error::Error for VmFault {}

/// How an execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// A `halt` instruction was reached.
    Halted,
    /// Execution faulted.
    Faulted(VmFault),
    /// The step limit was exhausted (treated as a hang).
    StepLimit,
    /// A governed resource ceiling was reached (treated as a hang, but the
    /// variant records which bound tripped).
    ResourceExhausted(Resource),
    /// A [`TraceSink`] requested termination ([`SinkControl::Abort`]) —
    /// e.g. a comparing sink that observed its first divergent event.
    Aborted,
}

/// The result of running a program: outcome, step count and the API trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Execution {
    /// Terminal condition.
    pub outcome: Outcome,
    /// Number of instructions executed.
    pub steps: u64,
    /// Recorded API calls in order.
    pub trace: Vec<ApiEvent>,
}

impl Execution {
    /// True when the program ran to a clean `halt`.
    pub fn completed(&self) -> bool {
        self.outcome == Outcome::Halted
    }

    /// The subsequence of suspicious API calls — the "malicious behaviour"
    /// the sandbox checks for. Borrows the trace; call `.count()` for the
    /// old `Vec` length or `.collect()` for the events themselves.
    pub fn suspicious_calls(&self) -> impl Iterator<Item = ApiEvent> + '_ {
        self.trace.iter().copied().filter(|e| e.api.is_suspicious())
    }

    /// The streaming digest of this execution's trace (what a
    /// [`crate::DigestSink`]-driven run of the same program reports).
    pub fn digest(&self) -> TraceDigest {
        TraceDigest::of_trace(&self.trace)
    }
}

/// Outcome and step count of a sink-driven run: what is left of
/// [`Execution`] once the trace lives in the sink instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Terminal condition.
    pub outcome: Outcome,
    /// Number of instructions executed.
    pub steps: u64,
}

impl RunSummary {
    /// True when the program ran to a clean `halt`.
    pub fn completed(&self) -> bool {
        self.outcome == Outcome::Halted
    }
}

const STACK_LIMIT: usize = 64 * 1024;

/// The MVM virtual machine.
///
/// Address space: the PE image mapped at address 0 (RVA addressing), i.e.
/// headers at 0 and every section at its RVA, with virtual-only space
/// zero-filled. All of it is readable and writable — runtime unpacking,
/// which both the MPass recovery module and the simulated packers rely on,
/// writes over code.
#[derive(Debug, Clone)]
pub struct Vm {
    memory: Vec<u8>,
    regs: [u32; 8],
    pc: u32,
    data_stack: Vec<u32>,
    call_stack: Vec<u32>,
    limits: VmLimits,
    /// Set when the image blew the memory ceiling at load time; the first
    /// call to run reports [`Outcome::ResourceExhausted`] without stepping.
    oversized: bool,
}

impl Vm {
    /// Map `pe` into a fresh VM, with the PC at the PE entry point, under
    /// the default [`VmLimits`].
    pub fn load(pe: &PeFile) -> Vm {
        Self::load_with(pe, VmLimits::default())
    }

    /// Map `pe` under explicit resource `limits`. An image whose mapped
    /// size exceeds [`VmLimits::memory_limit`] is not mapped at all; the VM
    /// reports [`Outcome::ResourceExhausted`]`(`[`Resource::Memory`]`)` at
    /// zero steps instead of allocating.
    pub fn load_with(pe: &PeFile, limits: VmLimits) -> Vm {
        let (memory, oversized) = match pe.map_image_bounded(limits.memory_limit) {
            Ok(m) => (m, false),
            Err(_) => (Vec::new(), true),
        };
        Vm {
            memory,
            regs: [0; 8],
            pc: pe.entry_point(),
            data_stack: Vec::new(),
            call_stack: Vec::new(),
            limits,
            oversized,
        }
    }

    /// Map any [`BinaryFormat`] image under explicit resource `limits`:
    /// the format-neutral twin of [`Vm::load_with`]. The flat address
    /// space works the same for every container — sections at their
    /// virtual addresses, zero fill elsewhere — so Mach-O images execute
    /// through the identical interpreter path as PEs.
    pub fn load_binary(image: &dyn mpass_binfmt::BinaryFormat, limits: VmLimits) -> Vm {
        let (memory, oversized) = match image.map_image_bounded(limits.memory_limit) {
            Ok(m) => (m, false),
            Err(_) => (Vec::new(), true),
        };
        Vm {
            memory,
            regs: [0; 8],
            pc: u32::try_from(image.entry_point()).unwrap_or(u32::MAX),
            data_stack: Vec::new(),
            call_stack: Vec::new(),
            limits,
            oversized,
        }
    }

    /// Construct from a raw flat memory image and entry address (used by
    /// unit tests and fuzzing). The caller already owns the allocation, so
    /// no memory ceiling applies.
    pub fn from_image(memory: Vec<u8>, entry: u32) -> Vm {
        Vm {
            memory,
            regs: [0; 8],
            pc: entry,
            data_stack: Vec::new(),
            call_stack: Vec::new(),
            limits: VmLimits::default(),
            oversized: false,
        }
    }

    /// Override the instruction budget.
    pub fn with_step_limit(mut self, limit: u64) -> Vm {
        self.limits.step_limit = limit;
        self
    }

    /// Replace the full set of resource ceilings.
    pub fn with_limits(mut self, limits: VmLimits) -> Vm {
        self.limits = limits;
        self
    }

    /// The resource ceilings this VM runs under.
    pub fn limits(&self) -> VmLimits {
        self.limits
    }

    /// Current register file (read-only view for assertions).
    pub fn regs(&self) -> &[u32; 8] {
        &self.regs
    }

    /// The VM memory after execution (used to assert in-place recovery).
    pub fn memory(&self) -> &[u8] {
        &self.memory
    }

    fn read8(&self, addr: u32) -> Result<u8, VmFault> {
        self.memory.get(addr as usize).copied().ok_or(VmFault::MemoryOutOfBounds(addr))
    }

    fn write8(&mut self, addr: u32, v: u8) -> Result<(), VmFault> {
        match self.memory.get_mut(addr as usize) {
            Some(slot) => {
                *slot = v;
                Ok(())
            }
            None => Err(VmFault::MemoryOutOfBounds(addr)),
        }
    }

    fn read32(&self, addr: u32) -> Result<u32, VmFault> {
        let a = addr as usize;
        if a + 4 > self.memory.len() {
            return Err(VmFault::MemoryOutOfBounds(addr));
        }
        Ok(u32::from_le_bytes([
            self.memory[a],
            self.memory[a + 1],
            self.memory[a + 2],
            self.memory[a + 3],
        ]))
    }

    fn write32(&mut self, addr: u32, v: u32) -> Result<(), VmFault> {
        let a = addr as usize;
        if a + 4 > self.memory.len() {
            return Err(VmFault::MemoryOutOfBounds(addr));
        }
        self.memory[a..a + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Execute until halt, fault or step limit; consumes the VM's transient
    /// state but leaves memory/registers inspectable afterwards via
    /// [`Vm::memory`] / [`Vm::regs`] when called through
    /// [`Vm::run_in_place`].
    pub fn run(mut self) -> Execution {
        self.run_in_place()
    }

    /// Like [`Vm::run`] but borrows, so memory and registers can be
    /// inspected afterwards. Drives a [`RecordingSink`] bounded by
    /// [`VmLimits::trace_limit`] — the sink-era spelling of the original
    /// trace-vector interpreter, bit-for-bit including the
    /// [`Resource::Trace`] exhaustion behaviour.
    pub fn run_in_place(&mut self) -> Execution {
        let mut sink = RecordingSink::with_limit(self.limits.trace_limit);
        let run = self.run_with_sink(&mut sink);
        Execution { outcome: run.outcome, steps: run.steps, trace: sink.into_trace() }
    }

    /// Execute until halt, fault, step limit — or until `sink` ends the
    /// run. Every API event is pushed at the sink as it happens instead of
    /// into an owned vector; see [`TraceSink`] for the callback contract.
    ///
    /// The call is monomorphized over the sink type, so sinks with no-op
    /// observers cost nothing beyond their `on_api_event` body.
    pub fn run_with_sink<S: TraceSink>(&mut self, sink: &mut S) -> RunSummary {
        let mut steps: u64 = 0;
        if self.oversized {
            sink.on_exhausted(Resource::Memory);
            return RunSummary { outcome: Outcome::ResourceExhausted(Resource::Memory), steps };
        }
        // Termination helpers: notify the sink, then surface the outcome.
        fn faulted<S: TraceSink>(sink: &mut S, fault: VmFault, steps: u64) -> RunSummary {
            sink.on_fault(fault);
            RunSummary { outcome: Outcome::Faulted(fault), steps }
        }
        fn exhausted<S: TraceSink>(sink: &mut S, res: Resource, steps: u64) -> RunSummary {
            sink.on_exhausted(res);
            RunSummary { outcome: Outcome::ResourceExhausted(res), steps }
        }
        let mut jump_chain: u64 = 0;
        // First instruction address of the sequential stream currently
        // executing; every slot in the stream sits at anchor + k·8.
        let mut stream_anchor: u32 = self.pc;
        loop {
            if steps >= self.limits.step_limit {
                return RunSummary { outcome: Outcome::StepLimit, steps };
            }
            let pc = self.pc;
            let end = pc as usize + INSTR_SIZE;
            if end > self.memory.len() {
                return faulted(sink, VmFault::PcOutOfBounds(pc), steps);
            }
            let instr = match Instr::decode(&self.memory[pc as usize..end]) {
                Ok(i) => i,
                Err(_) => return faulted(sink, VmFault::IllegalInstruction(pc), steps),
            };
            steps += 1;
            sink.on_step(steps);
            let next = pc.wrapping_add(INSTR_SIZE as u32);
            self.pc = next;
            let r = |reg: Reg| self.regs[reg.index()];
            let mut taken = false;
            match instr {
                Instr::Movi(a, imm) => self.regs[a.index()] = imm as u32,
                Instr::Mov(a, b) => self.regs[a.index()] = r(b),
                Instr::Add(a, b) => self.regs[a.index()] = r(a).wrapping_add(r(b)),
                Instr::Sub(a, b) => self.regs[a.index()] = r(a).wrapping_sub(r(b)),
                Instr::Xor(a, b) => self.regs[a.index()] = r(a) ^ r(b),
                Instr::And(a, b) => self.regs[a.index()] = r(a) & r(b),
                Instr::Or(a, b) => self.regs[a.index()] = r(a) | r(b),
                Instr::Shl(a, b) => self.regs[a.index()] = r(a) << (r(b) & 31),
                Instr::Shr(a, b) => self.regs[a.index()] = r(a) >> (r(b) & 31),
                Instr::Mul(a, b) => self.regs[a.index()] = r(a).wrapping_mul(r(b)),
                Instr::Addi(a, imm) => {
                    self.regs[a.index()] = r(a).wrapping_add(imm as u32)
                }
                Instr::Ld8(a, b, imm) => {
                    let addr = r(b).wrapping_add(imm as u32);
                    match self.read8(addr) {
                        Ok(v) => self.regs[a.index()] = v as u32,
                        Err(f) => return faulted(sink, f, steps),
                    }
                }
                Instr::St8(a, b, imm) => {
                    let addr = r(b).wrapping_add(imm as u32);
                    if let Err(f) = self.write8(addr, r(a) as u8) {
                        return faulted(sink, f, steps);
                    }
                }
                Instr::Ld32(a, b, imm) => {
                    let addr = r(b).wrapping_add(imm as u32);
                    match self.read32(addr) {
                        Ok(v) => self.regs[a.index()] = v,
                        Err(f) => return faulted(sink, f, steps),
                    }
                }
                Instr::St32(a, b, imm) => {
                    let addr = r(b).wrapping_add(imm as u32);
                    if let Err(f) = self.write32(addr, r(a)) {
                        return faulted(sink, f, steps);
                    }
                }
                Instr::Jmp(d) => {
                    self.pc = next.wrapping_add(d as u32);
                    taken = true;
                }
                Instr::Jz(a, d) => {
                    if r(a) == 0 {
                        self.pc = next.wrapping_add(d as u32);
                        taken = true;
                    }
                }
                Instr::Jnz(a, d) => {
                    if r(a) != 0 {
                        self.pc = next.wrapping_add(d as u32);
                        taken = true;
                    }
                }
                Instr::Jlt(a, b, d) => {
                    if r(a) < r(b) {
                        self.pc = next.wrapping_add(d as u32);
                        taken = true;
                    }
                }
                Instr::CallApi(id) => {
                    match sink.on_api_event(ApiEvent { api: id, arg: self.regs[0] }) {
                        SinkControl::Continue => {
                            // Deterministic pseudo-result so data flow
                            // through API results is reproducible.
                            self.regs[0] = api_result(id, self.regs[0]);
                        }
                        // The refusing sink did not record the event, so
                        // the call must not take effect either.
                        SinkControl::Exhausted => {
                            return exhausted(sink, Resource::Trace, steps)
                        }
                        SinkControl::Abort => {
                            return RunSummary { outcome: Outcome::Aborted, steps }
                        }
                    }
                }
                Instr::Halt => {
                    return RunSummary { outcome: Outcome::Halted, steps };
                }
                Instr::Nop => {}
                Instr::Push(a) => {
                    if self.data_stack.len() >= STACK_LIMIT {
                        return faulted(sink, VmFault::StackOverflow, steps);
                    }
                    self.data_stack.push(r(a));
                }
                Instr::Pop(a) => match self.data_stack.pop() {
                    Some(v) => self.regs[a.index()] = v,
                    None => return faulted(sink, VmFault::StackUnderflow, steps),
                },
                Instr::Call(d) => {
                    if self.call_stack.len() >= STACK_LIMIT {
                        return faulted(sink, VmFault::StackOverflow, steps);
                    }
                    self.call_stack.push(next);
                    self.pc = next.wrapping_add(d as u32);
                    taken = true;
                }
                Instr::Ret => match self.call_stack.pop() {
                    Some(addr) => {
                        self.pc = addr;
                        taken = true;
                    }
                    None => return faulted(sink, VmFault::StackUnderflow, steps),
                },
            }
            if taken {
                let target = self.pc;
                if target >= stream_anchor && target < next {
                    // Landing inside the span this stream already executed:
                    // the target must sit on the stream's slot grid.
                    if !target.wrapping_sub(stream_anchor).is_multiple_of(INSTR_SIZE as u32) {
                        return faulted(sink, VmFault::MisalignedPc(target), steps);
                    }
                } else {
                    // Leaving the stream: the target starts a new one.
                    stream_anchor = target;
                }
                jump_chain += 1;
                if jump_chain > self.limits.jump_chain_limit {
                    return exhausted(sink, Resource::JumpChain, steps);
                }
            } else {
                jump_chain = 0;
            }
        }
    }
}

/// Deterministic pseudo-result an API returns, mixing the id and argument.
fn api_result(id: ApiId, arg: u32) -> u32 {
    let x = (id.0 as u32).wrapping_mul(0x9E37_79B9) ^ arg.rotate_left(13);
    x.wrapping_add(0x7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api;
    use crate::asm::Asm;

    fn run_program(asm: &Asm) -> (Execution, Vm) {
        let code = asm.assemble().unwrap();
        let mut mem = vec![0u8; 4096];
        mem[..code.len()].copy_from_slice(&code);
        let mut vm = Vm::from_image(mem, 0);
        let exec = vm.run_in_place();
        (exec, vm)
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut asm = Asm::new();
        asm.push(Instr::Movi(Reg::R0, 10));
        asm.push(Instr::Movi(Reg::R1, 4));
        asm.push(Instr::Sub(Reg::R0, Reg::R1));
        asm.push(Instr::Halt);
        let (exec, vm) = run_program(&asm);
        assert!(exec.completed());
        assert_eq!(vm.regs()[0], 6);
        assert_eq!(exec.steps, 4);
    }

    #[test]
    fn wrapping_arithmetic() {
        let mut asm = Asm::new();
        asm.push(Instr::Movi(Reg::R0, -1));
        asm.push(Instr::Movi(Reg::R1, 2));
        asm.push(Instr::Add(Reg::R0, Reg::R1));
        asm.push(Instr::Halt);
        let (_, vm) = run_program(&asm);
        assert_eq!(vm.regs()[0], 1);
    }

    #[test]
    fn loop_decrements_to_zero() {
        let mut asm = Asm::new();
        asm.push(Instr::Movi(Reg::R0, 5));
        asm.push(Instr::Movi(Reg::R2, 0));
        asm.label("loop");
        asm.push(Instr::Addi(Reg::R0, -1));
        asm.push(Instr::Addi(Reg::R2, 3));
        asm.jump_to(Instr::Jnz(Reg::R0, 0), "loop");
        asm.push(Instr::Halt);
        let (exec, vm) = run_program(&asm);
        assert!(exec.completed());
        assert_eq!(vm.regs()[2], 15);
    }

    #[test]
    fn memory_byte_round_trip() {
        let mut asm = Asm::new();
        asm.push(Instr::Movi(Reg::R0, 0xAB));
        asm.push(Instr::Movi(Reg::R1, 2048));
        asm.push(Instr::St8(Reg::R0, Reg::R1, 4));
        asm.push(Instr::Ld8(Reg::R2, Reg::R1, 4));
        asm.push(Instr::Halt);
        let (exec, vm) = run_program(&asm);
        assert!(exec.completed());
        assert_eq!(vm.regs()[2], 0xAB);
        assert_eq!(vm.memory()[2052], 0xAB);
    }

    #[test]
    fn memory_word_round_trip() {
        let mut asm = Asm::new();
        asm.push(Instr::Movi(Reg::R0, 0x1234_5678));
        asm.push(Instr::Movi(Reg::R1, 1000));
        asm.push(Instr::St32(Reg::R0, Reg::R1, 0));
        asm.push(Instr::Ld32(Reg::R3, Reg::R1, 0));
        asm.push(Instr::Halt);
        let (_, vm) = run_program(&asm);
        assert_eq!(vm.regs()[3], 0x1234_5678);
        assert_eq!(&vm.memory()[1000..1004], &0x1234_5678u32.to_le_bytes());
    }

    #[test]
    fn api_calls_are_traced_with_args() {
        let mut asm = Asm::new();
        asm.push(Instr::Movi(Reg::R0, 77));
        asm.push(Instr::CallApi(api::HTTP_EXFILTRATE));
        asm.push(Instr::CallApi(api::READ_FILE));
        asm.push(Instr::Halt);
        let (exec, _) = run_program(&asm);
        assert_eq!(exec.trace.len(), 2);
        assert_eq!(exec.trace[0], ApiEvent { api: api::HTTP_EXFILTRATE, arg: 77 });
        assert_eq!(exec.suspicious_calls().count(), 1);
    }

    #[test]
    fn api_result_is_deterministic() {
        let mut asm = Asm::new();
        asm.push(Instr::Movi(Reg::R0, 5));
        asm.push(Instr::CallApi(api::GET_SYSTEM_TIME));
        asm.push(Instr::CallApi(api::WRITE_FILE));
        asm.push(Instr::Halt);
        let (e1, _) = run_program(&asm);
        let (e2, _) = run_program(&asm);
        assert_eq!(e1.trace, e2.trace);
        // Second call's arg is the first call's pseudo-result: data flows.
        assert_ne!(e1.trace[1].arg, 5);
    }

    #[test]
    fn call_ret() {
        let mut asm = Asm::new();
        asm.jump_to(Instr::Call(0), "sub");
        asm.push(Instr::Halt);
        asm.label("sub");
        asm.push(Instr::Movi(Reg::R5, 99));
        asm.push(Instr::Ret);
        let (exec, vm) = run_program(&asm);
        assert!(exec.completed());
        assert_eq!(vm.regs()[5], 99);
    }

    #[test]
    fn push_pop() {
        let mut asm = Asm::new();
        asm.push(Instr::Movi(Reg::R0, 11));
        asm.push(Instr::Movi(Reg::R1, 22));
        asm.push(Instr::Push(Reg::R0));
        asm.push(Instr::Push(Reg::R1));
        asm.push(Instr::Pop(Reg::R2));
        asm.push(Instr::Pop(Reg::R3));
        asm.push(Instr::Halt);
        let (_, vm) = run_program(&asm);
        assert_eq!(vm.regs()[2], 22);
        assert_eq!(vm.regs()[3], 11);
    }

    #[test]
    fn stack_underflow_faults() {
        let mut asm = Asm::new();
        asm.push(Instr::Pop(Reg::R0));
        let (exec, _) = run_program(&asm);
        assert_eq!(exec.outcome, Outcome::Faulted(VmFault::StackUnderflow));
    }

    #[test]
    fn ret_without_call_faults() {
        let mut asm = Asm::new();
        asm.push(Instr::Ret);
        let (exec, _) = run_program(&asm);
        assert_eq!(exec.outcome, Outcome::Faulted(VmFault::StackUnderflow));
    }

    #[test]
    fn oob_load_faults() {
        let mut asm = Asm::new();
        asm.push(Instr::Movi(Reg::R1, 1 << 20));
        asm.push(Instr::Ld8(Reg::R0, Reg::R1, 0));
        let (exec, _) = run_program(&asm);
        assert!(matches!(exec.outcome, Outcome::Faulted(VmFault::MemoryOutOfBounds(_))));
    }

    #[test]
    fn oob_pc_faults() {
        let mut asm = Asm::new();
        asm.push(Instr::Jmp(1 << 20));
        let (exec, _) = run_program(&asm);
        assert!(matches!(exec.outcome, Outcome::Faulted(VmFault::PcOutOfBounds(_))));
    }

    #[test]
    fn illegal_instruction_faults() {
        let mut mem = vec![0xEEu8; 64];
        mem[0] = 0xEE;
        let exec = Vm::from_image(mem, 0).run();
        assert!(matches!(exec.outcome, Outcome::Faulted(VmFault::IllegalInstruction(0))));
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let mut asm = Asm::new();
        asm.label("spin");
        asm.jump_to(Instr::Jmp(0), "spin");
        let code = asm.assemble().unwrap();
        let mut mem = vec![0u8; 256];
        mem[..code.len()].copy_from_slice(&code);
        let exec = Vm::from_image(mem, 0).with_step_limit(1000).run();
        assert_eq!(exec.outcome, Outcome::StepLimit);
        assert_eq!(exec.steps, 1000);
    }

    #[test]
    fn self_modifying_code_executes() {
        // Program stores a HALT opcode over the instruction after the
        // store, proving code is writable (required by runtime recovery).
        let mut asm = Asm::new();
        asm.push(Instr::Movi(Reg::R0, 0x31)); // HALT opcode byte
        asm.push(Instr::Movi(Reg::R1, 3 * 8)); // address of instr #3
        asm.push(Instr::St8(Reg::R0, Reg::R1, 0));
        asm.push(Instr::Jmp(1 << 20)); // would fault if not overwritten
        let (exec, _) = run_program(&asm);
        assert_eq!(exec.outcome, Outcome::Halted);
    }

    #[test]
    fn misaligned_jump_target_faults() {
        // Jump 4 bytes into the first instruction slot: next = 8, d = -4.
        let mut asm = Asm::new();
        asm.push(Instr::Jmp(-4));
        let (exec, _) = run_program(&asm);
        assert_eq!(exec.outcome, Outcome::Faulted(VmFault::MisalignedPc(4)));
        assert_eq!(exec.steps, 1);
    }

    #[test]
    fn unaligned_cross_stream_jump_is_legal() {
        // Packer stubs start at arbitrary byte offsets: a jump that leaves
        // the current stream may land off the old slot grid and simply
        // anchors a new stream there.
        let mut mem = vec![0u8; 256];
        mem[..INSTR_SIZE].copy_from_slice(&Instr::Jmp(92).encode()); // → 100
        mem[100..108].copy_from_slice(&Instr::Halt.encode());
        let exec = Vm::from_image(mem, 0).run();
        assert_eq!(exec.outcome, Outcome::Halted);
        assert_eq!(exec.steps, 2);
    }

    #[test]
    fn jump_chain_cap_breaks_pure_jump_loops() {
        let mut asm = Asm::new();
        asm.label("spin");
        asm.jump_to(Instr::Jmp(0), "spin");
        let code = asm.assemble().unwrap();
        let mut mem = vec![0u8; 256];
        mem[..code.len()].copy_from_slice(&code);
        let limits = VmLimits { jump_chain_limit: 64, ..VmLimits::default() };
        let exec = Vm::from_image(mem, 0).with_limits(limits).run();
        assert_eq!(exec.outcome, Outcome::ResourceExhausted(Resource::JumpChain));
        assert_eq!(exec.steps, 65);
    }

    #[test]
    fn jump_chain_resets_on_real_work() {
        // Loop body contains a non-jump instruction, so the chain counter
        // resets every iteration and only the step limit can end the run.
        let mut asm = Asm::new();
        asm.label("loop");
        asm.push(Instr::Addi(Reg::R0, 1));
        asm.jump_to(Instr::Jmp(0), "loop");
        let code = asm.assemble().unwrap();
        let mut mem = vec![0u8; 256];
        mem[..code.len()].copy_from_slice(&code);
        let limits =
            VmLimits { jump_chain_limit: 4, step_limit: 1000, ..VmLimits::default() };
        let exec = Vm::from_image(mem, 0).with_limits(limits).run();
        assert_eq!(exec.outcome, Outcome::StepLimit);
    }

    #[test]
    fn trace_cap_stops_api_floods() {
        let mut asm = Asm::new();
        asm.label("loop");
        asm.push(Instr::CallApi(api::GET_SYSTEM_TIME));
        asm.jump_to(Instr::Jmp(0), "loop");
        let code = asm.assemble().unwrap();
        let mut mem = vec![0u8; 256];
        mem[..code.len()].copy_from_slice(&code);
        let limits = VmLimits { trace_limit: 10, ..VmLimits::default() };
        let exec = Vm::from_image(mem, 0).with_limits(limits).run();
        assert_eq!(exec.outcome, Outcome::ResourceExhausted(Resource::Trace));
        assert_eq!(exec.trace.len(), 10);
    }

    #[test]
    fn oversized_image_exhausts_memory_without_mapping() {
        let mut b = mpass_pe::PeBuilder::new();
        b.add_section(".text", vec![0x90; 64], mpass_pe::SectionFlags::CODE).unwrap();
        let pe = b.build().unwrap();
        let limits = VmLimits { memory_limit: 16, ..VmLimits::default() };
        let exec = Vm::load_with(&pe, limits).run();
        assert_eq!(exec.outcome, Outcome::ResourceExhausted(Resource::Memory));
        assert_eq!(exec.steps, 0);
        assert!(exec.trace.is_empty());
    }

    #[test]
    fn default_limits_match_documented_constants() {
        let l = VmLimits::default();
        assert_eq!(l.step_limit, DEFAULT_STEP_LIMIT);
        assert_eq!(l.memory_limit, DEFAULT_MEMORY_LIMIT);
        assert_eq!(l.trace_limit, DEFAULT_TRACE_LIMIT);
        assert_eq!(l.jump_chain_limit, DEFAULT_JUMP_CHAIN_LIMIT);
    }

    #[test]
    fn execution_from_pe_entry_point() {
        let mut asm = Asm::new();
        asm.push(Instr::CallApi(api::ENCRYPT_USER_FILES));
        asm.push(Instr::Halt);
        let code = asm.assemble().unwrap();
        let mut b = mpass_pe::PeBuilder::new();
        b.add_section(".text", code, mpass_pe::SectionFlags::CODE).unwrap();
        b.set_entry_section(".text", 0).unwrap();
        let pe = b.build().unwrap();
        let exec = Vm::load(&pe).run();
        assert!(exec.completed());
        assert_eq!(exec.suspicious_calls().count(), 1);
    }
}
