//! The MVM interpreter: loads a PE image the way the OS loader would and
//! executes from the entry point, recording the API-call behaviour trace.

use crate::api::{ApiEvent, ApiId};
use crate::isa::{Instr, Reg, INSTR_SIZE};
use mpass_pe::PeFile;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default bound on executed instructions, generous enough for every
/// corpus program plus recovery stubs over full code/data sections.
pub const DEFAULT_STEP_LIMIT: u64 = 20_000_000;

/// A fault that terminates execution abnormally. Any fault on an
/// adversarial example that the original did not exhibit means the attack
/// destroyed functionality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VmFault {
    /// PC left the mapped image or was mid-instruction at the image edge.
    PcOutOfBounds(u32),
    /// The bytes at PC did not decode to an instruction.
    IllegalInstruction(u32),
    /// A load/store touched an unmapped address.
    MemoryOutOfBounds(u32),
    /// `Pop`/`Ret` on an empty stack.
    StackUnderflow,
    /// The data or call stack grew past its bound.
    StackOverflow,
}

impl fmt::Display for VmFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmFault::PcOutOfBounds(pc) => write!(f, "pc {pc:#x} outside mapped image"),
            VmFault::IllegalInstruction(pc) => write!(f, "illegal instruction at {pc:#x}"),
            VmFault::MemoryOutOfBounds(a) => write!(f, "memory access at {a:#x} out of bounds"),
            VmFault::StackUnderflow => write!(f, "stack underflow"),
            VmFault::StackOverflow => write!(f, "stack overflow"),
        }
    }
}

impl std::error::Error for VmFault {}

/// How an execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// A `halt` instruction was reached.
    Halted,
    /// Execution faulted.
    Faulted(VmFault),
    /// The step limit was exhausted (treated as a hang).
    StepLimit,
}

/// The result of running a program: outcome, step count and the API trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Execution {
    /// Terminal condition.
    pub outcome: Outcome,
    /// Number of instructions executed.
    pub steps: u64,
    /// Recorded API calls in order.
    pub trace: Vec<ApiEvent>,
}

impl Execution {
    /// True when the program ran to a clean `halt`.
    pub fn completed(&self) -> bool {
        self.outcome == Outcome::Halted
    }

    /// The subsequence of suspicious API calls — the "malicious behaviour"
    /// the sandbox checks for.
    pub fn suspicious_calls(&self) -> Vec<ApiEvent> {
        self.trace.iter().copied().filter(|e| e.api.is_suspicious()).collect()
    }
}

const STACK_LIMIT: usize = 64 * 1024;

/// The MVM virtual machine.
///
/// Address space: the PE image mapped at address 0 (RVA addressing), i.e.
/// headers at 0 and every section at its RVA, with virtual-only space
/// zero-filled. All of it is readable and writable — runtime unpacking,
/// which both the MPass recovery module and the simulated packers rely on,
/// writes over code.
#[derive(Debug, Clone)]
pub struct Vm {
    memory: Vec<u8>,
    regs: [u32; 8],
    pc: u32,
    data_stack: Vec<u32>,
    call_stack: Vec<u32>,
    step_limit: u64,
}

impl Vm {
    /// Map `pe` into a fresh VM, with the PC at the PE entry point.
    pub fn load(pe: &PeFile) -> Vm {
        Vm {
            memory: pe.map_image(),
            regs: [0; 8],
            pc: pe.entry_point(),
            data_stack: Vec::new(),
            call_stack: Vec::new(),
            step_limit: DEFAULT_STEP_LIMIT,
        }
    }

    /// Construct from a raw flat memory image and entry address (used by
    /// unit tests and fuzzing).
    pub fn from_image(memory: Vec<u8>, entry: u32) -> Vm {
        Vm {
            memory,
            regs: [0; 8],
            pc: entry,
            data_stack: Vec::new(),
            call_stack: Vec::new(),
            step_limit: DEFAULT_STEP_LIMIT,
        }
    }

    /// Override the instruction budget.
    pub fn with_step_limit(mut self, limit: u64) -> Vm {
        self.step_limit = limit;
        self
    }

    /// Current register file (read-only view for assertions).
    pub fn regs(&self) -> &[u32; 8] {
        &self.regs
    }

    /// The VM memory after execution (used to assert in-place recovery).
    pub fn memory(&self) -> &[u8] {
        &self.memory
    }

    fn read8(&self, addr: u32) -> Result<u8, VmFault> {
        self.memory.get(addr as usize).copied().ok_or(VmFault::MemoryOutOfBounds(addr))
    }

    fn write8(&mut self, addr: u32, v: u8) -> Result<(), VmFault> {
        match self.memory.get_mut(addr as usize) {
            Some(slot) => {
                *slot = v;
                Ok(())
            }
            None => Err(VmFault::MemoryOutOfBounds(addr)),
        }
    }

    fn read32(&self, addr: u32) -> Result<u32, VmFault> {
        let a = addr as usize;
        if a + 4 > self.memory.len() {
            return Err(VmFault::MemoryOutOfBounds(addr));
        }
        Ok(u32::from_le_bytes([
            self.memory[a],
            self.memory[a + 1],
            self.memory[a + 2],
            self.memory[a + 3],
        ]))
    }

    fn write32(&mut self, addr: u32, v: u32) -> Result<(), VmFault> {
        let a = addr as usize;
        if a + 4 > self.memory.len() {
            return Err(VmFault::MemoryOutOfBounds(addr));
        }
        self.memory[a..a + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Execute until halt, fault or step limit; consumes the VM's transient
    /// state but leaves memory/registers inspectable afterwards via
    /// [`Vm::memory`] / [`Vm::regs`] when called through
    /// [`Vm::run_in_place`].
    pub fn run(mut self) -> Execution {
        self.run_in_place()
    }

    /// Like [`Vm::run`] but borrows, so memory and registers can be
    /// inspected afterwards.
    pub fn run_in_place(&mut self) -> Execution {
        let mut trace = Vec::new();
        let mut steps: u64 = 0;
        loop {
            if steps >= self.step_limit {
                return Execution { outcome: Outcome::StepLimit, steps, trace };
            }
            let pc = self.pc;
            let end = pc as usize + INSTR_SIZE;
            if end > self.memory.len() {
                return Execution {
                    outcome: Outcome::Faulted(VmFault::PcOutOfBounds(pc)),
                    steps,
                    trace,
                };
            }
            let instr = match Instr::decode(&self.memory[pc as usize..end]) {
                Ok(i) => i,
                Err(_) => {
                    return Execution {
                        outcome: Outcome::Faulted(VmFault::IllegalInstruction(pc)),
                        steps,
                        trace,
                    }
                }
            };
            steps += 1;
            let next = pc.wrapping_add(INSTR_SIZE as u32);
            self.pc = next;
            let r = |reg: Reg| self.regs[reg.index()];
            match instr {
                Instr::Movi(a, imm) => self.regs[a.index()] = imm as u32,
                Instr::Mov(a, b) => self.regs[a.index()] = r(b),
                Instr::Add(a, b) => self.regs[a.index()] = r(a).wrapping_add(r(b)),
                Instr::Sub(a, b) => self.regs[a.index()] = r(a).wrapping_sub(r(b)),
                Instr::Xor(a, b) => self.regs[a.index()] = r(a) ^ r(b),
                Instr::And(a, b) => self.regs[a.index()] = r(a) & r(b),
                Instr::Or(a, b) => self.regs[a.index()] = r(a) | r(b),
                Instr::Shl(a, b) => self.regs[a.index()] = r(a) << (r(b) & 31),
                Instr::Shr(a, b) => self.regs[a.index()] = r(a) >> (r(b) & 31),
                Instr::Mul(a, b) => self.regs[a.index()] = r(a).wrapping_mul(r(b)),
                Instr::Addi(a, imm) => {
                    self.regs[a.index()] = r(a).wrapping_add(imm as u32)
                }
                Instr::Ld8(a, b, imm) => {
                    let addr = r(b).wrapping_add(imm as u32);
                    match self.read8(addr) {
                        Ok(v) => self.regs[a.index()] = v as u32,
                        Err(f) => {
                            return Execution { outcome: Outcome::Faulted(f), steps, trace }
                        }
                    }
                }
                Instr::St8(a, b, imm) => {
                    let addr = r(b).wrapping_add(imm as u32);
                    if let Err(f) = self.write8(addr, r(a) as u8) {
                        return Execution { outcome: Outcome::Faulted(f), steps, trace };
                    }
                }
                Instr::Ld32(a, b, imm) => {
                    let addr = r(b).wrapping_add(imm as u32);
                    match self.read32(addr) {
                        Ok(v) => self.regs[a.index()] = v,
                        Err(f) => {
                            return Execution { outcome: Outcome::Faulted(f), steps, trace }
                        }
                    }
                }
                Instr::St32(a, b, imm) => {
                    let addr = r(b).wrapping_add(imm as u32);
                    if let Err(f) = self.write32(addr, r(a)) {
                        return Execution { outcome: Outcome::Faulted(f), steps, trace };
                    }
                }
                Instr::Jmp(d) => self.pc = next.wrapping_add(d as u32),
                Instr::Jz(a, d) => {
                    if r(a) == 0 {
                        self.pc = next.wrapping_add(d as u32);
                    }
                }
                Instr::Jnz(a, d) => {
                    if r(a) != 0 {
                        self.pc = next.wrapping_add(d as u32);
                    }
                }
                Instr::Jlt(a, b, d) => {
                    if r(a) < r(b) {
                        self.pc = next.wrapping_add(d as u32);
                    }
                }
                Instr::CallApi(id) => {
                    trace.push(ApiEvent { api: id, arg: self.regs[0] });
                    // Deterministic pseudo-result so data flow through API
                    // results is reproducible.
                    self.regs[0] = api_result(id, self.regs[0]);
                }
                Instr::Halt => {
                    return Execution { outcome: Outcome::Halted, steps, trace };
                }
                Instr::Nop => {}
                Instr::Push(a) => {
                    if self.data_stack.len() >= STACK_LIMIT {
                        return Execution {
                            outcome: Outcome::Faulted(VmFault::StackOverflow),
                            steps,
                            trace,
                        };
                    }
                    self.data_stack.push(r(a));
                }
                Instr::Pop(a) => match self.data_stack.pop() {
                    Some(v) => self.regs[a.index()] = v,
                    None => {
                        return Execution {
                            outcome: Outcome::Faulted(VmFault::StackUnderflow),
                            steps,
                            trace,
                        }
                    }
                },
                Instr::Call(d) => {
                    if self.call_stack.len() >= STACK_LIMIT {
                        return Execution {
                            outcome: Outcome::Faulted(VmFault::StackOverflow),
                            steps,
                            trace,
                        };
                    }
                    self.call_stack.push(next);
                    self.pc = next.wrapping_add(d as u32);
                }
                Instr::Ret => match self.call_stack.pop() {
                    Some(addr) => self.pc = addr,
                    None => {
                        return Execution {
                            outcome: Outcome::Faulted(VmFault::StackUnderflow),
                            steps,
                            trace,
                        }
                    }
                },
            }
        }
    }
}

/// Deterministic pseudo-result an API returns, mixing the id and argument.
fn api_result(id: ApiId, arg: u32) -> u32 {
    let x = (id.0 as u32).wrapping_mul(0x9E37_79B9) ^ arg.rotate_left(13);
    x.wrapping_add(0x7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api;
    use crate::asm::Asm;

    fn run_program(asm: &Asm) -> (Execution, Vm) {
        let code = asm.assemble().unwrap();
        let mut mem = vec![0u8; 4096];
        mem[..code.len()].copy_from_slice(&code);
        let mut vm = Vm::from_image(mem, 0);
        let exec = vm.run_in_place();
        (exec, vm)
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut asm = Asm::new();
        asm.push(Instr::Movi(Reg::R0, 10));
        asm.push(Instr::Movi(Reg::R1, 4));
        asm.push(Instr::Sub(Reg::R0, Reg::R1));
        asm.push(Instr::Halt);
        let (exec, vm) = run_program(&asm);
        assert!(exec.completed());
        assert_eq!(vm.regs()[0], 6);
        assert_eq!(exec.steps, 4);
    }

    #[test]
    fn wrapping_arithmetic() {
        let mut asm = Asm::new();
        asm.push(Instr::Movi(Reg::R0, -1));
        asm.push(Instr::Movi(Reg::R1, 2));
        asm.push(Instr::Add(Reg::R0, Reg::R1));
        asm.push(Instr::Halt);
        let (_, vm) = run_program(&asm);
        assert_eq!(vm.regs()[0], 1);
    }

    #[test]
    fn loop_decrements_to_zero() {
        let mut asm = Asm::new();
        asm.push(Instr::Movi(Reg::R0, 5));
        asm.push(Instr::Movi(Reg::R2, 0));
        asm.label("loop");
        asm.push(Instr::Addi(Reg::R0, -1));
        asm.push(Instr::Addi(Reg::R2, 3));
        asm.jump_to(Instr::Jnz(Reg::R0, 0), "loop");
        asm.push(Instr::Halt);
        let (exec, vm) = run_program(&asm);
        assert!(exec.completed());
        assert_eq!(vm.regs()[2], 15);
    }

    #[test]
    fn memory_byte_round_trip() {
        let mut asm = Asm::new();
        asm.push(Instr::Movi(Reg::R0, 0xAB));
        asm.push(Instr::Movi(Reg::R1, 2048));
        asm.push(Instr::St8(Reg::R0, Reg::R1, 4));
        asm.push(Instr::Ld8(Reg::R2, Reg::R1, 4));
        asm.push(Instr::Halt);
        let (exec, vm) = run_program(&asm);
        assert!(exec.completed());
        assert_eq!(vm.regs()[2], 0xAB);
        assert_eq!(vm.memory()[2052], 0xAB);
    }

    #[test]
    fn memory_word_round_trip() {
        let mut asm = Asm::new();
        asm.push(Instr::Movi(Reg::R0, 0x1234_5678));
        asm.push(Instr::Movi(Reg::R1, 1000));
        asm.push(Instr::St32(Reg::R0, Reg::R1, 0));
        asm.push(Instr::Ld32(Reg::R3, Reg::R1, 0));
        asm.push(Instr::Halt);
        let (_, vm) = run_program(&asm);
        assert_eq!(vm.regs()[3], 0x1234_5678);
        assert_eq!(&vm.memory()[1000..1004], &0x1234_5678u32.to_le_bytes());
    }

    #[test]
    fn api_calls_are_traced_with_args() {
        let mut asm = Asm::new();
        asm.push(Instr::Movi(Reg::R0, 77));
        asm.push(Instr::CallApi(api::HTTP_EXFILTRATE));
        asm.push(Instr::CallApi(api::READ_FILE));
        asm.push(Instr::Halt);
        let (exec, _) = run_program(&asm);
        assert_eq!(exec.trace.len(), 2);
        assert_eq!(exec.trace[0], ApiEvent { api: api::HTTP_EXFILTRATE, arg: 77 });
        assert_eq!(exec.suspicious_calls().len(), 1);
    }

    #[test]
    fn api_result_is_deterministic() {
        let mut asm = Asm::new();
        asm.push(Instr::Movi(Reg::R0, 5));
        asm.push(Instr::CallApi(api::GET_SYSTEM_TIME));
        asm.push(Instr::CallApi(api::WRITE_FILE));
        asm.push(Instr::Halt);
        let (e1, _) = run_program(&asm);
        let (e2, _) = run_program(&asm);
        assert_eq!(e1.trace, e2.trace);
        // Second call's arg is the first call's pseudo-result: data flows.
        assert_ne!(e1.trace[1].arg, 5);
    }

    #[test]
    fn call_ret() {
        let mut asm = Asm::new();
        asm.jump_to(Instr::Call(0), "sub");
        asm.push(Instr::Halt);
        asm.label("sub");
        asm.push(Instr::Movi(Reg::R5, 99));
        asm.push(Instr::Ret);
        let (exec, vm) = run_program(&asm);
        assert!(exec.completed());
        assert_eq!(vm.regs()[5], 99);
    }

    #[test]
    fn push_pop() {
        let mut asm = Asm::new();
        asm.push(Instr::Movi(Reg::R0, 11));
        asm.push(Instr::Movi(Reg::R1, 22));
        asm.push(Instr::Push(Reg::R0));
        asm.push(Instr::Push(Reg::R1));
        asm.push(Instr::Pop(Reg::R2));
        asm.push(Instr::Pop(Reg::R3));
        asm.push(Instr::Halt);
        let (_, vm) = run_program(&asm);
        assert_eq!(vm.regs()[2], 22);
        assert_eq!(vm.regs()[3], 11);
    }

    #[test]
    fn stack_underflow_faults() {
        let mut asm = Asm::new();
        asm.push(Instr::Pop(Reg::R0));
        let (exec, _) = run_program(&asm);
        assert_eq!(exec.outcome, Outcome::Faulted(VmFault::StackUnderflow));
    }

    #[test]
    fn ret_without_call_faults() {
        let mut asm = Asm::new();
        asm.push(Instr::Ret);
        let (exec, _) = run_program(&asm);
        assert_eq!(exec.outcome, Outcome::Faulted(VmFault::StackUnderflow));
    }

    #[test]
    fn oob_load_faults() {
        let mut asm = Asm::new();
        asm.push(Instr::Movi(Reg::R1, 1 << 20));
        asm.push(Instr::Ld8(Reg::R0, Reg::R1, 0));
        let (exec, _) = run_program(&asm);
        assert!(matches!(exec.outcome, Outcome::Faulted(VmFault::MemoryOutOfBounds(_))));
    }

    #[test]
    fn oob_pc_faults() {
        let mut asm = Asm::new();
        asm.push(Instr::Jmp(1 << 20));
        let (exec, _) = run_program(&asm);
        assert!(matches!(exec.outcome, Outcome::Faulted(VmFault::PcOutOfBounds(_))));
    }

    #[test]
    fn illegal_instruction_faults() {
        let mut mem = vec![0xEEu8; 64];
        mem[0] = 0xEE;
        let exec = Vm::from_image(mem, 0).run();
        assert!(matches!(exec.outcome, Outcome::Faulted(VmFault::IllegalInstruction(0))));
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let mut asm = Asm::new();
        asm.label("spin");
        asm.jump_to(Instr::Jmp(0), "spin");
        let code = asm.assemble().unwrap();
        let mut mem = vec![0u8; 256];
        mem[..code.len()].copy_from_slice(&code);
        let exec = Vm::from_image(mem, 0).with_step_limit(1000).run();
        assert_eq!(exec.outcome, Outcome::StepLimit);
        assert_eq!(exec.steps, 1000);
    }

    #[test]
    fn self_modifying_code_executes() {
        // Program stores a HALT opcode over the instruction after the
        // store, proving code is writable (required by runtime recovery).
        let mut asm = Asm::new();
        asm.push(Instr::Movi(Reg::R0, 0x31)); // HALT opcode byte
        asm.push(Instr::Movi(Reg::R1, 3 * 8)); // address of instr #3
        asm.push(Instr::St8(Reg::R0, Reg::R1, 0));
        asm.push(Instr::Jmp(1 << 20)); // would fault if not overwritten
        let (exec, _) = run_program(&asm);
        assert_eq!(exec.outcome, Outcome::Halted);
    }

    #[test]
    fn execution_from_pe_entry_point() {
        let mut asm = Asm::new();
        asm.push(Instr::CallApi(api::ENCRYPT_USER_FILES));
        asm.push(Instr::Halt);
        let code = asm.assemble().unwrap();
        let mut b = mpass_pe::PeBuilder::new();
        b.add_section(".text", code, mpass_pe::SectionFlags::CODE).unwrap();
        b.set_entry_section(".text", 0).unwrap();
        let pe = b.build().unwrap();
        let exec = Vm::load(&pe).run();
        assert!(exec.completed());
        assert_eq!(exec.suspicious_calls().len(), 1);
    }
}
