//! The shared PE-manipulation action set of the append/header baselines.
//!
//! RLA and MAB both act on a malware file through a discrete action set
//! drawn from the literature: append to the overlay, add a benign section,
//! rename sections, rewrite the timestamp, bump the image version. None of
//! these touch code or data sections — the structural limitation the paper
//! identifies in all existing attacks.
//!
//! Payload-carrying actions pull from a [`ActionLibrary`]: a *fixed* set
//! of benign chunks harvested once when the attack is constructed (the
//! real tools ship static payload corpora). Fixed payloads reused across
//! all generated AEs are what AV n-gram learning latches onto in Fig. 4.

use mpass_corpus::BenignPool;
use mpass_pe::{ImportEntry, PeFile, SectionFlags};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One manipulation action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PeAction {
    /// Append library payload `i` to the overlay.
    AppendOverlay(usize),
    /// Add a new section holding library payload `i` (falls back to
    /// overlay when the section table is full).
    AddSection(usize),
    /// Rename the first renameable section to a benign-looking name.
    RenameSection,
    /// Rewrite the COFF timestamp.
    SetTimestamp,
    /// Rewrite the image-version fields.
    SetImageVersion,
    /// Append a set of innocuous imports (common library functions) to the
    /// import table — a classic gym-malware manipulation.
    AddBenignImports,
    /// In-place keystream "packing" of one randomly chosen section
    /// *without* installing recovery (RLA's hazardous action: evades well
    /// but corrupts execution whenever the packed section is actually used
    /// at runtime).
    UnsafePackSection,
}

/// Imports the `AddBenignImports` action pads with.
const BENIGN_IMPORT_PAD: &[(&str, &[&str])] = &[
    ("SHELL32.dll", &["ShellExecuteW", "SHGetFolderPathW"]),
    ("GDI32.dll", &["CreateFontW", "TextOutW", "DeleteObject"]),
    ("OLE32.dll", &["CoInitialize", "CoCreateInstance"]),
];

/// Fixed library of benign payload chunks plus the action vocabulary.
#[derive(Debug, Clone)]
pub struct ActionLibrary {
    payloads: Vec<Vec<u8>>,
    include_unsafe: bool,
}

const RENAME_POOL: &[&str] = &[".textbss", ".didat", ".gfids", ".00cfg"];

impl ActionLibrary {
    /// Harvest `n_payloads` chunks of `payload_len` bytes from the benign
    /// pool, deterministically from `seed`.
    pub fn harvest(
        pool: &BenignPool,
        n_payloads: usize,
        payload_len: usize,
        seed: u64,
        include_unsafe: bool,
    ) -> ActionLibrary {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let payloads =
            (0..n_payloads).map(|_| pool.random_chunk(payload_len, &mut rng)).collect();
        ActionLibrary { payloads, include_unsafe }
    }

    /// The action vocabulary this library supports.
    pub fn action_space(&self) -> Vec<PeAction> {
        let mut actions = Vec::new();
        for i in 0..self.payloads.len() {
            actions.push(PeAction::AppendOverlay(i));
            actions.push(PeAction::AddSection(i));
        }
        actions.push(PeAction::RenameSection);
        actions.push(PeAction::SetTimestamp);
        actions.push(PeAction::SetImageVersion);
        actions.push(PeAction::AddBenignImports);
        if self.include_unsafe {
            actions.push(PeAction::UnsafePackSection);
        }
        actions
    }

    /// Number of payload chunks.
    pub fn payload_count(&self) -> usize {
        self.payloads.len()
    }

    /// Apply `action` to `pe`. Actions are best-effort: inapplicable
    /// actions (duplicate names, full section table) degrade to their
    /// nearest applicable effect rather than failing, matching how the
    /// original tools behave.
    pub fn apply<R: Rng + ?Sized>(&self, pe: &mut PeFile, action: PeAction, rng: &mut R) {
        match action {
            PeAction::AppendOverlay(i) => {
                pe.append_overlay(&self.payloads[i % self.payloads.len()]);
            }
            PeAction::AddSection(i) => {
                let payload = &self.payloads[i % self.payloads.len()];
                let name = format!(".ax{}", rng.gen_range(0..100));
                if pe.section(&name).is_some()
                    || pe.add_section(&name, payload.clone(), SectionFlags::RDATA).is_err()
                {
                    pe.append_overlay(payload);
                }
            }
            PeAction::RenameSection => {
                let target = pe
                    .sections()
                    .iter()
                    .map(|s| s.name())
                    .find(|n| !RENAME_POOL.contains(&n.as_str()));
                if let Some(old) = target {
                    let new = RENAME_POOL[rng.gen_range(0..RENAME_POOL.len())];
                    let _ = pe.rename_section(&old, new);
                }
            }
            PeAction::SetTimestamp => {
                pe.set_timestamp(rng.gen_range(0x3500_0000..0x6400_0000));
            }
            PeAction::SetImageVersion => {
                pe.set_image_version(rng.gen_range(1..15), rng.gen_range(0..9999));
            }
            PeAction::AddBenignImports => {
                let mut table = pe.imports().ok().flatten().unwrap_or_default();
                let (dll, funcs) = BENIGN_IMPORT_PAD[rng.gen_range(0..BENIGN_IMPORT_PAD.len())];
                table.add(
                    dll,
                    funcs.iter().map(|f| ImportEntry::by_name(f)).collect(),
                );
                // Best-effort like the rest of the action set: images
                // without header slack keep their old table.
                let _ = pe.set_imports(&table);
            }
            PeAction::UnsafePackSection => {
                // gym-malware's section manipulations avoid the obvious
                // suicide of rewriting the entry section, but pack data /
                // read-only / resource sections indiscriminately — data
                // sections read at runtime are what breaks.
                let entry = pe.section_index_containing_rva(pe.entry_point());
                let candidates: Vec<usize> = (0..pe.sections().len())
                    .filter(|&i| Some(i) != entry)
                    .collect();
                if candidates.is_empty() {
                    return;
                }
                let idx = candidates[rng.gen_range(0..candidates.len())];
                let mut state: u32 = 0x1234_5678 ^ (idx as u32).wrapping_mul(0x9E37);
                let sec = &mut pe.sections_mut()[idx];
                for b in sec.data_mut().iter_mut() {
                    state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                    *b ^= (state >> 24) as u8;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_corpus::{CorpusConfig, Dataset};
    use mpass_sandbox::Sandbox;

    fn world() -> (Dataset, ActionLibrary) {
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 4,
            n_benign: 2,
            seed: 61,
            no_slack_fraction: 0.0,
        });
        let pool = BenignPool::generate(3, 5);
        let lib = ActionLibrary::harvest(&pool, 4, 512, 9, true);
        (ds, lib)
    }

    #[test]
    fn action_space_enumerates() {
        let (_, lib) = world();
        let space = lib.action_space();
        assert_eq!(space.len(), 4 * 2 + 4 + 1);
    }

    #[test]
    fn safe_actions_preserve_functionality() {
        let (ds, lib) = world();
        let sandbox = Sandbox::new();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for s in ds.malware() {
            let mut pe = s.pe().unwrap().clone();
            for action in lib.action_space() {
                if action == PeAction::UnsafePackSection {
                    continue;
                }
                lib.apply(&mut pe, action, &mut rng);
            }
            pe.update_checksum();
            let v = sandbox.verify_functionality(&s.bytes, &pe.to_bytes());
            assert!(v.is_preserved(), "{}: {v}", s.name);
        }
    }

    #[test]
    fn unsafe_pack_sometimes_breaks() {
        let (ds, lib) = world();
        let sandbox = Sandbox::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut broken = 0;
        let mut total = 0;
        for s in ds.malware() {
            for _ in 0..6 {
                let mut pe = s.pe().unwrap().clone();
                lib.apply(&mut pe, PeAction::UnsafePackSection, &mut rng);
                total += 1;
                if !sandbox.verify_functionality(&s.bytes, &pe.to_bytes()).is_preserved() {
                    broken += 1;
                }
            }
        }
        assert!(broken > 0, "unsafe packing never broke anything ({total} trials)");
        assert!(broken < total, "unsafe packing always broke ({broken}/{total})");
    }

    #[test]
    fn payloads_are_fixed_across_instances() {
        let pool = BenignPool::generate(3, 5);
        let a = ActionLibrary::harvest(&pool, 4, 512, 9, false);
        let b = ActionLibrary::harvest(&pool, 4, 512, 9, false);
        assert_eq!(a.payloads, b.payloads, "library must be deterministic per seed");
    }

    #[test]
    fn modified_files_still_parse() {
        let (ds, lib) = world();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let s = &ds.samples[0];
        let mut pe = s.pe().unwrap().clone();
        for _ in 0..10 {
            let space = lib.action_space();
            let action = space[rng.gen_range(0..space.len())];
            lib.apply(&mut pe, action, &mut rng);
        }
        let bytes = pe.to_bytes();
        assert!(PeFile::parse(&bytes).is_ok());
    }
}
