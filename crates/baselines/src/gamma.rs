//! GAMMA — Demetrio et al., "Functionality-preserving black-box
//! optimization of adversarial windows malware" (IEEE TIFS 2021).
//!
//! GAMMA injects content harvested from benign programs ("benign section
//! injection") and optimizes *how much* of each donor section to inject
//! with a genetic algorithm. Under the hard-label oracle the fitness is
//! evasion first, injected-size second (the original's soft-score fitness
//! degraded to its hard-label variant). The defining trade-off survives:
//! GAMMA achieves competitive evasion at an enormous appending rate —
//! Table III reports 3600–4200 % APR.

use mpass_core::{Attack, AttackOutcome, HardLabelTarget};
use mpass_corpus::{BenignPool, Sample};
use mpass_detectors::Verdict;
use mpass_pe::SectionFlags;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// GAMMA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GammaConfig {
    /// Number of donor sections in the fixed library.
    pub donors: usize,
    /// Bytes per donor section.
    pub donor_len: usize,
    /// GA population size (each individual costs one query to evaluate).
    pub population: usize,
    /// Mutation probability per gene.
    pub mutation: f64,
    /// Base seed.
    pub seed: u64,
}

impl Default for GammaConfig {
    fn default() -> Self {
        GammaConfig {
            donors: 10,
            donor_len: 16 * 1024,
            population: 8,
            mutation: 0.25,
            seed: 0x47_414D,
        }
    }
}

/// One chromosome: per-donor injection fraction in `[0, 1]`.
type Genome = Vec<f64>;

/// The GAMMA attack.
pub struct Gamma {
    donor_sections: Vec<Vec<u8>>,
    cfg: GammaConfig,
}

impl Gamma {
    /// Harvest the fixed donor-section library from `pool`.
    pub fn new(pool: &BenignPool, cfg: GammaConfig) -> Gamma {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let donor_sections =
            (0..cfg.donors).map(|_| pool.random_chunk(cfg.donor_len, &mut rng)).collect();
        Gamma { donor_sections, cfg }
    }

    /// Materialize a candidate: the sample plus one injected section (or
    /// overlay blob) per donor with non-trivial usage.
    fn express(&self, sample: &Sample, genome: &Genome) -> Vec<u8> {
        // PE-only baseline: a non-PE sample is expressed unmodified (the
        // genome has no PE section table to inject into).
        let Some(base) = sample.pe() else {
            return sample.bytes.clone();
        };
        let mut pe = base.clone();
        for (i, (&usage, donor)) in genome.iter().zip(&self.donor_sections).enumerate() {
            let take = (usage.clamp(0.0, 1.0) * donor.len() as f64) as usize;
            if take < 64 {
                continue;
            }
            let payload = donor[..take].to_vec();
            let name = format!(".gam{i}");
            if pe.section(&name).is_some()
                || pe.add_section(&name, payload.clone(), SectionFlags::RDATA).is_err()
            {
                pe.append_overlay(&payload);
            }
        }
        pe.to_bytes()
    }
}

impl Attack for Gamma {
    fn name(&self) -> &str {
        "GAMMA"
    }

    /// All randomness derives from `(seed, sample name)`; no state
    /// carries across samples, so per-sample journal replay is sound.
    fn stateful_across_samples(&self) -> bool {
        false
    }

    fn attack(&mut self, sample: &Sample, target: &mut HardLabelTarget<'_>) -> AttackOutcome {
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.cfg.seed
                ^ sample
                    .name
                    .bytes()
                    .fold(0u64, |h, b| (h ^ b as u64).wrapping_mul(0x100_0000_01b3)),
        );
        let original_size = sample.size();
        let mut last_size = original_size;
        // Initial population: random usage vectors biased high (GAMMA
        // starts from full injection and prunes).
        let mut population: Vec<Genome> = (0..self.cfg.population)
            .map(|_| (0..self.cfg.donors).map(|_| rng.gen_range(0.5..1.0)).collect())
            .collect();
        let mut best_evading: Option<(Genome, Vec<u8>)> = None;
        loop {
            // Evaluate the population (one query each).
            let mut scored: Vec<(usize, bool, usize)> = Vec::new(); // (idx, evaded, size)
            for (i, genome) in population.iter().enumerate() {
                let bytes = self.express(sample, genome);
                last_size = bytes.len();
                match target.query(&bytes) {
                    Ok(Verdict::Benign) => {
                        // Keep the smallest evading individual seen.
                        let better = best_evading
                            .as_ref()
                            .map(|(_, b)| bytes.len() < b.len())
                            .unwrap_or(true);
                        if better {
                            best_evading = Some((genome.clone(), bytes));
                        }
                        scored.push((i, true, last_size));
                    }
                    Ok(Verdict::Malicious) => scored.push((i, false, last_size)),
                    Err(_) => {
                        return finish(sample, target, best_evading, original_size, last_size)
                    }
                }
            }
            if best_evading.is_some() {
                return finish(sample, target, best_evading, original_size, last_size);
            }
            // Selection: evading (none here) > larger injections first
            // (under a hard-label oracle more benign content is the only
            // gradient), then crossover + mutation.
            scored.sort_by_key(|s| std::cmp::Reverse(s.2));
            let parents: Vec<Genome> = scored
                .iter()
                .take((self.cfg.population / 2).max(2))
                .map(|&(i, _, _)| population[i].clone())
                .collect();
            let mut next: Vec<Genome> = parents.clone();
            while next.len() < self.cfg.population {
                let a = &parents[rng.gen_range(0..parents.len())];
                let b = &parents[rng.gen_range(0..parents.len())];
                let mut child: Genome = a
                    .iter()
                    .zip(b)
                    .map(|(&x, &y)| if rng.gen_bool(0.5) { x } else { y })
                    .collect();
                for g in &mut child {
                    if rng.gen_bool(self.cfg.mutation) {
                        *g = (*g + rng.gen_range(-0.3..0.3)).clamp(0.0, 1.0);
                    }
                }
                next.push(child);
            }
            population = next;
            if target.remaining() == 0 {
                return finish(sample, target, best_evading, original_size, last_size);
            }
        }
    }
}

fn finish(
    sample: &Sample,
    target: &HardLabelTarget<'_>,
    best: Option<(Genome, Vec<u8>)>,
    original_size: usize,
    last_size: usize,
) -> AttackOutcome {
    match best {
        Some((_, bytes)) => {
            let final_size = bytes.len();
            AttackOutcome {
                sample: sample.name.clone(),
                evaded: true,
                queries: target.queries(),
                adversarial: Some(bytes),
                original_size,
                final_size,
            }
        }
        None => AttackOutcome {
            sample: sample.name.clone(),
            evaded: false,
            queries: target.queries(),
            adversarial: None,
            original_size,
            final_size: last_size,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_corpus::{CorpusConfig, Dataset};
    use mpass_detectors::Detector;
    use mpass_sandbox::Sandbox;

    /// Flips benign once enough total benign content is present.
    struct DilutionWeakness;
    impl Detector for DilutionWeakness {
        fn name(&self) -> &str {
            "dilution-weak"
        }
        fn score(&self, bytes: &[u8]) -> f32 {
            let original_ish = 16 * 1024;
            if bytes.len() > 3 * original_ish {
                0.2
            } else {
                0.8
            }
        }
    }

    fn dataset() -> Dataset {
        Dataset::generate(&CorpusConfig {
            n_malware: 5,
            n_benign: 2,
            seed: 91,
            no_slack_fraction: 0.0,
        })
    }

    #[test]
    fn gamma_evades_by_dilution_with_huge_apr() {
        let ds = dataset();
        let pool = BenignPool::generate(3, 3);
        let mut gamma = Gamma::new(&pool, GammaConfig::default());
        let det = DilutionWeakness;
        let sandbox = Sandbox::new();
        let mut outcomes = Vec::new();
        for s in ds.malware() {
            let mut target = HardLabelTarget::new(&det, 100);
            let o = gamma.attack(s, &mut target);
            if let Some(ae) = &o.adversarial {
                assert!(sandbox.verify_functionality(&s.bytes, ae).is_preserved());
            }
            outcomes.push(o);
        }
        let stats = mpass_core::attack::metrics::summarize(&outcomes);
        assert!(stats.asr >= 80.0, "ASR {}", stats.asr);
        assert!(stats.apr > 100.0, "GAMMA should append heavily, APR {}", stats.apr);
    }

    #[test]
    fn donor_library_is_fixed() {
        let pool = BenignPool::generate(3, 3);
        let a = Gamma::new(&pool, GammaConfig::default());
        let b = Gamma::new(&pool, GammaConfig::default());
        assert_eq!(a.donor_sections, b.donor_sections);
    }

    #[test]
    fn budget_exhaustion_returns_failure() {
        struct Never;
        impl Detector for Never {
            fn name(&self) -> &str {
                "never"
            }
            fn score(&self, _: &[u8]) -> f32 {
                1.0
            }
        }
        let ds = dataset();
        let pool = BenignPool::generate(3, 3);
        let mut gamma = Gamma::new(&pool, GammaConfig::default());
        let det = Never;
        let mut target = HardLabelTarget::new(&det, 20);
        let o = gamma.attack(ds.malware()[0], &mut target);
        assert!(!o.evaded);
        assert_eq!(o.queries, 20);
    }
}
