//! MalRNN — Ebrahimi et al., "Binary black-box evasion attacks against
//! deep learning-based static malware detectors with adversarial
//! byte-level language model".
//!
//! MalRNN trains a byte-level generative language model on benign
//! binaries and appends sampled content to the malware until the detector
//! flips. The recurrent network is substituted with an order-2 byte
//! Markov model ([`ByteLm`]) — documented in DESIGN.md — which plays the
//! same role: it emits content with benign byte statistics, and (like a
//! small LM decoding at low temperature) its output is repetitive enough
//! across AEs for AV n-gram learning to latch onto in the Fig. 4
//! experiment.

use mpass_core::{Attack, AttackOutcome, HardLabelTarget};
use mpass_corpus::{BenignPool, Sample};
use mpass_detectors::Verdict;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// MalRNN hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MalRnnConfig {
    /// Bytes of benign training data for the language model.
    pub train_bytes: usize,
    /// Bytes appended per query round.
    pub chunk: usize,
    /// Maximum appended bytes before the attack restarts its generation.
    pub max_append: usize,
    /// Sampling temperature scaling (1 = greedy-ish argmax mixing).
    pub temperature: f64,
    /// Base seed.
    pub seed: u64,
}

impl Default for MalRnnConfig {
    fn default() -> Self {
        MalRnnConfig {
            train_bytes: 64 * 1024,
            chunk: 3072,
            max_append: 96 * 1024,
            temperature: 0.8,
            seed: 0x4D_4C52,
        }
    }
}

/// An order-2 byte Markov language model.
#[derive(Debug, Clone, Default)]
pub struct ByteLm {
    /// `(b₋₂, b₋₁) → counts over next byte`.
    table: HashMap<(u8, u8), Vec<(u8, u32)>>,
    /// The most frequent context — used to (re)start generation.
    start: (u8, u8),
}

impl ByteLm {
    /// Fit the model on a corpus of benign bytes.
    pub fn fit(data: &[u8]) -> ByteLm {
        let mut counts: HashMap<(u8, u8), HashMap<u8, u32>> = HashMap::new();
        for w in data.windows(3) {
            *counts.entry((w[0], w[1])).or_default().entry(w[2]).or_insert(0) += 1;
        }
        let table: HashMap<(u8, u8), Vec<(u8, u32)>> = counts
            .into_iter()
            .map(|(ctx, m)| {
                let mut v: Vec<(u8, u32)> = m.into_iter().collect();
                v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                (ctx, v)
            })
            .collect();
        let start = table
            .iter()
            .max_by_key(|(ctx, v)| (v.iter().map(|(_, c)| *c).sum::<u32>(), (ctx.0, ctx.1)))
            .map(|(ctx, _)| *ctx)
            .unwrap_or((0, 0));
        ByteLm { table, start }
    }

    /// Number of distinct contexts learned.
    pub fn context_count(&self) -> usize {
        self.table.len()
    }

    /// Sample `len` bytes. Low `temperature` concentrates on each
    /// context's most frequent continuation (repetitive, LM-like output);
    /// high temperature flattens toward the empirical distribution.
    pub fn generate<R: Rng + ?Sized>(&self, len: usize, temperature: f64, rng: &mut R) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut ctx = self.start;
        for _ in 0..len {
            let next = match self.table.get(&ctx) {
                Some(cands) if !cands.is_empty() => {
                    if temperature <= 0.0 || rng.gen_bool(1.0 - temperature.clamp(0.0, 1.0)) {
                        cands[0].0
                    } else {
                        // Sample proportional to counts.
                        let total: u32 = cands.iter().map(|(_, c)| *c).sum();
                        let mut pick = rng.gen_range(0..total);
                        let mut chosen = cands[0].0;
                        for &(b, c) in cands {
                            if pick < c {
                                chosen = b;
                                break;
                            }
                            pick -= c;
                        }
                        chosen
                    }
                }
                _ => {
                    // Unknown context: restart from the model's most
                    // frequent context (LM "prompt reset").
                    ctx = self.start;
                    match self.table.get(&ctx) {
                        Some(cands) if !cands.is_empty() => cands[0].0,
                        _ => rng.gen(),
                    }
                }
            };
            out.push(next);
            ctx = (ctx.1, next);
        }
        out
    }
}

/// The MalRNN attack.
pub struct MalRnn {
    lm: ByteLm,
    cfg: MalRnnConfig,
}

impl MalRnn {
    /// Train the language model on benign content from `pool`.
    pub fn new(pool: &BenignPool, cfg: MalRnnConfig) -> MalRnn {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let corpus = pool.random_chunk(cfg.train_bytes, &mut rng);
        MalRnn { lm: ByteLm::fit(&corpus), cfg }
    }

    /// Access the underlying language model (diagnostics).
    pub fn language_model(&self) -> &ByteLm {
        &self.lm
    }
}

impl Attack for MalRnn {
    fn name(&self) -> &str {
        "MalRNN"
    }

    /// All randomness derives from `(seed, sample name)`; no state
    /// carries across samples, so per-sample journal replay is sound.
    fn stateful_across_samples(&self) -> bool {
        false
    }

    fn attack(&mut self, sample: &Sample, target: &mut HardLabelTarget<'_>) -> AttackOutcome {
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.cfg.seed
                ^ sample
                    .name
                    .bytes()
                    .fold(0u64, |h, b| (h ^ b as u64).wrapping_mul(0x100_0000_01b3)),
        );
        let original_size = sample.size();
        let mut last_size = original_size;
        // PE-only baseline: non-PE containers are out of this attack's
        // action space and count as a failed attempt.
        let Some(base) = sample.pe() else {
            return AttackOutcome {
                sample: sample.name.clone(),
                evaded: false,
                queries: target.queries(),
                adversarial: None,
                original_size,
                final_size: original_size,
            };
        };
        loop {
            let mut pe = base.clone();
            let mut appended = 0usize;
            while appended < self.cfg.max_append {
                let chunk = self.lm.generate(self.cfg.chunk, self.cfg.temperature, &mut rng);
                pe.append_overlay(&chunk);
                appended += chunk.len();
                let bytes = pe.to_bytes();
                last_size = bytes.len();
                match target.query(&bytes) {
                    Ok(Verdict::Benign) => {
                        return AttackOutcome {
                            sample: sample.name.clone(),
                            evaded: true,
                            queries: target.queries(),
                            adversarial: Some(bytes),
                            original_size,
                            final_size: last_size,
                        }
                    }
                    Ok(Verdict::Malicious) => {}
                    Err(_) => {
                        return AttackOutcome {
                            sample: sample.name.clone(),
                            evaded: false,
                            queries: target.queries(),
                            adversarial: None,
                            original_size,
                            final_size: last_size,
                        }
                    }
                }
            }
            if target.remaining() == 0 {
                return AttackOutcome {
                    sample: sample.name.clone(),
                    evaded: false,
                    queries: target.queries(),
                    adversarial: None,
                    original_size,
                    final_size: last_size,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_corpus::{CorpusConfig, Dataset};
    use mpass_detectors::Detector;
    use mpass_sandbox::Sandbox;

    #[test]
    fn lm_learns_repetitive_structure() {
        let data = b"abcabcabcabcabcabcabcabc".repeat(20);
        let lm = ByteLm::fit(&data);
        assert!(lm.context_count() >= 3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let generated = lm.generate(30, 0.0, &mut rng);
        // Greedy generation from a periodic corpus reproduces the period.
        let s = String::from_utf8_lossy(&generated);
        assert!(s.contains("abcabc"), "got {s:?}");
    }

    #[test]
    fn lm_output_statistics_match_training() {
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 0,
            n_benign: 4,
            seed: 3,
            no_slack_fraction: 0.0,
        });
        let corpus: Vec<u8> = ds.benign().iter().flat_map(|s| s.bytes.clone()).collect();
        let lm = ByteLm::fit(&corpus);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let generated = lm.generate(8192, 0.5, &mut rng);
        // Benign-corpus entropy is structured, far from uniform noise.
        let h = mpass_pe::entropy(&generated);
        assert!(h < 7.0, "generated entropy {h} too random");
    }

    #[test]
    fn low_temperature_is_repetitive_across_samples() {
        let pool = BenignPool::generate(2, 3);
        let attack = MalRnn::new(&pool, MalRnnConfig::default());
        let mut r1 = ChaCha8Rng::seed_from_u64(10);
        let mut r2 = ChaCha8Rng::seed_from_u64(20);
        let a = attack.lm.generate(4096, 0.3, &mut r1);
        let b = attack.lm.generate(4096, 0.3, &mut r2);
        // Count shared 12-grams — the learnability property Fig. 4 needs.
        let grams: std::collections::HashSet<&[u8]> = a.windows(12).collect();
        let shared = b.windows(12).filter(|w| grams.contains(w)).count();
        assert!(shared > 100, "only {shared} shared grams between two generations");
    }

    struct TailWeakness;
    impl Detector for TailWeakness {
        fn name(&self) -> &str {
            "tail-weak"
        }
        fn score(&self, bytes: &[u8]) -> f32 {
            let Ok(pe) = mpass_pe::PeFile::parse(bytes) else { return 1.0 };
            // Evaded once enough *low-entropy* content is appended.
            let ov = pe.overlay();
            if ov.len() > 4000 && mpass_pe::entropy(ov) < 7.0 {
                0.1
            } else {
                0.9
            }
        }
    }

    #[test]
    fn malrnn_appends_until_evasion_and_preserves() {
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 4,
            n_benign: 2,
            seed: 4,
            no_slack_fraction: 0.0,
        });
        let pool = BenignPool::generate(2, 3);
        let mut attack = MalRnn::new(&pool, MalRnnConfig::default());
        let det = TailWeakness;
        let sandbox = Sandbox::new();
        let mut wins = 0;
        for s in ds.malware() {
            let mut target = HardLabelTarget::new(&det, 100);
            let o = attack.attack(s, &mut target);
            if o.evaded {
                wins += 1;
                assert!(sandbox
                    .verify_functionality(&s.bytes, &o.adversarial.unwrap())
                    .is_preserved());
            }
        }
        assert!(wins >= 3, "MalRNN evaded only {wins}/4");
    }
}
