//! Simulated packers/protectors for the Table IV comparison: UPX, PESpin
//! and ASPack.
//!
//! Each profile keystream-encodes every section behind a *fixed* decode
//! stub laid out sequentially (real packers ship one stub per version),
//! with the packer's characteristic section name and marker bytes. That
//! fixed, detector-visible structure — plus the entry point landing in the
//! stub section and the uniformly high entropy — is exactly why generic
//! obfuscation underperforms a detector-aware attack in the paper.

use mpass_core::recovery::{compute_keys, generate_recovery_stub, EncodedRegion};
use mpass_core::shuffle::layout_sequential;
use mpass_core::{Attack, AttackOutcome, HardLabelTarget};
use mpass_corpus::Sample;
use mpass_detectors::Verdict;
use mpass_pe::{PeError, PeFile, SectionFlags};
use serde::{Deserialize, Serialize};

/// Static identity of one simulated packer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackerProfile {
    /// Display name.
    pub name: &'static str,
    /// Name given to the stub section.
    pub section_name: &'static str,
    /// Characteristic marker bytes embedded before the stub.
    pub marker: &'static [u8],
    /// Fixed keystream seed (the packer's "encryption key schedule").
    pub keystream_seed: u64,
}

/// A packer profile typical of *benign* software distribution
/// (installer self-extractors). Worlds pack a fraction of their benign
/// corpus with it so detectors learn that packing artifacts alone are not
/// malice — mirroring the packed goodware in EMBER-scale training sets
/// ("When malware is packin' heat", NDSS 2020).
pub fn benign_packer_profile() -> PackerProfile {
    PackerProfile {
        name: "InstallPak",
        section_name: ".ipack",
        marker: b"InstallPak SFX v3.1 (c) Contoso Deployment Tools\x00",
        keystream_seed: 0x4950_414B,
    }
}

/// The three obfuscators of Table IV.
pub fn packer_profiles() -> [PackerProfile; 3] {
    [
        PackerProfile {
            name: "UPX",
            section_name: "UPX1",
            marker: b"UPX!4.02\x00\x00$Info: This file is packed with the UPX executable packer$\x00",
            keystream_seed: 0x5550_5801,
        },
        PackerProfile {
            name: "PESpin",
            section_name: ".pespin",
            marker: b"PESpin v1.33 protected\x00\x00(c) cyberbob\x00",
            keystream_seed: 0x5045_5350,
        },
        PackerProfile {
            name: "ASPack",
            section_name: ".aspack",
            marker: b".aspack\x00.adata\x00ASPack 2.12\x00",
            keystream_seed: 0x4153_5041,
        },
    ]
}

/// A simulated packer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packer {
    profile: PackerProfile,
}

impl Packer {
    /// Build a packer from a profile.
    pub fn new(profile: PackerProfile) -> Packer {
        Packer { profile }
    }

    /// The packer's profile.
    pub fn profile(&self) -> &PackerProfile {
        &self.profile
    }

    /// Deterministic keystream bytes (fixed per packer, independent of the
    /// input — the learnable weakness).
    fn keystream(&self, len: usize) -> Vec<u8> {
        let mut state = self.profile.keystream_seed as u32 ^ 0xA5A5_5A5A;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (state >> 24) as u8
            })
            .collect()
    }

    /// Pack a PE: encode all non-empty sections, add the stub section,
    /// retarget the entry point.
    ///
    /// # Errors
    ///
    /// Returns [`PeError::NoHeaderSpace`] when the image cannot take
    /// another section (packers fail on such inputs).
    pub fn pack(&self, pe: &PeFile) -> Result<Vec<u8>, PeError> {
        let mut pe = pe.clone();
        let original_entry = pe.entry_point();
        if !pe.can_add_section() {
            return Err(PeError::NoHeaderSpace);
        }
        let new_rva = pe.next_free_rva();
        let marker = self.profile.marker;
        // Layout of the stub section: [marker][keys][stub].
        let mut regions = Vec::new();
        let mut keys_blob: Vec<u8> = Vec::new();
        let section_count = pe.sections().len();
        for i in 0..section_count {
            let (rva, original) = {
                let s = &pe.sections()[i];
                if s.data().is_empty() {
                    continue;
                }
                (s.header().virtual_address, s.data().to_vec())
            };
            let cover = self.keystream(original.len());
            let keys = compute_keys(&original, &cover);
            regions.push(EncodedRegion {
                rva,
                len: original.len() as u32,
                key_rva: new_rva + (marker.len() + keys_blob.len()) as u32,
            });
            keys_blob.extend_from_slice(&keys);
            pe.sections_mut()[i].data_mut().copy_from_slice(&cover);
        }
        let stub_base = new_rva + (marker.len() + keys_blob.len()) as u32;
        let stub = generate_recovery_stub(&regions, original_entry);
        let stub_bytes = layout_sequential(&stub, stub_base);
        let mut content = marker.to_vec();
        content.extend_from_slice(&keys_blob);
        content.extend_from_slice(&stub_bytes);
        pe.add_section(self.profile.section_name, content, SectionFlags::CODE)?;
        pe.set_entry_point(stub_base)?;
        pe.update_checksum();
        Ok(pe.to_bytes())
    }
}

impl Attack for Packer {
    fn name(&self) -> &str {
        self.profile.name
    }

    /// Packing is a pure function of the input bytes; no state carries
    /// across samples, so per-sample journal replay is sound.
    fn stateful_across_samples(&self) -> bool {
        false
    }

    /// Packers are one-shot transformations: a single query decides.
    fn attack(&mut self, sample: &Sample, target: &mut HardLabelTarget<'_>) -> AttackOutcome {
        let original_size = sample.size();
        // PE-only baseline: non-PE containers fail to pack.
        match sample.pe().ok_or(()).and_then(|pe| self.pack(pe).map_err(|_| ())) {
            Ok(bytes) => {
                let final_size = bytes.len();
                let evaded = target.query(&bytes).is_ok_and(Verdict::is_benign);
                AttackOutcome {
                    sample: sample.name.clone(),
                    evaded,
                    queries: target.queries(),
                    adversarial: evaded.then_some(bytes),
                    original_size,
                    final_size,
                }
            }
            Err(_) => AttackOutcome {
                sample: sample.name.clone(),
                evaded: false,
                queries: target.queries(),
                adversarial: None,
                original_size,
                final_size: original_size,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_corpus::{CorpusConfig, Dataset};
    use mpass_sandbox::Sandbox;

    fn dataset() -> Dataset {
        Dataset::generate(&CorpusConfig {
            n_malware: 6,
            n_benign: 2,
            seed: 101,
            no_slack_fraction: 0.0,
        })
    }

    #[test]
    fn packing_preserves_functionality() {
        let ds = dataset();
        let sandbox = Sandbox::new();
        for profile in packer_profiles() {
            let packer = Packer::new(profile);
            for s in ds.malware().into_iter().take(3) {
                let packed = packer.pack(s.pe().unwrap()).unwrap();
                let v = sandbox.verify_functionality(&s.bytes, &packed);
                assert!(v.is_preserved(), "{} on {}: {v}", profile.name, s.name);
            }
        }
    }

    #[test]
    fn packed_sections_are_high_entropy() {
        let ds = dataset();
        let packer = Packer::new(packer_profiles()[0]);
        let s = ds.malware()[0];
        let packed = PeFile::parse(&packer.pack(s.pe().unwrap()).unwrap()).unwrap();
        let text = packed
            .sections()
            .iter()
            .find(|x| x.name() == s.pe().unwrap().sections()[0].name())
            .unwrap();
        assert!(text.entropy() > 7.0, "entropy {}", text.entropy());
    }

    #[test]
    fn marker_and_section_name_present() {
        let ds = dataset();
        for profile in packer_profiles() {
            let packer = Packer::new(profile);
            let packed = packer.pack(ds.malware()[0].pe().unwrap()).unwrap();
            let pe = PeFile::parse(&packed).unwrap();
            assert!(pe.section(profile.section_name).is_some(), "{}", profile.name);
            let found = packed
                .windows(profile.marker.len().min(12))
                .any(|w| w == &profile.marker[..profile.marker.len().min(12)]);
            assert!(found, "{} marker missing", profile.name);
        }
    }

    #[test]
    fn packed_output_is_identical_in_structure_across_samples() {
        // The stub bytes (fixed layout + fixed keystream) must repeat
        // across samples: extract the stub section contents' tail (stub
        // code) and compare.
        let ds = dataset();
        let packer = Packer::new(packer_profiles()[1]);
        let a = packer.pack(ds.malware()[0].pe().unwrap()).unwrap();
        let b = packer.pack(ds.malware()[1].pe().unwrap()).unwrap();
        let grams: std::collections::HashSet<&[u8]> = a.windows(12).collect();
        let shared = b.windows(12).filter(|w| grams.contains(w)).count();
        assert!(shared > 50, "only {shared} shared 12-grams between packed outputs");
    }

    #[test]
    fn entry_point_moves_to_stub_section() {
        let ds = dataset();
        let packer = Packer::new(packer_profiles()[2]);
        let packed = PeFile::parse(&packer.pack(ds.malware()[0].pe().unwrap()).unwrap()).unwrap();
        let entry_sec = packed.section_containing_rva(packed.entry_point()).unwrap();
        assert_eq!(entry_sec.name(), packer.profile().section_name);
    }
}
