//! # mpass-baselines — the attacks MPass is compared against
//!
//! Reimplementations of the paper's four baseline attacks, the three
//! obfuscators of Table IV, and the two ablation attackers of Tables V/VI.
//! Every attack implements [`mpass_core::Attack`] against the same
//! hard-label [`mpass_core::HardLabelTarget`] oracle:
//!
//! * [`Rla`] — RL-Attack (Anderson et al., Black Hat 2017): tabular
//!   Q-learning over a fixed PE-manipulation action set. Faithfully
//!   includes gym-malware's defect: one action (in-place section packing
//!   without proper recovery) occasionally corrupts functionality — the
//!   paper finds 23 % of RLA's AEs broken.
//! * [`Mab`] — MAB-malware (Song et al., ASIA CCS 2022): Thompson-sampling
//!   multi-armed bandit over manipulation actions, sharing arm statistics
//!   across samples.
//! * [`Gamma`] — GAMMA (Demetrio et al., TIFS 2021): genetic optimization
//!   of benign-section injection from a fixed donor set; powerful but with
//!   an enormous appending rate.
//! * [`MalRnn`] — MalRNN (Ebrahimi et al.): a byte-level generative
//!   language model producing benign-looking append content. The RNN is
//!   substituted with an order-2 byte Markov model (see DESIGN.md) — same
//!   role, same learnable repetitiveness.
//! * [`Packer`] / [`packer_profiles`] — simulated UPX, PESpin and ASPack:
//!   whole-file keystream encoding behind a *fixed* decode stub, fixed
//!   marker bytes and fixed section names (Table IV).
//! * [`RandomData`] — the Table VI control: random bytes at exactly
//!   MPass's modification positions (hash-change strawman).
//! * [`other_sec`] — the Table V ablation: the full MPass pipeline pointed
//!   at *non-critical* sections.
//!
//! All baselines share [`ActionLibrary`], a fixed library of benign
//! payload chunks harvested once per attack instance — fixed content is
//! both realistic (these tools ship with static payload corpora) and what
//! makes their perturbations minable by AV continual learning (Fig. 4).

mod ablation;
mod actions;
mod gamma;
mod mab;
mod malrnn;
mod packers;
mod rla;

pub use ablation::{other_sec, RandomData};
pub use actions::{ActionLibrary, PeAction};
pub use gamma::{Gamma, GammaConfig};
pub use mab::{Mab, MabConfig};
pub use malrnn::{ByteLm, MalRnn, MalRnnConfig};
pub use packers::{benign_packer_profile, packer_profiles, Packer, PackerProfile};
pub use rla::{Rla, RlaConfig};
