//! MAB-malware — Song et al., "MAB-Malware: a reinforcement learning
//! framework for blackbox generation of adversarial malware" (ASIA CCS
//! 2022).
//!
//! A Thompson-sampling multi-armed bandit: each manipulation action is an
//! arm with a Beta posterior over its evasion success probability. Arm
//! statistics are shared across the whole campaign, so the bandit rapidly
//! concentrates on whatever manipulations the current target is weak to —
//! the reason MAB is the strongest baseline in the paper's tables. Its
//! structural limit remains: no action touches code or data sections.

use crate::actions::{ActionLibrary, PeAction};
use mpass_core::{Attack, AttackOutcome, HardLabelTarget};
use mpass_corpus::{BenignPool, Sample};
use mpass_detectors::Verdict;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// MAB hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MabConfig {
    /// Consecutive actions stacked on one candidate before restarting
    /// from the pristine sample.
    pub max_stack: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for MabConfig {
    fn default() -> Self {
        MabConfig { max_stack: 8, seed: 0x004D_4142 }
    }
}

/// Beta-posterior arm state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Arm {
    alpha: f64,
    beta: f64,
}

impl Arm {
    fn sample(&self, rng: &mut ChaCha8Rng) -> f64 {
        // Beta(α, β) via the Jöhnk/gamma-free approximation: for the small
        // integer-ish parameters the bandit produces, averaging the max of
        // uniforms is adequate; use the standard two-gamma construction
        // with Marsaglia–Tsang for correctness.
        let x = gamma_sample(self.alpha, rng);
        let y = gamma_sample(self.beta, rng);
        if x + y == 0.0 {
            0.5
        } else {
            x / (x + y)
        }
    }
}

/// Marsaglia–Tsang gamma sampler (shape ≥ 0; rate 1).
fn gamma_sample(shape: f64, rng: &mut ChaCha8Rng) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        let u: f64 = rng.gen_range(1e-12..1.0);
        return gamma_sample(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Box–Muller normal.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * n).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(1e-12..1.0);
        if u.ln() < 0.5 * n * n + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// The MAB-malware attack.
pub struct Mab {
    library: ActionLibrary,
    actions: Vec<PeAction>,
    arms: Vec<Arm>,
    cfg: MabConfig,
}

impl Mab {
    /// Build the bandit with a payload library harvested from `pool`.
    /// MAB's action set excludes the unsafe packing action (the original
    /// verifies candidate integrity with a mini-sandbox).
    pub fn new(pool: &BenignPool, cfg: MabConfig) -> Mab {
        let library = ActionLibrary::harvest(pool, 6, 1024, cfg.seed, false);
        let actions = library.action_space();
        let arms = vec![Arm { alpha: 1.0, beta: 1.0 }; actions.len()];
        Mab { library, actions, arms, cfg }
    }

    fn pick_arm(&self, rng: &mut ChaCha8Rng) -> usize {
        let mut best = 0;
        let mut best_v = f64::NEG_INFINITY;
        for (i, arm) in self.arms.iter().enumerate() {
            let v = arm.sample(rng);
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }
}

impl Attack for Mab {
    fn name(&self) -> &str {
        "MAB"
    }

    fn attack(&mut self, sample: &Sample, target: &mut HardLabelTarget<'_>) -> AttackOutcome {
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.cfg.seed
                ^ sample
                    .name
                    .bytes()
                    .fold(0u64, |h, b| (h ^ b as u64).wrapping_mul(0x100_0000_01b3)),
        );
        let original_size = sample.size();
        let mut last_size = original_size;
        // PE-only baseline: non-PE containers are out of this attack's
        // action space and count as a failed attempt.
        let Some(base) = sample.pe() else {
            return AttackOutcome {
                sample: sample.name.clone(),
                evaded: false,
                queries: target.queries(),
                adversarial: None,
                original_size,
                final_size: original_size,
            };
        };
        loop {
            let mut pe = base.clone();
            for _ in 0..self.cfg.max_stack {
                let arm = self.pick_arm(&mut rng);
                self.library.apply(&mut pe, self.actions[arm], &mut rng);
                let bytes = pe.to_bytes();
                last_size = bytes.len();
                match target.query(&bytes) {
                    Ok(Verdict::Benign) => {
                        self.arms[arm].alpha += 1.0;
                        return AttackOutcome {
                            sample: sample.name.clone(),
                            evaded: true,
                            queries: target.queries(),
                            adversarial: Some(bytes),
                            original_size,
                            final_size: last_size,
                        };
                    }
                    Ok(Verdict::Malicious) => {
                        self.arms[arm].beta += 0.3;
                    }
                    Err(_) => {
                        return AttackOutcome {
                            sample: sample.name.clone(),
                            evaded: false,
                            queries: target.queries(),
                            adversarial: None,
                            original_size,
                            final_size: last_size,
                        };
                    }
                }
            }
            if target.remaining() == 0 {
                return AttackOutcome {
                    sample: sample.name.clone(),
                    evaded: false,
                    queries: target.queries(),
                    adversarial: None,
                    original_size,
                    final_size: last_size,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_corpus::{CorpusConfig, Dataset};
    use mpass_detectors::Detector;
    use mpass_sandbox::Sandbox;

    struct OverlayWeakness;
    impl Detector for OverlayWeakness {
        fn name(&self) -> &str {
            "overlay-weak"
        }
        fn score(&self, bytes: &[u8]) -> f32 {
            let Ok(pe) = mpass_pe::PeFile::parse(bytes) else { return 1.0 };
            if pe.overlay().len() > 1800 {
                0.1
            } else {
                0.9
            }
        }
    }

    fn dataset() -> Dataset {
        Dataset::generate(&CorpusConfig {
            n_malware: 6,
            n_benign: 2,
            seed: 81,
            no_slack_fraction: 0.0,
        })
    }

    #[test]
    fn gamma_sampler_is_positive_and_finite() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for &shape in &[0.3f64, 1.0, 2.5, 10.0] {
            for _ in 0..100 {
                let g = gamma_sample(shape, &mut rng);
                assert!(g.is_finite() && g > 0.0, "shape {shape} gave {g}");
            }
        }
    }

    #[test]
    fn gamma_sampler_mean_approximates_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 4000;
        let mean: f64 = (0..n).map(|_| gamma_sample(3.0, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn mab_evades_and_preserves() {
        let ds = dataset();
        let pool = BenignPool::generate(3, 3);
        let mut mab = Mab::new(&pool, MabConfig::default());
        let det = OverlayWeakness;
        let sandbox = Sandbox::new();
        let mut wins = 0;
        for s in ds.malware() {
            let mut target = HardLabelTarget::new(&det, 100);
            let o = mab.attack(s, &mut target);
            if o.evaded {
                wins += 1;
                let ae = o.adversarial.unwrap();
                assert!(sandbox.verify_functionality(&s.bytes, &ae).is_preserved());
            }
        }
        assert!(wins >= 5, "MAB evaded only {wins}/6");
    }

    #[test]
    fn bandit_concentrates_on_winning_arms() {
        let ds = dataset();
        let pool = BenignPool::generate(3, 3);
        let mut mab = Mab::new(&pool, MabConfig::default());
        let det = OverlayWeakness;
        for s in ds.malware() {
            let mut target = HardLabelTarget::new(&det, 100);
            let _ = mab.attack(s, &mut target);
        }
        // Overlay/section-payload arms must have gathered more successes
        // than the header-only arms.
        let payload_alpha: f64 = mab
            .arms
            .iter()
            .zip(&mab.actions)
            .filter(|(_, a)| {
                matches!(a, PeAction::AppendOverlay(_) | PeAction::AddSection(_))
            })
            .map(|(arm, _)| arm.alpha)
            .sum();
        let header_alpha: f64 = mab
            .arms
            .iter()
            .zip(&mab.actions)
            .filter(|(_, a)| {
                matches!(
                    a,
                    PeAction::SetTimestamp | PeAction::SetImageVersion | PeAction::RenameSection
                )
            })
            .map(|(arm, _)| arm.alpha)
            .sum();
        assert!(
            payload_alpha > header_alpha,
            "payload arms α={payload_alpha} vs header α={header_alpha}"
        );
    }
}
