//! RL-Attack (RLA) — Anderson et al., "Evading machine learning malware
//! detection", Black Hat 2017 (gym-malware).
//!
//! Tabular Q-learning over the manipulation [`PeAction`] set. The agent's
//! state is the number of actions applied so far (the original uses
//! hand-crafted features; with a hard-label oracle and a short horizon the
//! step index is the signal that survives). Rewards: +1 when the target
//! flips to benign, small negative step cost otherwise. Q-values persist
//! across samples, so the agent improves over a campaign — and, like the
//! original tool, it includes an in-place section-packing action without
//! recovery, which is why the paper finds 23 % of RLA's AEs broken.

use crate::actions::{ActionLibrary, PeAction};
use mpass_core::{Attack, AttackOutcome, HardLabelTarget};
use mpass_corpus::{BenignPool, Sample};
use mpass_detectors::Verdict;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// RLA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RlaConfig {
    /// Actions per episode before restarting from the original sample.
    pub horizon: usize,
    /// Q-learning rate.
    pub alpha: f64,
    /// Discount factor.
    pub gamma: f64,
    /// Exploration probability.
    pub epsilon: f64,
    /// Base seed.
    pub seed: u64,
}

impl Default for RlaConfig {
    fn default() -> Self {
        RlaConfig { horizon: 10, alpha: 0.3, gamma: 0.9, epsilon: 0.2, seed: 0x0052_4C41 }
    }
}

/// The RL-Attack agent.
pub struct Rla {
    library: ActionLibrary,
    actions: Vec<PeAction>,
    q: HashMap<(usize, usize), f64>,
    cfg: RlaConfig,
}

impl Rla {
    /// Build the agent with a payload library harvested from `pool`.
    pub fn new(pool: &BenignPool, cfg: RlaConfig) -> Rla {
        let library = ActionLibrary::harvest(pool, 4, 768, cfg.seed, true);
        let actions = library.action_space();
        Rla { library, actions, q: HashMap::new(), cfg }
    }

    fn choose(&self, state: usize, rng: &mut ChaCha8Rng) -> usize {
        if rng.gen_bool(self.cfg.epsilon) {
            return rng.gen_range(0..self.actions.len());
        }
        // Greedy with *random* tie-breaking: with a fresh all-zero Q table
        // a deterministic argmax would always pick the same action.
        let qs: Vec<f64> = (0..self.actions.len())
            .map(|a| self.q.get(&(state, a)).copied().unwrap_or(0.0))
            .collect();
        let best = qs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let candidates: Vec<usize> =
            (0..qs.len()).filter(|&a| qs[a] == best).collect();
        candidates[rng.gen_range(0..candidates.len())]
    }

    fn update(&mut self, state: usize, action: usize, reward: f64, next_state: usize) {
        let max_next = (0..self.actions.len())
            .map(|a| self.q.get(&(next_state, a)).copied().unwrap_or(0.0))
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0);
        let entry = self.q.entry((state, action)).or_insert(0.0);
        *entry += self.cfg.alpha * (reward + self.cfg.gamma * max_next - *entry);
    }
}

impl Attack for Rla {
    fn name(&self) -> &str {
        "RLA"
    }

    fn attack(&mut self, sample: &Sample, target: &mut HardLabelTarget<'_>) -> AttackOutcome {
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.cfg.seed
                ^ sample
                    .name
                    .bytes()
                    .fold(0u64, |h, b| (h ^ b as u64).wrapping_mul(0x100_0000_01b3)),
        );
        let original_size = sample.size();
        let mut last_size = original_size;
        // PE-only baseline: non-PE containers are out of this attack's
        // action space and count as a failed attempt.
        let Some(base) = sample.pe() else {
            return AttackOutcome {
                sample: sample.name.clone(),
                evaded: false,
                queries: target.queries(),
                adversarial: None,
                original_size,
                final_size: original_size,
            };
        };
        loop {
            // One episode from the pristine sample.
            let mut pe = base.clone();
            for step in 0..self.cfg.horizon {
                let state = step;
                let a = self.choose(state, &mut rng);
                self.library.apply(&mut pe, self.actions[a], &mut rng);
                let bytes = pe.to_bytes();
                last_size = bytes.len();
                match target.query(&bytes) {
                    Ok(Verdict::Benign) => {
                        self.update(state, a, 1.0, state + 1);
                        return AttackOutcome {
                            sample: sample.name.clone(),
                            evaded: true,
                            queries: target.queries(),
                            adversarial: Some(bytes),
                            original_size,
                            final_size: last_size,
                        };
                    }
                    Ok(Verdict::Malicious) => {
                        self.update(state, a, -0.05, state + 1);
                    }
                    Err(_) => {
                        return AttackOutcome {
                            sample: sample.name.clone(),
                            evaded: false,
                            queries: target.queries(),
                            adversarial: None,
                            original_size,
                            final_size: last_size,
                        };
                    }
                }
            }
            if target.remaining() == 0 {
                return AttackOutcome {
                    sample: sample.name.clone(),
                    evaded: false,
                    queries: target.queries(),
                    adversarial: None,
                    original_size,
                    final_size: last_size,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_corpus::{CorpusConfig, Dataset};
    use mpass_detectors::Detector;

    /// A target that flips to benign once the overlay exceeds a threshold —
    /// learnable by the bandit/Q machinery.
    struct OverlayWeakness;
    impl Detector for OverlayWeakness {
        fn name(&self) -> &str {
            "overlay-weak"
        }
        fn score(&self, bytes: &[u8]) -> f32 {
            let Ok(pe) = mpass_pe::PeFile::parse(bytes) else { return 1.0 };
            if pe.overlay().len() > 1500 {
                0.1
            } else {
                0.9
            }
        }
    }

    fn dataset() -> Dataset {
        Dataset::generate(&CorpusConfig {
            n_malware: 5,
            n_benign: 2,
            seed: 71,
            no_slack_fraction: 0.0,
        })
    }

    #[test]
    fn rla_finds_overlay_weakness() {
        let ds = dataset();
        let pool = BenignPool::generate(2, 3);
        let mut rla = Rla::new(&pool, RlaConfig::default());
        let det = OverlayWeakness;
        let mut wins = 0;
        for s in ds.malware() {
            let mut target = HardLabelTarget::new(&det, 100);
            if rla.attack(s, &mut target).evaded {
                wins += 1;
            }
        }
        assert!(wins >= 4, "RLA evaded only {wins}/5");
    }

    #[test]
    fn rla_respects_budget() {
        struct Never;
        impl Detector for Never {
            fn name(&self) -> &str {
                "never"
            }
            fn score(&self, _: &[u8]) -> f32 {
                1.0
            }
        }
        let ds = dataset();
        let pool = BenignPool::generate(2, 3);
        let mut rla = Rla::new(&pool, RlaConfig::default());
        let det = Never;
        let mut target = HardLabelTarget::new(&det, 30);
        let outcome = rla.attack(ds.malware()[0], &mut target);
        assert!(!outcome.evaded);
        assert_eq!(outcome.queries, 30);
    }

    #[test]
    fn q_values_persist_across_samples() {
        let ds = dataset();
        let pool = BenignPool::generate(2, 3);
        let mut rla = Rla::new(&pool, RlaConfig::default());
        let det = OverlayWeakness;
        let mut first_queries = 0;
        let mut later_queries = Vec::new();
        for (i, s) in ds.malware().into_iter().enumerate() {
            let mut target = HardLabelTarget::new(&det, 100);
            let o = rla.attack(s, &mut target);
            if i == 0 {
                first_queries = o.queries;
            } else if o.evaded {
                later_queries.push(o.queries);
            }
        }
        assert!(!later_queries.is_empty());
        // Learning should keep later query counts in the same ballpark or
        // better than the first exploratory sample on average.
        let avg_later: f64 =
            later_queries.iter().map(|&q| q as f64).sum::<f64>() / later_queries.len() as f64;
        assert!(
            avg_later <= first_queries as f64 + 10.0,
            "no sign of learning: first {first_queries}, later avg {avg_later}"
        );
    }
}
