//! The paper's ablation attackers.
//!
//! * [`RandomData`] (Table VI): writes *random* bytes at exactly the
//!   modification positions MPass uses (via the same recovery machinery,
//!   so functionality is preserved). If the commercial AVs were hash-based,
//!   this would evade them as well as MPass does; its failure demonstrates
//!   they are not.
//! * [`other_sec`] (Table V): the full MPass pipeline — recovery,
//!   shuffling, ensemble optimization — pointed at *non-critical* sections
//!   (read-only data, resources, relocations) instead of code and data,
//!   isolating the contribution of the critical-section choice.

use mpass_core::{
    Attack, AttackOutcome, HardLabelTarget, MPassAttack, MPassConfig, ModificationConfig,
};
use mpass_corpus::{BenignPool, Sample};
use mpass_detectors::{Verdict, WhiteBoxModel};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The Table VI control: MPass's modification positions filled with
/// uniformly random bytes, no optimization.
pub struct RandomData {
    random_pool: BenignPool,
    modification: ModificationConfig,
    attempts: usize,
    seed: u64,
}

impl RandomData {
    /// Build the attacker. `attempts` fresh random fills are tried per
    /// sample (each costs one query).
    pub fn new(attempts: usize, seed: u64) -> RandomData {
        // A "benign pool" of pure noise: every chunk request returns
        // uniform random bytes.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let chunks: Vec<Vec<u8>> =
            (0..32).map(|_| (0..16 * 1024).map(|_| rng.gen()).collect()).collect();
        RandomData {
            random_pool: BenignPool::from_chunks(chunks),
            modification: ModificationConfig::default(),
            attempts,
            seed,
        }
    }
}

impl Attack for RandomData {
    fn name(&self) -> &str {
        "Random data"
    }

    /// All randomness derives from `(seed, sample name)`; no state
    /// carries across samples, so per-sample journal replay is sound.
    fn stateful_across_samples(&self) -> bool {
        false
    }

    fn attack(&mut self, sample: &Sample, target: &mut HardLabelTarget<'_>) -> AttackOutcome {
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.seed
                ^ sample
                    .name
                    .bytes()
                    .fold(0u64, |h, b| (h ^ b as u64).wrapping_mul(0x100_0000_01b3)),
        );
        let original_size = sample.size();
        let mut last_size = original_size;
        for _ in 0..self.attempts {
            let Ok(ms) =
                mpass_core::modify::modify(sample, &self.random_pool, &self.modification, &mut rng)
            else {
                break;
            };
            last_size = ms.bytes.len();
            match target.query(&ms.bytes) {
                Ok(Verdict::Benign) => {
                    return AttackOutcome {
                        sample: sample.name.clone(),
                        evaded: true,
                        queries: target.queries(),
                        adversarial: Some(ms.bytes),
                        original_size,
                        final_size: last_size,
                    }
                }
                Ok(Verdict::Malicious) => {}
                Err(_) => break,
            }
        }
        AttackOutcome {
            sample: sample.name.clone(),
            evaded: false,
            queries: target.queries(),
            adversarial: None,
            original_size,
            final_size: last_size,
        }
    }
}

/// The Table V ablation: MPass with modification redirected to
/// non-critical sections, all other settings identical.
pub struct OtherSec<'a>(MPassAttack<'a>);

/// Construct the Other-sec ablation from the same ingredients as MPass.
pub fn other_sec<'a>(
    models: Vec<&'a dyn WhiteBoxModel>,
    pool: &'a BenignPool,
    base: MPassConfig,
) -> OtherSec<'a> {
    let cfg = base
        .to_builder()
        .modification(ModificationConfig {
            other_sections_instead: true,
            ..base.modification().clone()
        })
        .build()
        .expect("redirecting sections keeps the base config valid");
    OtherSec(MPassAttack::new(models, pool, cfg))
}

impl Attack for OtherSec<'_> {
    fn name(&self) -> &str {
        "Other-sec"
    }

    fn stateful_across_samples(&self) -> bool {
        self.0.stateful_across_samples()
    }

    fn attack(&mut self, sample: &Sample, target: &mut HardLabelTarget<'_>) -> AttackOutcome {
        self.0.attack(sample, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_corpus::{CorpusConfig, Dataset};
    use mpass_sandbox::Sandbox;

    fn dataset() -> Dataset {
        Dataset::generate(&CorpusConfig {
            n_malware: 5,
            n_benign: 2,
            seed: 111,
            no_slack_fraction: 0.0,
        })
    }

    #[test]
    fn random_data_preserves_functionality() {
        let ds = dataset();
        let sandbox = Sandbox::new();
        let mut attack = RandomData::new(3, 1);
        // Use a detector that always accepts so we obtain the AE bytes.
        struct Always;
        impl mpass_detectors::Detector for Always {
            fn name(&self) -> &str {
                "always-benign"
            }
            fn score(&self, _: &[u8]) -> f32 {
                0.0
            }
        }
        let det = Always;
        for s in ds.malware() {
            let mut target = HardLabelTarget::new(&det, 10);
            let o = attack.attack(s, &mut target);
            assert!(o.evaded);
            let ae = o.adversarial.unwrap();
            let v = sandbox.verify_functionality(&s.bytes, &ae);
            assert!(v.is_preserved(), "{}: {v}", s.name);
        }
    }

    #[test]
    fn random_data_produces_high_entropy_cover() {
        let ds = dataset();
        let mut attack = RandomData::new(1, 2);
        struct Always;
        impl mpass_detectors::Detector for Always {
            fn name(&self) -> &str {
                "always-benign"
            }
            fn score(&self, _: &[u8]) -> f32 {
                0.0
            }
        }
        let det = Always;
        let s = ds.malware().into_iter().find(|s| s.pe().unwrap().can_add_section()).unwrap();
        let mut target = HardLabelTarget::new(&det, 10);
        let o = attack.attack(s, &mut target);
        let pe = mpass_pe::PeFile::parse(&o.adversarial.unwrap()).unwrap();
        let code = pe
            .sections()
            .iter()
            .find(|x| x.kind() == mpass_pe::SectionKind::Code && !x.data().is_empty())
            .unwrap();
        assert!(code.entropy() > 7.5, "random cover entropy {}", code.entropy());
    }

    #[test]
    fn random_data_respects_attempt_budget() {
        struct Never;
        impl mpass_detectors::Detector for Never {
            fn name(&self) -> &str {
                "never"
            }
            fn score(&self, _: &[u8]) -> f32 {
                1.0
            }
        }
        let ds = dataset();
        let mut attack = RandomData::new(4, 3);
        let det = Never;
        let mut target = HardLabelTarget::new(&det, 100);
        let o = attack.attack(ds.malware()[0], &mut target);
        assert!(!o.evaded);
        assert_eq!(o.queries, 4);
    }
}
