//! Synthesis of executable MVM programs with prescribed API behaviour.
//!
//! Programs interleave their API calls with arithmetic noise, loops and
//! subroutines so that code sections have realistic instruction variety,
//! and they load API arguments from the data section so that behaviour
//! depends on data bytes.

use mpass_vm::{api, ApiId, Asm, Instr, Reg};
use rand::Rng;

/// Specification of the behaviour a synthesized program must exhibit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BehaviorSpec {
    /// APIs to invoke, in order.
    pub api_calls: Vec<ApiId>,
    /// How many of the API calls take their argument from the data
    /// section (`data_rva`); the rest use register arithmetic results.
    pub data_driven_calls: usize,
    /// RVA of the data section the program reads arguments from.
    pub data_rva: u32,
    /// Number of data bytes available at `data_rva`.
    pub data_len: u32,
    /// Rough amount of filler computation between calls (instructions).
    pub noise: usize,
}

impl BehaviorSpec {
    /// A benign behaviour profile over `n_calls` random benign APIs.
    ///
    /// A fifth of benign programs additionally make *one* dual-use
    /// "suspicious" call (debuggers inject threads, backup tools touch
    /// shadow copies): real-world benign software is not perfectly clean,
    /// and detectors must learn magnitudes rather than mere presence.
    pub fn benign<R: Rng + ?Sized>(
        n_calls: usize,
        data_rva: u32,
        data_len: u32,
        rng: &mut R,
    ) -> Self {
        let pool = api::benign();
        let mut api_calls: Vec<ApiId> =
            (0..n_calls.max(2)).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
        if rng.gen_bool(0.2) {
            let sus = api::suspicious();
            let at = rng.gen_range(0..=api_calls.len());
            api_calls.insert(at, sus[rng.gen_range(0..sus.len())]);
        }
        let n = api_calls.len();
        BehaviorSpec {
            api_calls,
            data_driven_calls: n / 2,
            data_rva,
            data_len,
            noise: rng.gen_range(4..12),
        }
    }

    /// A malicious behaviour profile: a mix of suspicious APIs (at least
    /// three) plus camouflage benign calls.
    pub fn malicious<R: Rng + ?Sized>(
        n_suspicious: usize,
        n_benign: usize,
        data_rva: u32,
        data_len: u32,
        rng: &mut R,
    ) -> Self {
        let sus = api::suspicious();
        let ben = api::benign();
        let mut calls: Vec<ApiId> = (0..n_suspicious.max(3))
            .map(|_| sus[rng.gen_range(0..sus.len())])
            .collect();
        for _ in 0..n_benign {
            let at = rng.gen_range(0..=calls.len());
            calls.insert(at, ben[rng.gen_range(0..ben.len())]);
        }
        let n = calls.len();
        BehaviorSpec {
            api_calls: calls,
            data_driven_calls: (n / 2).max(1),
            data_rva,
            data_len,
            noise: rng.gen_range(4..12),
        }
    }
}

/// Emit a few arithmetic-noise instructions that leave `R6`/`R7` free.
fn emit_noise<R: Rng + ?Sized>(asm: &mut Asm, amount: usize, rng: &mut R) {
    for _ in 0..amount {
        let a = Reg::ALL[rng.gen_range(0..4)];
        let b = Reg::ALL[rng.gen_range(0..4)];
        match rng.gen_range(0..6) {
            0 => asm.push(Instr::Movi(a, rng.gen_range(-1000..1000))),
            1 => asm.push(Instr::Add(a, b)),
            2 => asm.push(Instr::Xor(a, b)),
            3 => asm.push(Instr::Mul(a, b)),
            4 => asm.push(Instr::Addi(a, rng.gen_range(-50..50))),
            _ => asm.push(Instr::Or(a, b)),
        };
    }
}

/// Emit a bounded counting loop (adds realistic back-edges).
fn emit_loop<R: Rng + ?Sized>(asm: &mut Asm, id: usize, rng: &mut R) {
    let label = format!("loop_{id}");
    asm.push(Instr::Movi(Reg::R5, rng.gen_range(2..8)));
    asm.label(&label);
    asm.push(Instr::Addi(Reg::R4, 1));
    asm.push(Instr::Addi(Reg::R5, -1));
    asm.jump_to(Instr::Jnz(Reg::R5, 0), &label);
}

/// Synthesize a program realizing `spec`. The returned instruction list
/// always terminates with `Halt` and never faults when the data section
/// described by `spec` is mapped.
///
/// Data-driven calls compute their argument as a byte loaded from
/// `data_rva + k` for a per-call deterministic `k`, making the API trace
/// argument-sensitive to data-section contents.
pub fn synthesize_program<R: Rng + ?Sized>(spec: &BehaviorSpec, rng: &mut R) -> Vec<Instr> {
    let mut asm = Asm::new();
    emit_noise(&mut asm, spec.noise, rng);
    let mut loops = 0usize;
    for (i, &apiid) in spec.api_calls.iter().enumerate() {
        if rng.gen_bool(0.4) {
            emit_loop(&mut asm, loops, rng);
            loops += 1;
        }
        emit_noise(&mut asm, rng.gen_range(1..=spec.noise.max(1)), rng);
        if i < spec.data_driven_calls && spec.data_len > 0 {
            // r0 = mem8[data_rva + k]: argument depends on data bytes.
            let k = (i as u32 * 7 + 3) % spec.data_len;
            asm.push(Instr::Movi(Reg::R6, spec.data_rva as i32));
            asm.push(Instr::Ld8(Reg::R0, Reg::R6, k as i32));
        } else {
            asm.push(Instr::Movi(Reg::R0, (i as i32 + 1) * 17));
        }
        asm.push(Instr::CallApi(apiid));
    }
    emit_noise(&mut asm, spec.noise / 2, rng);
    asm.push(Instr::Halt);
    asm.instructions().expect("synthesized program always assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_pe::{PeBuilder, SectionFlags};
    use mpass_vm::Vm;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run(spec: &BehaviorSpec, data: Vec<u8>, seed: u64) -> mpass_vm::Execution {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let prog = synthesize_program(spec, &mut rng);
        let code: Vec<u8> = prog.iter().flat_map(|i| i.encode()).collect();
        let mut b = PeBuilder::new();
        b.add_section(".text", code, SectionFlags::CODE).unwrap();
        b.add_section(".data", data, SectionFlags::DATA).unwrap();
        b.set_entry_section(".text", 0).unwrap();
        let mut pe = b.build().unwrap();
        // Fix the spec's data_rva to the actual one before synthesizing:
        // tests construct the spec with the known default layout instead.
        let actual_rva = pe.section(".data").unwrap().header().virtual_address;
        assert_eq!(actual_rva, spec.data_rva, "test layout assumption violated");
        pe.update_checksum();
        Vm::load(&pe).run()
    }

    /// With default alignment the second section lands at 0x2000.
    const DATA_RVA: u32 = 0x2000;

    #[test]
    fn synthesized_malware_halts_and_traces() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let spec = BehaviorSpec::malicious(4, 3, DATA_RVA, 64, &mut rng);
        let exec = run(&spec, vec![0xAB; 64], 2);
        assert!(exec.completed(), "outcome {:?}", exec.outcome);
        assert_eq!(exec.trace.len(), spec.api_calls.len());
        assert!(exec.suspicious_calls().count() >= 3);
    }

    #[test]
    fn synthesized_benign_has_at_most_one_dual_use_call() {
        for seed in 0..8 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let spec = BehaviorSpec::benign(6, DATA_RVA, 64, &mut rng);
            let exec = run(&spec, vec![1; 64], seed ^ 0x55);
            assert!(exec.completed());
            assert!(exec.suspicious_calls().count() <= 1, "seed {seed}");
        }
    }

    #[test]
    fn trace_arguments_depend_on_data_bytes() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let spec = BehaviorSpec::malicious(4, 2, DATA_RVA, 64, &mut rng);
        let e1 = run(&spec, vec![0x11; 64], 5);
        let e2 = run(&spec, vec![0x99; 64], 5);
        assert!(e1.completed() && e2.completed());
        // Same APIs in the same order...
        let apis1: Vec<_> = e1.trace.iter().map(|e| e.api).collect();
        let apis2: Vec<_> = e2.trace.iter().map(|e| e.api).collect();
        assert_eq!(apis1, apis2);
        // ...but different arguments: data corruption is observable.
        assert_ne!(e1.trace, e2.trace);
    }

    #[test]
    fn program_is_deterministic_per_seed() {
        let mut r1 = ChaCha8Rng::seed_from_u64(9);
        let mut r2 = ChaCha8Rng::seed_from_u64(9);
        let s1 = BehaviorSpec::malicious(3, 2, DATA_RVA, 32, &mut r1);
        let s2 = BehaviorSpec::malicious(3, 2, DATA_RVA, 32, &mut r2);
        assert_eq!(s1, s2);
        let mut r1 = ChaCha8Rng::seed_from_u64(10);
        let mut r2 = ChaCha8Rng::seed_from_u64(10);
        assert_eq!(synthesize_program(&s1, &mut r1), synthesize_program(&s2, &mut r2));
    }

    #[test]
    fn minimum_three_suspicious_calls_enforced() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let spec = BehaviorSpec::malicious(0, 0, DATA_RVA, 16, &mut rng);
        let n_sus = spec.api_calls.iter().filter(|a| a.is_suspicious()).count();
        assert!(n_sus >= 3);
    }
}
