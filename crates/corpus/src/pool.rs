//! The benign-content pool.
//!
//! MPass initializes perturbations with "contexts from a randomly selected
//! benign program" (§III-C); the paper collects **50 000** benign
//! programs, so two adversarial examples essentially never share benign
//! cover content. A pool that stored only a handful of generated programs
//! would silently break that property — repeated cover chunks become
//! byte-level patterns that the commercial AVs' n-gram learning (Fig. 4)
//! mines like any fixed stub. [`BenignPool::generate`] therefore acts as a
//! *synthesizer*: every [`BenignPool::random_chunk`] call composes fresh
//! benign-program content (neutral string tables, structured data records,
//! arithmetic code) so cross-sample overlap matches the 50 000-program
//! reality.
//!
//! [`BenignPool::from_chunks`] retains verbatim-window semantics for
//! callers that *want* a fixed library (tests and the Table VI random-data
//! control).

use crate::generator::{string_table, structured_data, NEUTRAL_STRINGS};
use mpass_vm::{Instr, Reg};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A pool of benign program content for perturbation initialization.
#[derive(Debug, Clone)]
pub struct BenignPool {
    /// Verbatim chunks (only used by [`BenignPool::from_chunks`] pools).
    chunks: Vec<Vec<u8>>,
    /// Whether `random_chunk` synthesizes fresh content (generated pools)
    /// or windows the stored chunks (fixed-library pools).
    synthesize: bool,
    /// Entropy-stream seed folded into synthesis (so distinct pools
    /// produce distinct content even under identical caller RNGs).
    seed: u64,
}

impl BenignPool {
    /// Build a synthesizing pool. `n_programs` scales nothing directly —
    /// it is kept for API symmetry with the paper's "collect N benign
    /// programs" step and folded into the seed.
    pub fn generate(n_programs: usize, seed: u64) -> BenignPool {
        BenignPool {
            chunks: Vec::new(),
            synthesize: true,
            seed: seed ^ (n_programs as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Build a fixed-library pool from byte chunks; `random_chunk` returns
    /// verbatim windows (tiled when short).
    pub fn from_chunks(chunks: Vec<Vec<u8>>) -> BenignPool {
        BenignPool { chunks, synthesize: false, seed: 0 }
    }

    /// Number of stored verbatim chunks (0 for synthesizing pools).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Sample `len` bytes of benign content.
    ///
    /// # Panics
    ///
    /// Panics when a fixed-library pool is empty.
    pub fn random_chunk<R: Rng + ?Sized>(&self, len: usize, rng: &mut R) -> Vec<u8> {
        if self.synthesize {
            let mut srng = ChaCha8Rng::seed_from_u64(self.seed ^ rng.gen::<u64>());
            return synthesize_benign(len, &mut srng);
        }
        assert!(!self.chunks.is_empty(), "benign pool is empty");
        let chunk = &self.chunks[rng.gen_range(0..self.chunks.len())];
        let mut out = Vec::with_capacity(len);
        if chunk.len() >= len {
            let start = rng.gen_range(0..=chunk.len() - len);
            out.extend_from_slice(&chunk[start..start + len]);
        } else {
            while out.len() < len {
                let take = (len - out.len()).min(chunk.len());
                out.extend_from_slice(&chunk[..take]);
            }
        }
        out
    }
}

/// Benign-looking code: arithmetic/immediate instructions whose encodings
/// carry fresh random immediates, ending segments unpredictably.
fn benign_code<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 8);
    while out.len() < len {
        // Registers drawn from the same range corpus programs use, so the
        // register-register encodings here are the idioms every benign
        // file exhibits; random immediates dominate the byte stream.
        let a = Reg::ALL[rng.gen_range(0..4)];
        let b = Reg::ALL[rng.gen_range(0..4)];
        let instr = match rng.gen_range(0..5) {
            0 | 3 => Instr::Movi(a, rng.gen()),
            1 => Instr::Addi(a, rng.gen()),
            2 => Instr::Xor(a, b),
            _ => Instr::Ld8(a, b, rng.gen_range(0..4096)),
        };
        // Same emission convention as the corpus generator: don't-care
        // encoding bytes carry arbitrary values (byte-dense code).
        let mut bytes = instr.encode();
        for (j, free) in instr.dont_care_mask().iter().enumerate() {
            if *free {
                bytes[j] = rng.gen();
            }
        }
        out.extend_from_slice(&bytes);
    }
    out.truncate(len);
    out
}

/// Compose one fresh benign content block from the same generators the
/// benign corpus uses.
fn synthesize_benign<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let seg = (len - out.len()).min(rng.gen_range(128..=1024));
        match rng.gen_range(0..4) {
            0 => out.extend_from_slice(&string_table(NEUTRAL_STRINGS, seg, rng)),
            1 => out.extend_from_slice(&structured_data(seg, rng)),
            2 => out.extend_from_slice(&benign_code(seg, rng)),
            _ => {
                // Padding-like runs of one byte value. The value is drawn
                // per segment: a deterministic fill (e.g. zero) would make
                // the recovery keys over it mirror the covered original
                // (`key = fill − x`), and the mirrored form of cross-sample
                // idioms would be minable.
                let fill: u8 = rng.gen();
                out.extend(std::iter::repeat_n(fill, seg));
            }
        }
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn chunks_have_requested_length() {
        let pool = BenignPool::generate(2, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for len in [1usize, 64, 1000, 20_000] {
            assert_eq!(pool.random_chunk(len, &mut rng).len(), len);
        }
    }

    #[test]
    fn deterministic_given_seeds() {
        let p1 = BenignPool::generate(2, 9);
        let p2 = BenignPool::generate(2, 9);
        let mut r1 = ChaCha8Rng::seed_from_u64(3);
        let mut r2 = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(p1.random_chunk(256, &mut r1), p2.random_chunk(256, &mut r2));
    }

    #[test]
    fn synthesized_content_is_benign_statistics() {
        let pool = BenignPool::generate(4, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let chunk = pool.random_chunk(16 * 1024, &mut rng);
        let h = mpass_pe::entropy(&chunk);
        assert!(h < 7.0, "synthesized content too random: {h}");
        assert!(h > 0.5, "synthesized content degenerate: {h}");
    }

    /// The property that keeps Figure 4 honest: independent draws share
    /// almost no 12-byte n-grams beyond the globally shared string-table
    /// content.
    #[test]
    fn independent_draws_share_few_grams() {
        let pool = BenignPool::generate(4, 1);
        let mut r1 = ChaCha8Rng::seed_from_u64(100);
        let mut r2 = ChaCha8Rng::seed_from_u64(200);
        let a = pool.random_chunk(8192, &mut r1);
        let b = pool.random_chunk(8192, &mut r2);
        // Exclude grams that come from the shared neutral string pool and
        // zero padding (those appear in every benign file and are excluded
        // from AV mining by the clean reference anyway).
        let neutral: std::collections::HashSet<&[u8]> = {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let strings = string_table(NEUTRAL_STRINGS, 8192, &mut rng);
            Box::leak(strings.into_boxed_slice()).windows(12).collect()
        };
        let grams_a: std::collections::HashSet<&[u8]> = a
            .windows(12)
            .filter(|w| !neutral.contains(*w) && w.iter().any(|&x| x != 0))
            .collect();
        let shared = b
            .windows(12)
            .filter(|w| grams_a.contains(w))
            .count();
        assert!(shared < 30, "{shared} shared non-neutral grams between draws");
    }

    #[test]
    fn short_chunk_tiles() {
        let pool = BenignPool::from_chunks(vec![vec![1, 2, 3]]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let c = pool.random_chunk(8, &mut rng);
        assert_eq!(c, vec![1, 2, 3, 1, 2, 3, 1, 2]);
    }

    #[test]
    fn fixed_library_pool_windows_chunks() {
        let pool = BenignPool::from_chunks(vec![(0..=255u8).collect()]);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let c = pool.random_chunk(16, &mut rng);
        // A verbatim window: consecutive byte values.
        assert!(c.windows(2).all(|w| w[1] == w[0].wrapping_add(1)));
        assert_eq!(pool.chunk_count(), 1);
    }

    #[test]
    #[should_panic(expected = "benign pool is empty")]
    fn empty_fixed_pool_panics() {
        let pool = BenignPool::from_chunks(vec![]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = pool.random_chunk(4, &mut rng);
    }
}
