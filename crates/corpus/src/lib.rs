//! # mpass-corpus — synthetic sample generation
//!
//! The paper evaluates on 2000 PE malware samples from VirusTotal /
//! VirusShare plus 50 000 benign programs. Neither is available offline, so
//! this crate generates a *synthetic* corpus with the properties the
//! experiments actually depend on:
//!
//! 1. Samples are real [`mpass_pe::PeFile`] images with realistic section
//!    layouts (`.text`/`.data`/`.rdata`/`.rsrc`/…).
//! 2. Every sample contains an executable MVM program; *malware* performs
//!    suspicious API calls whose **arguments are read from the data
//!    section**, so corrupting code or data without runtime recovery
//!    visibly breaks behaviour — the property that makes
//!    functionality-preservation a real constraint rather than a no-op.
//! 3. Malware and benign files differ in the statistical features real
//!    detectors learn: suspicious API-call opcodes in code, high-entropy
//!    encrypted payloads in data, suspicious strings, odd section names and
//!    timestamps. Labels are ground truth by construction.
//!
//! [`BenignPool`] additionally supplies "contents from a randomly selected
//! benign program" — the initial perturbations of MPass §III-C.

mod behavior;
mod generator;
mod pool;

pub use behavior::{synthesize_program, BehaviorSpec};
pub use generator::{CorpusConfig, Dataset, Label, Sample};
pub use pool::BenignPool;
