//! Generation of complete synthetic PE and Mach-O samples and datasets.

use crate::behavior::{synthesize_program, BehaviorSpec};
use mpass_binary::{BinaryFormat, BinaryImage, Format, SectionKind};
use mpass_macho::{EntryStyle, MachoBuilder, MachoFile};
use mpass_pe::{ImportEntry, ImportTable, PeBuilder, PeFile, SectionFlags};
use mpass_vm::Instr;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Ground-truth label of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// Performs suspicious API calls.
    Malware,
    /// Performs only benign API calls.
    Benign,
}

impl Label {
    /// 1.0 for malware, 0.0 for benign — the training target convention.
    pub fn target(self) -> f32 {
        match self {
            Label::Malware => 1.0,
            Label::Benign => 0.0,
        }
    }
}

/// One synthetic sample: the parsed image, its serialized bytes and label.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sample {
    /// Stable identifier (`mal_17`, `ben_204`, …).
    pub name: String,
    /// Ground-truth label.
    pub label: Label,
    /// The parsed binary image (PE or Mach-O).
    pub image: BinaryImage,
    /// Serialized on-disk bytes (cached; always equals
    /// `image.to_bytes()`).
    pub bytes: Vec<u8>,
}

impl Sample {
    /// Wrap a parsed image with its label, caching the serialized bytes.
    /// Accepts a `PeFile`, `MachoFile` or `BinaryImage` directly.
    pub fn new(name: String, label: Label, image: impl Into<BinaryImage>) -> Self {
        let image = image.into();
        let bytes = image.to_bytes();
        Sample { name, label, image, bytes }
    }

    /// The container format this sample ships in.
    pub fn format(&self) -> Format {
        self.image.format()
    }

    /// The wrapped PE, when this sample is one. PE-specific pipelines
    /// (packers, import stamping) branch on this and skip other formats.
    pub fn pe(&self) -> Option<&PeFile> {
        self.image.as_pe()
    }

    /// The wrapped Mach-O, when this sample is one.
    pub fn macho(&self) -> Option<&MachoFile> {
        self.image.as_macho()
    }

    /// On-disk size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }
}

/// Configuration for corpus generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of malware samples.
    pub n_malware: usize,
    /// Number of benign samples.
    pub n_benign: usize,
    /// Master seed; the corpus is a pure function of the config.
    pub seed: u64,
    /// Fraction of malware built without header slack, forcing the attack
    /// onto the overlay-append fallback path (paper §III-C).
    pub no_slack_fraction: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig { n_malware: 120, n_benign: 120, seed: 0xDAC2023, no_slack_fraction: 0.15 }
    }
}

/// A labelled dataset with deterministic train/test splitting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// All samples, malware first.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Generate the full corpus for `config`.
    pub fn generate(config: &CorpusConfig) -> Dataset {
        let mut samples = Vec::with_capacity(config.n_malware + config.n_benign);
        for i in 0..config.n_malware {
            let mut rng = ChaCha8Rng::seed_from_u64(
                config.seed ^ 0x4D41_4C00 ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let no_slack = rng.gen_bool(config.no_slack_fraction);
            let pe = generate_malware_pe(&mut rng, no_slack);
            samples.push(Sample::new(format!("mal_{i}"), Label::Malware, pe));
        }
        for i in 0..config.n_benign {
            let mut rng = ChaCha8Rng::seed_from_u64(
                config.seed ^ 0x4245_4E00 ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let pe = generate_benign_pe(&mut rng);
            samples.push(Sample::new(format!("ben_{i}"), Label::Benign, pe));
        }
        Dataset { samples }
    }

    /// Generate a mixed-format corpus: each sample is Mach-O with
    /// probability `macho_fraction`, PE otherwise. Deterministic in
    /// `(config, macho_fraction)`; the PE-only corpus from
    /// [`Dataset::generate`] is untouched by this addition (its RNG
    /// streams are consumed identically), and `generate_mixed(c, 0.0)`
    /// reproduces it byte for byte.
    pub fn generate_mixed(config: &CorpusConfig, macho_fraction: f64) -> Dataset {
        let mut samples = Vec::with_capacity(config.n_malware + config.n_benign);
        for i in 0..config.n_malware {
            let mut rng = ChaCha8Rng::seed_from_u64(
                config.seed ^ 0x4D41_4C00 ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let no_slack = rng.gen_bool(config.no_slack_fraction);
            // The format draw comes from a forked stream so the PE path
            // consumes exactly the draws generate() does.
            let macho = ChaCha8Rng::seed_from_u64(config.seed ^ 0x4D58_0000 ^ i as u64)
                .gen_bool(macho_fraction);
            let image = if macho {
                BinaryImage::from(generate_malware_macho(&mut rng, no_slack))
            } else {
                BinaryImage::from(generate_malware_pe(&mut rng, no_slack))
            };
            samples.push(Sample::new(format!("mal_{i}"), Label::Malware, image));
        }
        for i in 0..config.n_benign {
            let mut rng = ChaCha8Rng::seed_from_u64(
                config.seed ^ 0x4245_4E00 ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let macho = ChaCha8Rng::seed_from_u64(config.seed ^ 0x424D_0000 ^ i as u64)
                .gen_bool(macho_fraction);
            let image = if macho {
                BinaryImage::from(generate_benign_macho(&mut rng))
            } else {
                BinaryImage::from(generate_benign_pe(&mut rng))
            };
            samples.push(Sample::new(format!("ben_{i}"), Label::Benign, image));
        }
        Dataset { samples }
    }

    /// Split into (train, test) with every k-th sample per class held out.
    pub fn split(&self, holdout_every: usize) -> (Vec<&Sample>, Vec<&Sample>) {
        let mut train = Vec::new();
        let mut test = Vec::new();
        let mut per_class = std::collections::HashMap::new();
        for s in &self.samples {
            let c = per_class.entry(s.label).or_insert(0usize);
            if *c % holdout_every == holdout_every - 1 {
                test.push(s);
            } else {
                train.push(s);
            }
            *c += 1;
        }
        (train, test)
    }

    /// All malware samples.
    pub fn malware(&self) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.label == Label::Malware).collect()
    }

    /// All benign samples.
    pub fn benign(&self) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.label == Label::Benign).collect()
    }
}

/// Random printable ASCII "string table" content.
pub(crate) fn string_table<R: Rng + ?Sized>(strings: &[&str], pad_to: usize, rng: &mut R) -> Vec<u8> {
    let mut out = Vec::with_capacity(pad_to);
    while out.len() < pad_to {
        let s = strings[rng.gen_range(0..strings.len())];
        out.extend_from_slice(s.as_bytes());
        out.push(0);
    }
    out.truncate(pad_to);
    out
}

/// Low-entropy structured data: a random 16-byte record repeated. The
/// record is drawn fresh per call so that two independently generated
/// data regions share no byte n-grams.
pub(crate) fn structured_data<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Vec<u8> {
    let record: Vec<u8> =
        (0..16).map(|i| if i < 12 { rng.gen_range(0..48) } else { rng.gen_range(0..8) }).collect();
    (0..len).map(|i| record[i % record.len()]).collect()
}

/// High-entropy data simulating an encrypted/packed payload.
fn encrypted_payload<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Vec<u8> {
    (0..len).map(|_| rng.gen()).collect()
}

/// Random lowercase token for string templating.
fn token<R: Rng + ?Sized>(rng: &mut R, len_lo: usize, len_hi: usize) -> String {
    let len = rng.gen_range(len_lo..=len_hi);
    (0..len).map(|_| (b'a' + rng.gen_range(0..26u8)) as char).collect()
}

/// Hostile configuration strings, templated per sample: the 2000-sample
/// corpora the paper draws from span many malware *families* — fixed
/// literal strings across all samples would hand byte-level models a
/// single-family shortcut no real detector enjoys. Template skeletons
/// (`/gate.php`, `vssadmin`, `stratum+tcp`) stay recognizable; hosts,
/// keys and paths vary.
fn hostile_strings<R: Rng + ?Sized>(rng: &mut R) -> Vec<String> {
    let mut all = vec![
        format!("http://{}.{}/{}.php", token(rng, 5, 10), token(rng, 2, 3), token(rng, 4, 7)),
        format!("cmd.exe /c vssadmin delete shadows /{}", token(rng, 3, 5)),
        format!("SOFTWARE\\{}\\Run\\{}", token(rng, 4, 8), token(rng, 4, 8)),
        "YOUR FILES HAVE BEEN ENCRYPTED".to_owned(),
        format!("botnet_{}_key_{}", token(rng, 3, 6), rng.gen_range(1..9)),
        format!("stratum+tcp://{}.{}:3333", token(rng, 5, 9), token(rng, 2, 3)),
    ];
    // Most families ship the full complement; a few drop one string.
    if rng.gen_bool(0.3) {
        let i = rng.gen_range(0..all.len());
        all.remove(i);
    }
    all
}

/// Benign configuration strings, templated the same way (update URLs,
/// telemetry endpoints, settings) so "strings in the data section" is not
/// itself a label.
fn benign_config_strings<R: Rng + ?Sized>(rng: &mut R) -> Vec<String> {
    vec![
        format!("https://update.{}.com/check", token(rng, 5, 10)),
        format!("[settings] lang={} theme={}", token(rng, 2, 2), token(rng, 4, 6)),
        format!("api_key={:08x}{:08x}", rng.gen::<u32>(), rng.gen::<u32>()),
        format!("C:\\Program Files\\{}\\app.cfg", token(rng, 5, 10)),
    ]
}

fn strings_block(strings: &[String], pad_to: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(pad_to);
    'outer: loop {
        for s in strings {
            if out.len() + s.len() + 1 > pad_to {
                break 'outer;
            }
            out.extend_from_slice(s.as_bytes());
            out.push(0);
        }
        if strings.is_empty() {
            break;
        }
    }
    out.resize(pad_to, 0);
    out
}

/// Strings found in read-only data regardless of class — linker and
/// runtime boilerplate. Keeping `.rdata` class-neutral concentrates the
/// discriminative signal in code and data sections, matching the paper's
/// PEM finding.
pub(crate) const NEUTRAL_STRINGS: &[&str] = &[
    "Copyright (c) Contoso Corporation",
    "usage: app [options] <file>",
    "en-US resources loaded",
    "SELECT name FROM settings",
    "application/json",
    "File saved successfully.",
    "kernel32.dll",
    "GetLastError",
    "operator new",
    "bad_alloc",
];

const ODD_NAMES: &[&str] = &[".xpk1", ".enc", ".vmp0", ".x9", ".krn"];

/// First-section RVA under the default alignment (code is always first).
const TEXT_RVA: u32 = 0x1000;

/// Encode a program the way a real compiler's output looks: the encoding
/// bytes the MVM decoder ignores are filled with arbitrary values, so code
/// sections are byte-dense like x86 text rather than zero-padded records.
/// `CallApi` keeps its canonical encoding — call sites to the OS are the
/// fixed patterns static detectors key on, mirroring real import thunks.
fn encode_program<R: Rng + ?Sized>(instrs: &[Instr], rng: &mut R) -> Vec<u8> {
    let mut out = Vec::with_capacity(instrs.len() * mpass_vm::INSTR_SIZE);
    for i in instrs {
        let mut bytes = i.encode();
        if !matches!(i, Instr::CallApi(_)) {
            for (j, free) in i.dont_care_mask().iter().enumerate() {
                if *free {
                    bytes[j] = rng.gen();
                }
            }
        }
        out.extend_from_slice(&bytes);
    }
    out
}

/// Imports virtually every Windows program declares.
const COMMON_IMPORTS: &[(&str, &[&str])] = &[
    ("KERNEL32.dll", &[
        "CreateFileW", "ReadFile", "WriteFile", "CloseHandle", "GetLastError",
        "HeapAlloc", "HeapFree", "GetModuleHandleW", "ExitProcess",
    ]),
    ("USER32.dll", &["MessageBoxW", "LoadStringW", "GetSystemMetrics"]),
    ("ADVAPI32.dll", &["RegOpenKeyExW", "RegQueryValueExW", "RegCloseKey"]),
];

/// Dual-use imports: common in malware, but also in debuggers, backup
/// tools and AV software itself — a deliberately *weak* signal, matching
/// the paper's footnote 5 ("import tables ... their effect on attacks is
/// negligible").
const DUAL_USE_IMPORTS: &[&str] =
    &["VirtualAllocEx", "WriteProcessMemory", "CreateRemoteThread", "AdjustTokenPrivileges"];

/// Stamp a realistic import table onto a freshly built sample.
fn stamp_imports<R: Rng + ?Sized>(pe: &mut PeFile, malicious: bool, rng: &mut R) {
    let mut table = ImportTable::new();
    for (dll, funcs) in COMMON_IMPORTS {
        let take = rng.gen_range(funcs.len() / 2..=funcs.len());
        let entries = funcs
            .iter()
            .take(take)
            .map(|f| ImportEntry::by_name(f))
            .collect();
        table.add(dll, entries);
    }
    // Malware imports dual-use APIs marginally more often than benign
    // software — distributions overlap almost entirely, making the import
    // table the near-signal-free channel the paper's footnote 5 describes
    // ("import tables ... their effect on attacks is negligible").
    let p_dual = if malicious { 0.25 } else { 0.18 };
    if rng.gen_bool(p_dual) {
        let f = DUAL_USE_IMPORTS[rng.gen_range(0..DUAL_USE_IMPORTS.len())];
        table.add("KERNEL32.dll", vec![ImportEntry::by_name(f)]);
    }
    // Best-effort: samples without header slack simply ship without an
    // import directory (packed/stripped binaries do exist).
    let _ = pe.set_imports(&table);
}

/// Generate one malware image.
///
/// Layout: `.text` (program with ≥3 suspicious API calls), `.data`
/// (high-entropy encrypted payload + config bytes the program reads its
/// API arguments from), `.rdata` (hostile strings), `.rsrc`, with odd
/// section names or timestamps for a fraction of samples.
pub fn generate_malware_pe<R: Rng + ?Sized>(rng: &mut R, no_slack: bool) -> PeFile {
    let data_len = rng.gen_range(1024..3072usize);
    // Code is first at TEXT_RVA; data section RVA depends on code size, so
    // compute the program first against a provisional RVA, then rebuild
    // with the real one (two-pass layout).
    let spec = BehaviorSpec::malicious(
        rng.gen_range(3..8),
        rng.gen_range(1..5),
        0, // provisional; patched below
        data_len as u32,
        rng,
    );
    let prog_seed: u64 = rng.gen();
    let provisional = {
        let mut prng = ChaCha8Rng::seed_from_u64(prog_seed);
        synthesize_program(&spec, &mut prng)
    };
    let code_len = provisional.len() * mpass_vm::INSTR_SIZE;
    let data_rva = TEXT_RVA
        + ((code_len as u32).div_ceil(mpass_pe::DEFAULT_SECTION_ALIGNMENT)
            * mpass_pe::DEFAULT_SECTION_ALIGNMENT)
            .max(mpass_pe::DEFAULT_SECTION_ALIGNMENT);
    let spec = BehaviorSpec { data_rva, ..spec };
    let program = {
        let mut prng = ChaCha8Rng::seed_from_u64(prog_seed);
        synthesize_program(&spec, &mut prng)
    };
    let code = encode_program(&program, rng);

    // Two malware morphologies, as in real corpora:
    //  * payload carriers (~60 %): encrypted payload + hostile
    //    configuration strings in the data section — data-borne signal;
    //  * droppers/downloaders (~40 %): unremarkable data sections — their
    //    *code* (suspicious API invocations) is the only static giveaway.
    // Without the second kind, detectors never need the code channel and
    // PEM could not reproduce the paper's "code is top-1" finding.
    let carrier = rng.gen_bool(0.85);
    let mut data = if carrier {
        encrypted_payload(data_len, rng)
    } else {
        structured_data(data_len, rng)
    };
    // Plant a few readable config bytes at the positions the program reads.
    for (i, b) in data.iter_mut().enumerate().take(64) {
        if i % 7 == 3 {
            *b = 0x40 + (i as u8 % 26);
        }
    }
    if carrier {
        // Hostile configuration strings (C2 URLs, ransom notes,
        // persistence keys) live in the *data* section — where PEM says
        // the malicious features are and where MPass's encoding reaches.
        let strings =
            strings_block(&hostile_strings(rng), 256.min(data_len.saturating_sub(96)));
        let at = 64;
        data[at..at + strings.len()].copy_from_slice(&strings);
    }
    let rdata = string_table(NEUTRAL_STRINGS, rng.gen_range(256..1024), rng);
    // Resources are mostly mundane (icons, manifests) even in malware;
    // keeping them structured leaves the discriminative signal in code and
    // data, where the paper locates it.
    let rsrc = structured_data(rng.gen_range(512..3072), rng);

    let mut b = PeBuilder::new();
    if no_slack {
        b.set_header_slack(0);
    }
    // Section naming and timestamps follow the same distribution as
    // benign software: in a multi-family corpus those header fields are
    // not class-correlated, and leaving them correlated here would hand
    // byte-level models a header shortcut that hides the code signal PEM
    // is supposed to surface (headers are not a section and never appear
    // in Eq. 1's attribution).
    let text_name = if rng.gen_bool(0.05) { ODD_NAMES[rng.gen_range(0..ODD_NAMES.len())] } else { ".text" };
    b.add_section(text_name, code, SectionFlags::CODE).expect("code section");
    b.add_section(".data", data, SectionFlags::DATA).expect("data section");
    b.add_section(".rdata", rdata, SectionFlags::RDATA).expect("rdata section");
    b.add_section(".rsrc", rsrc, SectionFlags::RSRC).expect("rsrc section");
    if rng.gen_bool(0.5) {
        // Half of malware keeps relocations; the rest ship stripped.
        let reloc = structured_data(rng.gen_range(128..512), rng);
        b.add_section(".reloc", reloc, SectionFlags::RDATA).expect("reloc section");
    }
    b.set_entry_section(text_name, 0).expect("entry");
    b.set_timestamp(rng.gen_range(0x5000_0000..0x6400_0000));
    let mut pe = b.build().expect("malware build");
    stamp_imports(&mut pe, true, rng);
    pe.update_checksum();
    if no_slack {
        // Emulate images whose section table exactly fills the header
        // region (the case where the paper's attack cannot create a new
        // section and falls back to overlay appending): keep appending tiny
        // filler sections until the alignment padding is consumed.
        let mut i = 0;
        while pe.can_add_section() && i < 32 {
            let data = structured_data(rng.gen_range(16..64), rng);
            pe.add_section(&format!(".fil{i}"), data, SectionFlags::RDATA)
                .expect("filler section");
            i += 1;
        }
        pe.update_checksum();
    }
    debug_assert_eq!(
        pe.section(".data").unwrap().header().virtual_address,
        data_rva,
        "two-pass layout mismatch"
    );
    pe
}

/// Generate one benign image: benign program, structured low-entropy data,
/// friendly strings, larger resources, a `.reloc` section and sane
/// timestamps.
pub fn generate_benign_pe<R: Rng + ?Sized>(rng: &mut R) -> PeFile {
    let data_len = rng.gen_range(1024..3072usize);
    let spec = BehaviorSpec::benign(rng.gen_range(3..9), 0, data_len as u32, rng);
    let prog_seed: u64 = rng.gen();
    let provisional = {
        let mut prng = ChaCha8Rng::seed_from_u64(prog_seed);
        synthesize_program(&spec, &mut prng)
    };
    let code_len = provisional.len() * mpass_vm::INSTR_SIZE;
    let data_rva = TEXT_RVA
        + ((code_len as u32).div_ceil(mpass_pe::DEFAULT_SECTION_ALIGNMENT)
            * mpass_pe::DEFAULT_SECTION_ALIGNMENT)
            .max(mpass_pe::DEFAULT_SECTION_ALIGNMENT);
    let spec = BehaviorSpec { data_rva, ..spec };
    let program = {
        let mut prng = ChaCha8Rng::seed_from_u64(prog_seed);
        synthesize_program(&spec, &mut prng)
    };
    let code = encode_program(&program, rng);

    // A third of benign programs ship compressed/encrypted assets in
    // their data section (installers, games, DRM-protected apps): data
    // entropy alone must not separate the classes, otherwise detectors
    // would never need the code-section signal the paper's PEM finds
    // dominant.
    let mut data = if rng.gen_bool(0.33) {
        encrypted_payload(data_len, rng)
    } else {
        structured_data(data_len, rng)
    };
    // Benign programs read their runtime configuration from the same
    // leading data-section bytes malware does — the layout convention is a
    // property of the (shared) toolchain, not of the class.
    for (i, b) in data.iter_mut().enumerate().take(64) {
        if i % 7 == 3 {
            *b = 0x40 + (i as u8 % 26);
        }
    }
    // Benign software keeps configuration strings in its data section too.
    let strings = strings_block(&benign_config_strings(rng), 256.min(data_len.saturating_sub(96)));
    if data_len > 96 + strings.len() {
        data[64..64 + strings.len()].copy_from_slice(&strings);
    }
    let rdata = string_table(NEUTRAL_STRINGS, rng.gen_range(256..1024), rng);
    let rsrc = structured_data(rng.gen_range(512..3072), rng);
    let reloc = structured_data(rng.gen_range(128..512), rng);

    let mut b = PeBuilder::new();
    b.add_section(".text", code, SectionFlags::CODE).expect("code section");
    b.add_section(".data", data, SectionFlags::DATA).expect("data section");
    b.add_section(".rdata", rdata, SectionFlags::RDATA).expect("rdata section");
    b.add_section(".rsrc", rsrc, SectionFlags::RSRC).expect("rsrc section");
    b.add_section(".reloc", reloc, SectionFlags::RDATA).expect("reloc section");
    b.set_entry_section(".text", 0).expect("entry");
    b.set_timestamp(rng.gen_range(0x5000_0000..0x6400_0000));
    let mut pe = b.build().expect("benign build");
    stamp_imports(&mut pe, false, rng);
    pe.update_checksum();
    pe
}

/// Dylibs virtually every macOS program links.
const COMMON_DYLIBS: &[&str] =
    &["/usr/lib/libSystem.B.dylib", "/usr/lib/libc++.1.dylib", "/usr/lib/libobjc.A.dylib"];

/// Dual-use dylib analogue of [`DUAL_USE_IMPORTS`]: process inspection is
/// common in malware *and* in profilers/monitors — a weak signal by design.
const DUAL_USE_DYLIB: &str = "/usr/lib/libproc.dylib";

/// Mach-O section names a small fraction of malware invents, the analogue
/// of [`ODD_NAMES`].
const MACHO_ODD_NAMES: &[&str] = &["__xpk1", "__enc0", "__vmp0", "__x9", "__krn0"];

/// Mach-O images map their first section at this address (the builder's
/// small base keeps flat loader mappings proportional to content size).
const MACHO_TEXT_VA: u32 = 0x1000;

/// Mach-O segments are page aligned; the section after `code_len` bytes of
/// text lands here. Mirrors the PE two-pass layout computation.
fn macho_data_va(code_len: usize) -> u32 {
    MACHO_TEXT_VA + (code_len as u32).div_ceil(0x1000).max(1) * 0x1000
}

/// Link a realistic dylib set onto a builder; the Mach-O twin of
/// [`stamp_imports`].
fn stamp_dylibs<R: Rng + ?Sized>(b: &mut MachoBuilder, malicious: bool, rng: &mut R) {
    let take = rng.gen_range(COMMON_DYLIBS.len().div_ceil(2)..=COMMON_DYLIBS.len());
    for dylib in COMMON_DYLIBS.iter().take(take) {
        b.add_dylib(dylib, rng.gen_range(0x5000_0000..0x6400_0000));
    }
    let p_dual = if malicious { 0.25 } else { 0.18 };
    if rng.gen_bool(p_dual) {
        b.add_dylib(DUAL_USE_DYLIB, rng.gen_range(0x5000_0000..0x6400_0000));
    }
}

/// Generate one Mach-O malware image: same program synthesis, morphology
/// mix and string planting as [`generate_malware_pe`], expressed in Mach-O
/// sections (`__text`/`__data`/`__const`).
pub fn generate_malware_macho<R: Rng + ?Sized>(rng: &mut R, no_slack: bool) -> MachoFile {
    let data_len = rng.gen_range(1024..3072usize);
    let spec = BehaviorSpec::malicious(
        rng.gen_range(3..8),
        rng.gen_range(1..5),
        0, // provisional; patched below
        data_len as u32,
        rng,
    );
    let prog_seed: u64 = rng.gen();
    let provisional = {
        let mut prng = ChaCha8Rng::seed_from_u64(prog_seed);
        synthesize_program(&spec, &mut prng)
    };
    let code_len = provisional.len() * mpass_vm::INSTR_SIZE;
    let spec = BehaviorSpec { data_rva: macho_data_va(code_len), ..spec };
    let program = {
        let mut prng = ChaCha8Rng::seed_from_u64(prog_seed);
        synthesize_program(&spec, &mut prng)
    };
    let code = encode_program(&program, rng);

    let carrier = rng.gen_bool(0.85);
    let mut data = if carrier {
        encrypted_payload(data_len, rng)
    } else {
        structured_data(data_len, rng)
    };
    for (i, b) in data.iter_mut().enumerate().take(64) {
        if i % 7 == 3 {
            *b = 0x40 + (i as u8 % 26);
        }
    }
    if carrier {
        let strings = strings_block(&hostile_strings(rng), 256.min(data_len.saturating_sub(96)));
        let at = 64;
        data[at..at + strings.len()].copy_from_slice(&strings);
    }
    let rodata = string_table(NEUTRAL_STRINGS, rng.gen_range(256..1024), rng);

    let mut b = MachoBuilder::new();
    if no_slack {
        b.set_header_slack(0);
    }
    let text_name = if rng.gen_bool(0.05) {
        MACHO_ODD_NAMES[rng.gen_range(0..MACHO_ODD_NAMES.len())]
    } else {
        "__text"
    };
    b.add_section(text_name, &code, SectionKind::Code)
        .add_section("__data", &data, SectionKind::Data)
        .add_section("__const", &rodata, SectionKind::ReadOnlyData);
    // Half of malware keeps a literal pool like benign builds; the rest
    // ship stripped (the Mach-O twin of the PE `.reloc` convention). A
    // class-correlated section list would be a load-command shortcut that
    // byte-level models mine instead of the code/data signal — and one
    // the attack's modification engine could never erase.
    if rng.gen_bool(0.5) {
        let cstrings = string_table(NEUTRAL_STRINGS, rng.gen_range(128..512), rng);
        b.add_section("__cstring", &cstrings, SectionKind::ReadOnlyData);
    }
    stamp_dylibs(&mut b, true, rng);
    if rng.gen_bool(0.2) {
        b.set_entry_style(EntryStyle::UnixThread);
    }
    b.set_entry_section(text_name, 0);
    let macho = b.build().expect("macho malware build");
    debug_assert_eq!(
        macho.sections().nth(1).map(|s| s.addr),
        Some(u64::from(spec.data_rva)),
        "two-pass mach-o layout mismatch"
    );
    macho
}

/// Generate one Mach-O benign image, mirroring [`generate_benign_pe`].
pub fn generate_benign_macho<R: Rng + ?Sized>(rng: &mut R) -> MachoFile {
    let data_len = rng.gen_range(1024..3072usize);
    let spec = BehaviorSpec::benign(rng.gen_range(3..9), 0, data_len as u32, rng);
    let prog_seed: u64 = rng.gen();
    let provisional = {
        let mut prng = ChaCha8Rng::seed_from_u64(prog_seed);
        synthesize_program(&spec, &mut prng)
    };
    let code_len = provisional.len() * mpass_vm::INSTR_SIZE;
    let spec = BehaviorSpec { data_rva: macho_data_va(code_len), ..spec };
    let program = {
        let mut prng = ChaCha8Rng::seed_from_u64(prog_seed);
        synthesize_program(&spec, &mut prng)
    };
    let code = encode_program(&program, rng);

    let mut data = if rng.gen_bool(0.33) {
        encrypted_payload(data_len, rng)
    } else {
        structured_data(data_len, rng)
    };
    for (i, b) in data.iter_mut().enumerate().take(64) {
        if i % 7 == 3 {
            *b = 0x40 + (i as u8 % 26);
        }
    }
    let strings = strings_block(&benign_config_strings(rng), 256.min(data_len.saturating_sub(96)));
    if data_len > 96 + strings.len() {
        data[64..64 + strings.len()].copy_from_slice(&strings);
    }
    let rodata = string_table(NEUTRAL_STRINGS, rng.gen_range(256..1024), rng);
    let cstrings = string_table(NEUTRAL_STRINGS, rng.gen_range(128..512), rng);

    let mut b = MachoBuilder::new();
    b.add_section("__text", &code, SectionKind::Code)
        .add_section("__data", &data, SectionKind::Data)
        .add_section("__const", &rodata, SectionKind::ReadOnlyData)
        .add_section("__cstring", &cstrings, SectionKind::ReadOnlyData);
    stamp_dylibs(&mut b, false, rng);
    b.set_entry_section("__text", 0);
    b.build().expect("macho benign build")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_vm::Vm;

    fn tiny() -> Dataset {
        Dataset::generate(&CorpusConfig {
            n_malware: 12,
            n_benign: 12,
            seed: 7,
            no_slack_fraction: 0.25,
        })
    }

    #[test]
    fn corpus_sizes_and_labels() {
        let ds = tiny();
        assert_eq!(ds.samples.len(), 24);
        assert_eq!(ds.malware().len(), 12);
        assert_eq!(ds.benign().len(), 12);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.bytes, y.bytes, "{}", x.name);
        }
    }

    #[test]
    fn every_sample_parses_and_round_trips() {
        for s in tiny().samples {
            let re = mpass_pe::PeFile::parse(&s.bytes).unwrap();
            assert_eq!(re.to_bytes(), s.bytes, "{}", s.name);
        }
    }

    #[test]
    fn malware_behaves_maliciously_and_halts() {
        for s in tiny().malware() {
            let exec = Vm::load(s.pe().unwrap()).run();
            assert!(exec.completed(), "{}: {:?}", s.name, exec.outcome);
            assert!(exec.suspicious_calls().count() >= 3, "{}", s.name);
        }
    }

    #[test]
    fn benign_behaves_benignly_and_halts() {
        for s in tiny().benign() {
            let exec = Vm::load(s.pe().unwrap()).run();
            assert!(exec.completed(), "{}: {:?}", s.name, exec.outcome);
            // At most the single dual-use call some benign programs make.
            assert!(exec.suspicious_calls().count() <= 1, "{}", s.name);
        }
    }

    #[test]
    fn malware_morphologies_differ_in_data_entropy() {
        // Payload carriers have near-random data sections; droppers and
        // most benign samples have structured ones. The *maximum* data
        // entropy over malware must therefore be high, while both classes
        // contain low-entropy members (no entropy shortcut).
        let ds = tiny();
        let entropies = |samples: &[&Sample]| -> Vec<f64> {
            samples.iter().map(|s| s.pe().unwrap().section(".data").unwrap().entropy()).collect()
        };
        let mal = entropies(&ds.malware());
        let ben = entropies(&ds.benign());
        // Carriers mix an encrypted payload with a plaintext string block,
        // so ~7 bits/byte; droppers and typical benign data are structured
        // records well below 5.
        assert!(mal.iter().cloned().fold(0.0, f64::max) > 6.8, "no payload carriers");
        assert!(mal.iter().cloned().fold(f64::INFINITY, f64::min) < 5.0, "no droppers");
        assert!(ben.iter().cloned().fold(f64::INFINITY, f64::min) < 5.0);
    }

    #[test]
    fn some_malware_lacks_header_slack() {
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 40,
            n_benign: 1,
            seed: 3,
            no_slack_fraction: 0.3,
        });
        let blocked = ds.malware().iter().filter(|s| !s.pe().unwrap().can_add_section()).count();
        assert!(blocked > 0, "expected some no-slack samples");
        assert!(blocked < 40, "expected some samples with slack");
    }

    #[test]
    fn split_is_disjoint_and_stratified() {
        let ds = tiny();
        let (train, test) = ds.split(4);
        assert_eq!(train.len() + test.len(), ds.samples.len());
        assert_eq!(test.len(), 6); // every 4th of 12 per class => 3 + 3
        let test_mal = test.iter().filter(|s| s.label == Label::Malware).count();
        assert_eq!(test_mal, 3);
        let train_names: std::collections::HashSet<_> =
            train.iter().map(|s| &s.name).collect();
        assert!(test.iter().all(|s| !train_names.contains(&s.name)));
    }

    #[test]
    fn label_targets() {
        assert_eq!(Label::Malware.target(), 1.0);
        assert_eq!(Label::Benign.target(), 0.0);
    }

    fn mixed() -> Dataset {
        Dataset::generate_mixed(
            &CorpusConfig { n_malware: 12, n_benign: 12, seed: 7, no_slack_fraction: 0.25 },
            0.5,
        )
    }

    #[test]
    fn mixed_zero_fraction_reproduces_pe_corpus() {
        let cfg = CorpusConfig { n_malware: 6, n_benign: 6, seed: 7, no_slack_fraction: 0.25 };
        let pe_only = Dataset::generate(&cfg);
        let mixed = Dataset::generate_mixed(&cfg, 0.0);
        for (a, b) in pe_only.samples.iter().zip(&mixed.samples) {
            assert_eq!(a.bytes, b.bytes, "{}", a.name);
        }
    }

    #[test]
    fn mixed_corpus_contains_both_formats_deterministically() {
        let a = mixed();
        let b = mixed();
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.bytes, y.bytes, "{}", x.name);
        }
        let machos = a.samples.iter().filter(|s| s.format() == Format::MachO).count();
        assert!(machos > 0, "no mach-o samples at 50% fraction");
        assert!(machos < a.samples.len(), "no pe samples at 50% fraction");
    }

    #[test]
    fn macho_samples_parse_and_round_trip() {
        for s in mixed().samples {
            let img = BinaryImage::parse_auto(&s.bytes).unwrap();
            assert_eq!(img.to_bytes(), s.bytes, "{}", s.name);
            assert_eq!(img.format(), s.format(), "{}", s.name);
        }
    }

    #[test]
    fn macho_malware_behaves_maliciously_and_halts() {
        let ds = mixed();
        let mut checked = 0;
        for s in ds.malware() {
            if s.format() != Format::MachO {
                continue;
            }
            let exec = Vm::load_binary(s.image.as_dyn(), mpass_vm::VmLimits::default()).run();
            assert!(exec.completed(), "{}: {:?}", s.name, exec.outcome);
            assert!(exec.suspicious_calls().count() >= 3, "{}", s.name);
            checked += 1;
        }
        assert!(checked > 0, "no mach-o malware generated");
    }

    #[test]
    fn macho_benign_behaves_benignly_and_halts() {
        let ds = mixed();
        for s in ds.benign() {
            if s.format() != Format::MachO {
                continue;
            }
            let exec = Vm::load_binary(s.image.as_dyn(), mpass_vm::VmLimits::default()).run();
            assert!(exec.completed(), "{}: {:?}", s.name, exec.outcome);
            assert!(exec.suspicious_calls().count() <= 1, "{}", s.name);
        }
    }

    #[test]
    fn some_macho_malware_lacks_header_slack() {
        let ds = Dataset::generate_mixed(
            &CorpusConfig { n_malware: 40, n_benign: 1, seed: 3, no_slack_fraction: 0.3 },
            1.0,
        );
        let blocked = ds
            .malware()
            .iter()
            .filter(|s| !s.macho().unwrap().can_add_sections(1))
            .count();
        assert!(blocked > 0, "expected some no-slack mach-o samples");
        assert!(blocked < 40, "expected some mach-o samples with slack");
    }
}
