//! Daemon counters and latency percentiles, flushed into the engine's
//! metrics sink at shutdown.

use mpass_engine::metrics::{Collector, ShardMetrics};
use mpass_engine::{metrics as trace, EngineInfo, MetricsFile};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Live counters of one daemon run. All methods are `&self`; handler
/// threads update concurrently.
pub struct ServeStats {
    start: Instant,
    pub admitted: AtomicU64,
    pub shed: AtomicU64,
    pub rejected: AtomicU64,
    pub completed: AtomicU64,
    pub client_gone: AtomicU64,
    pub reloads: AtomicU64,
    /// Per-completed-request daemon-side latency, milliseconds.
    latencies_ms: Mutex<Vec<f64>>,
}

impl Default for ServeStats {
    fn default() -> Self {
        ServeStats {
            start: Instant::now(),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            client_gone: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            latencies_ms: Mutex::new(Vec::new()),
        }
    }
}

/// `q`-th quantile of `sorted` (nearest-rank); 0 when empty.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl ServeStats {
    /// Record one completed request's daemon-side latency.
    pub fn record_latency_ms(&self, ms: f64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latencies_ms.lock().unwrap_or_else(|p| p.into_inner()).push(ms);
    }

    /// Milliseconds since the daemon started.
    pub fn uptime_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// (p50, p99) of completed-request latency in milliseconds.
    pub fn latency_percentiles_ms(&self) -> (f64, f64) {
        let mut sorted = self.latencies_ms.lock().unwrap_or_else(|p| p.into_inner()).clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        (quantile(&sorted, 0.50), quantile(&sorted, 0.99))
    }

    /// Completed requests per second over the daemon's uptime.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.completed.load(Ordering::Relaxed) as f64 / secs
    }

    /// Seal the counters into one [`ShardMetrics`] record in the
    /// engine's schema: `serve/*` counters plus the latency series.
    pub fn to_shard_metrics(&self, label: &str) -> ShardMetrics {
        // Build through the facade so the record matches what an engine
        // shard would have produced (sorted maps, same field shapes).
        let previous = trace::take();
        trace::install(Collector::default());
        trace::counter("serve/admitted", self.admitted.load(Ordering::Relaxed));
        trace::counter("serve/shed", self.shed.load(Ordering::Relaxed));
        trace::counter("serve/rejected", self.rejected.load(Ordering::Relaxed));
        trace::counter("serve/completed", self.completed.load(Ordering::Relaxed));
        trace::counter("serve/client_gone", self.client_gone.load(Ordering::Relaxed));
        trace::counter("serve/reloads", self.reloads.load(Ordering::Relaxed));
        for ms in self.latencies_ms.lock().unwrap_or_else(|p| p.into_inner()).iter() {
            trace::series("serve/latency_ms", *ms);
        }
        let (p50, p99) = self.latency_percentiles_ms();
        trace::series("serve/p50_ms", p50);
        trace::series("serve/p99_ms", p99);
        trace::series("serve/throughput_rps", self.throughput_rps());
        let shard = trace::take()
            .map(|c| c.finish(label, self.start.elapsed().as_secs_f64() * 1e3))
            .unwrap_or_default();
        if let Some(prev) = previous {
            trace::install(prev);
        }
        shard
    }

    /// Write the sealed record as a [`MetricsFile`] readable by
    /// `mpass engine-report`.
    pub fn save_metrics(&self, path: &Path, workers: usize, seed: u64) -> std::io::Result<()> {
        let shard = self.to_shard_metrics("serve");
        MetricsFile {
            experiment: "serve".to_owned(),
            engine: EngineInfo { workers, seed, shards: 1 },
            wall_ms: self.start.elapsed().as_secs_f64() * 1e3,
            shards: vec![shard],
            failures: Vec::new(),
        }
        .save(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_known_distribution() {
        let stats = ServeStats::default();
        for i in 1..=100 {
            stats.record_latency_ms(f64::from(i));
        }
        let (p50, p99) = stats.latency_percentiles_ms();
        assert_eq!(p50, 50.0);
        assert_eq!(p99, 99.0);
        assert_eq!(stats.completed.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn empty_stats_are_zero_not_nan() {
        let stats = ServeStats::default();
        let (p50, p99) = stats.latency_percentiles_ms();
        assert_eq!((p50, p99), (0.0, 0.0));
        assert!(stats.throughput_rps() >= 0.0);
    }

    #[test]
    fn shard_record_carries_serve_counters() {
        let stats = ServeStats::default();
        stats.admitted.fetch_add(10, Ordering::Relaxed);
        stats.shed.fetch_add(2, Ordering::Relaxed);
        stats.client_gone.fetch_add(1, Ordering::Relaxed);
        stats.record_latency_ms(1.25);
        let shard = stats.to_shard_metrics("serve");
        assert_eq!(shard.label, "serve");
        assert_eq!(shard.counters["serve/admitted"], 10);
        assert_eq!(shard.counters["serve/shed"], 2);
        assert_eq!(shard.counters["serve/client_gone"], 1);
        assert_eq!(shard.counters["serve/completed"], 1);
        assert_eq!(shard.series["serve/latency_ms"], vec![1.25]);
    }

    #[test]
    fn metrics_file_round_trips_through_sink() {
        let dir = std::env::temp_dir().join(format!("mpass-serve-stats-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.metrics.json");
        let stats = ServeStats::default();
        stats.record_latency_ms(2.0);
        stats.save_metrics(&path, 4, 7).unwrap();
        let loaded = MetricsFile::load(&path).unwrap();
        assert_eq!(loaded.experiment, "serve");
        assert_eq!(loaded.engine.workers, 4);
        assert_eq!(loaded.shards.len(), 1);
        assert_eq!(loaded.shards[0].counters["serve/completed"], 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_snapshot_does_not_clobber_an_installed_collector() {
        trace::install(Collector::default());
        trace::counter("outer", 1);
        let stats = ServeStats::default();
        let _ = stats.to_shard_metrics("serve");
        // The caller's collector is restored with its state intact.
        trace::counter("outer", 1);
        let shard = trace::take().unwrap().finish("outer", 0.0);
        assert_eq!(shard.counters["outer"], 2);
        assert!(!shard.counters.contains_key("serve/admitted"));
    }
}
