//! # mpass-serve — the persistent scoring daemon
//!
//! Promotes the one-shot `mpass score` path into a long-lived service:
//! a Unix-domain-socket daemon speaking a line-delimited JSON protocol,
//! coalescing scoring requests across connections through the engine's
//! `BatchScheduler`, and — because a service for "millions of users"
//! lives or dies on its worst day — built around four robustness
//! properties:
//!
//! * **Admission control** ([`admission`]) — per-tenant token-bucket
//!   rate limits, delivered-verdict query budgets (`HardLabelTarget`
//!   semantics), and per-tenant circuit breakers, so one abusive client
//!   degrades alone.
//! * **Overload shedding** ([`server`]) — a bounded scoring queue that
//!   refuses with a typed [`protocol::ServeError::Overloaded`], plus
//!   per-request deadlines enforced *before* scoring, keeping admitted
//!   p99 latency bounded under sustained overload.
//! * **Hot model reload** ([`target`]) — an atomic epoch/`Arc` model
//!   swap driven by the protocol's `reload` command; in-flight batches
//!   finish on their snapshot, zero requests dropped.
//! * **Graceful shutdown** — SIGTERM or the `shutdown` command drains
//!   in-flight work, rejects new connections, and flushes p50/p99 +
//!   throughput into the engine's metrics sink.
//!
//! Built entirely on std threads and `std::os::unix::net` — the
//! workspace's dependencies are vendored shims, so there is no async
//! runtime to lean on, and none is needed: connection handlers are
//! cheap blocking threads, and the scheduler provides the batching.

pub mod admission;
pub mod client;
pub mod protocol;
pub mod server;
pub mod stats;
pub mod target;

pub use admission::{AdmissionControl, AdmissionError, TenantPolicy};
pub use client::ServeClient;
pub use protocol::{
    decode_hex, encode_hex, ErrorResponse, Request, Response, ScoreRequest, ScoreResponse,
    ServeError, StatsResponse,
};
pub use server::{run_with_sigterm, sigterm_received, ServeSummary, Server, ServerConfig};
pub use stats::ServeStats;
pub use target::{OracleTarget, ReloadableModel, ScoredVerdict, ServeTarget};
