//! The daemon itself: Unix-socket accept loop, per-connection handler
//! threads, cross-connection batch coalescing, and graceful drain.
//!
//! ## Request path
//!
//! ```text
//! client line ─→ parse ─→ admission (breaker → budget → bucket)
//!        ─→ try_submit(bytes, deadline) into the BatchScheduler
//!        ─→ [leader thread: shed expired, score survivors as one batch]
//!        ─→ typed Response line back (write failure = client_gone)
//! ```
//!
//! Overload never queues without bound: the scheduler's queue is capped
//! ([`ServerConfig::queue_capacity`]) and a full queue answers
//! [`ServeError::Overloaded`] immediately, so the latency of *admitted*
//! requests stays bounded by their deadline instead of collapsing.
//!
//! ## Shutdown
//!
//! `shutdown` (protocol) or SIGTERM (via [`run_with_sigterm`])
//! sets one flag: the accept loop stops taking connections, handlers
//! answer new score requests with [`ServeError::ShuttingDown`], requests
//! already inside the scheduler complete and are delivered, and the
//! final stats are flushed to the metrics sink. No in-flight request is
//! dropped.

use crate::admission::{AdmissionControl, AdmissionError, TenantPolicy};
use crate::protocol::{
    decode_hex, parse_request, ErrorResponse, Request, Response, ScoreRequest, ScoreResponse,
    ServeError, StatsResponse,
};
use crate::stats::ServeStats;
use crate::target::{ScoredVerdict, ServeTarget};
use mpass_engine::{BatchPolicy, BatchScheduler, OracleFault, SubmitError};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Everything configurable about one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix socket path; a stale file from a dead daemon is replaced.
    pub socket: PathBuf,
    /// Batch coalescing: flush size.
    pub max_batch: usize,
    /// Batch coalescing: linger before a partial batch flushes.
    pub linger: Duration,
    /// Bound on requests queued for scoring; beyond it requests are
    /// refused with [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Duration,
    /// Admission limits shared by all tenants.
    pub tenant: TenantPolicy,
    /// Where to flush the final metrics file; `None` skips the flush.
    pub metrics_out: Option<PathBuf>,
    /// Seed recorded in the metrics file (provenance only).
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            socket: PathBuf::from("mpass-serve.sock"),
            max_batch: 32,
            linger: Duration::from_millis(2),
            queue_capacity: 256,
            default_deadline: Duration::from_millis(1_000),
            tenant: TenantPolicy::default(),
            metrics_out: None,
            seed: 0,
        }
    }
}

/// Final accounting returned by [`Server::run`] after a clean drain.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSummary {
    pub admitted: u64,
    pub shed: u64,
    pub rejected: u64,
    pub completed: u64,
    pub client_gone: u64,
    pub reloads: u64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub throughput_rps: f64,
}

/// A scoring daemon bound to one [`ServeTarget`].
pub struct Server<'a> {
    target: &'a dyn ServeTarget,
    config: ServerConfig,
    admission: AdmissionControl,
    stats: ServeStats,
    shutdown: AtomicBool,
}

impl<'a> Server<'a> {
    pub fn new(target: &'a dyn ServeTarget, config: ServerConfig) -> Self {
        let admission = AdmissionControl::new(config.tenant.clone());
        Server {
            target,
            config,
            admission,
            stats: ServeStats::default(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Live counters (readable while the daemon runs).
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Begin a graceful drain: stop accepting, finish in-flight work.
    /// Safe to call from any thread (a SIGTERM watcher, a test).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Bind the socket and serve until shutdown, then drain and return
    /// the final accounting. Blocks the calling thread for the daemon's
    /// whole life.
    pub fn run(&self) -> Result<ServeSummary, String> {
        let socket = &self.config.socket;
        // A stale socket file from a previous daemon refuses rebinding;
        // replace it. (A *live* daemon also holds the path, but two
        // daemons on one path is an operator error either way.)
        if socket.exists() {
            std::fs::remove_file(socket)
                .map_err(|e| format!("cannot remove stale socket {}: {e}", socket.display()))?;
        }
        let listener = UnixListener::bind(socket)
            .map_err(|e| format!("cannot bind {}: {e}", socket.display()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set nonblocking accept: {e}"))?;

        let sched: BatchScheduler<Vec<u8>, (u64, Result<ScoredVerdict, OracleFault>)> =
            BatchScheduler::new(
                BatchPolicy {
                    max_batch: self.config.max_batch.max(1),
                    max_delay: self.config.linger,
                    queue_capacity: self.config.queue_capacity,
                },
                |items: &[Vec<u8>]| {
                    let refs: Vec<&[u8]> = items.iter().map(|b| b.as_slice()).collect();
                    let (epoch, results) = self.target.score_batch(&refs);
                    results.into_iter().map(|r| (epoch, r)).collect()
                },
            );

        std::thread::scope(|scope| {
            while !self.is_shutting_down() {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let sched = &sched;
                        scope.spawn(move || self.handle_connection(stream, sched));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) => {
                        // Accept errors are transient under load (EMFILE,
                        // ECONNABORTED); keep serving existing clients.
                        let _ = e;
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
            }
            // Drain: flush stragglers out of the scheduler so no waiter
            // sits out its linger; handler threads are joined by the
            // scope, each completing its in-flight request first.
            sched.flush();
        });
        std::fs::remove_file(socket).ok();

        if let Some(out) = &self.config.metrics_out {
            self.stats
                .save_metrics(out, 1, self.config.seed)
                .map_err(|e| format!("cannot write metrics {}: {e}", out.display()))?;
        }
        let (p50_ms, p99_ms) = self.stats.latency_percentiles_ms();
        Ok(ServeSummary {
            admitted: self.stats.admitted.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            client_gone: self.stats.client_gone.load(Ordering::Relaxed),
            reloads: self.stats.reloads.load(Ordering::Relaxed),
            p50_ms,
            p99_ms,
            throughput_rps: self.stats.throughput_rps(),
        })
    }

    /// Serve one connection: read request lines, answer each in order.
    /// The read timeout keeps the thread responsive to the shutdown
    /// flag; in-flight requests always finish before the check.
    fn handle_connection(
        &self,
        stream: UnixStream,
        sched: &BatchScheduler<'_, Vec<u8>, (u64, Result<ScoredVerdict, OracleFault>)>,
    ) {
        if stream.set_read_timeout(Some(Duration::from_millis(50))).is_err() {
            return;
        }
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = stream;
        // The line buffer persists across WouldBlock retries: read_line
        // appends, so a line split across timeouts reassembles intact.
        let mut line = String::new();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return, // EOF: client closed cleanly
                Ok(_) => {
                    if line.trim().is_empty() {
                        line.clear();
                        continue;
                    }
                    let response = self.handle_request(&line, sched);
                    line.clear();
                    if !self.write_response(&mut writer, &response) {
                        return; // client vanished; already counted
                    }
                    // Shutdown acknowledged — drain this connection.
                    if matches!(response, Response::ShuttingDown { .. }) {
                        return;
                    }
                }
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                {
                    if self.is_shutting_down() && line.trim().is_empty() {
                        return; // idle connection during drain
                    }
                }
                Err(_) => {
                    // Mid-request disconnect (reset, broken pipe): no
                    // panic, count it, reclaim the thread.
                    self.stats.client_gone.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
    }

    /// Write one response line; `false` (and a `client_gone` count) when
    /// the peer is gone.
    fn write_response(&self, writer: &mut UnixStream, response: &Response) -> bool {
        let payload = match serde_json::to_string(response) {
            Ok(p) => p,
            Err(_) => return true, // unserializable response is a bug, not a peer failure
        };
        let ok = writer
            .write_all(payload.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_ok();
        if !ok {
            self.stats.client_gone.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    fn handle_request(
        &self,
        line: &str,
        sched: &BatchScheduler<'_, Vec<u8>, (u64, Result<ScoredVerdict, OracleFault>)>,
    ) -> Response {
        let request = match parse_request(line) {
            Ok(r) => r,
            Err(reason) => {
                return Response::Error(ErrorResponse {
                    id: 0,
                    error: ServeError::BadRequest { reason },
                })
            }
        };
        match request {
            Request::Ping { id } => Response::Pong { id, epoch: self.target.epoch() },
            Request::Stats { id } => Response::Stats(self.stats_snapshot(id)),
            Request::Shutdown { id } => {
                self.request_shutdown();
                Response::ShuttingDown { id }
            }
            Request::Reload { id } => match self.target.reload() {
                Ok(epoch) => {
                    self.stats.reloads.fetch_add(1, Ordering::Relaxed);
                    Response::Reloaded { id, epoch }
                }
                Err(reason) => Response::Error(ErrorResponse {
                    id,
                    error: ServeError::BadRequest { reason },
                }),
            },
            Request::Score(req) => self.handle_score(req, sched),
        }
    }

    fn handle_score(
        &self,
        req: ScoreRequest,
        sched: &BatchScheduler<'_, Vec<u8>, (u64, Result<ScoredVerdict, OracleFault>)>,
    ) -> Response {
        let id = req.id;
        let refuse = |error: ServeError| Response::Error(ErrorResponse { id, error });
        if self.is_shutting_down() {
            return refuse(ServeError::ShuttingDown);
        }
        let bytes = match decode_hex(&req.bytes_hex) {
            Ok(b) => b,
            Err(reason) => return refuse(ServeError::BadRequest { reason }),
        };
        if let Err(e) = self.admission.admit(&req.tenant) {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return refuse(match e {
                AdmissionError::RateLimited { retry_after_ms } => {
                    ServeError::RateLimited { retry_after_ms }
                }
                AdmissionError::BudgetExhausted { limit } => {
                    ServeError::BudgetExhausted { limit: limit as u64 }
                }
                AdmissionError::CircuitOpen => ServeError::CircuitOpen,
            });
        }
        self.stats.admitted.fetch_add(1, Ordering::Relaxed);
        let arrived = Instant::now();
        let deadline = arrived
            + req
                .deadline_ms
                .map(Duration::from_millis)
                .unwrap_or(self.config.default_deadline);
        match sched.try_submit(bytes, Some(deadline)) {
            Ok((epoch, Ok(scored))) => {
                self.admission.record_delivered(&req.tenant);
                let elapsed = arrived.elapsed();
                self.stats.record_latency_ms(elapsed.as_secs_f64() * 1e3);
                Response::Score(ScoreResponse {
                    id,
                    verdict: scored.verdict,
                    score: scored.score,
                    epoch,
                    queued_us: elapsed.as_micros() as u64,
                })
            }
            Ok((_, Err(fault))) => {
                self.admission.record_failed(&req.tenant);
                refuse(ServeError::Upstream { fault })
            }
            Err(SubmitError::QueueFull { capacity }) => {
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                self.admission.record_failed(&req.tenant);
                refuse(ServeError::Overloaded { capacity: capacity as u64 })
            }
            Err(SubmitError::DeadlineExpired) => {
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                self.admission.record_failed(&req.tenant);
                refuse(ServeError::DeadlineExceeded)
            }
        }
    }

    fn stats_snapshot(&self, id: u64) -> StatsResponse {
        let (p50_ms, p99_ms) = self.stats.latency_percentiles_ms();
        StatsResponse {
            id,
            admitted: self.stats.admitted.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            client_gone: self.stats.client_gone.load(Ordering::Relaxed),
            reloads: self.stats.reloads.load(Ordering::Relaxed),
            epoch: self.target.epoch(),
            p50_ms,
            p99_ms,
            throughput_rps: self.stats.throughput_rps(),
            uptime_ms: self.stats.uptime_ms(),
        }
    }
}

// ---------------------------------------------------------------------------
// SIGTERM wiring (no libc dependency: one hand-declared POSIX binding).

static SIGTERM_RECEIVED: AtomicBool = AtomicBool::new(false);

#[allow(non_camel_case_types)]
type c_int = i32;

extern "C" fn on_sigterm(_signum: c_int) {
    // Only async-signal-safe work here: one atomic store.
    SIGTERM_RECEIVED.store(true, Ordering::SeqCst);
}

extern "C" {
    fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
}

const SIGTERM: c_int = 15;

/// Whether a SIGTERM has arrived since the handler was installed.
pub fn sigterm_received() -> bool {
    SIGTERM_RECEIVED.load(Ordering::SeqCst)
}

/// Run the server, draining gracefully on SIGTERM as well as on a
/// protocol `shutdown`. This wraps [`Server::run`] with a scoped watcher
/// thread that polls [`sigterm_received`] and requests shutdown.
pub fn run_with_sigterm(server: &Server<'_>) -> Result<ServeSummary, String> {
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
    std::thread::scope(|scope| {
        scope.spawn(|| {
            while !server.is_shutting_down() {
                if sigterm_received() {
                    server.request_shutdown();
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        server.run()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ServeClient;
    use crate::target::ReloadableModel;
    use mpass_detectors::{Detector, Verdict};
    use std::sync::Arc;

    struct Fixed(f32);
    impl Detector for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn score(&self, _: &[u8]) -> f32 {
            self.0
        }
    }

    fn temp_socket(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mpass-serve-{tag}-{}.sock", std::process::id()))
    }

    #[test]
    fn daemon_scores_reloads_and_drains() {
        let model = ReloadableModel::new(Arc::new(Fixed(0.9)), |epoch| {
            // Each reload alternates the verdict, tagging it by epoch.
            Ok(Arc::new(Fixed(if epoch % 2 == 0 { 0.1 } else { 0.9 })) as Arc<dyn Detector>)
        });
        let socket = temp_socket("smoke");
        let server = Server::new(
            &model,
            ServerConfig { socket: socket.clone(), ..ServerConfig::default() },
        );
        let summary = std::thread::scope(|scope| {
            let server = &server;
            let daemon = scope.spawn(move || server.run());
            let mut client =
                ServeClient::connect_retry(&socket, Duration::from_secs(10)).unwrap();

            // Liveness + epoch.
            assert_eq!(client.ping(1).unwrap(), Response::Pong { id: 1, epoch: 1 });

            // A scored request under epoch 1.
            match client.score(2, "acme", b"MZ test bytes", Some(5_000)).unwrap() {
                Response::Score(resp) => {
                    assert_eq!(resp.id, 2);
                    assert_eq!(resp.verdict, Verdict::Malicious);
                    assert_eq!(resp.epoch, 1);
                    assert!(resp.score.is_some());
                }
                other => panic!("expected a score, got {other:?}"),
            }

            // Hot reload flips the model; verdicts change, nothing drops.
            assert_eq!(client.reload(3).unwrap(), Response::Reloaded { id: 3, epoch: 2 });
            match client.score(4, "acme", b"MZ test bytes", Some(5_000)).unwrap() {
                Response::Score(resp) => {
                    assert_eq!(resp.verdict, Verdict::Benign);
                    assert_eq!(resp.epoch, 2);
                }
                other => panic!("expected a score, got {other:?}"),
            }

            // Stats reflect the traffic so far.
            match client.stats(5).unwrap() {
                Response::Stats(stats) => {
                    assert_eq!(stats.admitted, 2);
                    assert_eq!(stats.completed, 2);
                    assert_eq!(stats.shed, 0);
                    assert_eq!(stats.reloads, 1);
                    assert_eq!(stats.epoch, 2);
                }
                other => panic!("expected stats, got {other:?}"),
            }

            // Graceful shutdown: acknowledged, then the daemon drains.
            assert_eq!(client.shutdown(6).unwrap(), Response::ShuttingDown { id: 6 });
            daemon.join().expect("daemon thread panicked").expect("daemon errored")
        });
        assert_eq!(summary.admitted, 2);
        assert_eq!(summary.completed, 2);
        assert_eq!(summary.reloads, 1);
        assert_eq!(summary.client_gone, 0);
        assert!(!socket.exists(), "socket file must be removed at drain");
    }

    #[test]
    fn bad_lines_get_typed_errors_not_panics() {
        let model = ReloadableModel::new(Arc::new(Fixed(0.9)), |_| Err("no".to_owned()));
        let socket = temp_socket("badline");
        let server = Server::new(
            &model,
            ServerConfig { socket: socket.clone(), ..ServerConfig::default() },
        );
        std::thread::scope(|scope| {
            let server = &server;
            let daemon = scope.spawn(move || server.run());
            let mut client =
                ServeClient::connect_retry(&socket, Duration::from_secs(10)).unwrap();

            // Unparseable line.
            let stream = &mut client;
            {
                use std::io::Write as _;
                stream.raw_writer().write_all(b"this is not json\n").unwrap();
            }
            match stream.raw_read_response().unwrap() {
                Response::Error(e) => {
                    assert!(matches!(e.error, ServeError::BadRequest { .. }));
                    assert_eq!(e.id, 0);
                }
                other => panic!("expected error, got {other:?}"),
            }

            // Bad hex in an otherwise valid request.
            match client.request(&Request::Score(ScoreRequest {
                id: 9,
                tenant: "t".to_owned(),
                bytes_hex: "zz".to_owned(),
                deadline_ms: None,
            })) {
                Ok(Response::Error(e)) => {
                    assert_eq!(e.id, 9);
                    assert!(matches!(e.error, ServeError::BadRequest { .. }));
                }
                other => panic!("expected bad-request, got {other:?}"),
            }

            // Reload without a producer: typed error, daemon stays up.
            match client.reload(10).unwrap() {
                Response::Error(e) => assert_eq!(e.id, 10),
                other => panic!("expected error, got {other:?}"),
            }
            assert!(matches!(client.ping(11).unwrap(), Response::Pong { .. }));

            client.shutdown(12).unwrap();
            daemon.join().unwrap().unwrap();
        });
    }

    #[test]
    fn abrupt_client_disconnect_is_counted_not_fatal() {
        let model = ReloadableModel::new(Arc::new(Fixed(0.9)), |_| Err("no".to_owned()));
        let socket = temp_socket("gone");
        let server = Server::new(
            &model,
            ServerConfig { socket: socket.clone(), ..ServerConfig::default() },
        );
        let summary = std::thread::scope(|scope| {
            let server = &server;
            let daemon = scope.spawn(move || server.run());
            // A client that sends a request and vanishes before reading.
            {
                use std::io::Write as _;
                let mut stream = {
                    let give_up = Instant::now() + Duration::from_secs(10);
                    loop {
                        match UnixStream::connect(&socket) {
                            Ok(s) => break s,
                            Err(e) if Instant::now() >= give_up => panic!("no daemon: {e}"),
                            Err(_) => std::thread::sleep(Duration::from_millis(10)),
                        }
                    }
                };
                let line = serde_json::to_string(&Request::Score(ScoreRequest {
                    id: 1,
                    tenant: "ghost".to_owned(),
                    bytes_hex: crate::protocol::encode_hex(b"abc"),
                    deadline_ms: Some(5_000),
                }))
                .unwrap();
                stream.write_all(line.as_bytes()).unwrap();
                stream.write_all(b"\n").unwrap();
                // Hard close without reading the response.
                stream.shutdown(std::net::Shutdown::Both).unwrap();
                drop(stream);
            }
            // The daemon must still serve new clients afterwards.
            let mut client =
                ServeClient::connect_retry(&socket, Duration::from_secs(10)).unwrap();
            let give_up = Instant::now() + Duration::from_secs(30);
            loop {
                match client.stats(2).unwrap() {
                    Response::Stats(stats) if stats.client_gone >= 1 => break,
                    Response::Stats(_) if Instant::now() < give_up => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Response::Stats(stats) => {
                        panic!("client_gone never counted: {stats:?}")
                    }
                    other => panic!("expected stats, got {other:?}"),
                }
            }
            client.shutdown(3).unwrap();
            daemon.join().unwrap().unwrap()
        });
        assert!(summary.client_gone >= 1);
        // The ghost's request was admitted and scored (slot reclaimed,
        // result discarded at write time) or shed at its deadline —
        // either way it is accounted, never leaked.
        assert_eq!(summary.admitted, summary.completed + summary.shed);
    }
}
