//! What the daemon scores against: a batch-scoring, epoch-tagged,
//! possibly hot-reloadable target.
//!
//! [`ServeTarget`] is the one trait the server loop needs. Two
//! implementations cover the stock cases:
//!
//! * [`ReloadableModel`] — a [`SwappableDetector`] slot plus a producer
//!   closure (the weekly-learning retrain); `reload` produces the next
//!   model and swaps it in atomically, in-flight batches keep scoring on
//!   their snapshot.
//! * [`OracleTarget`] — any [`Oracle`] channel (including the seeded
//!   fault-injecting `UnreliableOracle`); hard-label only, not
//!   reloadable.
//!
//! Tests compose their own (e.g. fault injection *around* a reloadable
//! slot) by implementing the trait directly.

use mpass_detectors::{detector_from_snapshot, Detector, Oracle, SwappableDetector, Verdict};
use mpass_engine::OracleFault;
use mpass_ml::Snapshot;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One delivered verdict, with the probability when the target has one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredVerdict {
    pub verdict: Verdict,
    /// `None` for hard-label channels (oracle transports).
    pub score: Option<f32>,
}

/// The server's scoring backend.
pub trait ServeTarget: Send + Sync {
    /// Epoch of the currently live model (1 for static targets).
    fn epoch(&self) -> u64;

    /// Produce and atomically publish the next model, returning the new
    /// epoch. Targets without a producer return `Err`.
    fn reload(&self) -> Result<u64, String>;

    /// Score one batch under **one** model snapshot, returning the
    /// snapshot's epoch and one result per item in input order. The
    /// single-snapshot contract is what makes hot reload safe: a batch
    /// admitted at epoch N scores entirely at epoch N even if a swap
    /// lands mid-batch.
    fn score_batch(&self, items: &[&[u8]]) -> (u64, Vec<Result<ScoredVerdict, OracleFault>>);
}

/// A hot-reloadable in-process model: swappable slot + producer.
pub struct ReloadableModel {
    slot: SwappableDetector,
    #[allow(clippy::type_complexity)]
    producer: Box<dyn Fn(u64) -> Result<Arc<dyn Detector>, String> + Send + Sync>,
}

impl ReloadableModel {
    /// A slot serving `initial`, with `producer` invoked per reload.
    /// The producer receives the epoch the new model will serve as
    /// (useful for deriving a retrain seed).
    pub fn new<F>(initial: Arc<dyn Detector>, producer: F) -> Self
    where
        F: Fn(u64) -> Result<Arc<dyn Detector>, String> + Send + Sync + 'static,
    {
        ReloadableModel {
            slot: SwappableDetector::new("serve-live", initial),
            producer: Box::new(producer),
        }
    }

    /// The underlying slot (e.g. for wrapping in a fault channel).
    pub fn slot(&self) -> &SwappableDetector {
        &self.slot
    }

    /// A slot backed by a weight-snapshot file: the initial model is
    /// decoded from `path` now, and every `reload` re-reads the same file
    /// — so a retrain elsewhere only has to atomically replace the file
    /// and the daemon picks it up at O(read) cost, with bit-identical
    /// scores to the model that wrote it.
    pub fn from_snapshot_file(path: impl AsRef<Path>) -> Result<Self, String> {
        let path: PathBuf = path.as_ref().to_owned();
        let initial = load_snapshot_detector(&path)?;
        Ok(ReloadableModel::new(initial, move |_| load_snapshot_detector(&path)))
    }
}

/// Decode one snapshot file into a live detector, stringifying the typed
/// snapshot errors for the producer/CLI boundary.
fn load_snapshot_detector(path: &Path) -> Result<Arc<dyn Detector>, String> {
    let snap = Snapshot::load_file(path)
        .map_err(|e| format!("snapshot {}: {e}", path.display()))?;
    detector_from_snapshot(&snap).map_err(|e| format!("snapshot {}: {e}", path.display()))
}

impl ServeTarget for ReloadableModel {
    fn epoch(&self) -> u64 {
        self.slot.epoch()
    }

    fn reload(&self) -> Result<u64, String> {
        let next = (self.producer)(self.slot.epoch() + 1)?;
        Ok(self.slot.swap(next))
    }

    fn score_batch(&self, items: &[&[u8]]) -> (u64, Vec<Result<ScoredVerdict, OracleFault>>) {
        let (model, epoch) = self.slot.current();
        let mut scores = Vec::with_capacity(items.len());
        model.score_batch(items, &mut scores);
        let threshold = model.threshold();
        let results = scores
            .into_iter()
            .map(|s| {
                let verdict =
                    if s > threshold { Verdict::Malicious } else { Verdict::Benign };
                Ok(ScoredVerdict { verdict, score: Some(s) })
            })
            .collect();
        (epoch, results)
    }
}

/// A static target over any oracle channel. Faults from the channel
/// surface per item; `reload` is unsupported.
pub struct OracleTarget<'a> {
    oracle: &'a dyn Oracle,
}

impl<'a> OracleTarget<'a> {
    pub fn new(oracle: &'a dyn Oracle) -> Self {
        OracleTarget { oracle }
    }
}

impl ServeTarget for OracleTarget<'_> {
    fn epoch(&self) -> u64 {
        1
    }

    fn reload(&self) -> Result<u64, String> {
        Err(format!("target {:?} has no model producer", self.oracle.name()))
    }

    fn score_batch(&self, items: &[&[u8]]) -> (u64, Vec<Result<ScoredVerdict, OracleFault>>) {
        let mut out = Vec::with_capacity(items.len());
        self.oracle.submit_batch(items, &mut out);
        let results = out
            .into_iter()
            .map(|r| r.map(|verdict| ScoredVerdict { verdict, score: None }))
            .collect();
        (1, results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f32);
    impl Detector for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn score(&self, _: &[u8]) -> f32 {
            self.0
        }
    }

    #[test]
    fn reloadable_model_swaps_through_its_producer() {
        let model = ReloadableModel::new(Arc::new(Fixed(0.9)), |epoch| {
            // Producer derives the new model from the target epoch.
            Ok(Arc::new(Fixed(if epoch % 2 == 0 { 0.1 } else { 0.9 })) as Arc<dyn Detector>)
        });
        assert_eq!(model.epoch(), 1);
        let (epoch, results) = model.score_batch(&[b"x".as_slice()]);
        assert_eq!(epoch, 1);
        assert_eq!(results[0].as_ref().unwrap().verdict, Verdict::Malicious);
        assert_eq!(results[0].as_ref().unwrap().score, Some(0.9));

        assert_eq!(model.reload().unwrap(), 2);
        let (epoch, results) = model.score_batch(&[b"x".as_slice()]);
        assert_eq!(epoch, 2);
        assert_eq!(results[0].as_ref().unwrap().verdict, Verdict::Benign);
    }

    #[test]
    fn reloadable_model_surfaces_producer_errors_without_swapping() {
        let model =
            ReloadableModel::new(Arc::new(Fixed(0.9)), |_| Err("retrain failed".to_owned()));
        assert!(model.reload().is_err());
        assert_eq!(model.epoch(), 1, "failed reload must not bump the epoch");
    }

    /// A syntactically valid all-zero MalConv snapshot (tiny shapes) whose
    /// head bias forces logit 2.0 → score σ(2) ≈ 0.88 on every input.
    fn tiny_malconv_snapshot() -> mpass_ml::Snapshot {
        let (dim, filters, kernel, hidden) = (2usize, 2usize, 2usize, 2usize);
        let mut b = mpass_ml::SnapshotBuilder::new();
        b.meta("detector", "MalConv")
            .meta("window", 4)
            .meta("embed_dim", dim)
            .meta("filters", filters)
            .meta("kernel", kernel)
            .meta("stride", 2)
            .meta("hidden", hidden)
            .meta("nonneg", 0)
            .tensor("embedding", &vec![0.0; 257 * dim])
            .tensor("conv_a.weight", &vec![0.0; filters * kernel * dim])
            .tensor("conv_a.bias", &vec![0.0; filters])
            .tensor("conv_b.weight", &vec![0.0; filters * kernel * dim])
            .tensor("conv_b.bias", &vec![0.0; filters])
            .tensor("head1.weight", &vec![0.0; hidden * filters])
            .tensor("head1.bias", &vec![0.0; hidden])
            .tensor("head2.weight", &vec![0.0; hidden])
            .tensor("head2.bias", &[2.0])
            .tensor("threshold", &[0.5]);
        b.finish()
    }

    #[test]
    fn snapshot_file_target_serves_and_reloads_from_the_file() {
        let path = std::env::temp_dir()
            .join(format!("mpass-serve-snap-{}.mpss", std::process::id()));
        tiny_malconv_snapshot().write_file(&path).expect("snapshot writes");

        let model = ReloadableModel::from_snapshot_file(&path).expect("loads");
        assert_eq!(model.epoch(), 1);
        let (_, before) = model.score_batch(&[b"x".as_slice()]);
        let sv = before[0].as_ref().unwrap();
        assert_eq!(sv.verdict, Verdict::Malicious);
        let score = sv.score.expect("in-process model exposes scores");

        // Reload re-reads the same file: epoch bumps, scores bit-identical.
        assert_eq!(model.reload().unwrap(), 2);
        let (epoch, after) = model.score_batch(&[b"x".as_slice()]);
        assert_eq!(epoch, 2);
        assert_eq!(after[0].as_ref().unwrap().score.unwrap().to_bits(), score.to_bits());

        // A vanished file fails the reload without unseating the live model.
        std::fs::remove_file(&path).unwrap();
        assert!(model.reload().is_err());
        assert_eq!(model.epoch(), 2, "failed reload must not bump the epoch");
        assert!(ReloadableModel::from_snapshot_file(&path).is_err());
    }

    #[test]
    fn oracle_target_is_hard_label_and_not_reloadable() {
        let det = Fixed(0.9);
        let target = OracleTarget::new(&det);
        assert_eq!(target.epoch(), 1);
        assert!(target.reload().is_err());
        let (_, results) = target.score_batch(&[b"x".as_slice()]);
        let sv = results[0].as_ref().unwrap();
        assert_eq!(sv.verdict, Verdict::Malicious);
        assert_eq!(sv.score, None, "oracle channels expose no probability");
    }
}
