//! What the daemon scores against: a batch-scoring, epoch-tagged,
//! possibly hot-reloadable target.
//!
//! [`ServeTarget`] is the one trait the server loop needs. Two
//! implementations cover the stock cases:
//!
//! * [`ReloadableModel`] — a [`SwappableDetector`] slot plus a producer
//!   closure (the weekly-learning retrain); `reload` produces the next
//!   model and swaps it in atomically, in-flight batches keep scoring on
//!   their snapshot.
//! * [`OracleTarget`] — any [`Oracle`] channel (including the seeded
//!   fault-injecting `UnreliableOracle`); hard-label only, not
//!   reloadable.
//!
//! Tests compose their own (e.g. fault injection *around* a reloadable
//! slot) by implementing the trait directly.

use mpass_detectors::{Detector, Oracle, SwappableDetector, Verdict};
use mpass_engine::OracleFault;
use std::sync::Arc;

/// One delivered verdict, with the probability when the target has one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredVerdict {
    pub verdict: Verdict,
    /// `None` for hard-label channels (oracle transports).
    pub score: Option<f32>,
}

/// The server's scoring backend.
pub trait ServeTarget: Send + Sync {
    /// Epoch of the currently live model (1 for static targets).
    fn epoch(&self) -> u64;

    /// Produce and atomically publish the next model, returning the new
    /// epoch. Targets without a producer return `Err`.
    fn reload(&self) -> Result<u64, String>;

    /// Score one batch under **one** model snapshot, returning the
    /// snapshot's epoch and one result per item in input order. The
    /// single-snapshot contract is what makes hot reload safe: a batch
    /// admitted at epoch N scores entirely at epoch N even if a swap
    /// lands mid-batch.
    fn score_batch(&self, items: &[&[u8]]) -> (u64, Vec<Result<ScoredVerdict, OracleFault>>);
}

/// A hot-reloadable in-process model: swappable slot + producer.
pub struct ReloadableModel {
    slot: SwappableDetector,
    #[allow(clippy::type_complexity)]
    producer: Box<dyn Fn(u64) -> Result<Arc<dyn Detector>, String> + Send + Sync>,
}

impl ReloadableModel {
    /// A slot serving `initial`, with `producer` invoked per reload.
    /// The producer receives the epoch the new model will serve as
    /// (useful for deriving a retrain seed).
    pub fn new<F>(initial: Arc<dyn Detector>, producer: F) -> Self
    where
        F: Fn(u64) -> Result<Arc<dyn Detector>, String> + Send + Sync + 'static,
    {
        ReloadableModel {
            slot: SwappableDetector::new("serve-live", initial),
            producer: Box::new(producer),
        }
    }

    /// The underlying slot (e.g. for wrapping in a fault channel).
    pub fn slot(&self) -> &SwappableDetector {
        &self.slot
    }
}

impl ServeTarget for ReloadableModel {
    fn epoch(&self) -> u64 {
        self.slot.epoch()
    }

    fn reload(&self) -> Result<u64, String> {
        let next = (self.producer)(self.slot.epoch() + 1)?;
        Ok(self.slot.swap(next))
    }

    fn score_batch(&self, items: &[&[u8]]) -> (u64, Vec<Result<ScoredVerdict, OracleFault>>) {
        let (model, epoch) = self.slot.current();
        let mut scores = Vec::with_capacity(items.len());
        model.score_batch(items, &mut scores);
        let threshold = model.threshold();
        let results = scores
            .into_iter()
            .map(|s| {
                let verdict =
                    if s > threshold { Verdict::Malicious } else { Verdict::Benign };
                Ok(ScoredVerdict { verdict, score: Some(s) })
            })
            .collect();
        (epoch, results)
    }
}

/// A static target over any oracle channel. Faults from the channel
/// surface per item; `reload` is unsupported.
pub struct OracleTarget<'a> {
    oracle: &'a dyn Oracle,
}

impl<'a> OracleTarget<'a> {
    pub fn new(oracle: &'a dyn Oracle) -> Self {
        OracleTarget { oracle }
    }
}

impl ServeTarget for OracleTarget<'_> {
    fn epoch(&self) -> u64 {
        1
    }

    fn reload(&self) -> Result<u64, String> {
        Err(format!("target {:?} has no model producer", self.oracle.name()))
    }

    fn score_batch(&self, items: &[&[u8]]) -> (u64, Vec<Result<ScoredVerdict, OracleFault>>) {
        let mut out = Vec::with_capacity(items.len());
        self.oracle.submit_batch(items, &mut out);
        let results = out
            .into_iter()
            .map(|r| r.map(|verdict| ScoredVerdict { verdict, score: None }))
            .collect();
        (1, results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f32);
    impl Detector for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn score(&self, _: &[u8]) -> f32 {
            self.0
        }
    }

    #[test]
    fn reloadable_model_swaps_through_its_producer() {
        let model = ReloadableModel::new(Arc::new(Fixed(0.9)), |epoch| {
            // Producer derives the new model from the target epoch.
            Ok(Arc::new(Fixed(if epoch % 2 == 0 { 0.1 } else { 0.9 })) as Arc<dyn Detector>)
        });
        assert_eq!(model.epoch(), 1);
        let (epoch, results) = model.score_batch(&[b"x".as_slice()]);
        assert_eq!(epoch, 1);
        assert_eq!(results[0].as_ref().unwrap().verdict, Verdict::Malicious);
        assert_eq!(results[0].as_ref().unwrap().score, Some(0.9));

        assert_eq!(model.reload().unwrap(), 2);
        let (epoch, results) = model.score_batch(&[b"x".as_slice()]);
        assert_eq!(epoch, 2);
        assert_eq!(results[0].as_ref().unwrap().verdict, Verdict::Benign);
    }

    #[test]
    fn reloadable_model_surfaces_producer_errors_without_swapping() {
        let model =
            ReloadableModel::new(Arc::new(Fixed(0.9)), |_| Err("retrain failed".to_owned()));
        assert!(model.reload().is_err());
        assert_eq!(model.epoch(), 1, "failed reload must not bump the epoch");
    }

    #[test]
    fn oracle_target_is_hard_label_and_not_reloadable() {
        let det = Fixed(0.9);
        let target = OracleTarget::new(&det);
        assert_eq!(target.epoch(), 1);
        assert!(target.reload().is_err());
        let (_, results) = target.score_batch(&[b"x".as_slice()]);
        let sv = results[0].as_ref().unwrap();
        assert_eq!(sv.verdict, Verdict::Malicious);
        assert_eq!(sv.score, None, "oracle channels expose no probability");
    }
}
