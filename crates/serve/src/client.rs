//! A minimal synchronous client for the daemon's protocol — used by the
//! CLI, the benchmarks, and the resilience tests.

use crate::protocol::{encode_hex, parse_response, Request, Response, ScoreRequest};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// One connection to a running daemon. Requests are answered in order
/// on the same connection (the daemon serializes per connection;
/// concurrency comes from multiple connections).
pub struct ServeClient {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl ServeClient {
    /// Connect to a daemon's socket.
    pub fn connect(socket: &Path) -> Result<Self, String> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| format!("cannot connect {}: {e}", socket.display()))?;
        let read_half =
            stream.try_clone().map_err(|e| format!("cannot clone stream: {e}"))?;
        Ok(ServeClient { reader: BufReader::new(read_half), writer: stream })
    }

    /// Connect, retrying until the daemon has bound its socket or
    /// `timeout` elapses — the standard way to wait for a daemon boot.
    pub fn connect_retry(socket: &Path, timeout: Duration) -> Result<Self, String> {
        let give_up = Instant::now() + timeout;
        loop {
            match Self::connect(socket) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= give_up => {
                    return Err(format!("daemon did not come up within {timeout:?}: {e}"))
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Send one request line and block for its response line.
    pub fn request(&mut self, request: &Request) -> Result<Response, String> {
        let payload =
            serde_json::to_string(request).map_err(|e| format!("cannot encode request: {e}"))?;
        self.writer
            .write_all(payload.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("cannot send request: {e}"))?;
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("daemon closed the connection".to_owned()),
            Ok(_) => parse_response(&line),
            Err(e) => Err(format!("cannot read response: {e}")),
        }
    }

    /// Score raw bytes under a tenant.
    pub fn score(
        &mut self,
        id: u64,
        tenant: &str,
        bytes: &[u8],
        deadline_ms: Option<u64>,
    ) -> Result<Response, String> {
        self.request(&Request::Score(ScoreRequest {
            id,
            tenant: tenant.to_owned(),
            bytes_hex: encode_hex(bytes),
            deadline_ms,
        }))
    }

    pub fn ping(&mut self, id: u64) -> Result<Response, String> {
        self.request(&Request::Ping { id })
    }

    pub fn reload(&mut self, id: u64) -> Result<Response, String> {
        self.request(&Request::Reload { id })
    }

    pub fn stats(&mut self, id: u64) -> Result<Response, String> {
        self.request(&Request::Stats { id })
    }

    pub fn shutdown(&mut self, id: u64) -> Result<Response, String> {
        self.request(&Request::Shutdown { id })
    }

    /// The raw write half — for driving deliberately malformed lines in
    /// tests.
    pub fn raw_writer(&mut self) -> &mut UnixStream {
        &mut self.writer
    }

    /// Read one response line without having sent anything through
    /// [`ServeClient::request`].
    pub fn raw_read_response(&mut self) -> Result<Response, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("daemon closed the connection".to_owned()),
            Ok(_) => parse_response(&line),
            Err(e) => Err(format!("cannot read response: {e}")),
        }
    }
}
