//! The daemon's wire protocol: line-delimited JSON over a Unix socket.
//!
//! Each line is one externally-tagged JSON value — a [`Request`] from
//! client to daemon, a [`Response`] back. File bytes travel hex-encoded
//! (line-JSON cannot carry raw bytes, and the synthetic corpus binaries
//! are small); [`encode_hex`]/[`decode_hex`] are the only codec.
//!
//! Every refusal the daemon can issue is a *typed* [`ServeError`] —
//! clients distinguish "come back later" ([`ServeError::Overloaded`],
//! [`ServeError::RateLimited`]) from "stop asking"
//! ([`ServeError::BudgetExhausted`], [`ServeError::ShuttingDown`])
//! without parsing prose.

use mpass_detectors::Verdict;
use mpass_engine::OracleFault;
use serde::{Deserialize, Serialize};

/// One scoring request.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScoreRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Tenant name for admission control (rate limit, budget, breaker).
    pub tenant: String,
    /// Hex-encoded file bytes ([`encode_hex`]).
    pub bytes_hex: String,
    /// Per-request deadline in milliseconds from arrival; the daemon
    /// sheds the request (before scoring) once it expires. `None` uses
    /// the daemon's default deadline.
    pub deadline_ms: Option<u64>,
}

// Hand-written so `deadline_ms` may be omitted entirely (the derive
// requires every key to be present, `null` included).
impl serde::Deserialize for ScoreRequest {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(ScoreRequest {
            id: serde::Deserialize::from_value(serde::field(value, "id")?)?,
            tenant: serde::Deserialize::from_value(serde::field(value, "tenant")?)?,
            bytes_hex: serde::Deserialize::from_value(serde::field(value, "bytes_hex")?)?,
            deadline_ms: match value.get("deadline_ms") {
                Some(v) => serde::Deserialize::from_value(v)?,
                None => None,
            },
        })
    }
}

/// Everything a client can send, one JSON value per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Score a file under a tenant's admission policy.
    Score(ScoreRequest),
    /// Swap in a freshly produced model (weekly-learning retrain).
    Reload { id: u64 },
    /// Snapshot the daemon's counters and latency percentiles.
    Stats { id: u64 },
    /// Graceful shutdown: drain in-flight work, stop accepting.
    Shutdown { id: u64 },
    /// Liveness probe; answers with the current model epoch.
    Ping { id: u64 },
}

/// A delivered verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreResponse {
    pub id: u64,
    pub verdict: Verdict,
    /// Malicious probability when the backing target exposes scores
    /// (in-process models do; oracle channels are hard-label only).
    pub score: Option<f32>,
    /// Epoch of the model that produced this verdict.
    pub epoch: u64,
    /// Microseconds the request spent queued + scored inside the daemon.
    pub queued_us: u64,
}

/// Why a request was refused. Every variant is load-bearing for a
/// client's retry decision — see the module docs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServeError {
    /// The batch queue is full; the request was never enqueued.
    Overloaded { capacity: u64 },
    /// The request's deadline passed before scoring; it was shed.
    DeadlineExceeded,
    /// The tenant's token bucket is empty.
    RateLimited { retry_after_ms: u64 },
    /// The tenant's query budget is spent (delivered verdicts only —
    /// refused and shed requests cost nothing).
    BudgetExhausted { limit: u64 },
    /// The tenant's circuit breaker is open after repeated failures.
    CircuitOpen,
    /// The upstream oracle channel faulted.
    Upstream { fault: OracleFault },
    /// The daemon is draining; no new work is admitted.
    ShuttingDown,
    /// The request line did not parse or decode.
    BadRequest { reason: String },
}

/// An error response carrying the offending request's id (0 when the
/// request was too malformed to extract one).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorResponse {
    pub id: u64,
    pub error: ServeError,
}

/// Counter snapshot answered to [`Request::Stats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsResponse {
    pub id: u64,
    /// Requests that passed admission and were submitted for scoring.
    pub admitted: u64,
    /// Admitted requests shed before scoring (queue full or deadline).
    pub shed: u64,
    /// Requests refused at admission (rate limit, budget, breaker).
    pub rejected: u64,
    /// Admitted requests that returned a verdict.
    pub completed: u64,
    /// Responses that could not be written because the client vanished.
    pub client_gone: u64,
    /// Completed model reloads.
    pub reloads: u64,
    /// Current model epoch.
    pub epoch: u64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub throughput_rps: f64,
    pub uptime_ms: u64,
}

/// Everything the daemon can answer, one JSON value per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    Score(ScoreResponse),
    Error(ErrorResponse),
    /// A reload completed; `epoch` is the newly live model's epoch.
    Reloaded { id: u64, epoch: u64 },
    Stats(StatsResponse),
    /// Acknowledges [`Request::Shutdown`]; the daemon drains after this.
    ShuttingDown { id: u64 },
    Pong { id: u64, epoch: u64 },
}

/// Lowercase hex encoding of `bytes`.
pub fn encode_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[usize::from(b >> 4)] as char);
        out.push(DIGITS[usize::from(b & 0xf)] as char);
    }
    out
}

/// Decode [`encode_hex`] output (case-insensitive). Errors on odd
/// length or a non-hex digit.
pub fn decode_hex(text: &str) -> Result<Vec<u8>, String> {
    let raw = text.as_bytes();
    if !raw.len().is_multiple_of(2) {
        return Err(format!("hex payload has odd length {}", raw.len()));
    }
    fn nibble(c: u8) -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            other => Err(format!("invalid hex digit {:?}", other as char)),
        }
    }
    let mut out = Vec::with_capacity(raw.len() / 2);
    for pair in raw.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Ok(out)
}

/// Parse one protocol line into a [`Request`].
pub fn parse_request(line: &str) -> Result<Request, String> {
    serde_json::from_str(line.trim()).map_err(|e| format!("bad request line: {e}"))
}

/// Parse one protocol line into a [`Response`].
pub fn parse_response(line: &str) -> Result<Response, String> {
    serde_json::from_str(line.trim()).map_err(|e| format!("bad response line: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        let hex = encode_hex(&bytes);
        assert_eq!(decode_hex(&hex).unwrap(), bytes);
        assert_eq!(decode_hex(&hex.to_uppercase()).unwrap(), bytes);
        assert_eq!(encode_hex(&[]), "");
        assert_eq!(decode_hex("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn hex_rejects_garbage() {
        assert!(decode_hex("abc").is_err()); // odd length
        assert!(decode_hex("zz").is_err()); // not hex
    }

    #[test]
    fn requests_round_trip() {
        let requests = vec![
            Request::Score(ScoreRequest {
                id: 7,
                tenant: "acme".to_owned(),
                bytes_hex: encode_hex(b"MZ\x90\x00"),
                deadline_ms: Some(250),
            }),
            Request::Score(ScoreRequest {
                id: 8,
                tenant: "acme".to_owned(),
                bytes_hex: String::new(),
                deadline_ms: None,
            }),
            Request::Reload { id: 1 },
            Request::Stats { id: 2 },
            Request::Shutdown { id: 3 },
            Request::Ping { id: 4 },
        ];
        for req in requests {
            let line = serde_json::to_string(&req).unwrap();
            assert_eq!(parse_request(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn score_request_tolerates_missing_deadline_key() {
        let line = r#"{"Score":{"id":5,"tenant":"t","bytes_hex":"4d5a"}}"#;
        let req = parse_request(line).unwrap();
        assert_eq!(
            req,
            Request::Score(ScoreRequest {
                id: 5,
                tenant: "t".to_owned(),
                bytes_hex: "4d5a".to_owned(),
                deadline_ms: None,
            })
        );
    }

    #[test]
    fn responses_round_trip() {
        let responses = vec![
            Response::Score(ScoreResponse {
                id: 7,
                verdict: Verdict::Malicious,
                score: Some(0.93),
                epoch: 2,
                queued_us: 1800,
            }),
            Response::Score(ScoreResponse {
                id: 9,
                verdict: Verdict::Benign,
                score: None,
                epoch: 1,
                queued_us: 0,
            }),
            Response::Error(ErrorResponse {
                id: 1,
                error: ServeError::Overloaded { capacity: 64 },
            }),
            Response::Error(ErrorResponse { id: 2, error: ServeError::DeadlineExceeded }),
            Response::Error(ErrorResponse {
                id: 3,
                error: ServeError::RateLimited { retry_after_ms: 40 },
            }),
            Response::Error(ErrorResponse {
                id: 4,
                error: ServeError::BudgetExhausted { limit: 100 },
            }),
            Response::Error(ErrorResponse { id: 5, error: ServeError::CircuitOpen }),
            Response::Error(ErrorResponse {
                id: 6,
                error: ServeError::Upstream { fault: OracleFault::Transient },
            }),
            Response::Error(ErrorResponse { id: 7, error: ServeError::ShuttingDown }),
            Response::Error(ErrorResponse {
                id: 0,
                error: ServeError::BadRequest { reason: "nope".to_owned() },
            }),
            Response::Reloaded { id: 11, epoch: 3 },
            Response::Stats(StatsResponse {
                id: 12,
                admitted: 100,
                shed: 3,
                rejected: 9,
                completed: 97,
                client_gone: 1,
                reloads: 2,
                epoch: 3,
                p50_ms: 1.5,
                p99_ms: 9.25,
                throughput_rps: 480.0,
                uptime_ms: 2_000,
            }),
            Response::ShuttingDown { id: 13 },
            Response::Pong { id: 14, epoch: 1 },
        ];
        for resp in responses {
            let line = serde_json::to_string(&resp).unwrap();
            assert_eq!(parse_response(&line).unwrap(), resp, "{line}");
        }
    }

    #[test]
    fn parse_errors_are_reported_not_panicked() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"Unknown":{}}"#).is_err());
        assert!(parse_response("").is_err());
    }
}
