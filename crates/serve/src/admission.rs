//! Per-tenant admission control: token-bucket rate limiting, query
//! budgets, and circuit breakers.
//!
//! Every scoring request names a tenant; each tenant gets independent
//! state, so one misbehaving client degrades alone:
//!
//! * a **token bucket** ([`TenantPolicy::rate_per_sec`] /
//!   [`TenantPolicy::burst`]) smooths request rate and answers
//!   violations with a typed retry-after hint;
//! * a **query budget** reusing the `HardLabelTarget` semantics: only
//!   *delivered verdicts* consume budget — requests refused at
//!   admission or shed before scoring cost the tenant nothing;
//! * a **circuit breaker** (the engine's query-counted
//!   [`CircuitBreaker`]) that opens after consecutive bad outcomes
//!   (sheds, upstream faults), fails the tenant fast through a cooldown,
//!   then half-opens with a probe.

use mpass_engine::{CircuitBreaker, QueryBudget, RetryPolicy};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Admission limits applied to every tenant (per-tenant state, shared
/// policy).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantPolicy {
    /// Steady-state request rate per tenant, tokens per second.
    pub rate_per_sec: f64,
    /// Bucket depth: how many requests may burst above the rate.
    pub burst: u32,
    /// Delivered-verdict budget per tenant; `None` is unlimited.
    pub budget: Option<usize>,
    /// Consecutive failed outcomes that open the tenant's breaker;
    /// `0` disables the breaker.
    pub breaker_threshold: u32,
    /// Requests refused while the breaker is open before a half-open
    /// probe is allowed through.
    pub breaker_cooldown: u32,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            rate_per_sec: 200.0,
            burst: 50,
            budget: None,
            breaker_threshold: 8,
            breaker_cooldown: 16,
        }
    }
}

impl TenantPolicy {
    /// The breaker thresholds as the engine's [`RetryPolicy`] (the
    /// breaker's configuration carrier).
    fn retry(&self) -> RetryPolicy {
        RetryPolicy {
            breaker_threshold: self.breaker_threshold,
            breaker_cooldown: self.breaker_cooldown,
            ..RetryPolicy::none()
        }
    }
}

/// Why admission refused a request. Maps 1:1 onto the protocol's typed
/// refusals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// Token bucket empty; retry after the hint.
    RateLimited { retry_after_ms: u64 },
    /// The tenant's delivered-verdict budget is spent.
    BudgetExhausted { limit: usize },
    /// The tenant's breaker is open (cooldown in progress).
    CircuitOpen,
}

/// A classic token bucket, refilled continuously by wall-clock time.
#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    capacity: f64,
    rate_per_sec: f64,
    last_refill: Instant,
}

impl TokenBucket {
    fn new(rate_per_sec: f64, burst: u32, now: Instant) -> Self {
        let capacity = f64::from(burst.max(1));
        TokenBucket { tokens: capacity, capacity, rate_per_sec, last_refill: now }
    }

    /// Take one token, or report how long until one accrues.
    fn try_take(&mut self, now: Instant) -> Result<(), u64> {
        let elapsed = now.saturating_duration_since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed * self.rate_per_sec).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            return Ok(());
        }
        let deficit = 1.0 - self.tokens;
        let wait_ms = if self.rate_per_sec > 0.0 {
            (deficit / self.rate_per_sec * 1_000.0).ceil() as u64
        } else {
            u64::MAX
        };
        Err(wait_ms.max(1))
    }
}

struct TenantState {
    bucket: TokenBucket,
    budget: QueryBudget,
    breaker: CircuitBreaker,
}

/// Per-tenant admission state under one shared [`TenantPolicy`].
pub struct AdmissionControl {
    policy: TenantPolicy,
    retry: RetryPolicy,
    tenants: Mutex<HashMap<String, TenantState>>,
}

impl AdmissionControl {
    pub fn new(policy: TenantPolicy) -> Self {
        let retry = policy.retry();
        AdmissionControl { policy, retry, tenants: Mutex::new(HashMap::new()) }
    }

    /// The shared policy.
    pub fn policy(&self) -> &TenantPolicy {
        &self.policy
    }

    fn with_tenant<Out>(&self, tenant: &str, f: impl FnOnce(&mut TenantState) -> Out) -> Out {
        let mut tenants = self.tenants.lock().unwrap_or_else(|p| p.into_inner());
        let state = tenants.entry(tenant.to_owned()).or_insert_with(|| TenantState {
            bucket: TokenBucket::new(self.policy.rate_per_sec, self.policy.burst, Instant::now()),
            budget: match self.policy.budget {
                Some(limit) => QueryBudget::new(limit),
                None => QueryBudget::unlimited(),
            },
            breaker: CircuitBreaker::default(),
        });
        f(state)
    }

    /// Gate one request. Order matters: the breaker is consulted first
    /// (an open breaker's cooldown counts down on refused requests, per
    /// the engine's query-counted semantics), then the budget, then the
    /// bucket. A rate-limit refusal also counts as a failed outcome on
    /// the breaker, so a tenant hammering past its rate eventually trips
    /// its own breaker and fails fast without even costing bucket math.
    pub fn admit(&self, tenant: &str) -> Result<(), AdmissionError> {
        self.with_tenant(tenant, |state| {
            if !state.breaker.allows() {
                return Err(AdmissionError::CircuitOpen);
            }
            if state.budget.is_exhausted() {
                return Err(AdmissionError::BudgetExhausted { limit: state.budget.limit() });
            }
            match state.bucket.try_take(Instant::now()) {
                Ok(()) => Ok(()),
                Err(retry_after_ms) => {
                    state.breaker.record_failure(&self.retry);
                    Err(AdmissionError::RateLimited { retry_after_ms })
                }
            }
        })
    }

    /// Record a delivered verdict: consumes one budget query and counts
    /// as a success on the breaker. (Only delivered verdicts are
    /// metered — `HardLabelTarget` budget semantics.)
    pub fn record_delivered(&self, tenant: &str) {
        self.with_tenant(tenant, |state| {
            // Exhaustion here means a concurrent delivery raced past the
            // limit; the *next* admit refuses, which is bound enough.
            let _ = state.budget.try_consume();
            state.breaker.record_success();
        });
    }

    /// Record an admitted request that failed to deliver (shed, deadline,
    /// upstream fault): a failed outcome on the breaker, no budget cost.
    pub fn record_failed(&self, tenant: &str) {
        self.with_tenant(tenant, |state| {
            state.breaker.record_failure(&self.retry);
        });
    }

    /// Budget queries the tenant has left (`usize::MAX` when unlimited).
    pub fn budget_remaining(&self, tenant: &str) -> usize {
        self.with_tenant(tenant, |state| state.budget.remaining())
    }

    /// Whether the tenant's breaker is currently open.
    pub fn breaker_open(&self, tenant: &str) -> bool {
        self.with_tenant(tenant, |state| state.breaker.is_open())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bucket_allows_burst_then_rate_limits() {
        let now = Instant::now();
        let mut bucket = TokenBucket::new(10.0, 5, now);
        for _ in 0..5 {
            assert!(bucket.try_take(now).is_ok());
        }
        let wait = bucket.try_take(now).unwrap_err();
        // One token at 10/s accrues within 100 ms.
        assert!((1..=100).contains(&wait), "{wait}");
        // After enough simulated time, tokens are back (capped at burst).
        assert!(bucket.try_take(now + Duration::from_secs(60)).is_ok());
    }

    #[test]
    fn zero_rate_bucket_never_refills() {
        let now = Instant::now();
        let mut bucket = TokenBucket::new(0.0, 1, now);
        assert!(bucket.try_take(now).is_ok());
        assert!(bucket.try_take(now + Duration::from_secs(3600)).is_err());
    }

    #[test]
    fn tenants_are_isolated() {
        let ac = AdmissionControl::new(TenantPolicy {
            rate_per_sec: 0.0,
            burst: 2,
            ..TenantPolicy::default()
        });
        assert!(ac.admit("a").is_ok());
        assert!(ac.admit("a").is_ok());
        assert!(matches!(ac.admit("a"), Err(AdmissionError::RateLimited { .. })));
        // Tenant b has its own bucket.
        assert!(ac.admit("b").is_ok());
    }

    #[test]
    fn budget_meters_delivered_verdicts_only() {
        let ac = AdmissionControl::new(TenantPolicy {
            budget: Some(2),
            rate_per_sec: 1_000_000.0,
            burst: 1_000,
            breaker_threshold: 0,
            ..TenantPolicy::default()
        });
        // Admission alone never consumes budget.
        for _ in 0..10 {
            assert!(ac.admit("t").is_ok());
        }
        assert_eq!(ac.budget_remaining("t"), 2);
        // Failures cost nothing either.
        ac.record_failed("t");
        assert_eq!(ac.budget_remaining("t"), 2);
        // Delivered verdicts are the only meter.
        ac.record_delivered("t");
        ac.record_delivered("t");
        assert_eq!(ac.budget_remaining("t"), 0);
        assert_eq!(ac.admit("t"), Err(AdmissionError::BudgetExhausted { limit: 2 }));
    }

    #[test]
    fn abusive_tenant_trips_its_own_breaker() {
        let ac = AdmissionControl::new(TenantPolicy {
            rate_per_sec: 0.0,
            burst: 1,
            breaker_threshold: 3,
            breaker_cooldown: 5,
            ..TenantPolicy::default()
        });
        assert!(ac.admit("hog").is_ok()); // the one burst token
        // Three rate-limit refusals in a row trip the breaker...
        for _ in 0..3 {
            assert!(matches!(ac.admit("hog"), Err(AdmissionError::RateLimited { .. })));
        }
        assert!(ac.breaker_open("hog"));
        // ...after which refusals are breaker-fast, not bucket math.
        assert_eq!(ac.admit("hog"), Err(AdmissionError::CircuitOpen));
        // A well-behaved tenant is untouched.
        assert!(ac.admit("good").is_ok());
    }

    #[test]
    fn breaker_recovers_after_cooldown_and_success() {
        let ac = AdmissionControl::new(TenantPolicy {
            rate_per_sec: 1_000_000.0,
            burst: 1_000,
            breaker_threshold: 2,
            breaker_cooldown: 2,
            ..TenantPolicy::default()
        });
        ac.record_failed("t");
        ac.record_failed("t"); // trips
        assert_eq!(ac.admit("t"), Err(AdmissionError::CircuitOpen));
        assert_eq!(ac.admit("t"), Err(AdmissionError::CircuitOpen));
        // Half-open probe admitted; success closes the breaker.
        assert!(ac.admit("t").is_ok());
        ac.record_delivered("t");
        assert!(ac.admit("t").is_ok());
        assert!(!ac.breaker_open("t"));
    }
}
