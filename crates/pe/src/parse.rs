//! Parsing a PE image from raw bytes.

use crate::error::PeError;
use crate::headers::{CoffHeader, DosHeader, OptionalHeader, PE_SIGNATURE};
use crate::section::{Section, SectionHeader, SECTION_HEADER_SIZE};
use crate::PeFile;

impl PeFile {
    /// Parse a PE image from its on-disk bytes.
    ///
    /// Parsing is strict about the structures the loader needs (magics,
    /// alignments, in-bounds section table) and tolerant about everything
    /// else, mirroring the Windows loader. Bytes past the end of the last
    /// section's raw data are captured as the overlay.
    ///
    /// # Errors
    ///
    /// Returns [`PeError`] when the image is truncated, a magic value
    /// mismatches, or a header field is malformed.
    ///
    /// ```
    /// # fn main() -> Result<(), mpass_pe::PeError> {
    /// let mut b = mpass_pe::PeBuilder::new();
    /// b.add_section(".text", vec![0x90; 16], mpass_pe::SectionFlags::CODE)?;
    /// let original = b.build()?;
    /// let parsed = mpass_pe::PeFile::parse(&original.to_bytes())?;
    /// assert_eq!(parsed, original);
    /// # Ok(())
    /// # }
    /// ```
    pub fn parse(bytes: &[u8]) -> Result<PeFile, PeError> {
        let dos = DosHeader::parse(bytes)?;
        let sig_at = dos.e_lfanew as usize;
        let sig = bytes.get(sig_at..sig_at + 4).ok_or(PeError::Truncated {
            context: "pe signature",
            needed: sig_at + 4,
            available: bytes.len(),
        })?;
        if sig != PE_SIGNATURE {
            return Err(PeError::BadMagic {
                context: "pe signature",
                found: u32::from_le_bytes([sig[0], sig[1], sig[2], sig[3]]),
            });
        }
        let coff_at = sig_at + 4;
        let coff = CoffHeader::parse(bytes, coff_at)?;
        let opt_at = coff_at + CoffHeader::SIZE;
        let optional = OptionalHeader::parse(bytes, opt_at)?;

        let table_at = opt_at + coff.size_of_optional_header as usize;
        let n_sections = coff.number_of_sections as usize;
        let mut sections = Vec::with_capacity(n_sections);
        let mut raw_end = optional.size_of_headers as usize;
        for i in 0..n_sections {
            let header = SectionHeader::parse(bytes, table_at + i * SECTION_HEADER_SIZE)?;
            let start = header.pointer_to_raw_data as usize;
            let len = header.size_of_raw_data as usize;
            let data = if len == 0 {
                Vec::new()
            } else {
                bytes
                    .get(start..start + len)
                    .ok_or(PeError::Truncated {
                        context: "section raw data",
                        needed: start + len,
                        available: bytes.len(),
                    })?
                    .to_vec()
            };
            raw_end = raw_end.max(start + len);
            sections.push(Section::new(header, data));
        }
        let overlay = bytes.get(raw_end..).map(<[u8]>::to_vec).unwrap_or_default();
        Ok(PeFile { dos, coff, optional, sections, overlay })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PeBuilder, SectionFlags};

    fn build() -> PeFile {
        let mut b = PeBuilder::new();
        b.add_section(".text", (0..200u16).map(|i| i as u8).collect(), SectionFlags::CODE)
            .unwrap();
        b.add_section(".data", vec![0x11; 80], SectionFlags::DATA).unwrap();
        b.add_section(".rsrc", vec![0x22; 40], SectionFlags::RSRC).unwrap();
        b.set_entry_section(".text", 0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn round_trip_equality() {
        let pe = build();
        let bytes = pe.to_bytes();
        let pe2 = PeFile::parse(&bytes).unwrap();
        assert_eq!(pe, pe2);
        assert_eq!(pe2.to_bytes(), bytes);
    }

    #[test]
    fn overlay_preserved() {
        let mut pe = build();
        pe.append_overlay(b"OVERLAYDATA");
        let pe2 = PeFile::parse(&pe.to_bytes()).unwrap();
        assert_eq!(pe2.overlay(), b"OVERLAYDATA");
    }

    #[test]
    fn empty_input_fails() {
        assert!(matches!(PeFile::parse(&[]), Err(PeError::Truncated { .. })));
    }

    #[test]
    fn non_mz_fails() {
        assert!(matches!(
            PeFile::parse(&[0u8; 512]),
            Err(PeError::BadMagic { context: "dos header", .. })
        ));
    }

    #[test]
    fn corrupted_signature_fails() {
        let pe = build();
        let mut bytes = pe.to_bytes();
        let at = pe.dos().e_lfanew as usize;
        bytes[at] = b'X';
        assert!(matches!(
            PeFile::parse(&bytes),
            Err(PeError::BadMagic { context: "pe signature", .. })
        ));
    }

    #[test]
    fn truncated_section_data_fails() {
        let pe = build();
        let bytes = pe.to_bytes();
        let cut = pe.optional().size_of_headers as usize + 10;
        assert!(matches!(
            PeFile::parse(&bytes[..cut]),
            Err(PeError::Truncated { context: "section raw data", .. })
        ));
    }

    #[test]
    fn section_count_matches_header() {
        let pe = build();
        assert_eq!(pe.coff().number_of_sections as usize, pe.sections().len());
    }
}
