//! Parsing a PE image from raw bytes.

use crate::error::PeError;
use crate::headers::{CoffHeader, DosHeader, OptionalHeader, PE_SIGNATURE};
use crate::section::{Section, SectionHeader, SECTION_HEADER_SIZE};
use crate::PeFile;

// How much structural validation parsing applies beyond what the loader
// itself needs. The mode vocabulary is shared across container backends
// (the Mach-O substrate honors the same two levels), so the enum lives in
// the format-neutral layer; re-exported here for existing paths.
pub use mpass_binfmt::ParseMode;

impl PeFile {
    /// Parse a PE image from its on-disk bytes.
    ///
    /// Parsing is strict about the structures the loader needs (magics,
    /// alignments, in-bounds section table) and tolerant about everything
    /// else, mirroring the Windows loader. Bytes past the end of the last
    /// section's raw data are captured as the overlay.
    ///
    /// # Errors
    ///
    /// Returns [`PeError`] when the image is truncated, a magic value
    /// mismatches, or a header field is malformed.
    ///
    /// ```
    /// # fn main() -> Result<(), mpass_pe::PeError> {
    /// let mut b = mpass_pe::PeBuilder::new();
    /// b.add_section(".text", vec![0x90; 16], mpass_pe::SectionFlags::CODE)?;
    /// let original = b.build()?;
    /// let parsed = mpass_pe::PeFile::parse(&original.to_bytes())?;
    /// assert_eq!(parsed, original);
    /// # Ok(())
    /// # }
    /// ```
    pub fn parse(bytes: &[u8]) -> Result<PeFile, PeError> {
        Self::parse_with(bytes, ParseMode::LoaderTolerant)
    }

    /// Parse with [`ParseMode::Strict`] validation. Shorthand for
    /// [`PeFile::parse_with`].
    ///
    /// # Errors
    ///
    /// Everything [`PeFile::parse`] rejects, plus [`PeError::Malformed`]
    /// for the structural anomalies listed on [`ParseMode::Strict`].
    pub fn parse_strict(bytes: &[u8]) -> Result<PeFile, PeError> {
        Self::parse_with(bytes, ParseMode::Strict)
    }

    /// Parse a PE image under an explicit [`ParseMode`].
    ///
    /// # Errors
    ///
    /// Returns [`PeError`] when the image is truncated, a magic value
    /// mismatches, a header field is malformed, or (in strict mode) a
    /// structural invariant is violated.
    pub fn parse_with(bytes: &[u8], mode: ParseMode) -> Result<PeFile, PeError> {
        let dos = DosHeader::parse(bytes)?;
        let sig_at = dos.e_lfanew as usize;
        let sig = bytes.get(sig_at..sig_at + 4).ok_or(PeError::Truncated {
            context: "pe signature",
            needed: sig_at + 4,
            available: bytes.len(),
        })?;
        if sig != PE_SIGNATURE {
            return Err(PeError::BadMagic {
                context: "pe signature",
                found: u32::from_le_bytes([sig[0], sig[1], sig[2], sig[3]]),
            });
        }
        let coff_at = sig_at + 4;
        let coff = CoffHeader::parse(bytes, coff_at)?;
        let opt_at = coff_at + CoffHeader::SIZE;
        let optional = OptionalHeader::parse(bytes, opt_at)?;

        // Serialization-faithfulness invariants, enforced in every mode:
        // anything accepted here must re-serialize to an image that parses
        // back equal (the round-trip contract the AE gate and the fuzz
        // harness rely on). The writer only emits the PE32 dialect with a
        // full optional header, and places the overlay after the last data
        // byte, so inputs outside that shape cannot round-trip.
        if coff.size_of_optional_header as usize != crate::OPTIONAL_HEADER_SIZE {
            return Err(PeError::Malformed(format!(
                "size_of_optional_header {} (the PE32 dialect requires {})",
                coff.size_of_optional_header,
                crate::OPTIONAL_HEADER_SIZE
            )));
        }
        if optional.size_of_headers as u64 > bytes.len() as u64 {
            return Err(PeError::Malformed(format!(
                "size_of_headers {:#x} past the file end ({:#x} bytes)",
                optional.size_of_headers,
                bytes.len()
            )));
        }

        let table_at = opt_at + coff.size_of_optional_header as usize;
        let n_sections = coff.number_of_sections as usize;
        let mut sections = Vec::with_capacity(n_sections);
        let mut raw_end = optional.size_of_headers as usize;
        for i in 0..n_sections {
            let header = SectionHeader::parse(bytes, table_at + i * SECTION_HEADER_SIZE)?;
            let start = header.pointer_to_raw_data as usize;
            let len = header.size_of_raw_data as usize;
            let data = if len == 0 {
                Vec::new()
            } else {
                bytes
                    .get(start..start + len)
                    .ok_or(PeError::Truncated {
                        context: "section raw data",
                        needed: start + len,
                        available: bytes.len(),
                    })?
                    .to_vec()
            };
            // Zero-size sections store no bytes and are skipped by
            // `to_bytes`, so their (possibly hostile) raw pointer must not
            // drag the overlay anchor: the anchor has to land exactly where
            // serialization will end, or the overlay drifts on round trip.
            if len > 0 {
                raw_end = raw_end.max(start + len);
            }
            sections.push(Section::new(header, data));
        }
        // The overlay starts where the declared data region ends; if the
        // headers themselves spill past it, re-serialization would push the
        // overlay to a different offset and the round trip breaks.
        let table_end = table_at + n_sections * SECTION_HEADER_SIZE;
        if table_end > raw_end {
            return Err(PeError::Malformed(format!(
                "section table ends at {table_end:#x}, past the declared data \
                 region ({raw_end:#x})"
            )));
        }
        let overlay = bytes.get(raw_end..).map(<[u8]>::to_vec).unwrap_or_default();
        let pe = PeFile { dos, coff, optional, sections, overlay };
        if mode == ParseMode::Strict {
            validate_strict(&pe, bytes.len(), table_at)?;
        }
        Ok(pe)
    }
}

/// The additional invariants [`ParseMode::Strict`] enforces. All arithmetic
/// is performed in 64 bits so hostile 32-bit fields cannot overflow the
/// checks themselves.
fn validate_strict(pe: &PeFile, file_len: usize, table_at: usize) -> Result<(), PeError> {
    let table_end = table_at + pe.sections.len() * SECTION_HEADER_SIZE;
    if table_end > pe.optional.size_of_headers as usize {
        return Err(PeError::Malformed(format!(
            "section table ends at {table_end:#x}, past size_of_headers {:#x}",
            pe.optional.size_of_headers
        )));
    }
    let mut raw_spans: Vec<(u64, u64, String)> = Vec::with_capacity(pe.sections.len());
    for s in &pe.sections {
        let h = s.header();
        let name = s.name();
        let raw_start = h.pointer_to_raw_data as u64;
        let raw_len = h.size_of_raw_data as u64;
        if raw_len == 0 && raw_start as usize > file_len {
            return Err(PeError::Malformed(format!(
                "zero-size section {name:?} points at {raw_start:#x}, past the file end"
            )));
        }
        if h.virtual_address as u64 + (h.virtual_size.max(h.size_of_raw_data)) as u64
            > u32::MAX as u64
        {
            return Err(PeError::Malformed(format!(
                "section {name:?} virtual extent overflows the 32-bit address space"
            )));
        }
        if h.virtual_address as u64 + (h.virtual_size.max(h.size_of_raw_data).max(1)) as u64
            > pe.optional.size_of_image as u64
        {
            return Err(PeError::Malformed(format!(
                "section {name:?} extends past size_of_image {:#x}",
                pe.optional.size_of_image
            )));
        }
        if raw_len > 0 {
            raw_spans.push((raw_start, raw_start + raw_len, name));
        }
    }
    raw_spans.sort_by_key(|&(start, _, _)| start);
    for pair in raw_spans.windows(2) {
        let (_, prev_end, ref prev_name) = pair[0];
        let (next_start, _, ref next_name) = pair[1];
        if next_start < prev_end {
            return Err(PeError::Malformed(format!(
                "raw data of {next_name:?} overlaps {prev_name:?}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PeBuilder, SectionFlags};

    fn build() -> PeFile {
        let mut b = PeBuilder::new();
        b.add_section(".text", (0..200u16).map(|i| i as u8).collect(), SectionFlags::CODE)
            .unwrap();
        b.add_section(".data", vec![0x11; 80], SectionFlags::DATA).unwrap();
        b.add_section(".rsrc", vec![0x22; 40], SectionFlags::RSRC).unwrap();
        b.set_entry_section(".text", 0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn round_trip_equality() {
        let pe = build();
        let bytes = pe.to_bytes();
        let pe2 = PeFile::parse(&bytes).unwrap();
        assert_eq!(pe, pe2);
        assert_eq!(pe2.to_bytes(), bytes);
    }

    #[test]
    fn overlay_preserved() {
        let mut pe = build();
        pe.append_overlay(b"OVERLAYDATA");
        let pe2 = PeFile::parse(&pe.to_bytes()).unwrap();
        assert_eq!(pe2.overlay(), b"OVERLAYDATA");
    }

    #[test]
    fn empty_input_fails() {
        assert!(matches!(PeFile::parse(&[]), Err(PeError::Truncated { .. })));
    }

    #[test]
    fn non_mz_fails() {
        assert!(matches!(
            PeFile::parse(&[0u8; 512]),
            Err(PeError::BadMagic { context: "dos header", .. })
        ));
    }

    #[test]
    fn corrupted_signature_fails() {
        let pe = build();
        let mut bytes = pe.to_bytes();
        let at = pe.dos().e_lfanew as usize;
        bytes[at] = b'X';
        assert!(matches!(
            PeFile::parse(&bytes),
            Err(PeError::BadMagic { context: "pe signature", .. })
        ));
    }

    #[test]
    fn truncated_section_data_fails() {
        let pe = build();
        let bytes = pe.to_bytes();
        let cut = pe.optional().size_of_headers as usize + 10;
        assert!(matches!(
            PeFile::parse(&bytes[..cut]),
            Err(PeError::Truncated { context: "section raw data", .. })
        ));
    }

    #[test]
    fn section_count_matches_header() {
        let pe = build();
        assert_eq!(pe.coff().number_of_sections as usize, pe.sections().len());
    }

    #[test]
    fn tolerant_rejects_wrong_optional_header_size() {
        let pe = build();
        let mut bytes = pe.to_bytes();
        let coff_at = pe.dos().e_lfanew as usize + 4;
        // size_of_optional_header lives 16 bytes into the COFF header.
        bytes[coff_at + 16..coff_at + 18].copy_from_slice(&0x00F0u16.to_le_bytes());
        assert!(matches!(PeFile::parse(&bytes), Err(PeError::Malformed(_))));
    }

    #[test]
    fn tolerant_rejects_size_of_headers_past_file_end() {
        let pe = build();
        let mut bytes = pe.to_bytes();
        let opt_at = pe.dos().e_lfanew as usize + 4 + CoffHeader::SIZE;
        bytes[opt_at + 60..opt_at + 64].copy_from_slice(&0xFFFF_FF00u32.to_le_bytes());
        assert!(matches!(PeFile::parse(&bytes), Err(PeError::Malformed(_))));
    }

    #[test]
    fn tolerant_rejects_headers_spilling_past_data_region() {
        let pe = build();
        let mut bytes = pe.to_bytes();
        let opt_at = pe.dos().e_lfanew as usize + 4 + CoffHeader::SIZE;
        // Shrink size_of_headers below the section table's end while also
        // zeroing every section's raw extent, so nothing covers the
        // headers: the overlay anchor would drift on re-serialization.
        bytes[opt_at + 60..opt_at + 64].copy_from_slice(&0u32.to_le_bytes());
        let table_at = opt_at + pe.coff().size_of_optional_header as usize;
        for i in 0..pe.sections().len() {
            let entry = table_at + i * SECTION_HEADER_SIZE;
            bytes[entry + 16..entry + 24].copy_from_slice(&[0u8; 8]);
        }
        assert!(matches!(PeFile::parse(&bytes), Err(PeError::Malformed(_))));
    }

    #[test]
    fn strict_accepts_well_formed_images() {
        let pe = build();
        assert_eq!(PeFile::parse_strict(&pe.to_bytes()).unwrap(), pe);
    }

    #[test]
    fn strict_rejects_zero_size_section_pointing_past_file() {
        let mut pe = build();
        pe.sections[0].header.size_of_raw_data = 0;
        pe.sections[0].header.pointer_to_raw_data = 0xFFF0_0000;
        pe.sections[0].data.clear();
        let bytes = pe.to_bytes();
        // Loader-tolerant parsing still accepts it...
        PeFile::parse(&bytes).unwrap();
        // ...strict parsing names the anomaly.
        assert!(matches!(PeFile::parse_strict(&bytes), Err(PeError::Malformed(_))));
    }

    #[test]
    fn strict_rejects_virtual_extent_overflow() {
        let mut pe = build();
        pe.sections[2].header.virtual_address = 0xFFFF_F000;
        pe.sections[2].header.virtual_size = 0x2000;
        let bytes = pe.to_bytes();
        PeFile::parse(&bytes).unwrap();
        assert!(matches!(PeFile::parse_strict(&bytes), Err(PeError::Malformed(_))));
    }

    #[test]
    fn strict_rejects_overlapping_raw_data() {
        let mut pe = build();
        pe.sections[1].header.pointer_to_raw_data = pe.sections[0].header.pointer_to_raw_data;
        let bytes = pe.to_bytes();
        PeFile::parse(&bytes).unwrap();
        assert!(matches!(PeFile::parse_strict(&bytes), Err(PeError::Malformed(_))));
    }

    #[test]
    fn strict_rejects_section_past_size_of_image() {
        let mut pe = build();
        pe.optional.size_of_image = pe.sections[0].header.virtual_address;
        let bytes = pe.to_bytes();
        PeFile::parse(&bytes).unwrap();
        assert!(matches!(PeFile::parse_strict(&bytes), Err(PeError::Malformed(_))));
    }
}
