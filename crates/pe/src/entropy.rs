//! Byte-statistics utilities shared by detectors and the corpus generator.

/// Shannon entropy of a byte slice, in bits per byte (0.0..=8.0).
///
/// An empty slice has entropy 0 by convention.
///
/// ```
/// let uniform: Vec<u8> = (0..=255).collect();
/// assert!((mpass_pe::entropy(&uniform) - 8.0).abs() < 1e-9);
/// assert_eq!(mpass_pe::entropy(&[7u8; 1024]), 0.0);
/// ```
pub fn entropy(bytes: &[u8]) -> f64 {
    if bytes.is_empty() {
        return 0.0;
    }
    let hist = byte_histogram(bytes);
    let n = bytes.len() as f64;
    let mut h = 0.0;
    for &count in hist.iter() {
        if count > 0 {
            let p = count as f64 / n;
            h -= p * p.log2();
        }
    }
    h
}

/// Counts of each byte value.
pub fn byte_histogram(bytes: &[u8]) -> [u64; 256] {
    let mut hist = [0u64; 256];
    for &b in bytes {
        hist[b as usize] += 1;
    }
    hist
}

/// Entropy computed over fixed-size windows; the tail window may be short
/// but never empty. Returns one entropy value per window.
///
/// Used by detector feature extractors to spot localized high-entropy
/// regions (packed/encrypted payloads).
pub fn window_entropy(bytes: &[u8], window: usize) -> Vec<f64> {
    let mut out = Vec::new();
    window_entropy_into(bytes, window, &mut out);
    out
}

/// [`window_entropy`] into a reused buffer (cleared first): batched
/// feature extraction calls this once per candidate, and recycling the
/// buffer keeps that loop allocation-free.
pub fn window_entropy_into(bytes: &[u8], window: usize, out: &mut Vec<f64>) {
    assert!(window > 0, "window must be positive");
    out.clear();
    out.extend(bytes.chunks(window).map(entropy));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(entropy(&[]), 0.0);
    }

    #[test]
    fn constant_is_zero() {
        assert_eq!(entropy(&[0xAB; 4096]), 0.0);
    }

    #[test]
    fn uniform_is_eight() {
        let data: Vec<u8> = (0..4096).map(|i| (i % 256) as u8).collect();
        assert!((entropy(&data) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn two_symbols_is_one_bit() {
        let data: Vec<u8> = (0..1000).map(|i| (i % 2) as u8).collect();
        assert!((entropy(&data) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn entropy_bounded() {
        let data = b"hello world, some text with structure".repeat(4);
        let h = entropy(&data);
        assert!(h > 0.0 && h < 8.0);
    }

    #[test]
    fn histogram_counts() {
        let hist = byte_histogram(&[1, 1, 2, 255]);
        assert_eq!(hist[1], 2);
        assert_eq!(hist[2], 1);
        assert_eq!(hist[255], 1);
        assert_eq!(hist[0], 0);
    }

    #[test]
    fn window_entropy_covers_tail() {
        let data = vec![0u8; 1000];
        let w = window_entropy(&data, 256);
        assert_eq!(w.len(), 4); // 256,256,256,232
        assert!(w.iter().all(|&e| e == 0.0));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn window_zero_panics() {
        window_entropy(&[1, 2, 3], 0);
    }
}
