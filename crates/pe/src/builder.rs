//! Construction of fresh PE images.

use crate::error::PeError;
use crate::headers::{CoffHeader, DosHeader, OptionalHeader};
use crate::section::{Section, SectionFlags, SectionHeader};
use crate::PeFile;

/// Builder for a PE executable assembled from named sections.
///
/// Section raw addresses, virtual addresses, image sizes and alignment are
/// computed by [`PeBuilder::build`]; callers only provide content.
///
/// ```
/// use mpass_pe::{PeBuilder, SectionFlags};
/// # fn main() -> Result<(), mpass_pe::PeError> {
/// let mut b = PeBuilder::new();
/// b.add_section(".text", vec![0x90; 32], SectionFlags::CODE)?;
/// b.set_entry_section(".text", 0)?;
/// b.set_timestamp(0x600D_CAFE);
/// let pe = b.build()?;
/// assert_eq!(pe.coff().time_date_stamp, 0x600D_CAFE);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PeBuilder {
    sections: Vec<(String, Vec<u8>, SectionFlags)>,
    entry: Option<(String, u32)>,
    timestamp: Option<u32>,
    subsystem: Option<u16>,
    image_base: Option<u32>,
    header_slack_sections: usize,
}

impl Default for PeBuilder {
    fn default() -> Self {
        PeBuilder {
            sections: Vec::new(),
            entry: None,
            timestamp: None,
            subsystem: None,
            image_base: None,
            header_slack_sections: 4,
        }
    }
}

impl PeBuilder {
    /// Create an empty builder. The built image reserves header slack for
    /// four additional section headers, matching typical linker output; use
    /// [`PeBuilder::set_header_slack`] to change this.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve header room for `sections` extra section headers. A value of
    /// zero produces an image on which [`crate::PeFile::add_section`] fails
    /// with [`PeError::NoHeaderSpace`] — the condition under which MPass
    /// falls back to overlay appending.
    pub fn set_header_slack(&mut self, sections: usize) -> &mut Self {
        self.header_slack_sections = sections;
        self
    }

    /// Append a section with `name`, raw `data` and characteristic `flags`.
    ///
    /// # Errors
    ///
    /// [`PeError::NameTooLong`] when `name` exceeds 8 bytes,
    /// [`PeError::DuplicateSection`] when a section with that name was
    /// already added.
    pub fn add_section(
        &mut self,
        name: &str,
        data: Vec<u8>,
        flags: SectionFlags,
    ) -> Result<&mut Self, PeError> {
        SectionHeader::encode_name(name)?;
        if self.sections.iter().any(|(n, _, _)| n == name) {
            return Err(PeError::DuplicateSection(name.to_owned()));
        }
        self.sections.push((name.to_owned(), data, flags));
        Ok(self)
    }

    /// Place the entry point `offset` bytes into section `name`.
    ///
    /// # Errors
    ///
    /// [`PeError::MissingSection`] when no such section has been added.
    pub fn set_entry_section(&mut self, name: &str, offset: u32) -> Result<&mut Self, PeError> {
        if !self.sections.iter().any(|(n, _, _)| n == name) {
            return Err(PeError::MissingSection(name.to_owned()));
        }
        self.entry = Some((name.to_owned(), offset));
        Ok(self)
    }

    /// Override the COFF timestamp.
    pub fn set_timestamp(&mut self, ts: u32) -> &mut Self {
        self.timestamp = Some(ts);
        self
    }

    /// Override the subsystem field.
    pub fn set_subsystem(&mut self, subsystem: u16) -> &mut Self {
        self.subsystem = Some(subsystem);
        self
    }

    /// Override the preferred image base.
    pub fn set_image_base(&mut self, base: u32) -> &mut Self {
        self.image_base = Some(base);
        self
    }

    /// Assemble the [`PeFile`], computing the full layout.
    ///
    /// # Errors
    ///
    /// [`PeError::InvalidHeader`] when no sections were added (an image
    /// without sections cannot carry an entry point).
    pub fn build(&self) -> Result<PeFile, PeError> {
        if self.sections.is_empty() {
            return Err(PeError::InvalidHeader {
                field: "number_of_sections",
                reason: "an image needs at least one section".into(),
            });
        }
        let mut coff = CoffHeader::default();
        if let Some(ts) = self.timestamp {
            coff.time_date_stamp = ts;
        }
        let mut optional = OptionalHeader::default();
        if let Some(ss) = self.subsystem {
            optional.subsystem = ss;
        }
        if let Some(base) = self.image_base {
            optional.image_base = base;
        }
        let mut sections = Vec::with_capacity(self.sections.len());
        for (name, data, flags) in &self.sections {
            let header = SectionHeader {
                // Already validated in add_section; re-propagating keeps
                // build() total without a reachable panic path.
                name: SectionHeader::encode_name(name)?,
                virtual_size: data.len() as u32,
                virtual_address: 0,
                size_of_raw_data: 0,
                pointer_to_raw_data: 0,
                pointer_to_relocations: 0,
                pointer_to_linenumbers: 0,
                number_of_relocations: 0,
                number_of_linenumbers: 0,
                characteristics: *flags,
            };
            sections.push(Section::new(header, data.clone()));
        }
        let mut pe = PeFile {
            dos: DosHeader::minimal(),
            coff,
            optional,
            sections,
            overlay: Vec::new(),
        };
        pe.optional.size_of_headers = u32::try_from(
            pe.header_size()
                + self.header_slack_sections * crate::section::SECTION_HEADER_SIZE,
        )
        .map_err(|_| PeError::Malformed("header region overflows u32".into()))?;
        pe.refresh_layout();
        if let Some((name, offset)) = &self.entry {
            let base = pe
                .section(name)
                .map(|s| s.header().virtual_address)
                .ok_or_else(|| PeError::MissingSection(name.clone()))?;
            let rva = base.checked_add(*offset).ok_or_else(|| {
                PeError::Malformed(format!("entry offset {offset:#x} overflows the rva space"))
            })?;
            pe.optional.address_of_entry_point = rva;
        } else {
            // Default: first byte of the first code section, if any.
            if let Some(s) = pe.sections.iter().find(|s| s.header().characteristics.is_code()) {
                pe.optional.address_of_entry_point = s.header().virtual_address;
            }
        }
        pe.update_checksum();
        Ok(pe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PeFile;

    #[test]
    fn build_minimal() {
        let mut b = PeBuilder::new();
        b.add_section(".text", vec![1, 2, 3], SectionFlags::CODE).unwrap();
        let pe = b.build().unwrap();
        assert_eq!(pe.sections().len(), 1);
        assert_eq!(pe.entry_point(), pe.section(".text").unwrap().header().virtual_address);
    }

    #[test]
    fn empty_builder_fails() {
        assert!(PeBuilder::new().build().is_err());
    }

    #[test]
    fn duplicate_section_rejected() {
        let mut b = PeBuilder::new();
        b.add_section(".text", vec![], SectionFlags::CODE).unwrap();
        assert!(matches!(
            b.add_section(".text", vec![], SectionFlags::CODE),
            Err(PeError::DuplicateSection(_))
        ));
    }

    #[test]
    fn entry_into_missing_section_rejected() {
        let mut b = PeBuilder::new();
        b.add_section(".text", vec![0; 4], SectionFlags::CODE).unwrap();
        assert!(matches!(b.set_entry_section(".nope", 0), Err(PeError::MissingSection(_))));
    }

    #[test]
    fn builder_output_parses() {
        let mut b = PeBuilder::new();
        b.add_section(".text", vec![0xCC; 1000], SectionFlags::CODE).unwrap();
        b.add_section(".data", vec![0x55; 2000], SectionFlags::DATA).unwrap();
        b.add_section(".rsrc", vec![0xAA; 300], SectionFlags::RSRC).unwrap();
        b.set_entry_section(".text", 16).unwrap();
        let pe = b.build().unwrap();
        let pe2 = PeFile::parse(&pe.to_bytes()).unwrap();
        assert_eq!(pe, pe2);
    }

    #[test]
    fn default_slack_allows_adding_sections() {
        let mut b = PeBuilder::new();
        b.add_section(".text", vec![0; 64], SectionFlags::CODE).unwrap();
        let mut pe = b.build().unwrap();
        assert!(pe.can_add_section());
        pe.add_section(".new", vec![1; 32], SectionFlags::DATA).unwrap();
        assert_eq!(PeFile::parse(&pe.to_bytes()).unwrap(), pe);
    }

    #[test]
    fn zero_slack_blocks_adding_sections() {
        // With zero slack the header region is exactly full once aligned
        // space is consumed; craft enough sections to exhaust the alignment
        // padding as well.
        let mut b = PeBuilder::new();
        b.set_header_slack(0);
        for i in 0..16 {
            b.add_section(&format!(".s{i}"), vec![0; 8], SectionFlags::DATA).unwrap();
        }
        let mut pe = b.build().unwrap();
        assert!(!pe.can_add_section());
        assert!(matches!(
            pe.add_section(".x", vec![0; 8], SectionFlags::DATA),
            Err(PeError::NoHeaderSpace)
        ));
    }

    #[test]
    fn overrides_apply() {
        let mut b = PeBuilder::new();
        b.add_section(".text", vec![0; 4], SectionFlags::CODE).unwrap();
        b.set_timestamp(123).set_subsystem(2).set_image_base(0x1000_0000);
        let pe = b.build().unwrap();
        assert_eq!(pe.coff().time_date_stamp, 123);
        assert_eq!(pe.optional().subsystem, 2);
        assert_eq!(pe.optional().image_base, 0x1000_0000);
    }
}
