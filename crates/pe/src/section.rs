//! Section table entries, section flags, and the semantic section kinds the
//! problem-space explainability method (PEM) reasons over.

use crate::error::PeError;
use crate::headers::{put_u32, read_u32};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialized size of one section header.
pub const SECTION_HEADER_SIZE: usize = 40;

/// Section characteristic flags (`IMAGE_SCN_*`), exposed as plain constants
/// on a newtype so arbitrary flag combinations remain representable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SectionFlags(pub u32);

impl SectionFlags {
    /// `IMAGE_SCN_CNT_CODE | MEM_EXECUTE | MEM_READ`.
    pub const CODE: SectionFlags = SectionFlags(0x6000_0020);
    /// `IMAGE_SCN_CNT_INITIALIZED_DATA | MEM_READ | MEM_WRITE`.
    pub const DATA: SectionFlags = SectionFlags(0xC000_0040);
    /// `IMAGE_SCN_CNT_INITIALIZED_DATA | MEM_READ` (read-only data).
    pub const RDATA: SectionFlags = SectionFlags(0x4000_0040);
    /// Resource section flags.
    pub const RSRC: SectionFlags = SectionFlags(0x4000_0040);
    /// `IMAGE_SCN_CNT_UNINITIALIZED_DATA | MEM_READ | MEM_WRITE`.
    pub const BSS: SectionFlags = SectionFlags(0xC000_0080);

    /// Whether the code-content bit is set.
    pub fn is_code(self) -> bool {
        self.0 & 0x0000_0020 != 0
    }

    /// Whether the initialized-data bit is set.
    pub fn is_initialized_data(self) -> bool {
        self.0 & 0x0000_0040 != 0
    }

    /// Whether the executable-memory bit is set.
    pub fn is_executable(self) -> bool {
        self.0 & 0x2000_0000 != 0
    }

    /// Whether the writable-memory bit is set.
    pub fn is_writable(self) -> bool {
        self.0 & 0x8000_0000 != 0
    }
}

impl fmt::LowerHex for SectionFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

// The semantic section-kind vocabulary now lives in the format-neutral
// layer (PEM and the feature extractor reason over it for every container
// format); re-exported here so existing `mpass_pe::SectionKind` paths keep
// working.
pub use mpass_binfmt::SectionKind;
use mpass_binfmt::SectionTraits;

impl SectionFlags {
    /// The format-neutral permission traits these characteristics encode,
    /// used as the classification fallback for unconventional names.
    pub fn traits(self) -> SectionTraits {
        SectionTraits {
            code: self.is_code() || self.is_executable(),
            uninitialized: self.0 & 0x0000_0080 != 0,
            initialized_data: self.is_initialized_data(),
            writable: self.is_writable(),
        }
    }
}

/// Classify a PE section by conventional name first, falling back to its
/// characteristics (previously `SectionKind::classify`).
pub fn classify_section(name: &str, flags: SectionFlags) -> SectionKind {
    match name {
        ".text" | ".code" | "CODE" => SectionKind::Code,
        ".data" | "DATA" => SectionKind::Data,
        ".rdata" => SectionKind::ReadOnlyData,
        ".rsrc" => SectionKind::Resource,
        ".reloc" => SectionKind::Relocation,
        ".idata" => SectionKind::Import,
        ".bss" => SectionKind::Bss,
        ".tls" => SectionKind::Tls,
        _ => SectionKind::from_traits(flags.traits()),
    }
}

/// One entry of the section table (`IMAGE_SECTION_HEADER`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SectionHeader {
    /// Raw 8-byte name, NUL padded.
    pub name: [u8; 8],
    /// Size of the section when mapped (may exceed raw size).
    pub virtual_size: u32,
    /// RVA the section is mapped at.
    pub virtual_address: u32,
    /// Size of the raw data on disk (file-aligned).
    pub size_of_raw_data: u32,
    /// File offset of the raw data.
    pub pointer_to_raw_data: u32,
    /// Deprecated relocation pointer.
    pub pointer_to_relocations: u32,
    /// Deprecated line-number pointer.
    pub pointer_to_linenumbers: u32,
    /// Deprecated relocation count.
    pub number_of_relocations: u16,
    /// Deprecated line-number count.
    pub number_of_linenumbers: u16,
    /// `IMAGE_SCN_*` flags.
    pub characteristics: SectionFlags,
}

impl SectionHeader {
    pub(crate) fn parse(buf: &[u8], at: usize) -> Result<Self, PeError> {
        if buf.len() < at + SECTION_HEADER_SIZE {
            return Err(PeError::Truncated {
                context: "section header",
                needed: at + SECTION_HEADER_SIZE,
                available: buf.len(),
            });
        }
        let mut name = [0u8; 8];
        name.copy_from_slice(&buf[at..at + 8]);
        Ok(SectionHeader {
            name,
            virtual_size: read_u32(buf, at + 8, "section virtual_size")?,
            virtual_address: read_u32(buf, at + 12, "section virtual_address")?,
            size_of_raw_data: read_u32(buf, at + 16, "section raw size")?,
            pointer_to_raw_data: read_u32(buf, at + 20, "section raw pointer")?,
            pointer_to_relocations: read_u32(buf, at + 24, "section reloc pointer")?,
            pointer_to_linenumbers: read_u32(buf, at + 28, "section lineno pointer")?,
            number_of_relocations: crate::headers::read_u16(buf, at + 32, "section relocs")?,
            number_of_linenumbers: crate::headers::read_u16(buf, at + 34, "section linenos")?,
            characteristics: SectionFlags(read_u32(buf, at + 36, "section characteristics")?),
        })
    }

    pub(crate) fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.name);
        put_u32(out, self.virtual_size);
        put_u32(out, self.virtual_address);
        put_u32(out, self.size_of_raw_data);
        put_u32(out, self.pointer_to_raw_data);
        put_u32(out, self.pointer_to_relocations);
        put_u32(out, self.pointer_to_linenumbers);
        crate::headers::put_u16(out, self.number_of_relocations);
        crate::headers::put_u16(out, self.number_of_linenumbers);
        put_u32(out, self.characteristics.0);
    }

    /// The section name with trailing NULs stripped. Invalid UTF-8 bytes are
    /// replaced, matching how analysis tools display hostile names.
    pub fn name_str(&self) -> String {
        let end = self.name.iter().position(|&b| b == 0).unwrap_or(8);
        String::from_utf8_lossy(&self.name[..end]).into_owned()
    }

    /// Encode a string into the 8-byte padded name field.
    ///
    /// # Errors
    ///
    /// Returns [`PeError::NameTooLong`] when `name` exceeds eight bytes.
    pub fn encode_name(name: &str) -> Result<[u8; 8], PeError> {
        let bytes = name.as_bytes();
        if bytes.len() > 8 {
            return Err(PeError::NameTooLong(name.to_owned()));
        }
        let mut out = [0u8; 8];
        out[..bytes.len()].copy_from_slice(bytes);
        Ok(out)
    }
}

/// A section header together with its owned raw data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Section {
    pub(crate) header: SectionHeader,
    pub(crate) data: Vec<u8>,
}

impl Section {
    /// Create a section from a header and its raw data.
    pub fn new(header: SectionHeader, data: Vec<u8>) -> Self {
        Section { header, data }
    }

    /// The section header.
    pub fn header(&self) -> &SectionHeader {
        &self.header
    }

    /// The raw on-disk bytes of the section.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw bytes. In-place overwrites of equal length keep the image
    /// consistent; growing the vector requires
    /// [`crate::PeFile::refresh_layout`].
    pub fn data_mut(&mut self) -> &mut Vec<u8> {
        &mut self.data
    }

    /// The display name.
    pub fn name(&self) -> String {
        self.header.name_str()
    }

    /// The semantic [`SectionKind`].
    pub fn kind(&self) -> SectionKind {
        classify_section(&self.name(), self.header.characteristics)
    }

    /// Whether `rva` falls inside this section's virtual extent.
    pub fn contains_rva(&self, rva: u32) -> bool {
        // 64-bit end: hostile headers near the top of the address space
        // would otherwise wrap `virtual_address + size`.
        let size = self.header.virtual_size.max(self.header.size_of_raw_data).max(1);
        let end = self.header.virtual_address as u64 + size as u64;
        rva >= self.header.virtual_address && (rva as u64) < end
    }

    /// Shannon entropy of the raw data in bits per byte.
    pub fn entropy(&self) -> f64 {
        crate::entropy::entropy(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_classification() {
        assert!(SectionFlags::CODE.is_code());
        assert!(SectionFlags::CODE.is_executable());
        assert!(!SectionFlags::CODE.is_writable());
        assert!(SectionFlags::DATA.is_writable());
        assert!(SectionFlags::DATA.is_initialized_data());
        assert!(!SectionFlags::RDATA.is_writable());
    }

    #[test]
    fn kind_by_name_beats_flags() {
        assert_eq!(classify_section(".text", SectionFlags::DATA), SectionKind::Code);
        assert_eq!(classify_section(".data", SectionFlags::CODE), SectionKind::Data);
    }

    #[test]
    fn kind_by_flags_for_unknown_names() {
        assert_eq!(classify_section("UPX1", SectionFlags::CODE), SectionKind::Code);
        assert_eq!(classify_section(".xyz", SectionFlags::DATA), SectionKind::Data);
        assert_eq!(classify_section(".xyz", SectionFlags::RDATA), SectionKind::ReadOnlyData);
        assert_eq!(classify_section(".xyz", SectionFlags::BSS), SectionKind::Bss);
        assert_eq!(classify_section(".xyz", SectionFlags(0)), SectionKind::Other);
    }

    #[test]
    fn critical_kinds_match_paper() {
        assert!(SectionKind::Code.is_critical_in_paper());
        assert!(SectionKind::Data.is_critical_in_paper());
        assert!(!SectionKind::Resource.is_critical_in_paper());
        assert!(!SectionKind::ReadOnlyData.is_critical_in_paper());
    }

    #[test]
    fn name_encode_decode() {
        let n = SectionHeader::encode_name(".text").unwrap();
        assert_eq!(&n, b".text\0\0\0");
        let h = SectionHeader {
            name: n,
            virtual_size: 0,
            virtual_address: 0,
            size_of_raw_data: 0,
            pointer_to_raw_data: 0,
            pointer_to_relocations: 0,
            pointer_to_linenumbers: 0,
            number_of_relocations: 0,
            number_of_linenumbers: 0,
            characteristics: SectionFlags::CODE,
        };
        assert_eq!(h.name_str(), ".text");
    }

    #[test]
    fn name_too_long_rejected() {
        assert!(matches!(
            SectionHeader::encode_name("waytoolongname"),
            Err(PeError::NameTooLong(_))
        ));
    }

    #[test]
    fn full_width_name_round_trips() {
        let n = SectionHeader::encode_name("12345678").unwrap();
        assert_eq!(&n, b"12345678");
    }

    #[test]
    fn header_round_trip() {
        let h = SectionHeader {
            name: SectionHeader::encode_name(".demo").unwrap(),
            virtual_size: 0x500,
            virtual_address: 0x1000,
            size_of_raw_data: 0x600,
            pointer_to_raw_data: 0x400,
            pointer_to_relocations: 0,
            pointer_to_linenumbers: 0,
            number_of_relocations: 0,
            number_of_linenumbers: 0,
            characteristics: SectionFlags::CODE,
        };
        let mut buf = Vec::new();
        h.write(&mut buf);
        assert_eq!(buf.len(), SECTION_HEADER_SIZE);
        assert_eq!(SectionHeader::parse(&buf, 0).unwrap(), h);
    }

    #[test]
    fn contains_rva_uses_virtual_extent() {
        let h = SectionHeader {
            name: SectionHeader::encode_name(".t").unwrap(),
            virtual_size: 0x1000,
            virtual_address: 0x2000,
            size_of_raw_data: 0x200,
            pointer_to_raw_data: 0x400,
            pointer_to_relocations: 0,
            pointer_to_linenumbers: 0,
            number_of_relocations: 0,
            number_of_linenumbers: 0,
            characteristics: SectionFlags::CODE,
        };
        let s = Section::new(h, vec![0; 0x200]);
        assert!(s.contains_rva(0x2000));
        assert!(s.contains_rva(0x2FFF));
        assert!(!s.contains_rva(0x3000));
        assert!(!s.contains_rva(0x1FFF));
    }
}
