//! Error type for PE parsing and manipulation.

use std::fmt;

/// Errors produced while parsing or editing a PE image.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PeError {
    /// The buffer is shorter than a structure requires.
    Truncated {
        /// What was being read when the buffer ran out.
        context: &'static str,
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// A magic value did not match (`MZ`, `PE\0\0`, or the PE32 magic).
    BadMagic {
        /// Which magic failed.
        context: &'static str,
        /// The value found.
        found: u32,
    },
    /// A header field holds a value the implementation cannot honor.
    InvalidHeader {
        /// Field name.
        field: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// A section with this name already exists.
    DuplicateSection(String),
    /// No section with this name exists.
    MissingSection(String),
    /// A section name exceeds the 8-byte PE limit.
    NameTooLong(String),
    /// The section table is full or overlaps raw data, so a section cannot
    /// be added without relocating raw data (which this library refuses to
    /// do implicitly).
    NoHeaderSpace,
    /// An RVA does not map into any section.
    UnmappedRva(u32),
    /// The image (or a requested edit) violates a structural invariant that
    /// cannot be represented or honored: arithmetic on 32-bit layout fields
    /// overflowed, extents escape the file or address space, sections
    /// overlap, or a resource bound (such as the mapped-image ceiling) was
    /// exceeded. The string describes the specific violation.
    Malformed(String),
}

impl fmt::Display for PeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeError::Truncated { context, needed, available } => write!(
                f,
                "truncated image while reading {context}: need {needed} bytes, have {available}"
            ),
            PeError::BadMagic { context, found } => {
                write!(f, "bad magic for {context}: {found:#x}")
            }
            PeError::InvalidHeader { field, reason } => {
                write!(f, "invalid header field {field}: {reason}")
            }
            PeError::DuplicateSection(name) => write!(f, "section {name:?} already exists"),
            PeError::MissingSection(name) => write!(f, "no section named {name:?}"),
            PeError::NameTooLong(name) => {
                write!(f, "section name {name:?} exceeds 8 bytes")
            }
            PeError::NoHeaderSpace => {
                write!(f, "no room in the header region for another section header")
            }
            PeError::UnmappedRva(rva) => write!(f, "rva {rva:#x} maps into no section"),
            PeError::Malformed(reason) => write!(f, "malformed image: {reason}"),
        }
    }
}

impl std::error::Error for PeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<PeError> = vec![
            PeError::Truncated { context: "coff header", needed: 20, available: 3 },
            PeError::BadMagic { context: "dos header", found: 0x1234 },
            PeError::InvalidHeader { field: "file_alignment", reason: "zero".into() },
            PeError::DuplicateSection(".text".into()),
            PeError::MissingSection(".data".into()),
            PeError::NameTooLong("waytoolongname".into()),
            PeError::NoHeaderSpace,
            PeError::UnmappedRva(0x5000),
            PeError::Malformed("raw size overflows u32".into()),
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PeError>();
    }
}
