//! PE header structures: DOS header, COFF file header, PE32 optional header
//! and data directories, with byte-exact read/write routines.

use crate::error::PeError;
use serde::{Deserialize, Serialize};

/// `MZ` — the DOS header magic.
pub const DOS_MAGIC: u16 = 0x5A4D;
/// `PE\0\0` — the PE signature that `e_lfanew` points at.
pub const PE_SIGNATURE: [u8; 4] = *b"PE\0\0";
/// Magic of the 32-bit optional header.
pub const PE32_MAGIC: u16 = 0x010B;
/// Size of the serialized DOS header (without the stub).
pub const DOS_HEADER_SIZE: usize = 64;
/// Number of data-directory entries in the optional header.
pub const DATA_DIRECTORY_COUNT: usize = 16;
/// Serialized size of the PE32 optional header including data directories.
pub const OPTIONAL_HEADER_SIZE: usize = 96 + DATA_DIRECTORY_COUNT * 8;

pub(crate) fn read_u16(buf: &[u8], at: usize, context: &'static str) -> Result<u16, PeError> {
    buf.get(at..at + 2)
        .map(|b| u16::from_le_bytes([b[0], b[1]]))
        .ok_or(PeError::Truncated { context, needed: at + 2, available: buf.len() })
}

pub(crate) fn read_u32(buf: &[u8], at: usize, context: &'static str) -> Result<u32, PeError> {
    buf.get(at..at + 4)
        .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .ok_or(PeError::Truncated { context, needed: at + 4, available: buf.len() })
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// The legacy DOS header (`IMAGE_DOS_HEADER`). Only the magic and
/// `e_lfanew` matter to the PE loader; the remaining fields and the DOS stub
/// are preserved verbatim so that byte-identical round-trips are possible.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DosHeader {
    /// Must be [`DOS_MAGIC`].
    pub e_magic: u16,
    /// The 58 bytes between the magic and `e_lfanew`, kept opaque.
    pub reserved: Vec<u8>,
    /// File offset of the PE signature.
    pub e_lfanew: u32,
    /// DOS stub program between the DOS header and the PE signature.
    pub stub: Vec<u8>,
}

impl DosHeader {
    /// A minimal header whose `e_lfanew` immediately follows a canonical
    /// 64-byte DOS stub.
    pub fn minimal() -> Self {
        let stub: Vec<u8> = b"This program cannot be run in DOS mode.\r\r\n$\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0"
            .to_vec();
        DosHeader {
            e_magic: DOS_MAGIC,
            reserved: vec![0u8; DOS_HEADER_SIZE - 2 - 4],
            e_lfanew: (DOS_HEADER_SIZE + stub.len()) as u32,
            stub,
        }
    }

    pub(crate) fn parse(buf: &[u8]) -> Result<Self, PeError> {
        let e_magic = read_u16(buf, 0, "dos header")?;
        if e_magic != DOS_MAGIC {
            return Err(PeError::BadMagic { context: "dos header", found: e_magic as u32 });
        }
        if buf.len() < DOS_HEADER_SIZE {
            return Err(PeError::Truncated {
                context: "dos header",
                needed: DOS_HEADER_SIZE,
                available: buf.len(),
            });
        }
        let e_lfanew = read_u32(buf, 0x3C, "dos header e_lfanew")?;
        if (e_lfanew as usize) < DOS_HEADER_SIZE || e_lfanew as usize > buf.len() {
            return Err(PeError::InvalidHeader {
                field: "e_lfanew",
                reason: format!("{e_lfanew:#x} outside image"),
            });
        }
        let reserved = buf[2..0x3C].to_vec();
        let stub = buf[DOS_HEADER_SIZE..e_lfanew as usize].to_vec();
        Ok(DosHeader { e_magic, reserved, e_lfanew, stub })
    }

    pub(crate) fn write(&self, out: &mut Vec<u8>) {
        put_u16(out, self.e_magic);
        out.extend_from_slice(&self.reserved);
        put_u32(out, self.e_lfanew);
        out.extend_from_slice(&self.stub);
    }
}

/// The COFF file header (`IMAGE_FILE_HEADER`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoffHeader {
    /// Target machine; `0x014C` (i386) by default.
    pub machine: u16,
    /// Number of entries in the section table.
    pub number_of_sections: u16,
    /// Link time as a Unix timestamp. One of the semantics-free fields the
    /// attack may rewrite.
    pub time_date_stamp: u32,
    /// Deprecated COFF symbol table pointer (kept for fidelity).
    pub pointer_to_symbol_table: u32,
    /// Deprecated COFF symbol count.
    pub number_of_symbols: u32,
    /// Size of the optional header that follows.
    pub size_of_optional_header: u16,
    /// File characteristic flags (`IMAGE_FILE_*`).
    pub characteristics: u16,
}

impl CoffHeader {
    /// Serialized size in bytes.
    pub const SIZE: usize = 20;
    /// `IMAGE_FILE_MACHINE_I386`.
    pub const MACHINE_I386: u16 = 0x014C;
    /// `IMAGE_FILE_EXECUTABLE_IMAGE | IMAGE_FILE_32BIT_MACHINE`.
    pub const CHARACTERISTICS_EXE: u16 = 0x0102;

    pub(crate) fn parse(buf: &[u8], at: usize) -> Result<Self, PeError> {
        Ok(CoffHeader {
            machine: read_u16(buf, at, "coff machine")?,
            number_of_sections: read_u16(buf, at + 2, "coff number_of_sections")?,
            time_date_stamp: read_u32(buf, at + 4, "coff time_date_stamp")?,
            pointer_to_symbol_table: read_u32(buf, at + 8, "coff symbol table")?,
            number_of_symbols: read_u32(buf, at + 12, "coff symbol count")?,
            size_of_optional_header: read_u16(buf, at + 16, "coff optional size")?,
            characteristics: read_u16(buf, at + 18, "coff characteristics")?,
        })
    }

    pub(crate) fn write(&self, out: &mut Vec<u8>) {
        put_u16(out, self.machine);
        put_u16(out, self.number_of_sections);
        put_u32(out, self.time_date_stamp);
        put_u32(out, self.pointer_to_symbol_table);
        put_u32(out, self.number_of_symbols);
        put_u16(out, self.size_of_optional_header);
        put_u16(out, self.characteristics);
    }
}

impl Default for CoffHeader {
    fn default() -> Self {
        CoffHeader {
            machine: Self::MACHINE_I386,
            number_of_sections: 0,
            time_date_stamp: 0x5F00_0000,
            pointer_to_symbol_table: 0,
            number_of_symbols: 0,
            size_of_optional_header: OPTIONAL_HEADER_SIZE as u16,
            characteristics: Self::CHARACTERISTICS_EXE,
        }
    }
}

/// One entry of the optional header's data-directory array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataDirectory {
    /// RVA of the table this directory describes (0 when absent).
    pub virtual_address: u32,
    /// Size of the table in bytes.
    pub size: u32,
}

/// The PE32 optional header (`IMAGE_OPTIONAL_HEADER32`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptionalHeader {
    /// [`PE32_MAGIC`].
    pub magic: u16,
    /// Linker major version (cosmetic).
    pub major_linker_version: u8,
    /// Linker minor version (cosmetic).
    pub minor_linker_version: u8,
    /// Sum of all code sections' raw sizes.
    pub size_of_code: u32,
    /// Sum of all initialized-data sections' raw sizes.
    pub size_of_initialized_data: u32,
    /// Sum of uninitialized-data sizes.
    pub size_of_uninitialized_data: u32,
    /// RVA where execution starts.
    pub address_of_entry_point: u32,
    /// RVA of the first code byte.
    pub base_of_code: u32,
    /// RVA of the first data byte (PE32 only).
    pub base_of_data: u32,
    /// Preferred load address.
    pub image_base: u32,
    /// In-memory alignment of sections.
    pub section_alignment: u32,
    /// On-disk alignment of section raw data.
    pub file_alignment: u32,
    /// Required OS major version.
    pub major_operating_system_version: u16,
    /// Required OS minor version.
    pub minor_operating_system_version: u16,
    /// Image major version (semantics-free).
    pub major_image_version: u16,
    /// Image minor version (semantics-free).
    pub minor_image_version: u16,
    /// Subsystem major version.
    pub major_subsystem_version: u16,
    /// Subsystem minor version.
    pub minor_subsystem_version: u16,
    /// Reserved, must be zero.
    pub win32_version_value: u32,
    /// Virtual size of the mapped image, section-aligned.
    pub size_of_image: u32,
    /// Bytes of headers at the start of the file, file-aligned.
    pub size_of_headers: u32,
    /// PE checksum (optional for EXEs; recomputed on demand).
    pub checksum: u32,
    /// `IMAGE_SUBSYSTEM_*`; 3 = console.
    pub subsystem: u16,
    /// DLL characteristic flags.
    pub dll_characteristics: u16,
    /// Stack reserve size.
    pub size_of_stack_reserve: u32,
    /// Stack commit size.
    pub size_of_stack_commit: u32,
    /// Heap reserve size.
    pub size_of_heap_reserve: u32,
    /// Heap commit size.
    pub size_of_heap_commit: u32,
    /// Obsolete loader flags.
    pub loader_flags: u32,
    /// Number of data directories that follow (always 16 here).
    pub number_of_rva_and_sizes: u32,
    /// The data-directory array.
    pub data_directories: [DataDirectory; DATA_DIRECTORY_COUNT],
}

impl Default for OptionalHeader {
    fn default() -> Self {
        OptionalHeader {
            magic: PE32_MAGIC,
            major_linker_version: 14,
            minor_linker_version: 0,
            size_of_code: 0,
            size_of_initialized_data: 0,
            size_of_uninitialized_data: 0,
            address_of_entry_point: 0,
            base_of_code: crate::DEFAULT_SECTION_ALIGNMENT,
            base_of_data: 0,
            image_base: crate::DEFAULT_IMAGE_BASE,
            section_alignment: crate::DEFAULT_SECTION_ALIGNMENT,
            file_alignment: crate::DEFAULT_FILE_ALIGNMENT,
            major_operating_system_version: 6,
            minor_operating_system_version: 0,
            major_image_version: 0,
            minor_image_version: 0,
            major_subsystem_version: 6,
            minor_subsystem_version: 0,
            win32_version_value: 0,
            size_of_image: 0,
            size_of_headers: 0,
            checksum: 0,
            subsystem: 3,
            dll_characteristics: 0,
            size_of_stack_reserve: 0x0010_0000,
            size_of_stack_commit: 0x1000,
            size_of_heap_reserve: 0x0010_0000,
            size_of_heap_commit: 0x1000,
            loader_flags: 0,
            number_of_rva_and_sizes: DATA_DIRECTORY_COUNT as u32,
            data_directories: [DataDirectory::default(); DATA_DIRECTORY_COUNT],
        }
    }
}

impl OptionalHeader {
    pub(crate) fn parse(buf: &[u8], at: usize) -> Result<Self, PeError> {
        let magic = read_u16(buf, at, "optional magic")?;
        if magic != PE32_MAGIC {
            return Err(PeError::BadMagic { context: "optional header", found: magic as u32 });
        }
        let b = |o: usize| -> Result<u8, PeError> {
            buf.get(at + o).copied().ok_or(PeError::Truncated {
                context: "optional header",
                needed: at + o + 1,
                available: buf.len(),
            })
        };
        let mut h = OptionalHeader {
            magic,
            major_linker_version: b(2)?,
            minor_linker_version: b(3)?,
            size_of_code: read_u32(buf, at + 4, "size_of_code")?,
            size_of_initialized_data: read_u32(buf, at + 8, "size_of_initialized_data")?,
            size_of_uninitialized_data: read_u32(buf, at + 12, "size_of_uninitialized_data")?,
            address_of_entry_point: read_u32(buf, at + 16, "address_of_entry_point")?,
            base_of_code: read_u32(buf, at + 20, "base_of_code")?,
            base_of_data: read_u32(buf, at + 24, "base_of_data")?,
            image_base: read_u32(buf, at + 28, "image_base")?,
            section_alignment: read_u32(buf, at + 32, "section_alignment")?,
            file_alignment: read_u32(buf, at + 36, "file_alignment")?,
            major_operating_system_version: read_u16(buf, at + 40, "os major")?,
            minor_operating_system_version: read_u16(buf, at + 42, "os minor")?,
            major_image_version: read_u16(buf, at + 44, "image major")?,
            minor_image_version: read_u16(buf, at + 46, "image minor")?,
            major_subsystem_version: read_u16(buf, at + 48, "subsystem major")?,
            minor_subsystem_version: read_u16(buf, at + 50, "subsystem minor")?,
            win32_version_value: read_u32(buf, at + 52, "win32 version")?,
            size_of_image: read_u32(buf, at + 56, "size_of_image")?,
            size_of_headers: read_u32(buf, at + 60, "size_of_headers")?,
            checksum: read_u32(buf, at + 64, "checksum")?,
            subsystem: read_u16(buf, at + 68, "subsystem")?,
            dll_characteristics: read_u16(buf, at + 70, "dll characteristics")?,
            size_of_stack_reserve: read_u32(buf, at + 72, "stack reserve")?,
            size_of_stack_commit: read_u32(buf, at + 76, "stack commit")?,
            size_of_heap_reserve: read_u32(buf, at + 80, "heap reserve")?,
            size_of_heap_commit: read_u32(buf, at + 84, "heap commit")?,
            loader_flags: read_u32(buf, at + 88, "loader flags")?,
            number_of_rva_and_sizes: read_u32(buf, at + 92, "rva count")?,
            data_directories: [DataDirectory::default(); DATA_DIRECTORY_COUNT],
        };
        if h.file_alignment == 0 || !h.file_alignment.is_power_of_two() {
            return Err(PeError::InvalidHeader {
                field: "file_alignment",
                reason: format!("{} is not a power of two", h.file_alignment),
            });
        }
        if h.section_alignment < h.file_alignment {
            return Err(PeError::InvalidHeader {
                field: "section_alignment",
                reason: "smaller than file_alignment".into(),
            });
        }
        let n = (h.number_of_rva_and_sizes as usize).min(DATA_DIRECTORY_COUNT);
        for (i, dir) in h.data_directories.iter_mut().take(n).enumerate() {
            dir.virtual_address = read_u32(buf, at + 96 + i * 8, "data directory rva")?;
            dir.size = read_u32(buf, at + 96 + i * 8 + 4, "data directory size")?;
        }
        Ok(h)
    }

    pub(crate) fn write(&self, out: &mut Vec<u8>) {
        put_u16(out, self.magic);
        out.push(self.major_linker_version);
        out.push(self.minor_linker_version);
        put_u32(out, self.size_of_code);
        put_u32(out, self.size_of_initialized_data);
        put_u32(out, self.size_of_uninitialized_data);
        put_u32(out, self.address_of_entry_point);
        put_u32(out, self.base_of_code);
        put_u32(out, self.base_of_data);
        put_u32(out, self.image_base);
        put_u32(out, self.section_alignment);
        put_u32(out, self.file_alignment);
        put_u16(out, self.major_operating_system_version);
        put_u16(out, self.minor_operating_system_version);
        put_u16(out, self.major_image_version);
        put_u16(out, self.minor_image_version);
        put_u16(out, self.major_subsystem_version);
        put_u16(out, self.minor_subsystem_version);
        put_u32(out, self.win32_version_value);
        put_u32(out, self.size_of_image);
        put_u32(out, self.size_of_headers);
        put_u32(out, self.checksum);
        put_u16(out, self.subsystem);
        put_u16(out, self.dll_characteristics);
        put_u32(out, self.size_of_stack_reserve);
        put_u32(out, self.size_of_stack_commit);
        put_u32(out, self.size_of_heap_reserve);
        put_u32(out, self.size_of_heap_commit);
        put_u32(out, self.loader_flags);
        put_u32(out, self.number_of_rva_and_sizes);
        for d in &self.data_directories {
            put_u32(out, d.virtual_address);
            put_u32(out, d.size);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dos_round_trip() {
        let h = DosHeader::minimal();
        let mut buf = Vec::new();
        h.write(&mut buf);
        let h2 = DosHeader::parse(&buf).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn dos_rejects_bad_magic() {
        let mut buf = Vec::new();
        DosHeader::minimal().write(&mut buf);
        buf[0] = b'X';
        assert!(matches!(DosHeader::parse(&buf), Err(PeError::BadMagic { .. })));
    }

    #[test]
    fn coff_round_trip() {
        let h = CoffHeader { number_of_sections: 3, time_date_stamp: 42, ..CoffHeader::default() };
        let mut buf = Vec::new();
        h.write(&mut buf);
        assert_eq!(buf.len(), CoffHeader::SIZE);
        assert_eq!(CoffHeader::parse(&buf, 0).unwrap(), h);
    }

    #[test]
    fn optional_round_trip() {
        let mut h = OptionalHeader {
            address_of_entry_point: 0x1234,
            size_of_image: 0x6000,
            size_of_headers: 0x400,
            ..OptionalHeader::default()
        };
        h.data_directories[2] = DataDirectory { virtual_address: 0x3000, size: 0x80 };
        let mut buf = Vec::new();
        h.write(&mut buf);
        assert_eq!(buf.len(), OPTIONAL_HEADER_SIZE);
        assert_eq!(OptionalHeader::parse(&buf, 0).unwrap(), h);
    }

    #[test]
    fn optional_rejects_zero_alignment() {
        let h = OptionalHeader { file_alignment: 0, ..OptionalHeader::default() };
        let mut buf = Vec::new();
        h.write(&mut buf);
        assert!(matches!(
            OptionalHeader::parse(&buf, 0),
            Err(PeError::InvalidHeader { field: "file_alignment", .. })
        ));
    }

    #[test]
    fn optional_rejects_wrong_magic() {
        let h = OptionalHeader::default();
        let mut buf = Vec::new();
        h.write(&mut buf);
        buf[0] = 0x0B;
        buf[1] = 0x02; // PE32+
        assert!(matches!(OptionalHeader::parse(&buf, 0), Err(PeError::BadMagic { .. })));
    }

    #[test]
    fn truncated_reads_error() {
        assert!(matches!(
            CoffHeader::parse(&[0u8; 4], 0),
            Err(PeError::Truncated { .. })
        ));
    }
}
