//! Serialization of a [`PeFile`] back to on-disk bytes, plus the PE
//! checksum algorithm.

use crate::headers::PE_SIGNATURE;
use crate::PeFile;

/// Round `v` up to a multiple of `align`, saturating at `u32::MAX` instead
/// of overflowing on hostile values near the top of the 32-bit range.
fn align_up(v: u32, align: u32) -> u32 {
    if align <= 1 {
        v
    } else {
        u32::try_from((v as u64).div_ceil(align as u64) * align as u64).unwrap_or(u32::MAX)
    }
}

impl PeFile {
    /// Serialize the image to its on-disk byte representation.
    ///
    /// The output places headers first (zero-padded to `size_of_headers`),
    /// then each section's raw data at its `pointer_to_raw_data`, then the
    /// overlay. Mutating methods keep those pointers consistent, so the
    /// result always re-parses to an equal [`PeFile`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.optional.size_of_headers as usize + 1024);
        self.dos.write(&mut out);
        out.extend_from_slice(&PE_SIGNATURE);
        self.coff.write(&mut out);
        self.optional.write(&mut out);
        for s in &self.sections {
            s.header.write(&mut out);
        }
        // Pad headers out to size_of_headers.
        let hdr = self.optional.size_of_headers as usize;
        if out.len() < hdr {
            out.resize(hdr, 0);
        }
        for s in &self.sections {
            // A zero-size section stores no bytes, and — because parsing
            // only bounds-checks raw extents of sections that carry data —
            // its pointer may hostilely sit anywhere in the 32-bit range;
            // padding out to it would allocate gigabytes for nothing.
            if s.header.size_of_raw_data == 0 {
                continue;
            }
            let start = s.header.pointer_to_raw_data as usize;
            let end = start + s.header.size_of_raw_data as usize;
            if out.len() < end {
                out.resize(end, 0);
            }
            let n = s.data.len().min(s.header.size_of_raw_data as usize);
            out[start..start + n].copy_from_slice(&s.data[..n]);
        }
        out.extend_from_slice(&self.overlay);
        out
    }

    /// Recompute raw/virtual layout after structural edits (section data
    /// resized, sections added or removed).
    ///
    /// Assigns ascending, aligned `pointer_to_raw_data` / `virtual_address`
    /// values in table order, updates `size_of_raw_data`, `virtual_size`,
    /// `size_of_image`, `size_of_headers`, `size_of_code`,
    /// `size_of_initialized_data` and the section count.
    pub fn refresh_layout(&mut self) {
        let file_align = self.optional.file_alignment.max(1);
        let sect_align = self.optional.section_alignment.max(1);

        self.coff.number_of_sections = self.sections.len() as u16;
        // Never shrink the header region: preserving pre-existing slack keeps
        // round-trips stable and leaves room for future section headers.
        let hdr = align_up(
            u32::try_from(self.header_size())
                .unwrap_or(u32::MAX)
                .max(self.optional.size_of_headers),
            file_align,
        );
        self.optional.size_of_headers = hdr;

        // Accumulate in 64 bits and saturate: on pathological layouts (many
        // near-4GiB sections) the assigned addresses pin at u32::MAX rather
        // than wrapping, and serialization/strict parsing reject from there.
        let sat = |v: u64| u32::try_from(v).unwrap_or(u32::MAX);
        let mut raw = hdr as u64;
        let mut rva = align_up(hdr.max(sect_align), sect_align) as u64;
        let mut size_of_code = 0u64;
        let mut size_of_init = 0u64;
        for s in &mut self.sections {
            let raw_size = align_up(sat(s.data.len() as u64), file_align);
            s.data.resize(raw_size as usize, 0);
            s.header.size_of_raw_data = raw_size;
            s.header.pointer_to_raw_data = if raw_size == 0 { 0 } else { sat(raw) };
            if s.header.virtual_size == 0 || s.header.virtual_size < s.data.len() as u32 {
                s.header.virtual_size = s.data.len() as u32;
            }
            s.header.virtual_address = sat(rva);
            raw += raw_size as u64;
            rva = align_up(sat(rva + s.header.virtual_size.max(1) as u64), sect_align) as u64;
            if s.header.characteristics.is_code() {
                size_of_code += raw_size as u64;
            } else if s.header.characteristics.is_initialized_data() {
                size_of_init += raw_size as u64;
            }
        }
        self.optional.size_of_image = sat(rva);
        self.optional.size_of_code = sat(size_of_code);
        self.optional.size_of_initialized_data = sat(size_of_init);
        if let Some(first_code) =
            self.sections.iter().find(|s| s.header.characteristics.is_code())
        {
            self.optional.base_of_code = first_code.header.virtual_address;
        }
        if let Some(first_data) =
            self.sections.iter().find(|s| !s.header.characteristics.is_code())
        {
            self.optional.base_of_data = first_data.header.virtual_address;
        }
    }

    /// Compute the standard PE checksum over the serialized image (the
    /// checksum field itself is treated as zero, per the algorithm).
    pub fn compute_checksum(&self) -> u32 {
        let bytes = self.to_bytes();
        let checksum_offset = self.dos.e_lfanew as usize + 4 + crate::CoffHeader::SIZE + 64;
        let mut sum: u64 = 0;
        let mut i = 0;
        while i + 1 < bytes.len() {
            if i == checksum_offset || i == checksum_offset + 2 {
                i += 2;
                continue;
            }
            sum += u16::from_le_bytes([bytes[i], bytes[i + 1]]) as u64;
            sum = (sum & 0xFFFF) + (sum >> 16);
            i += 2;
        }
        if i < bytes.len() {
            sum += bytes[i] as u64;
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        sum = (sum & 0xFFFF) + (sum >> 16);
        (sum as u32) + bytes.len() as u32
    }

    /// Store the current [`PeFile::compute_checksum`] into the header.
    pub fn update_checksum(&mut self) {
        self.optional.checksum = 0;
        self.optional.checksum = self.compute_checksum();
    }
}

#[cfg(test)]
mod tests {
    use crate::{PeBuilder, PeFile, SectionFlags};

    fn build() -> PeFile {
        let mut b = PeBuilder::new();
        b.add_section(".text", vec![0x90; 300], SectionFlags::CODE).unwrap();
        b.add_section(".data", vec![0x42; 100], SectionFlags::DATA).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn raw_data_is_file_aligned() {
        let pe = build();
        for s in pe.sections() {
            assert_eq!(s.header().pointer_to_raw_data % pe.optional().file_alignment, 0);
            assert_eq!(s.header().size_of_raw_data % pe.optional().file_alignment, 0);
        }
    }

    #[test]
    fn virtual_addresses_section_aligned_and_ascending() {
        let pe = build();
        let mut last = 0;
        for s in pe.sections() {
            let va = s.header().virtual_address;
            assert_eq!(va % pe.optional().section_alignment, 0);
            assert!(va > last);
            last = va;
        }
    }

    #[test]
    fn size_of_image_covers_all_sections() {
        let pe = build();
        for s in pe.sections() {
            assert!(
                s.header().virtual_address + s.header().virtual_size
                    <= pe.optional().size_of_image
            );
        }
    }

    #[test]
    fn size_of_code_and_data_accumulate() {
        let pe = build();
        assert_eq!(pe.optional().size_of_code, pe.section(".text").unwrap().header().size_of_raw_data);
        assert_eq!(
            pe.optional().size_of_initialized_data,
            pe.section(".data").unwrap().header().size_of_raw_data
        );
    }

    #[test]
    fn refresh_layout_after_growth() {
        let mut pe = build();
        pe.section_mut(".data").unwrap().data_mut().extend_from_slice(&[7u8; 5000]);
        pe.refresh_layout();
        let bytes = pe.to_bytes();
        let pe2 = PeFile::parse(&bytes).unwrap();
        assert_eq!(pe, pe2);
        assert!(pe2.section(".data").unwrap().data().len() >= 5100);
    }

    #[test]
    fn checksum_changes_with_content() {
        let mut pe = build();
        let c1 = pe.compute_checksum();
        pe.section_mut(".text").unwrap().data_mut()[0] = 0xEE;
        let c2 = pe.compute_checksum();
        assert_ne!(c1, c2);
    }

    #[test]
    fn checksum_field_excluded_from_itself() {
        let mut pe = build();
        pe.update_checksum();
        let stored = pe.optional().checksum;
        // Recomputing with the stored checksum in place must give the same
        // value because the field is skipped.
        assert_eq!(pe.compute_checksum(), stored);
    }
}
