//! Structural edit operations used by the attacks: adding sections,
//! renaming sections, rewriting semantics-free header fields, appending
//! overlay data, and writing through virtual addresses.

use crate::error::PeError;
use crate::section::{Section, SectionFlags, SectionHeader};
use crate::PeFile;

impl PeFile {
    /// Append a new section at the end of the section table and the end of
    /// the raw file. This is the paper's primary "modification position":
    /// the blue region of Fig. 2 where the recovery module, decoding keys
    /// and optimizable perturbation space live.
    ///
    /// Returns the RVA the new section was mapped at.
    ///
    /// # Errors
    ///
    /// * [`PeError::NameTooLong`] / [`PeError::DuplicateSection`] for bad
    ///   names,
    /// * [`PeError::NoHeaderSpace`] when the header region cannot hold
    ///   another section header without moving raw data (the condition under
    ///   which MPass falls back to overlay appending),
    /// * [`PeError::Malformed`] when the resulting layout no longer fits in
    ///   32-bit header fields (e.g. a large-overlay edit pushing the
    ///   file-aligned raw size past `u32::MAX`). The image is untouched on
    ///   every error.
    pub fn add_section(
        &mut self,
        name: &str,
        data: Vec<u8>,
        flags: SectionFlags,
    ) -> Result<u32, PeError> {
        let encoded_name = SectionHeader::encode_name(name)?;
        if self.section(name).is_some() {
            return Err(PeError::DuplicateSection(name.to_owned()));
        }
        if !self.can_add_section() {
            return Err(PeError::NoHeaderSpace);
        }
        if self.sections.len() >= u16::MAX as usize {
            return Err(PeError::Malformed(
                "section count would overflow number_of_sections".into(),
            ));
        }
        // All layout arithmetic in 64 bits, checked back into u32 before any
        // mutation, so a hostile base image or an oversized payload yields
        // Malformed instead of wrapped pointers (or a debug-build panic).
        let fit = |what: &'static str, v: u64| {
            u32::try_from(v)
                .map_err(|_| PeError::Malformed(format!("{what} {v:#x} overflows u32")))
        };
        let file_align = self.optional.file_alignment.max(1) as u64;
        let rva = self.next_free_rva();
        let raw_size =
            fit("raw size", (data.len() as u64).div_ceil(file_align) * file_align)?;
        let raw_ptr = fit(
            "raw pointer",
            self.sections
                .iter()
                .map(|s| s.header.pointer_to_raw_data as u64 + s.header.size_of_raw_data as u64)
                .max()
                .unwrap_or(self.optional.size_of_headers as u64)
                .div_ceil(file_align)
                * file_align,
        )?;
        let sect_align = self.optional.section_alignment.max(1) as u64;
        let size_of_image = fit(
            "size_of_image",
            (rva as u64 + raw_size.max(1) as u64).div_ceil(sect_align) * sect_align,
        )?;
        let size_of_code = if flags.is_code() {
            fit("size_of_code", self.optional.size_of_code as u64 + raw_size as u64)?
        } else {
            self.optional.size_of_code
        };
        let size_of_init = if !flags.is_code() && flags.is_initialized_data() {
            fit(
                "size_of_initialized_data",
                self.optional.size_of_initialized_data as u64 + raw_size as u64,
            )?
        } else {
            self.optional.size_of_initialized_data
        };
        let mut data = data;
        data.resize(raw_size as usize, 0);
        let header = SectionHeader {
            name: encoded_name,
            virtual_size: data.len() as u32,
            virtual_address: rva,
            size_of_raw_data: raw_size,
            pointer_to_raw_data: raw_ptr,
            pointer_to_relocations: 0,
            pointer_to_linenumbers: 0,
            number_of_relocations: 0,
            number_of_linenumbers: 0,
            characteristics: flags,
        };
        self.sections.push(Section::new(header, data));
        self.coff.number_of_sections = self.sections.len() as u16;
        self.optional.size_of_image = size_of_image;
        self.optional.size_of_code = size_of_code;
        self.optional.size_of_initialized_data = size_of_init;
        Ok(rva)
    }

    /// Rename an existing section — one of the semantics-free header edits
    /// (grey region of Fig. 2).
    ///
    /// # Errors
    ///
    /// [`PeError::MissingSection`] when `old` does not exist,
    /// [`PeError::NameTooLong`] for invalid `new` names,
    /// [`PeError::DuplicateSection`] when `new` is already taken.
    pub fn rename_section(&mut self, old: &str, new: &str) -> Result<(), PeError> {
        let encoded = SectionHeader::encode_name(new)?;
        if self.section(new).is_some() {
            return Err(PeError::DuplicateSection(new.to_owned()));
        }
        let s = self
            .section_mut(old)
            .ok_or_else(|| PeError::MissingSection(old.to_owned()))?;
        s.header.name = encoded;
        Ok(())
    }

    /// Overwrite the COFF link timestamp (semantics-free header edit).
    pub fn set_timestamp(&mut self, ts: u32) {
        self.coff.time_date_stamp = ts;
    }

    /// Overwrite the semantics-free image version fields.
    pub fn set_image_version(&mut self, major: u16, minor: u16) {
        self.optional.major_image_version = major;
        self.optional.minor_image_version = minor;
    }

    /// Redirect the entry point to `rva`. Used to point execution at the
    /// recovery module.
    ///
    /// # Errors
    ///
    /// [`PeError::UnmappedRva`] when no section contains `rva`.
    pub fn set_entry_point(&mut self, rva: u32) -> Result<(), PeError> {
        if self.section_containing_rva(rva).is_none() {
            return Err(PeError::UnmappedRva(rva));
        }
        self.optional.address_of_entry_point = rva;
        Ok(())
    }

    /// Append bytes to the overlay (the purple region of Fig. 2; the
    /// fallback perturbation position when a section cannot be added).
    pub fn append_overlay(&mut self, bytes: &[u8]) {
        self.overlay.extend_from_slice(bytes);
    }

    /// Truncate the overlay to `len` bytes (used by attacks that search
    /// over append length).
    pub fn truncate_overlay(&mut self, len: usize) {
        self.overlay.truncate(len);
    }

    /// Write `bytes` at virtual address `rva`, spanning section boundaries
    /// if needed.
    ///
    /// # Errors
    ///
    /// [`PeError::UnmappedRva`] if any target byte falls outside all
    /// sections' raw data.
    pub fn write_virtual(&mut self, rva: u32, bytes: &[u8]) -> Result<(), PeError> {
        for (i, &b) in bytes.iter().enumerate() {
            let addr = rva
                .checked_add(i as u32)
                .ok_or_else(|| PeError::Malformed("virtual write wraps past 4 GiB".into()))?;
            let idx = self
                .section_index_containing_rva(addr)
                .ok_or(PeError::UnmappedRva(addr))?;
            let s = &mut self.sections[idx];
            let rel = (addr - s.header.virtual_address) as usize;
            if rel >= s.data.len() {
                return Err(PeError::UnmappedRva(addr));
            }
            s.data[rel] = b;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PeBuilder;

    fn build() -> PeFile {
        let mut b = PeBuilder::new();
        b.add_section(".text", vec![0x90; 128], SectionFlags::CODE).unwrap();
        b.add_section(".data", vec![0x00; 64], SectionFlags::DATA).unwrap();
        b.set_entry_section(".text", 0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn add_section_round_trips() {
        let mut pe = build();
        let rva = pe.add_section(".mp", vec![0xEE; 700], SectionFlags::CODE).unwrap();
        let pe2 = PeFile::parse(&pe.to_bytes()).unwrap();
        let s = pe2.section(".mp").unwrap();
        assert_eq!(s.header().virtual_address, rva);
        assert_eq!(&s.data()[..700], &vec![0xEE; 700][..]);
        assert_eq!(pe2.coff().number_of_sections, 3);
    }

    #[test]
    fn add_section_extends_image_size() {
        let mut pe = build();
        let before = pe.optional().size_of_image;
        pe.add_section(".big", vec![1; 10_000], SectionFlags::DATA).unwrap();
        assert!(pe.optional().size_of_image > before);
        // The new virtual extent must be covered.
        let s = pe.section(".big").unwrap();
        assert!(
            s.header().virtual_address + s.header().size_of_raw_data
                <= pe.optional().size_of_image
        );
    }

    #[test]
    fn add_duplicate_section_fails() {
        let mut pe = build();
        assert!(matches!(
            pe.add_section(".text", vec![], SectionFlags::CODE),
            Err(PeError::DuplicateSection(_))
        ));
    }

    #[test]
    fn rename_section_works_and_validates() {
        let mut pe = build();
        pe.rename_section(".data", ".blob").unwrap();
        assert!(pe.section(".blob").is_some());
        assert!(pe.section(".data").is_none());
        assert!(matches!(pe.rename_section(".gone", ".x"), Err(PeError::MissingSection(_))));
        assert!(matches!(
            pe.rename_section(".text", ".blob"),
            Err(PeError::DuplicateSection(_))
        ));
    }

    #[test]
    fn renamed_section_round_trips() {
        let mut pe = build();
        pe.rename_section(".data", "UPX0").unwrap();
        let pe2 = PeFile::parse(&pe.to_bytes()).unwrap();
        assert!(pe2.section("UPX0").is_some());
    }

    #[test]
    fn set_entry_point_validates_mapping() {
        let mut pe = build();
        let rva = pe.section(".data").unwrap().header().virtual_address + 8;
        pe.set_entry_point(rva).unwrap();
        assert_eq!(pe.entry_point(), rva);
        assert!(matches!(pe.set_entry_point(0x00F0_0000), Err(PeError::UnmappedRva(_))));
    }

    #[test]
    fn overlay_append_and_truncate() {
        let mut pe = build();
        pe.append_overlay(&[1, 2, 3, 4]);
        pe.append_overlay(&[5, 6]);
        assert_eq!(pe.overlay(), &[1, 2, 3, 4, 5, 6]);
        pe.truncate_overlay(3);
        assert_eq!(pe.overlay(), &[1, 2, 3]);
    }

    #[test]
    fn write_virtual_crosses_into_raw_data_only() {
        let mut pe = build();
        let rva = pe.section(".text").unwrap().header().virtual_address;
        pe.write_virtual(rva + 10, &[0xAB, 0xCD]).unwrap();
        assert_eq!(pe.section(".text").unwrap().data()[10], 0xAB);
        assert_eq!(pe.section(".text").unwrap().data()[11], 0xCD);
        assert!(pe.write_virtual(0x00F0_0000, &[0]).is_err());
    }

    #[test]
    fn timestamp_and_version_edits_round_trip() {
        let mut pe = build();
        pe.set_timestamp(0xDEAD_BEEF);
        pe.set_image_version(7, 9);
        let pe2 = PeFile::parse(&pe.to_bytes()).unwrap();
        assert_eq!(pe2.coff().time_date_stamp, 0xDEAD_BEEF);
        assert_eq!(pe2.optional().major_image_version, 7);
        assert_eq!(pe2.optional().minor_image_version, 9);
    }

    #[test]
    fn add_section_on_hostile_layout_errors_instead_of_wrapping() {
        // A base image whose last section sits near the top of the 32-bit
        // file/address space: the aligned raw pointer and size_of_image for
        // any appended section overflow u32.
        let mut pe = build();
        pe.sections[1].header.pointer_to_raw_data = 0xFFFF_F000;
        pe.sections[1].header.virtual_address = 0xFFFF_F000;
        let before = pe.clone();
        assert!(matches!(
            pe.add_section(".mp", vec![0xEE; 64], SectionFlags::CODE),
            Err(PeError::Malformed(_))
        ));
        // Failed edits leave the image untouched.
        assert_eq!(pe, before);
    }

    #[test]
    fn write_virtual_wrap_around_errors() {
        let mut pe = build();
        assert!(matches!(
            pe.write_virtual(u32::MAX, &[1, 2]),
            Err(PeError::Malformed(_) | PeError::UnmappedRva(_))
        ));
    }

    #[test]
    fn entry_point_survives_add_section() {
        let mut pe = build();
        let entry = pe.entry_point();
        pe.add_section(".new", vec![0; 256], SectionFlags::DATA).unwrap();
        assert_eq!(pe.entry_point(), entry);
    }
}
