//! [`BinaryFormat`] implementation: `PeFile` as the first backend of the
//! format-neutral binary layer.
//!
//! Everything here delegates to the existing inherent API so that the PE
//! path through format-generic pipelines stays bit-exact with the
//! PE-specific code it replaced: same flag constants per section kind,
//! same RNG draw order for header randomization, same address arithmetic.

use crate::section::classify_section;
use crate::{PeError, PeFile, SectionFlags};
use mpass_binfmt::{
    BinaryError, BinaryFormat, Format, ImportSummary, ModifiableKind, ModifiableRegion,
    SectionKind, SectionMeta,
};
use rand::{Rng, RngCore};

impl From<PeError> for BinaryError {
    fn from(e: PeError) -> Self {
        match e {
            PeError::Truncated { context, needed, available } => {
                BinaryError::Truncated { context, needed, available }
            }
            PeError::BadMagic { context, found } => BinaryError::BadMagic { context, found },
            PeError::InvalidHeader { field, reason } => {
                BinaryError::InvalidHeader { field, reason }
            }
            PeError::DuplicateSection(n) => BinaryError::DuplicateSection(n),
            PeError::MissingSection(n) => BinaryError::MissingSection(n),
            PeError::NameTooLong(n) => BinaryError::NameTooLong(n),
            PeError::NoHeaderSpace => BinaryError::NoHeaderSpace,
            PeError::UnmappedRva(rva) => BinaryError::UnmappedAddress(rva as u64),
            other => BinaryError::Malformed(other.to_string()),
        }
    }
}

/// Section names real PE toolchains emit; anything else reads as invented.
const STANDARD_NAMES: &[&str] =
    &[".text", ".data", ".rdata", ".rsrc", ".reloc", ".bss", ".idata", ".tls"];

/// The characteristics each format-neutral kind serializes with when the
/// attack adds a section through the trait. `Code` and `Resource` must map
/// to the exact constants the PE-specific pipeline used (stub and keys
/// sections respectively) to keep seeded attacks byte-identical.
fn flags_for_kind(kind: SectionKind) -> SectionFlags {
    match kind {
        SectionKind::Code => SectionFlags::CODE,
        SectionKind::Resource => SectionFlags::RSRC,
        SectionKind::Data | SectionKind::Tls | SectionKind::Other => SectionFlags::DATA,
        SectionKind::ReadOnlyData | SectionKind::Relocation | SectionKind::Import => {
            SectionFlags::RDATA
        }
        SectionKind::Bss => SectionFlags::BSS,
    }
}

fn rva32(va: u64) -> Result<u32, BinaryError> {
    u32::try_from(va).map_err(|_| BinaryError::UnmappedAddress(va))
}

impl BinaryFormat for PeFile {
    fn format(&self) -> Format {
        Format::Pe
    }

    fn to_bytes(&self) -> Vec<u8> {
        PeFile::to_bytes(self)
    }

    fn section_count(&self) -> usize {
        self.sections().len()
    }

    fn section_meta(&self, index: usize) -> Option<SectionMeta> {
        let s = self.sections().get(index)?;
        let h = s.header();
        let name = s.name();
        Some(SectionMeta {
            kind: classify_section(&name, h.characteristics),
            standard_name: STANDARD_NAMES.contains(&name.as_str()),
            name,
            virtual_address: h.virtual_address as u64,
            virtual_size: h.virtual_size as u64,
            file_offset: h.pointer_to_raw_data as usize,
            // PEM's ablation contract: the span actually written verbatim
            // into the file (hostile headers may declare more than exists).
            file_size: s.data().len().min(h.size_of_raw_data as usize),
            executable: h.characteristics.is_executable() || h.characteristics.is_code(),
            writable: h.characteristics.is_writable(),
        })
    }

    fn section_data(&self, index: usize) -> Option<&[u8]> {
        self.sections().get(index).map(|s| s.data())
    }

    fn section_data_mut(&mut self, index: usize) -> Option<&mut [u8]> {
        self.sections_mut().get_mut(index).map(|s| s.data_mut().as_mut_slice())
    }

    fn add_section(
        &mut self,
        name: &str,
        data: Vec<u8>,
        kind: SectionKind,
    ) -> Result<u64, BinaryError> {
        let rva = PeFile::add_section(self, name, data, flags_for_kind(kind))?;
        Ok(rva as u64)
    }

    fn can_add_sections(&self, n: usize) -> bool {
        PeFile::can_add_sections(self, n)
    }

    fn next_free_va(&self) -> u64 {
        self.next_free_rva() as u64
    }

    fn entry_point(&self) -> u64 {
        PeFile::entry_point(self) as u64
    }

    fn set_entry_point(&mut self, va: u64) -> Result<(), BinaryError> {
        PeFile::set_entry_point(self, rva32(va)?)?;
        Ok(())
    }

    fn section_index_containing_va(&self, va: u64) -> Option<usize> {
        self.section_index_containing_rva(u32::try_from(va).ok()?)
    }

    fn va_to_file_offset(&self, va: u64) -> Option<usize> {
        let off = self.rva_to_offset(u32::try_from(va).ok()?)?;
        Some(off as usize)
    }

    fn read_virtual(&self, va: u64, len: usize) -> Vec<u8> {
        match u32::try_from(va) {
            Ok(rva) => PeFile::read_virtual(self, rva, len),
            Err(_) => vec![0; len],
        }
    }

    fn write_virtual(&mut self, va: u64, bytes: &[u8]) -> Result<(), BinaryError> {
        PeFile::write_virtual(self, rva32(va)?, bytes)?;
        Ok(())
    }

    fn overlay(&self) -> &[u8] {
        PeFile::overlay(self)
    }

    fn append_overlay(&mut self, bytes: &[u8]) {
        PeFile::append_overlay(self, bytes);
    }

    fn truncate_overlay(&mut self, len: usize) {
        PeFile::truncate_overlay(self, len);
    }

    fn map_image_bounded(&self, max_bytes: usize) -> Result<Vec<u8>, BinaryError> {
        Ok(PeFile::map_image_bounded(self, max_bytes)?)
    }

    fn randomize_free_headers(&mut self, rng: &mut dyn RngCore) {
        // Draw order and ranges are frozen: this is the exact sequence the
        // modification engine performed inline before the trait existed,
        // and seeded campaigns must replay byte-identically through it.
        self.set_timestamp(rng.gen_range(0x3000_0000..0x6500_0000));
        self.set_image_version(rng.gen_range(0..20), rng.gen_range(0..100));
    }

    fn finalize(&mut self) {
        self.update_checksum();
    }

    fn timestamp(&self) -> u32 {
        self.coff().time_date_stamp
    }

    fn modifiable_positions(&self) -> Vec<ModifiableRegion> {
        let mut out = Vec::new();
        // Gap between the last header structure and the first raw data.
        let used = self.header_size();
        let first_raw = self
            .sections()
            .iter()
            .filter(|s| s.header().size_of_raw_data > 0)
            .map(|s| s.header().pointer_to_raw_data as usize)
            .min();
        if let Some(first) = first_raw {
            if first > used {
                out.push(ModifiableRegion {
                    kind: ModifiableKind::HeaderGap,
                    file_offset: used,
                    len: first - used,
                });
            }
        }
        // Alignment slack inside each section's on-disk extent.
        for s in self.sections() {
            let h = s.header();
            let raw = h.size_of_raw_data as usize;
            let used = s.data().len().min(raw);
            // Bytes the loader maps but execution never references only
            // exist past virtual_size; stay conservative and only expose
            // the tail beyond the stored data.
            if raw > used && h.pointer_to_raw_data > 0 {
                out.push(ModifiableRegion {
                    kind: ModifiableKind::SectionSlack,
                    file_offset: h.pointer_to_raw_data as usize + used,
                    len: raw - used,
                });
            }
        }
        // The overlay trails the serialized file.
        let overlay = PeFile::overlay(self);
        if !overlay.is_empty() {
            let total = self.to_bytes().len();
            out.push(ModifiableRegion {
                kind: ModifiableKind::Overlay,
                file_offset: total - overlay.len(),
                len: overlay.len(),
            });
        }
        out
    }

    fn imports_summary(&self) -> Option<ImportSummary> {
        let table = self.imports().ok().flatten()?;
        Some(ImportSummary {
            libraries: table.dlls.len(),
            symbol_count: table.symbol_count(),
            symbols: table.names().iter().map(|n| n.to_string()).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PeBuilder, SECTION_HEADER_SIZE};

    fn build() -> PeFile {
        let mut b = PeBuilder::new();
        b.add_section(".text", vec![0x90; 300], SectionFlags::CODE).unwrap();
        b.add_section(".data", vec![0x42; 100], SectionFlags::DATA).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn trait_view_matches_inherent_view() {
        let pe = build();
        let dynpe: &dyn BinaryFormat = &pe;
        assert_eq!(dynpe.format(), Format::Pe);
        assert_eq!(dynpe.section_count(), 2);
        assert_eq!(dynpe.entry_point(), PeFile::entry_point(&pe) as u64);
        assert_eq!(dynpe.to_bytes(), PeFile::to_bytes(&pe));
        let meta = dynpe.section_meta(0).unwrap();
        assert_eq!(meta.name, ".text");
        assert_eq!(meta.kind, SectionKind::Code);
        assert!(meta.standard_name && meta.executable && !meta.writable);
        assert_eq!(meta.virtual_address, pe.sections()[0].header().virtual_address as u64);
        assert!(dynpe.section_meta(2).is_none());
    }

    #[test]
    fn trait_add_section_matches_flag_constants() {
        let mut a = build();
        let mut b = build();
        let rva_a =
            BinaryFormat::add_section(&mut a, ".xkeys", vec![7; 64], SectionKind::Resource)
                .unwrap();
        let rva_b = PeFile::add_section(&mut b, ".xkeys", vec![7; 64], SectionFlags::RSRC).unwrap();
        assert_eq!(rva_a, rva_b as u64);
        assert_eq!(PeFile::to_bytes(&a), PeFile::to_bytes(&b));
    }

    #[test]
    fn randomize_free_headers_matches_inline_sequence() {
        use rand::SeedableRng;
        let mut a = build();
        let mut b = build();
        let mut r1 = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let mut r2 = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        a.randomize_free_headers(&mut r1);
        // The historical inline sequence from the modification engine.
        b.set_timestamp(r2.gen_range(0x3000_0000..0x6500_0000));
        b.set_image_version(r2.gen_range(0..20), r2.gen_range(0..100));
        assert_eq!(PeFile::to_bytes(&a), PeFile::to_bytes(&b));
        assert_eq!(r1.next_u64(), r2.next_u64(), "same number of draws");
    }

    #[test]
    fn modifiable_positions_cover_gap_and_overlay() {
        let mut pe = build();
        pe.append_overlay(&[0xAB; 128]);
        let regions = pe.modifiable_positions();
        let bytes = PeFile::to_bytes(&pe);
        assert!(regions.iter().any(|r| r.kind == ModifiableKind::Overlay && r.len == 128));
        for r in &regions {
            assert!(r.file_range().end <= bytes.len(), "{r:?} out of bounds");
        }
        // Rewriting every reported byte must keep the image parseable and
        // structurally identical.
        let mut mutated = bytes.clone();
        for r in &regions {
            for b in &mut mutated[r.file_range()] {
                *b = 0x5A;
            }
        }
        let re = PeFile::parse(&mutated).unwrap();
        assert_eq!(re.sections().len(), pe.sections().len());
        assert_eq!(re.entry_point(), pe.entry_point());
    }

    #[test]
    fn error_conversion_is_faithful() {
        let e: BinaryError = PeError::UnmappedRva(0x40).into();
        assert_eq!(e, BinaryError::UnmappedAddress(0x40));
        let e: BinaryError = PeError::NoHeaderSpace.into();
        assert_eq!(e, BinaryError::NoHeaderSpace);
    }

    #[test]
    fn section_header_size_is_stable() {
        // modifiable_positions' header-gap math rests on header_size();
        // anchor the constant it builds on.
        assert_eq!(SECTION_HEADER_SIZE, 40);
    }
}
