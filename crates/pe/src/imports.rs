//! The PE import table (`IMAGE_DIRECTORY_ENTRY_IMPORT`).
//!
//! Real PE executables declare the DLLs and functions they link against in
//! an import directory; static detectors read it as a feature source and
//! several published attacks pad it with benign imports. MPass explicitly
//! does *not* modify import tables (paper footnote 5: their effect is
//! negligible), but a credible PE substrate must still carry them: the
//! corpus generator stamps realistic import tables onto every sample, the
//! feature extractor reads them, and the baselines' action set can pad
//! them.
//!
//! Layout implemented (PE32):
//!
//! ```text
//! Import Directory Table:  IMAGE_IMPORT_DESCRIPTOR × n + zero terminator
//!   +0  OriginalFirstThunk (RVA of Import Lookup Table)
//!   +4  TimeDateStamp
//!   +8  ForwarderChain
//!   +12 Name               (RVA of NUL-terminated DLL name)
//!   +16 FirstThunk         (RVA of Import Address Table)
//! ILT/IAT: u32 entries; high bit ⇒ ordinal, else RVA of hint/name entry
//! Hint/Name: u16 hint + NUL-terminated function name
//! ```

use crate::error::PeError;
use crate::headers::read_u32;
use crate::section::SectionFlags;
use crate::PeFile;
use serde::{Deserialize, Serialize};

/// Size of one import descriptor.
const DESCRIPTOR_SIZE: usize = 20;
/// Ceiling on the flat image mapped while walking import structures.
/// `size_of_image` is attacker-controlled; no realistic import-bearing
/// image needs more, and anything larger fails with a typed error instead
/// of allocating gigabytes.
const IMPORT_MAP_CEILING: usize = 256 << 20;
/// Data-directory slot of the import table.
pub const IMPORT_DIRECTORY_INDEX: usize = 1;

/// One imported symbol.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ImportEntry {
    /// Import by name with a loader hint.
    Name {
        /// Loader hint (index guess into the export table).
        hint: u16,
        /// Function name.
        name: String,
    },
    /// Import by ordinal.
    Ordinal(u16),
}

impl ImportEntry {
    /// Convenience constructor for by-name imports with hint 0.
    pub fn by_name(name: &str) -> ImportEntry {
        ImportEntry::Name { hint: 0, name: name.to_owned() }
    }

    /// The function name, if imported by name.
    pub fn name(&self) -> Option<&str> {
        match self {
            ImportEntry::Name { name, .. } => Some(name),
            ImportEntry::Ordinal(_) => None,
        }
    }
}

/// All imports from one DLL.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImportedDll {
    /// DLL file name (`KERNEL32.dll`, …).
    pub dll: String,
    /// Imported symbols in table order.
    pub entries: Vec<ImportEntry>,
}

/// A parsed or to-be-built import table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImportTable {
    /// Imported DLLs in directory order.
    pub dlls: Vec<ImportedDll>,
}

impl ImportTable {
    /// Empty table.
    pub fn new() -> Self {
        ImportTable::default()
    }

    /// Add imports for one DLL (appending to an existing entry with the
    /// same name, case-insensitively).
    pub fn add(&mut self, dll: &str, entries: Vec<ImportEntry>) -> &mut Self {
        if let Some(existing) =
            self.dlls.iter_mut().find(|d| d.dll.eq_ignore_ascii_case(dll))
        {
            existing.entries.extend(entries);
        } else {
            self.dlls.push(ImportedDll { dll: dll.to_owned(), entries });
        }
        self
    }

    /// Total imported symbols.
    pub fn symbol_count(&self) -> usize {
        self.dlls.iter().map(|d| d.entries.len()).sum()
    }

    /// All by-name imports, flattened.
    pub fn names(&self) -> Vec<&str> {
        self.dlls
            .iter()
            .flat_map(|d| d.entries.iter().filter_map(ImportEntry::name))
            .collect()
    }

    /// Serialize the table into a self-contained blob to be placed at
    /// `base_rva`; returns `(bytes, directory_size)`. The directory itself
    /// sits at offset 0 of the blob.
    pub fn build(&self, base_rva: u32) -> (Vec<u8>, u32) {
        // Layout: [descriptors + terminator][ILTs][IATs][dll names][hint/names]
        let n = self.dlls.len();
        let dir_size = (n + 1) * DESCRIPTOR_SIZE;
        // First pass: compute offsets.
        let mut cursor = dir_size;
        let mut ilt_offsets = Vec::with_capacity(n);
        for d in &self.dlls {
            ilt_offsets.push(cursor);
            cursor += (d.entries.len() + 1) * 4;
        }
        let mut iat_offsets = Vec::with_capacity(n);
        for d in &self.dlls {
            iat_offsets.push(cursor);
            cursor += (d.entries.len() + 1) * 4;
        }
        let mut name_offsets = Vec::with_capacity(n);
        for d in &self.dlls {
            name_offsets.push(cursor);
            cursor += d.dll.len() + 1;
        }
        let mut hint_offsets: Vec<Vec<Option<usize>>> = Vec::with_capacity(n);
        for d in &self.dlls {
            let mut per = Vec::with_capacity(d.entries.len());
            for e in &d.entries {
                match e {
                    ImportEntry::Name { name, .. } => {
                        if cursor % 2 == 1 {
                            cursor += 1; // hint/name entries are 2-aligned
                        }
                        per.push(Some(cursor));
                        cursor += 2 + name.len() + 1;
                    }
                    ImportEntry::Ordinal(_) => per.push(None),
                }
            }
            hint_offsets.push(per);
        }
        // Second pass: emit.
        let mut out = vec![0u8; cursor];
        let put32 = |out: &mut Vec<u8>, at: usize, v: u32| {
            out[at..at + 4].copy_from_slice(&v.to_le_bytes());
        };
        for (i, d) in self.dlls.iter().enumerate() {
            let at = i * DESCRIPTOR_SIZE;
            put32(&mut out, at, base_rva + ilt_offsets[i] as u32);
            put32(&mut out, at + 12, base_rva + name_offsets[i] as u32);
            put32(&mut out, at + 16, base_rva + iat_offsets[i] as u32);
            for (j, e) in d.entries.iter().enumerate() {
                let entry = match (e, hint_offsets[i][j]) {
                    (ImportEntry::Ordinal(ord), _) => 0x8000_0000 | *ord as u32,
                    (ImportEntry::Name { .. }, Some(off)) => base_rva + off as u32,
                    // Offsets are Some exactly for Name entries; emit a
                    // terminator rather than carrying a panic path.
                    (ImportEntry::Name { .. }, None) => 0,
                };
                put32(&mut out, ilt_offsets[i] + j * 4, entry);
                put32(&mut out, iat_offsets[i] + j * 4, entry);
            }
            out[name_offsets[i]..name_offsets[i] + d.dll.len()]
                .copy_from_slice(d.dll.as_bytes());
            for (j, e) in d.entries.iter().enumerate() {
                if let (ImportEntry::Name { hint, name }, Some(off)) =
                    (e, hint_offsets[i][j])
                {
                    out[off..off + 2].copy_from_slice(&hint.to_le_bytes());
                    out[off + 2..off + 2 + name.len()].copy_from_slice(name.as_bytes());
                }
            }
        }
        (out, dir_size as u32)
    }
}

fn read_cstr(image: &[u8], at: usize) -> Result<String, PeError> {
    let start = at;
    let mut end = at;
    loop {
        match image.get(end) {
            Some(0) => break,
            Some(_) => end += 1,
            None => {
                return Err(PeError::Truncated {
                    context: "import string",
                    needed: end + 1,
                    available: image.len(),
                })
            }
        }
        if end - start > 512 {
            return Err(PeError::InvalidHeader {
                field: "import name",
                reason: "unterminated string".into(),
            });
        }
    }
    Ok(String::from_utf8_lossy(&image[start..end]).into_owned())
}

impl PeFile {
    /// Parse the import table, if the image declares one.
    ///
    /// # Errors
    ///
    /// Returns [`PeError`] when the directory points at malformed or
    /// truncated structures.
    pub fn imports(&self) -> Result<Option<ImportTable>, PeError> {
        let dir = self.optional.data_directories[IMPORT_DIRECTORY_INDEX];
        if dir.virtual_address == 0 || dir.size == 0 {
            return Ok(None);
        }
        let image = self.map_image_bounded(IMPORT_MAP_CEILING)?;
        let mut table = ImportTable::new();
        let mut at = dir.virtual_address as usize;
        loop {
            let ilt = read_u32(&image, at, "import descriptor ilt")?;
            let name_rva = read_u32(&image, at + 12, "import descriptor name")?;
            let iat = read_u32(&image, at + 16, "import descriptor iat")?;
            if ilt == 0 && name_rva == 0 && iat == 0 {
                break;
            }
            let dll = read_cstr(&image, name_rva as usize)?;
            let mut entries = Vec::new();
            let mut t = (if ilt != 0 { ilt } else { iat }) as usize;
            loop {
                let entry = read_u32(&image, t, "import thunk")?;
                if entry == 0 {
                    break;
                }
                if entry & 0x8000_0000 != 0 {
                    entries.push(ImportEntry::Ordinal(entry as u16));
                } else {
                    let hint =
                        crate::headers::read_u16(&image, entry as usize, "import hint")?;
                    let name = read_cstr(&image, entry as usize + 2)?;
                    entries.push(ImportEntry::Name { hint, name });
                }
                t += 4;
            }
            table.dlls.push(ImportedDll { dll, entries });
            at += DESCRIPTOR_SIZE;
        }
        Ok(Some(table))
    }

    /// Install `imports` as the image's import table: writes the blob into
    /// a new `.idata`-style section (or the named section if it already
    /// exists with enough space) and points the import data directory at
    /// it.
    ///
    /// # Errors
    ///
    /// Propagates section-creation failures ([`PeError::NoHeaderSpace`]
    /// when the section table is full).
    pub fn set_imports(&mut self, imports: &ImportTable) -> Result<(), PeError> {
        let rva = self.next_free_rva();
        let (blob, dir_size) = imports.build(rva);
        // build() encodes `rva + offset` into u32 thunks; reject placements
        // where those additions would wrap.
        if rva as u64 + blob.len() as u64 > u32::MAX as u64 {
            return Err(PeError::Malformed(format!(
                "import table at {rva:#x} overflows the rva space"
            )));
        }
        // A fresh name per call; replacing imports twice is not needed by
        // any caller, so collide-free naming suffices.
        let mut name = ".idata".to_owned();
        let mut suffix = 0;
        while self.section(&name).is_some() {
            suffix += 1;
            name = format!(".idat{suffix}");
            if suffix > 9 {
                return Err(PeError::DuplicateSection(name));
            }
        }
        let got = self.add_section(&name, blob, SectionFlags::RDATA)?;
        debug_assert_eq!(got, rva);
        self.optional.data_directories[IMPORT_DIRECTORY_INDEX] =
            crate::headers::DataDirectory { virtual_address: rva, size: dir_size };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PeBuilder, PeFile};

    fn sample_table() -> ImportTable {
        let mut t = ImportTable::new();
        t.add(
            "KERNEL32.dll",
            vec![
                ImportEntry::by_name("CreateFileW"),
                ImportEntry::Name { hint: 42, name: "ReadFile".into() },
                ImportEntry::Ordinal(17),
            ],
        );
        t.add("USER32.dll", vec![ImportEntry::by_name("MessageBoxW")]);
        t
    }

    fn base_pe() -> PeFile {
        let mut b = PeBuilder::new();
        b.add_section(".text", vec![0x90; 64], crate::SectionFlags::CODE).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn build_parse_round_trip() {
        let table = sample_table();
        let mut pe = base_pe();
        pe.set_imports(&table).unwrap();
        let parsed = pe.imports().unwrap().expect("imports present");
        assert_eq!(parsed, table);
    }

    #[test]
    fn survives_serialization() {
        let table = sample_table();
        let mut pe = base_pe();
        pe.set_imports(&table).unwrap();
        pe.update_checksum();
        let re = PeFile::parse(&pe.to_bytes()).unwrap();
        assert_eq!(re.imports().unwrap().unwrap(), table);
    }

    #[test]
    fn no_directory_means_no_imports() {
        let pe = base_pe();
        assert!(pe.imports().unwrap().is_none());
    }

    #[test]
    fn add_merges_same_dll_case_insensitively() {
        let mut t = ImportTable::new();
        t.add("kernel32.DLL", vec![ImportEntry::by_name("A")]);
        t.add("KERNEL32.dll", vec![ImportEntry::by_name("B")]);
        assert_eq!(t.dlls.len(), 1);
        assert_eq!(t.symbol_count(), 2);
    }

    #[test]
    fn names_flattens_by_name_imports() {
        let t = sample_table();
        let names = t.names();
        assert_eq!(names, vec!["CreateFileW", "ReadFile", "MessageBoxW"]);
        assert_eq!(t.symbol_count(), 4);
    }

    #[test]
    fn ordinal_bit_round_trips() {
        let mut t = ImportTable::new();
        t.add("X.dll", vec![ImportEntry::Ordinal(0x7FFF), ImportEntry::Ordinal(1)]);
        let mut pe = base_pe();
        pe.set_imports(&t).unwrap();
        assert_eq!(pe.imports().unwrap().unwrap(), t);
    }

    #[test]
    fn corrupted_directory_errors() {
        let mut pe = base_pe();
        pe.set_imports(&sample_table()).unwrap();
        // Point the directory into the void.
        pe.optional.data_directories[IMPORT_DIRECTORY_INDEX].virtual_address = 0x00F0_0000;
        assert!(pe.imports().is_err());
    }

    #[test]
    fn empty_table_builds_terminator_only() {
        let t = ImportTable::new();
        let (blob, dir_size) = t.build(0x5000);
        assert_eq!(blob.len(), DESCRIPTOR_SIZE);
        assert_eq!(dir_size as usize, DESCRIPTOR_SIZE);
        assert!(blob.iter().all(|&b| b == 0));
    }

    #[test]
    fn second_set_imports_uses_fresh_section_name() {
        let mut pe = base_pe();
        pe.set_imports(&sample_table()).unwrap();
        let mut t2 = ImportTable::new();
        t2.add("ADVAPI32.dll", vec![ImportEntry::by_name("RegOpenKeyW")]);
        pe.set_imports(&t2).unwrap();
        assert!(pe.section(".idata").is_some());
        assert!(pe.section(".idat1").is_some());
        // Directory points at the latest table.
        assert_eq!(pe.imports().unwrap().unwrap(), t2);
    }
}
