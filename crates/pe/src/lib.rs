//! # mpass-pe — Portable Executable substrate
//!
//! A from-scratch implementation of the on-disk Windows PE (Portable
//! Executable) format, sufficient for every manipulation the MPass attack
//! and its baselines perform:
//!
//! * parsing and byte-exact re-serialization of PE images
//!   ([`PeFile::parse`], [`PeFile::to_bytes`]),
//! * construction of fresh executables ([`PeBuilder`]),
//! * structural edits: adding sections, renaming sections, rewriting the
//!   entry point, appending overlay data, and patching header fields that do
//!   not affect program semantics (timestamp, checksum),
//! * classification of sections into the semantic kinds PEM reasons about
//!   ([`SectionKind`]),
//! * byte-level utilities such as Shannon [`entropy`].
//!
//! The format implemented here follows the real PE/COFF layout (DOS header,
//! `PE\0\0` signature, COFF file header, PE32 optional header with data
//! directories, section table, aligned raw section data, trailing overlay),
//! including the import directory ([`ImportTable`]). Export tables and
//! relocations are omitted: neither the paper's attack nor its baselines
//! touch them, and the MVM execution substrate resolves "API calls" by
//! immediate identifiers rather than import thunks — import tables are
//! static metadata here, exactly the role footnote 5 assigns them.
//!
//! ## Example
//!
//! ```
//! use mpass_pe::{PeBuilder, SectionFlags};
//!
//! # fn main() -> Result<(), mpass_pe::PeError> {
//! let mut builder = PeBuilder::new();
//! builder.add_section(".text", vec![0x90; 64], SectionFlags::CODE)?;
//! builder.add_section(".data", vec![0u8; 32], SectionFlags::DATA)?;
//! builder.set_entry_section(".text", 0)?;
//! let pe = builder.build()?;
//! let bytes = pe.to_bytes();
//! let reparsed = mpass_pe::PeFile::parse(&bytes)?;
//! assert_eq!(reparsed.sections().len(), 2);
//! # Ok(())
//! # }
//! ```
//!
//! ## Hostile input
//!
//! Every parsing and editing entry point is total over arbitrary bytes:
//! malformed input yields a typed [`PeError`], never a panic, and all
//! layout arithmetic is performed in 64 bits so hostile 32-bit header
//! fields cannot overflow. See [`ParseMode`] for the strict vs.
//! loader-tolerant validation split.

// Untrusted bytes reach nearly every function in this crate; failures must
// surface as typed errors, never as panics (tests assert freely).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

mod binfmt_impl;
mod builder;
mod edit;
mod entropy;
mod error;
mod headers;
mod imports;
mod parse;
mod section;
mod write;

pub use builder::PeBuilder;
pub use entropy::{byte_histogram, entropy, window_entropy, window_entropy_into};
pub use error::PeError;
pub use imports::{ImportEntry, ImportTable, ImportedDll, IMPORT_DIRECTORY_INDEX};
pub use headers::{
    CoffHeader, DataDirectory, DosHeader, OptionalHeader, DATA_DIRECTORY_COUNT, DOS_HEADER_SIZE,
    DOS_MAGIC, OPTIONAL_HEADER_SIZE, PE32_MAGIC, PE_SIGNATURE,
};
pub use parse::ParseMode;
pub use section::{
    classify_section, Section, SectionFlags, SectionHeader, SectionKind, SECTION_HEADER_SIZE,
};

use serde::{Deserialize, Serialize};

/// Default file alignment used when building or normalizing images.
pub const DEFAULT_FILE_ALIGNMENT: u32 = 0x200;
/// Default in-memory section alignment.
pub const DEFAULT_SECTION_ALIGNMENT: u32 = 0x1000;
/// Default preferred image base.
pub const DEFAULT_IMAGE_BASE: u32 = 0x0040_0000;

/// An in-memory representation of a parsed (or constructed) PE file.
///
/// The struct owns every byte needed to re-serialize the image:
/// headers, the full section table with raw data, and the overlay (bytes
/// past the end of the last section's raw data, a region widely abused by
/// appending attacks).
///
/// Invariants maintained by all mutating methods:
/// * section raw offsets are ascending and aligned to
///   [`OptionalHeader::file_alignment`],
/// * section virtual addresses are ascending and aligned to
///   [`OptionalHeader::section_alignment`],
/// * `coff.number_of_sections` always equals `sections.len()`,
/// * `optional.size_of_image` covers the last section's virtual extent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeFile {
    pub(crate) dos: DosHeader,
    pub(crate) coff: CoffHeader,
    pub(crate) optional: OptionalHeader,
    pub(crate) sections: Vec<Section>,
    pub(crate) overlay: Vec<u8>,
}

impl PeFile {
    /// The DOS header of the image.
    pub fn dos(&self) -> &DosHeader {
        &self.dos
    }

    /// The COFF file header.
    pub fn coff(&self) -> &CoffHeader {
        &self.coff
    }

    /// The PE32 optional header.
    pub fn optional(&self) -> &OptionalHeader {
        &self.optional
    }

    /// All sections in file order.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Mutable access to the sections.
    ///
    /// Callers that change raw data sizes must re-normalize with
    /// [`PeFile::refresh_layout`] before serializing; in-place overwrites of
    /// equal length are always safe.
    pub fn sections_mut(&mut self) -> &mut [Section] {
        &mut self.sections
    }

    /// The overlay: bytes stored after the last section's raw data.
    pub fn overlay(&self) -> &[u8] {
        &self.overlay
    }

    /// Look up a section by name (exact match on the trimmed name).
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name() == name)
    }

    /// Mutable lookup by name.
    pub fn section_mut(&mut self, name: &str) -> Option<&mut Section> {
        self.sections.iter_mut().find(|s| s.name() == name)
    }

    /// The section whose virtual range contains `rva`, if any.
    pub fn section_containing_rva(&self, rva: u32) -> Option<&Section> {
        self.sections.iter().find(|s| s.contains_rva(rva))
    }

    /// Index of the section whose virtual range contains `rva`.
    pub fn section_index_containing_rva(&self, rva: u32) -> Option<usize> {
        self.sections.iter().position(|s| s.contains_rva(rva))
    }

    /// The RVA of the program entry point.
    pub fn entry_point(&self) -> u32 {
        self.optional.address_of_entry_point
    }

    /// Total on-disk size of the serialized image.
    pub fn file_size(&self) -> usize {
        self.to_bytes().len()
    }

    /// Translate a relative virtual address to a file offset.
    ///
    /// Returns `None` when `rva` falls outside every section's raw data
    /// (virtual-only space such as `.bss` padding has no file backing).
    pub fn rva_to_offset(&self, rva: u32) -> Option<u32> {
        if rva < self.optional.size_of_headers && (rva as usize) < self.header_size() {
            return Some(rva);
        }
        for s in &self.sections {
            let h = s.header();
            // 64-bit arithmetic: hostile headers may place sections where
            // `virtual_address + size` or the resulting offset wraps u32.
            let end = h.virtual_address as u64 + h.size_of_raw_data.max(1) as u64;
            if rva >= h.virtual_address && (rva as u64) < end {
                let off =
                    h.pointer_to_raw_data as u64 + (rva - h.virtual_address) as u64;
                return u32::try_from(off).ok();
            }
        }
        None
    }

    /// Translate a file offset to an RVA, the inverse of
    /// [`PeFile::rva_to_offset`] for offsets inside section raw data.
    pub fn offset_to_rva(&self, offset: u32) -> Option<u32> {
        if (offset as usize) < self.header_size() {
            return Some(offset);
        }
        for s in &self.sections {
            let h = s.header();
            let end = h.pointer_to_raw_data as u64 + h.size_of_raw_data as u64;
            if offset >= h.pointer_to_raw_data && (offset as u64) < end {
                let rva = h.virtual_address as u64 + (offset - h.pointer_to_raw_data) as u64;
                return u32::try_from(rva).ok();
            }
        }
        None
    }

    /// Read `len` bytes at virtual address `rva`, zero-filling virtual-only
    /// space, exactly as the loader would map the image.
    pub fn read_virtual(&self, rva: u32, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        for (i, byte) in out.iter_mut().enumerate() {
            let Some(addr) = rva.checked_add(i as u32) else { break };
            if let Some(s) = self.section_containing_rva(addr) {
                let rel = (addr - s.header().virtual_address) as usize;
                if rel < s.data().len() {
                    *byte = s.data()[rel];
                }
            }
        }
        out
    }

    /// Size in bytes of everything before the first section's raw data
    /// (DOS header + stub + PE signature + COFF + optional header + section
    /// table), before alignment to `size_of_headers`.
    pub(crate) fn header_size(&self) -> usize {
        self.dos.e_lfanew as usize
            + PE_SIGNATURE.len()
            + CoffHeader::SIZE
            + OPTIONAL_HEADER_SIZE
            + self.sections.len() * SECTION_HEADER_SIZE
    }

    /// First RVA beyond the virtual extent of the last section, aligned to
    /// the section alignment. This is where a newly added section lands.
    pub fn next_free_rva(&self) -> u32 {
        let align = self.optional.section_alignment.max(1) as u64;
        let end = self
            .sections
            .iter()
            .map(|s| s.header().virtual_address as u64 + s.header().virtual_size.max(1) as u64)
            .max()
            .unwrap_or((self.optional.size_of_headers as u64).max(align));
        // Saturate at u32::MAX: hostile layouts near the top of the address
        // space yield an RVA that add_section then rejects as malformed.
        u32::try_from(end.div_ceil(align) * align).unwrap_or(u32::MAX)
    }

    /// Map the whole image into a flat buffer of `size_of_image` bytes, the
    /// way the OS loader would (headers at 0, sections at their RVAs).
    ///
    /// `size_of_image` is attacker-controlled (up to 4 GiB); callers
    /// handling untrusted images should prefer [`PeFile::map_image_bounded`]
    /// so a hostile header cannot force a giant allocation.
    pub fn map_image(&self) -> Vec<u8> {
        self.map_image_sized(self.optional.size_of_image as usize)
    }

    /// Like [`PeFile::map_image`], but refuses to allocate more than
    /// `max_bytes`.
    ///
    /// # Errors
    ///
    /// [`PeError::Malformed`] when `size_of_image` exceeds `max_bytes`.
    pub fn map_image_bounded(&self, max_bytes: usize) -> Result<Vec<u8>, PeError> {
        let size = self.optional.size_of_image as usize;
        if size > max_bytes {
            return Err(PeError::Malformed(format!(
                "size_of_image {size:#x} exceeds the mapping ceiling {max_bytes:#x}"
            )));
        }
        Ok(self.map_image_sized(size))
    }

    fn map_image_sized(&self, size: usize) -> Vec<u8> {
        let mut image = vec![0u8; size];
        let header_bytes = self.to_bytes();
        let hdr_len = (self.optional.size_of_headers as usize).min(header_bytes.len()).min(size);
        image[..hdr_len].copy_from_slice(&header_bytes[..hdr_len]);
        for s in &self.sections {
            let start = s.header().virtual_address as usize;
            let data = s.data();
            if start >= size {
                continue;
            }
            let n = data.len().min(size - start);
            image[start..start + n].copy_from_slice(&data[..n]);
        }
        image
    }

    /// True when the appending space between `size_of_headers` and the first
    /// section is large enough for another section header; adding a section
    /// never fails in this implementation, so this mirrors the paper's
    /// "malware without sufficient space" case by inspecting the header gap.
    pub fn can_add_section(&self) -> bool {
        self.can_add_sections(1)
    }

    /// Whether the header region can take `n` more section headers without
    /// relocating raw data.
    pub fn can_add_sections(&self, n: usize) -> bool {
        let needed = self.header_size() + n * SECTION_HEADER_SIZE;
        let first_raw = self
            .sections
            .iter()
            .map(|s| s.header().pointer_to_raw_data)
            .filter(|&p| p != 0)
            .min()
            .unwrap_or(self.optional.size_of_headers);
        needed <= first_raw as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_pe() -> PeFile {
        let mut b = PeBuilder::new();
        b.add_section(".text", vec![0xCC; 100], SectionFlags::CODE).unwrap();
        b.add_section(".data", vec![0xAA; 50], SectionFlags::DATA).unwrap();
        b.set_entry_section(".text", 4).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn section_lookup_by_name() {
        let pe = sample_pe();
        assert!(pe.section(".text").is_some());
        assert!(pe.section(".data").is_some());
        assert!(pe.section(".nope").is_none());
    }

    #[test]
    fn rva_offset_round_trip() {
        let pe = sample_pe();
        let text = pe.section(".text").unwrap();
        let rva = text.header().virtual_address + 10;
        let off = pe.rva_to_offset(rva).unwrap();
        assert_eq!(pe.offset_to_rva(off), Some(rva));
    }

    #[test]
    fn entry_point_lands_in_text() {
        let pe = sample_pe();
        let sec = pe.section_containing_rva(pe.entry_point()).unwrap();
        assert_eq!(sec.name(), ".text");
        assert_eq!(pe.entry_point() - sec.header().virtual_address, 4);
    }

    #[test]
    fn map_image_places_sections_at_rvas() {
        let pe = sample_pe();
        let image = pe.map_image();
        let text = pe.section(".text").unwrap();
        let va = text.header().virtual_address as usize;
        assert_eq!(&image[va..va + 100], &vec![0xCC; 100][..]);
    }

    #[test]
    fn read_virtual_zero_fills_gaps() {
        let pe = sample_pe();
        let text = pe.section(".text").unwrap();
        // Read past the raw data into the aligned virtual tail.
        let rva = text.header().virtual_address + 90;
        let bytes = pe.read_virtual(rva, 64);
        assert_eq!(&bytes[..10], &vec![0xCC; 10][..]);
        assert!(bytes[10..].iter().take(20).all(|&b| b == 0));
    }

    #[test]
    fn next_free_rva_is_aligned_and_beyond_sections() {
        let pe = sample_pe();
        let rva = pe.next_free_rva();
        assert_eq!(rva % pe.optional().section_alignment, 0);
        for s in pe.sections() {
            assert!(rva >= s.header().virtual_address + s.header().virtual_size);
        }
    }
}
