//! Property-style tests: any PE image assembled from randomized sections
//! must survive serialize→parse→serialize byte-identically, and structural
//! edits must preserve parseability. Cases are drawn from a seeded
//! ChaCha8 stream so every run explores the same space deterministically.

use mpass_pe::{PeBuilder, PeFile, SectionFlags};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CASES: u64 = 64;

fn arb_flags(rng: &mut ChaCha8Rng) -> SectionFlags {
    match rng.gen_range(0..4u32) {
        0 => SectionFlags::CODE,
        1 => SectionFlags::DATA,
        2 => SectionFlags::RDATA,
        _ => SectionFlags::RSRC,
    }
}

fn arb_bytes(rng: &mut ChaCha8Rng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len);
    (0..len).map(|_| rng.gen::<u8>()).collect()
}

/// 1–5 sections with unique `[a-z.]{1,8}` names and 0–2000 data bytes.
fn arb_sections(rng: &mut ChaCha8Rng) -> Vec<(String, Vec<u8>, SectionFlags)> {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz.";
    loop {
        let n = rng.gen_range(1..6);
        let sections: Vec<(String, Vec<u8>, SectionFlags)> = (0..n)
            .map(|_| {
                let name_len = rng.gen_range(1..9);
                let name: String = (0..name_len)
                    .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
                    .collect();
                let data = arb_bytes(rng, 2000);
                let flags = arb_flags(rng);
                (name, data, flags)
            })
            .collect();
        let mut names: Vec<&String> = sections.iter().map(|(n, _, _)| n).collect();
        names.sort();
        names.dedup();
        if names.len() == sections.len() {
            return sections;
        }
    }
}

fn build(sections: &[(String, Vec<u8>, SectionFlags)]) -> PeFile {
    let mut b = PeBuilder::new();
    for (name, data, flags) in sections {
        b.add_section(name, data.clone(), *flags).unwrap();
    }
    b.build().unwrap()
}

#[test]
fn serialize_parse_round_trip() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9E01);
    for _ in 0..CASES {
        let sections = arb_sections(&mut rng);
        let pe = build(&sections);
        let bytes = pe.to_bytes();
        let parsed = PeFile::parse(&bytes).unwrap();
        assert_eq!(&parsed, &pe);
        assert_eq!(parsed.to_bytes(), bytes);
    }
}

#[test]
fn section_data_is_recoverable() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9E02);
    for _ in 0..CASES {
        let sections = arb_sections(&mut rng);
        let pe = build(&sections);
        let parsed = PeFile::parse(&pe.to_bytes()).unwrap();
        for (name, data, _) in &sections {
            let s = parsed.section(name).unwrap();
            assert_eq!(&s.data()[..data.len()], &data[..]);
        }
    }
}

#[test]
fn add_section_then_round_trip() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9E03);
    for _ in 0..CASES {
        let sections = arb_sections(&mut rng);
        let extra = arb_bytes(&mut rng, 1000);
        let mut pe = build(&sections);
        if pe.section(".zz").is_none() && pe.can_add_section() {
            pe.add_section(".zz", extra.clone(), SectionFlags::DATA).unwrap();
            let parsed = PeFile::parse(&pe.to_bytes()).unwrap();
            let s = parsed.section(".zz").unwrap();
            assert_eq!(&s.data()[..extra.len()], &extra[..]);
        }
    }
}

#[test]
fn overlay_survives_round_trip() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9E04);
    for _ in 0..CASES {
        let sections = arb_sections(&mut rng);
        let mut overlay = arb_bytes(&mut rng, 500);
        if overlay.is_empty() {
            overlay.push(rng.gen::<u8>());
        }
        let mut pe = build(&sections);
        pe.append_overlay(&overlay);
        let parsed = PeFile::parse(&pe.to_bytes()).unwrap();
        assert_eq!(parsed.overlay(), &overlay[..]);
    }
}

#[test]
fn rva_offset_bijection_inside_sections() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9E05);
    for _ in 0..CASES {
        let sections = arb_sections(&mut rng);
        let pe = build(&sections);
        for s in pe.sections() {
            if s.header().size_of_raw_data == 0 {
                continue;
            }
            for delta in [0u32, s.header().size_of_raw_data - 1] {
                let rva = s.header().virtual_address + delta;
                let off = pe.rva_to_offset(rva).unwrap();
                assert_eq!(pe.offset_to_rva(off), Some(rva));
            }
        }
    }
}

/// Layouts where some or all sections carry zero data bytes still
/// round-trip: empty sections get no raw pointer but keep their slot in
/// the table and their virtual address.
#[test]
fn empty_sections_round_trip() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9E07);
    for _ in 0..CASES {
        let mut sections = arb_sections(&mut rng);
        // Force at least one empty section, sometimes all of them.
        for (i, (_, data, _)) in sections.iter_mut().enumerate() {
            if i == 0 || rng.gen_range(0..2u32) == 0 {
                data.clear();
            }
        }
        let pe = build(&sections);
        let parsed = PeFile::parse(&pe.to_bytes()).unwrap();
        assert_eq!(&parsed, &pe);
        assert_eq!(parsed.sections().len(), sections.len());
    }
}

/// Everything the builder produces must satisfy the *strict* parser,
/// not just the loader-tolerant one: the builder is the normative
/// source of well-formed images.
#[test]
fn strict_mode_accepts_built_images() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9E08);
    for _ in 0..CASES {
        let sections = arb_sections(&mut rng);
        let pe = build(&sections);
        let strict = PeFile::parse_strict(&pe.to_bytes()).unwrap();
        assert_eq!(strict, pe);
    }
}

/// Random sequences of structural edits keep the image parseable (in
/// both modes) and round-tripping.
#[test]
fn edit_sequences_preserve_round_trip() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9E09);
    for case in 0..CASES {
        let sections = arb_sections(&mut rng);
        let mut pe = build(&sections);
        for _ in 0..rng.gen_range(1..6) {
            match rng.gen_range(0..4u32) {
                0 => {
                    pe.set_timestamp(rng.gen::<u32>());
                }
                1 => {
                    pe.append_overlay(&arb_bytes(&mut rng, 200));
                }
                2 => {
                    let i = rng.gen_range(0..pe.sections().len());
                    let extra = arb_bytes(&mut rng, 600);
                    pe.sections_mut()[i].data_mut().extend_from_slice(&extra);
                    pe.refresh_layout();
                }
                _ => {
                    let name = format!(".e{}", rng.gen_range(0..10u32));
                    if pe.section(&name).is_none() && pe.can_add_section() {
                        pe.add_section(&name, arb_bytes(&mut rng, 400), arb_flags(&mut rng))
                            .unwrap();
                    }
                }
            }
        }
        let bytes = pe.to_bytes();
        let tolerant = PeFile::parse(&bytes).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(tolerant, pe, "case {case}");
        let strict =
            PeFile::parse_strict(&bytes).unwrap_or_else(|e| panic!("case {case} strict: {e}"));
        assert_eq!(strict, pe, "case {case}");
    }
}

#[test]
fn map_image_matches_read_virtual() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9E06);
    for _ in 0..CASES {
        let sections = arb_sections(&mut rng);
        let pe = build(&sections);
        let image = pe.map_image();
        for s in pe.sections() {
            let va = s.header().virtual_address;
            let got = pe.read_virtual(va, s.data().len().min(64));
            let want = &image[va as usize..va as usize + got.len()];
            assert_eq!(&got[..], want);
        }
    }
}
