//! Property-based tests: any PE image assembled from arbitrary sections
//! must survive serialize→parse→serialize byte-identically, and structural
//! edits must preserve parseability.

use mpass_pe::{PeBuilder, PeFile, SectionFlags};
use proptest::prelude::*;

fn arb_flags() -> impl Strategy<Value = SectionFlags> {
    prop_oneof![
        Just(SectionFlags::CODE),
        Just(SectionFlags::DATA),
        Just(SectionFlags::RDATA),
        Just(SectionFlags::RSRC),
    ]
}

fn arb_sections() -> impl Strategy<Value = Vec<(String, Vec<u8>, SectionFlags)>> {
    prop::collection::vec(
        (
            "[a-z.]{1,8}",
            prop::collection::vec(any::<u8>(), 0..2000),
            arb_flags(),
        ),
        1..6,
    )
    .prop_filter("unique names", |v| {
        let mut names: Vec<&String> = v.iter().map(|(n, _, _)| n).collect();
        names.sort();
        names.dedup();
        names.len() == v.len()
    })
}

fn build(sections: &[(String, Vec<u8>, SectionFlags)]) -> PeFile {
    let mut b = PeBuilder::new();
    for (name, data, flags) in sections {
        b.add_section(name, data.clone(), *flags).unwrap();
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn serialize_parse_round_trip(sections in arb_sections()) {
        let pe = build(&sections);
        let bytes = pe.to_bytes();
        let parsed = PeFile::parse(&bytes).unwrap();
        prop_assert_eq!(&parsed, &pe);
        prop_assert_eq!(parsed.to_bytes(), bytes);
    }

    #[test]
    fn section_data_is_recoverable(sections in arb_sections()) {
        let pe = build(&sections);
        let parsed = PeFile::parse(&pe.to_bytes()).unwrap();
        for (name, data, _) in &sections {
            let s = parsed.section(name).unwrap();
            prop_assert_eq!(&s.data()[..data.len()], &data[..]);
        }
    }

    #[test]
    fn add_section_then_round_trip(
        sections in arb_sections(),
        extra in prop::collection::vec(any::<u8>(), 0..1000),
    ) {
        let mut pe = build(&sections);
        if pe.section(".zz").is_none() && pe.can_add_section() {
            pe.add_section(".zz", extra.clone(), SectionFlags::DATA).unwrap();
            let parsed = PeFile::parse(&pe.to_bytes()).unwrap();
            let s = parsed.section(".zz").unwrap();
            prop_assert_eq!(&s.data()[..extra.len()], &extra[..]);
        }
    }

    #[test]
    fn overlay_survives_round_trip(
        sections in arb_sections(),
        overlay in prop::collection::vec(any::<u8>(), 1..500),
    ) {
        let mut pe = build(&sections);
        pe.append_overlay(&overlay);
        let parsed = PeFile::parse(&pe.to_bytes()).unwrap();
        prop_assert_eq!(parsed.overlay(), &overlay[..]);
    }

    #[test]
    fn rva_offset_bijection_inside_sections(sections in arb_sections()) {
        let pe = build(&sections);
        for s in pe.sections() {
            if s.header().size_of_raw_data == 0 { continue; }
            for delta in [0u32, s.header().size_of_raw_data - 1] {
                let rva = s.header().virtual_address + delta;
                let off = pe.rva_to_offset(rva).unwrap();
                prop_assert_eq!(pe.offset_to_rva(off), Some(rva));
            }
        }
    }

    #[test]
    fn map_image_matches_read_virtual(sections in arb_sections()) {
        let pe = build(&sections);
        let image = pe.map_image();
        for s in pe.sections() {
            let va = s.header().virtual_address;
            let got = pe.read_virtual(va, s.data().len().min(64));
            let want = &image[va as usize..va as usize + got.len()];
            prop_assert_eq!(&got[..], want);
        }
    }
}
