//! Property-style tests: any PE image assembled from randomized sections
//! must survive serialize→parse→serialize byte-identically, and structural
//! edits must preserve parseability. Cases are drawn from a seeded
//! ChaCha8 stream so every run explores the same space deterministically.

use mpass_pe::{PeBuilder, PeFile, SectionFlags};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CASES: u64 = 64;

fn arb_flags(rng: &mut ChaCha8Rng) -> SectionFlags {
    match rng.gen_range(0..4u32) {
        0 => SectionFlags::CODE,
        1 => SectionFlags::DATA,
        2 => SectionFlags::RDATA,
        _ => SectionFlags::RSRC,
    }
}

fn arb_bytes(rng: &mut ChaCha8Rng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len);
    (0..len).map(|_| rng.gen::<u8>()).collect()
}

/// 1–5 sections with unique `[a-z.]{1,8}` names and 0–2000 data bytes.
fn arb_sections(rng: &mut ChaCha8Rng) -> Vec<(String, Vec<u8>, SectionFlags)> {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz.";
    loop {
        let n = rng.gen_range(1..6);
        let sections: Vec<(String, Vec<u8>, SectionFlags)> = (0..n)
            .map(|_| {
                let name_len = rng.gen_range(1..9);
                let name: String = (0..name_len)
                    .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
                    .collect();
                let data = arb_bytes(rng, 2000);
                let flags = arb_flags(rng);
                (name, data, flags)
            })
            .collect();
        let mut names: Vec<&String> = sections.iter().map(|(n, _, _)| n).collect();
        names.sort();
        names.dedup();
        if names.len() == sections.len() {
            return sections;
        }
    }
}

fn build(sections: &[(String, Vec<u8>, SectionFlags)]) -> PeFile {
    let mut b = PeBuilder::new();
    for (name, data, flags) in sections {
        b.add_section(name, data.clone(), *flags).unwrap();
    }
    b.build().unwrap()
}

#[test]
fn serialize_parse_round_trip() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9E01);
    for _ in 0..CASES {
        let sections = arb_sections(&mut rng);
        let pe = build(&sections);
        let bytes = pe.to_bytes();
        let parsed = PeFile::parse(&bytes).unwrap();
        assert_eq!(&parsed, &pe);
        assert_eq!(parsed.to_bytes(), bytes);
    }
}

#[test]
fn section_data_is_recoverable() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9E02);
    for _ in 0..CASES {
        let sections = arb_sections(&mut rng);
        let pe = build(&sections);
        let parsed = PeFile::parse(&pe.to_bytes()).unwrap();
        for (name, data, _) in &sections {
            let s = parsed.section(name).unwrap();
            assert_eq!(&s.data()[..data.len()], &data[..]);
        }
    }
}

#[test]
fn add_section_then_round_trip() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9E03);
    for _ in 0..CASES {
        let sections = arb_sections(&mut rng);
        let extra = arb_bytes(&mut rng, 1000);
        let mut pe = build(&sections);
        if pe.section(".zz").is_none() && pe.can_add_section() {
            pe.add_section(".zz", extra.clone(), SectionFlags::DATA).unwrap();
            let parsed = PeFile::parse(&pe.to_bytes()).unwrap();
            let s = parsed.section(".zz").unwrap();
            assert_eq!(&s.data()[..extra.len()], &extra[..]);
        }
    }
}

#[test]
fn overlay_survives_round_trip() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9E04);
    for _ in 0..CASES {
        let sections = arb_sections(&mut rng);
        let mut overlay = arb_bytes(&mut rng, 500);
        if overlay.is_empty() {
            overlay.push(rng.gen::<u8>());
        }
        let mut pe = build(&sections);
        pe.append_overlay(&overlay);
        let parsed = PeFile::parse(&pe.to_bytes()).unwrap();
        assert_eq!(parsed.overlay(), &overlay[..]);
    }
}

#[test]
fn rva_offset_bijection_inside_sections() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9E05);
    for _ in 0..CASES {
        let sections = arb_sections(&mut rng);
        let pe = build(&sections);
        for s in pe.sections() {
            if s.header().size_of_raw_data == 0 {
                continue;
            }
            for delta in [0u32, s.header().size_of_raw_data - 1] {
                let rva = s.header().virtual_address + delta;
                let off = pe.rva_to_offset(rva).unwrap();
                assert_eq!(pe.offset_to_rva(off), Some(rva));
            }
        }
    }
}

#[test]
fn map_image_matches_read_virtual() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9E06);
    for _ in 0..CASES {
        let sections = arb_sections(&mut rng);
        let pe = build(&sections);
        let image = pe.map_image();
        for s in pe.sections() {
            let va = s.header().virtual_address;
            let got = pe.read_virtual(va, s.data().len().min(64));
            let want = &image[va as usize..va as usize + got.len()];
            assert_eq!(&got[..], want);
        }
    }
}
