//! The shuffle strategy (§III-C).
//!
//! A fixed recovery stub "might be learned as a pattern adaptively by
//! real-world ML AVs", so MPass randomizes the stub's physical layout:
//! instructions are permuted, jump instructions are inserted to preserve
//! the original execution order, benign filler is placed in the gaps
//! between instructions, and every relative displacement is re-patched for
//! the new positions.
//!
//! Physically, each stub instruction `pᵢ` occupies a 16-byte *cell*
//! `[pᵢ, jmp → cell(i+1)]`; cells are permuted, separated by random-width
//! filler gaps, and reached through an entry trampoline at offset 0. The
//! chain jumps realize the paper's
//! `ĵump p₁ → p₁ → jump p₂ → p₂ → …` execution-order construction, and
//! the gap bytes are exactly the `{s₁, s₂, …}` slots that later receive
//! optimizable perturbations.

use crate::recovery::StubInstr;
use mpass_vm::{Instr, INSTR_SIZE};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A laid-out stub region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StubLayout {
    /// The region bytes (instructions + filler), to be placed at the base
    /// RVA the layout was computed for.
    pub bytes: Vec<u8>,
    /// Byte ranges inside [`StubLayout::bytes`] that hold filler and may be
    /// overwritten freely by the optimizer (never executed).
    pub filler_ranges: Vec<(usize, usize)>,
}

impl StubLayout {
    /// Total laid-out size.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the layout is empty (never true for a real stub).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

fn patch(instr: Instr, disp: i64) -> [u8; INSTR_SIZE] {
    instr
        .with_relative_target(disp as i32)
        .expect("patch target is a control-transfer instruction")
        .encode()
}

/// Randomize the encoding bytes the decoder ignores (unused register
/// fields and immediates), so the emitted instruction carries no fixed
/// byte pattern while decoding — and executing — identically.
fn scramble<R: Rng + ?Sized>(bytes: &mut [u8; INSTR_SIZE], rng: &mut R) {
    let instr = Instr::decode(bytes).expect("scramble input is a valid encoding");
    for (b, free) in bytes.iter_mut().zip(instr.dont_care_mask()) {
        if free {
            *b = rng.gen();
        }
    }
    debug_assert_eq!(Instr::decode(bytes).unwrap(), instr);
}

/// Lay the stub out sequentially (no shuffling) at `base_rva`. Used by the
/// shuffle-off ablation and by unit tests as the semantics reference.
pub fn layout_sequential(stub: &[StubInstr], base_rva: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(stub.len() * INSTR_SIZE);
    for (i, s) in stub.iter().enumerate() {
        let next = (i as i64 + 1) * INSTR_SIZE as i64;
        let bytes = match *s {
            StubInstr::Plain(instr) => instr.encode(),
            StubInstr::JumpTo { template, target_index } => {
                patch(template, target_index as i64 * INSTR_SIZE as i64 - next)
            }
            StubInstr::JumpExternal { template, target_rva } => {
                patch(template, target_rva as i64 - (base_rva as i64 + next))
            }
        };
        out.extend_from_slice(&bytes);
    }
    out
}

/// Lay the stub out shuffled at `base_rva`.
///
/// `filler(len)` supplies `len` bytes of benign content for each gap;
/// `max_gap_units` bounds the gap width between cells in 8-byte units.
pub fn layout_shuffled<R: Rng + ?Sized>(
    stub: &[StubInstr],
    base_rva: u32,
    max_gap_units: usize,
    filler: &mut dyn FnMut(usize) -> Vec<u8>,
    rng: &mut R,
) -> StubLayout {
    let m = stub.len();
    if m == 0 {
        return StubLayout { bytes: Vec::new(), filler_ranges: Vec::new() };
    }
    // Shuffled visit order of the cells.
    let mut order: Vec<usize> = (0..m).collect();
    order.shuffle(rng);
    // Pass 1: assign positions. Offset 0 is the entry trampoline.
    let mut cell_pos = vec![0usize; m];
    let mut gaps: Vec<(usize, usize)> = Vec::new(); // (offset, len)
    let mut cursor = INSTR_SIZE; // after trampoline
    for &cell in &order {
        let gap = rng.gen_range(0..=max_gap_units) * INSTR_SIZE;
        if gap > 0 {
            gaps.push((cursor, gap));
            cursor += gap;
        }
        cell_pos[cell] = cursor;
        cursor += 2 * INSTR_SIZE; // [instr, chain jmp]
    }
    let total = cursor;
    let mut bytes = vec![0u8; total];
    // Entry trampoline: jmp → cell 0's instruction.
    let mut tramp = patch(Instr::Jmp(0), cell_pos[0] as i64 - INSTR_SIZE as i64);
    scramble(&mut tramp, rng);
    bytes[..INSTR_SIZE].copy_from_slice(&tramp);
    // Fill gaps with benign content.
    let mut filler_ranges = Vec::with_capacity(gaps.len());
    for (off, len) in gaps {
        let content = filler(len);
        debug_assert_eq!(content.len(), len);
        bytes[off..off + len].copy_from_slice(&content);
        filler_ranges.push((off, off + len));
    }
    // Pass 2: emit cells with patched displacements. Every emitted
    // encoding gets its don't-care bytes randomized: shuffling alone
    // leaves each 16-byte cell's (instruction, chain-jump) pair as a
    // stable byte pattern that n-gram learners would mine.
    for (i, s) in stub.iter().enumerate() {
        let pos = cell_pos[i];
        let next_lexical = pos as i64 + INSTR_SIZE as i64;
        let mut instr_bytes = match *s {
            StubInstr::Plain(instr) => instr.encode(),
            StubInstr::JumpTo { template, target_index } => {
                patch(template, cell_pos[target_index] as i64 - next_lexical)
            }
            StubInstr::JumpExternal { template, target_rva } => {
                patch(template, target_rva as i64 - (base_rva as i64 + next_lexical))
            }
        };
        scramble(&mut instr_bytes, rng);
        bytes[pos..pos + INSTR_SIZE].copy_from_slice(&instr_bytes);
        // Chain jump to the next stub instruction in *logical* order.
        let chain_at = pos + INSTR_SIZE;
        let mut chain = if i + 1 < m {
            patch(
                Instr::Jmp(0),
                cell_pos[i + 1] as i64 - (chain_at as i64 + INSTR_SIZE as i64),
            )
        } else {
            // Dead slot after the final (external, unconditional) jump.
            Instr::Nop.encode()
        };
        scramble(&mut chain, rng);
        bytes[chain_at..chain_at + INSTR_SIZE].copy_from_slice(&chain);
    }
    StubLayout { bytes, filler_ranges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::{compute_keys, generate_recovery_stub, EncodedRegion};
    use mpass_vm::{Reg, Vm};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Build an image where the stub (laid out by `layout`) must decode an
    /// encoded program and run it.
    fn run_with_layout(layout_bytes: &[u8]) -> (mpass_vm::Execution, Vec<u8>) {
        let mut image = vec![0u8; 0x4000];
        let prog: Vec<u8> = [
            Instr::Movi(Reg::R7, 1234),
            Instr::CallApi(mpass_vm::api::ENCRYPT_USER_FILES),
            Instr::Halt,
        ]
        .iter()
        .flat_map(|i| i.encode())
        .collect();
        let benign: Vec<u8> = (0..prog.len()).map(|i| (i as u8).wrapping_mul(97)).collect();
        let keys = compute_keys(&prog, &benign);
        image[0x100..0x100 + benign.len()].copy_from_slice(&benign);
        image[0x300..0x300 + keys.len()].copy_from_slice(&keys);
        image[0x500..0x500 + layout_bytes.len()].copy_from_slice(layout_bytes);
        let mut vm = Vm::from_image(image, 0x500);
        let exec = vm.run_in_place();
        let mem = vm.memory()[0x100..0x100 + prog.len()].to_vec();
        (exec, mem)
    }

    fn stub() -> Vec<StubInstr> {
        generate_recovery_stub(
            &[EncodedRegion { rva: 0x100, len: 24, key_rva: 0x300 }],
            0x100,
        )
    }

    #[test]
    fn sequential_layout_works() {
        let bytes = layout_sequential(&stub(), 0x500);
        let (exec, _) = run_with_layout(&bytes);
        assert!(exec.completed(), "{:?}", exec.outcome);
        assert_eq!(exec.trace.len(), 1);
    }

    #[test]
    fn shuffled_layout_is_semantically_equivalent() {
        for seed in 0..20 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut filler = |len: usize| vec![0xCC; len];
            let layout = layout_shuffled(&stub(), 0x500, 3, &mut filler, &mut rng);
            let (exec, _) = run_with_layout(&layout.bytes);
            assert!(exec.completed(), "seed {seed}: {:?}", exec.outcome);
            assert_eq!(exec.trace.len(), 1, "seed {seed}");
            assert_eq!(exec.trace[0].api, mpass_vm::api::ENCRYPT_USER_FILES);
        }
    }

    #[test]
    fn different_seeds_differ_bytewise() {
        let mut f1 = |len: usize| vec![0u8; len];
        let mut f2 = |len: usize| vec![0u8; len];
        let mut r1 = ChaCha8Rng::seed_from_u64(1);
        let mut r2 = ChaCha8Rng::seed_from_u64(2);
        let a = layout_shuffled(&stub(), 0x500, 3, &mut f1, &mut r1);
        let b = layout_shuffled(&stub(), 0x500, 3, &mut f2, &mut r2);
        assert_ne!(a.bytes, b.bytes);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let mut f1 = |len: usize| vec![7u8; len];
        let mut f2 = |len: usize| vec![7u8; len];
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let mut r2 = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(
            layout_shuffled(&stub(), 0x500, 3, &mut f1, &mut r1),
            layout_shuffled(&stub(), 0x500, 3, &mut f2, &mut r2)
        );
    }

    #[test]
    fn filler_ranges_hold_filler_and_are_disjoint_from_code() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut filler = |len: usize| vec![0xAB; len];
        let layout = layout_shuffled(&stub(), 0x500, 3, &mut filler, &mut rng);
        for &(a, b) in &layout.filler_ranges {
            assert!(layout.bytes[a..b].iter().all(|&x| x == 0xAB));
        }
        // Overwriting every filler byte must not change semantics.
        let mut mutated = layout.bytes.clone();
        for &(a, b) in &layout.filler_ranges {
            for x in &mut mutated[a..b] {
                *x = 0x5F;
            }
        }
        let (exec, _) = run_with_layout(&mutated);
        assert!(exec.completed());
        assert_eq!(exec.trace.len(), 1);
    }

    #[test]
    fn region_restored_after_shuffled_run() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut filler = |len: usize| vec![0u8; len];
        let layout = layout_shuffled(&stub(), 0x500, 2, &mut filler, &mut rng);
        let (_, mem) = run_with_layout(&layout.bytes);
        // First instruction must decode to movi r7, 1234 again.
        let decoded = Instr::decode(&mem[..8]).unwrap();
        assert_eq!(decoded, Instr::Movi(Reg::R7, 1234));
    }

    #[test]
    fn empty_stub_is_empty_layout() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut filler = |len: usize| vec![0u8; len];
        let layout = layout_shuffled(&[], 0x500, 3, &mut filler, &mut rng);
        assert!(layout.is_empty());
    }
}
