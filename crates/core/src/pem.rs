//! The Problem-space Explainability Method (PEM, §III-B / Algorithm 1).
//!
//! PEM treats each binary *section* (PE or Mach-O) as one attribute of
//! the malware and
//! computes its Shapley value (Eq. 1) for each known model's decision
//! margin (`raw_score`, the pre-sigmoid logit — probabilities saturate and
//! flatten the marginals):
//! the marginal effect of a section's presence, averaged over all subsets
//! of the other sections. Ablating a section zeroes its raw bytes while
//! keeping the file structure intact (the problem-space analogue of
//! feature removal). Per-model section rankings are averaged over a
//! malware population and intersected across models, yielding the common
//! critical sections — which the paper finds to be code and data, with the
//! top-2 scoring 1.3–6.0× above the third-ranked section.
//!
//! Sections are identified by their semantic [`SectionKind`] so that the
//! ranking aggregates across samples with hostile/unusual section names.
//!
//! The subset sweep is engine-parallel (one shard per model × sample) and
//! allocation-light: each shard serializes its image once, patches only the
//! spans whose keep-bit flipped between masks, and — for white-box models
//! — re-scores through an incremental [`WhiteBoxSession`] that recomputes
//! only the conv windows overlapping the flipped spans.

use mpass_binary::{BinaryFormat, BinaryImage, SectionKind};
use mpass_corpus::Sample;
use mpass_detectors::{DetectorExt, WhiteBoxSession};
use mpass_engine::metrics as trace;
use mpass_engine::{Engine, EngineConfig, Shard};
use rand::seq::SliceRandom;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::ops::Range;

/// PEM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PemConfig {
    /// Sections ranked per model; the final answer is the intersection of
    /// each model's top-k (Algorithm 1's `S̃ = S̃₁ ∩ … ∩ S̃_M`).
    pub top_k: usize,
    /// Samples with at most this many sections get exact Shapley values
    /// (2ⁿ subset enumeration); larger samples use permutation sampling.
    pub max_exact_sections: usize,
    /// Permutations sampled for large samples.
    pub permutations: usize,
    /// Seed for permutation sampling.
    pub seed: u64,
}

impl Default for PemConfig {
    fn default() -> Self {
        PemConfig { top_k: 4, max_exact_sections: 10, permutations: 16, seed: 0x0050_454D }
    }
}

/// Per-model section ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelRanking {
    /// Model name.
    pub model: String,
    /// Section kinds with their population-mean Shapley values, sorted
    /// descending (`E_f(φᵢ)` in Algorithm 1).
    pub ranking: Vec<(SectionKind, f64)>,
}

impl ModelRanking {
    /// The top-k kinds of this model, restricted to *positive* mean
    /// Shapley values: a section with φ ≤ 0 does not support the model's
    /// malicious decision and is never "critical", and models that
    /// attribute nothing positive to any section (header-focused models)
    /// should not inject arbitrary tie-order into the intersection.
    pub fn top_k(&self, k: usize) -> Vec<SectionKind> {
        self.ranking
            .iter()
            .filter(|(_, v)| *v > 0.0)
            .take(k)
            .map(|(s, _)| *s)
            .collect()
    }

    /// Ratio of the second-ranked mean Shapley value to the third-ranked —
    /// the paper reports 1.3–6.0× for top-2 (code/data) over top-3.
    pub fn top2_over_top3(&self) -> Option<f64> {
        let v2 = self.ranking.get(1)?.1;
        let v3 = self.ranking.get(2)?.1;
        if v3.abs() < 1e-12 {
            None
        } else {
            Some(v2 / v3)
        }
    }
}

/// The output of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PemReport {
    /// One ranking per known model.
    pub per_model: Vec<ModelRanking>,
    /// The common critical sections: intersection of every model's top-k,
    /// ordered by mean value across models.
    pub common_critical: Vec<SectionKind>,
}

/// The sections a sample's subset masks may ablate. Subsets are tracked as
/// bits of a `u64`, so at most 64 sections participate; on section-richer
/// (hostile) files the largest 64 by raw size are tracked and the rest are
/// permanent background — always kept, φ = 0. Real PEs have well under 64
/// sections, so the fallback only triggers on adversarial inputs that
/// would previously overflow the `1u64 << i` shift.
fn tracked_sections(sizes: &[usize]) -> Vec<usize> {
    if sizes.len() <= 64 {
        return (0..sizes.len()).collect();
    }
    let mut idx: Vec<usize> = (0..sizes.len()).collect();
    idx.sort_by_key(|&i| std::cmp::Reverse(sizes[i]));
    idx.truncate(64);
    // Back to file order so bit positions are stable and deterministic.
    idx.sort_unstable();
    idx
}

/// Reusable ablation workspace over one sample: the image is serialized
/// *once*, each section's raw-data span in the file is cached, and
/// successive masks only flip the spans whose keep-bit changed — no
/// per-mask image clone or re-serialization. Zeroing a section's span in
/// the serialized file is exactly equivalent to zeroing its data and
/// re-serializing: both backends write each section's bytes verbatim at
/// its stored file offset ([`SectionMeta::file_offset`]) and nothing else
/// depends on section contents.
///
/// [`SectionMeta::file_offset`]: mpass_binary::SectionMeta
struct AblationPlan {
    /// The fully-populated serialized image (every section present).
    baseline: Vec<u8>,
    /// Per-section occupied raw-data spans in the image.
    spans: Vec<Range<usize>>,
    /// Section indices the masks may ablate (bit `b` ↔ `tracked[b]`).
    tracked: Vec<usize>,
    /// `baseline` with `cur` applied; patched incrementally per mask.
    scratch: Vec<u8>,
    /// Keep-mask currently materialized in `scratch`.
    cur: u64,
}

impl AblationPlan {
    fn new(image: &BinaryImage) -> Self {
        let baseline = image.to_bytes();
        let spans: Vec<Range<usize>> = (0..image.section_count())
            .filter_map(|i| image.section_meta(i))
            .map(|m| m.file_offset..m.file_offset + m.file_size)
            .collect();
        let sizes: Vec<usize> = spans.iter().map(|r| r.len()).collect();
        let scratch = baseline.clone();
        AblationPlan {
            baseline,
            spans,
            tracked: tracked_sections(&sizes),
            scratch,
            cur: u64::MAX, // scratch starts with every section kept
        }
    }

    /// Number of ablatable sections (mask bit count).
    fn n(&self) -> usize {
        self.tracked.len()
    }

    /// Image with the tracked sections *not* in `keep_mask` zeroed. Only
    /// sections whose bit differs from the previously materialized mask
    /// are touched.
    fn ablated(&mut self, keep_mask: u64) -> &[u8] {
        let diff = self.cur ^ keep_mask;
        for (b, &sec) in self.tracked.iter().enumerate() {
            if diff & (1u64 << b) == 0 {
                continue;
            }
            let span = self.spans[sec].clone();
            if keep_mask & (1u64 << b) != 0 {
                self.scratch[span.clone()].copy_from_slice(&self.baseline[span]);
            } else {
                self.scratch[span].fill(0);
            }
        }
        self.cur = keep_mask;
        &self.scratch
    }
}

/// Memoized margin scorer for one (model, sample) pair.
///
/// White-box models score each new mask through a warm incremental
/// [`WhiteBoxSession`]: the flipped sections' spans are handed to the
/// session as dirty ranges, so only conv windows overlapping them are
/// recomputed — and sections past the model's input window cost nothing
/// at all. Detectors without a white-box interface fall back to a full
/// `raw_score` over the patched image. Either way the PE is serialized
/// once ([`AblationPlan`]) and each mask only flips changed spans.
struct SampleScorer<'m> {
    model: &'m dyn DetectorExt,
    plan: AblationPlan,
    /// Warm incremental session; `None` for black-box-only detectors.
    /// Its last-seen bytes always equal `plan.scratch` (the plan is only
    /// patched on cache misses, which always re-score).
    session: Option<Box<dyn WhiteBoxSession + 'm>>,
    cache: HashMap<u64, f64>,
    dirty: Vec<Range<usize>>,
}

impl<'m> SampleScorer<'m> {
    fn new(model: &'m dyn DetectorExt, image: &BinaryImage) -> Self {
        SampleScorer {
            model,
            plan: AblationPlan::new(image),
            session: model.as_white_box().map(|m| m.session()),
            cache: HashMap::new(),
            dirty: Vec::new(),
        }
    }

    /// Memoized margin of the model on the mask's ablated image.
    fn score(&mut self, mask: u64) -> f64 {
        if let Some(&v) = self.cache.get(&mask) {
            trace::counter("pem/cache_hit", 1);
            return v;
        }
        trace::counter("pem/cache_miss", 1);
        let v = match &mut self.session {
            Some(sess) => {
                self.dirty.clear();
                let diff = self.plan.cur ^ mask;
                for (b, &sec) in self.plan.tracked.iter().enumerate() {
                    if diff & (1u64 << b) != 0 {
                        self.dirty.push(self.plan.spans[sec].clone());
                    }
                }
                f64::from(sess.score_delta(self.plan.ablated(mask), &self.dirty))
            }
            None => f64::from(self.model.raw_score(self.plan.ablated(mask))),
        };
        self.cache.insert(mask, v);
        v
    }

    /// Memoized margins for a whole mask sequence, appended to `out` in
    /// request order. Counter-for-counter identical to calling
    /// [`SampleScorer::score`] per mask: a mask already cached (or
    /// repeated earlier in the same request) counts one `pem/cache_hit`,
    /// a first-seen uncached mask one `pem/cache_miss`. White-box models
    /// keep the warm incremental session — its dirty-span state is
    /// inherently sequential — while black-box models materialize every
    /// uncached ablation image and score them through one
    /// [`Detector::raw_score_batch`] pass instead of one dispatch per
    /// mask.
    fn scores_batch(&mut self, masks: &[u64], out: &mut Vec<f64>) {
        if self.session.is_some() {
            out.extend(masks.iter().map(|&m| self.score(m)));
            return;
        }
        let mut pending: Vec<u64> = Vec::new();
        for &mask in masks {
            if self.cache.contains_key(&mask) || pending.contains(&mask) {
                trace::counter("pem/cache_hit", 1);
            } else {
                trace::counter("pem/cache_miss", 1);
                pending.push(mask);
            }
        }
        if !pending.is_empty() {
            let images: Vec<Vec<u8>> =
                pending.iter().map(|&m| self.plan.ablated(m).to_vec()).collect();
            let refs: Vec<&[u8]> = images.iter().map(|v| v.as_slice()).collect();
            let mut margins = Vec::with_capacity(refs.len());
            self.model.raw_score_batch(&refs, &mut margins);
            for (&m, &raw) in pending.iter().zip(&margins) {
                self.cache.insert(m, f64::from(raw));
            }
        }
        out.extend(masks.iter().map(|&m| self.cache[&m]));
    }
}

/// Exact Shapley values over the sample's sections for one model, via
/// subset enumeration with score memoization. The returned vector is
/// indexed by *section* (untracked background sections get φ = 0).
fn shapley_exact(scorer: &mut SampleScorer, n_sections: usize) -> Vec<f64> {
    let n = scorer.plan.n();
    // Precompute factorials for the Shapley weights.
    let fact: Vec<f64> = (0..=n).scan(1.0f64, |acc, i| {
        if i > 0 {
            *acc *= i as f64;
        }
        Some(*acc)
    })
    .collect();
    let mut phi = vec![0.0f64; n_sections];
    // Subsets are scored in (with, without) pairs submitted chunk-wise, so
    // a black-box model sees one batched scoring pass per chunk instead of
    // one dispatch per subset. The request order matches the sequential
    // enumeration exactly, so the memoization pattern — and the resulting
    // cache counters and accumulation order — are unchanged.
    const CHUNK: u64 = 64;
    let mut masks: Vec<u64> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    for i in 0..n {
        let mut phi_i = 0.0f64;
        let others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        let total = 1u64 << others.len();
        let mut sub = 0u64;
        while sub < total {
            let end = (sub + CHUNK).min(total);
            masks.clear();
            weights.clear();
            for s in sub..end {
                let mut mask = 0u64;
                let mut size = 0usize;
                for (bit, &j) in others.iter().enumerate() {
                    if s & (1 << bit) != 0 {
                        mask |= 1 << j;
                        size += 1;
                    }
                }
                weights.push(fact[size] * fact[n - size - 1] / fact[n]);
                masks.push(mask | (1 << i));
                masks.push(mask);
            }
            vals.clear();
            scorer.scores_batch(&masks, &mut vals);
            for (k, &w) in weights.iter().enumerate() {
                phi_i += w * (vals[2 * k] - vals[2 * k + 1]);
            }
            sub = end;
        }
        phi[scorer.plan.tracked[i]] = phi_i;
    }
    phi
}

/// Monte-Carlo Shapley via permutation sampling (for section-rich samples).
fn shapley_sampled(
    scorer: &mut SampleScorer,
    n_sections: usize,
    permutations: usize,
    rng: &mut ChaCha8Rng,
) -> Vec<f64> {
    let n = scorer.plan.n();
    let mut phi = vec![0.0f64; n];
    let mut order: Vec<usize> = (0..n).collect();
    // One batched scoring pass per permutation: the n + 1 prefix masks of
    // the walk are submitted together, in walk order, so memoization and
    // accumulation behave exactly as the sequential prefix loop did.
    let mut masks: Vec<u64> = Vec::with_capacity(n + 1);
    let mut vals: Vec<f64> = Vec::with_capacity(n + 1);
    for _ in 0..permutations {
        order.shuffle(rng);
        masks.clear();
        masks.push(0);
        let mut mask = 0u64;
        for &i in &order {
            mask |= 1 << i;
            masks.push(mask);
        }
        vals.clear();
        scorer.scores_batch(&masks, &mut vals);
        for (k, &i) in order.iter().enumerate() {
            phi[i] += vals[k + 1] - vals[k];
        }
    }
    let mut out = vec![0.0f64; n_sections];
    for (i, p) in phi.into_iter().enumerate() {
        out[scorer.plan.tracked[i]] = p / permutations as f64;
    }
    out
}

/// Run Algorithm 1 over `samples` (the `C` population of randomly sampled
/// malware) against `models` (the known models `K`).
pub fn run_pem(
    models: &[(&str, &dyn DetectorExt)],
    samples: &[&Sample],
    cfg: &PemConfig,
) -> PemReport {
    let _span = trace::span("stage/pem");
    // One engine shard per (model, sample) pair: every pair serializes its
    // own ablation plan once and scores independently, so the sweep
    // parallelizes across the worker pool. Shard RNGs are keyed on the
    // (model, sample) label — deterministic for any worker count.
    let mut shards = Vec::with_capacity(models.len() * samples.len());
    for (mi, (name, _)) in models.iter().enumerate() {
        for (si, sample) in samples.iter().enumerate() {
            shards.push(Shard::new(format!("pem/{name}/{}", sample.name), (mi, si)));
        }
    }
    let engine = Engine::new(EngineConfig { workers: 0, seed: cfg.seed });
    let run = engine.run(shards, |ctx, (mi, si): (usize, usize)| {
        let image = &samples[si].image;
        let mut scorer = SampleScorer::new(models[mi].1, image);
        let n_sections = image.section_count();
        if scorer.plan.n() <= cfg.max_exact_sections {
            shapley_exact(&mut scorer, n_sections)
        } else {
            shapley_sampled(&mut scorer, n_sections, cfg.permutations, &mut ctx.rng)
        }
    });
    assert!(run.is_complete(), "PEM shard panicked: {:?}", run.failures);
    // Shard-local memoization counters fold back into the caller's
    // collector so the pem/cache_* series survive the move off-thread.
    for sm in &run.shard_metrics {
        for key in ["pem/cache_hit", "pem/cache_miss"] {
            if let Some(&v) = sm.counters.get(key) {
                trace::counter(key, v);
            }
        }
    }
    let mut per_model = Vec::with_capacity(models.len());
    for (mi, (name, _)) in models.iter().enumerate() {
        // mean Shapley per kind across the population; kinds absent from a
        // sample contribute φ = 0 (Algorithm 1's else-branch).
        let mut sums: HashMap<SectionKind, f64> = HashMap::new();
        for (si, sample) in samples.iter().enumerate() {
            let phi = &run.results[mi * samples.len() + si];
            // Sum per kind within the sample (a sample may have several
            // sections of one kind).
            let mut per_kind: HashMap<SectionKind, f64> = HashMap::new();
            let image = &sample.image;
            let kinds = (0..image.section_count()).filter_map(|i| image.section_meta(i));
            for (m, p) in kinds.zip(phi) {
                *per_kind.entry(m.kind).or_insert(0.0) += p;
            }
            for (kind, v) in per_kind {
                *sums.entry(kind).or_insert(0.0) += v;
            }
        }
        let mut ranking: Vec<(SectionKind, f64)> = sums
            .into_iter()
            .map(|(k, v)| (k, v / samples.len().max(1) as f64))
            .collect();
        ranking.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        per_model.push(ModelRanking { model: (*name).to_owned(), ranking });
    }
    // Intersection of top-k across models, ordered by cross-model mean.
    // Models whose attributions are entirely non-positive contribute no
    // constraint (their top-k is empty by construction).
    let constraining: Vec<&ModelRanking> =
        per_model.iter().filter(|m| !m.top_k(cfg.top_k).is_empty()).collect();
    let mut common: Vec<(SectionKind, f64)> = Vec::new();
    if let Some(first) = constraining.first() {
        for kind in first.top_k(cfg.top_k) {
            if constraining.iter().all(|m| m.top_k(cfg.top_k).contains(&kind)) {
                let mean: f64 = per_model
                    .iter()
                    .map(|m| {
                        m.ranking
                            .iter()
                            .find(|(k, _)| *k == kind)
                            .map(|(_, v)| *v)
                            .unwrap_or(0.0)
                    })
                    .sum::<f64>()
                    / per_model.len() as f64;
                common.push((kind, mean));
            }
        }
    }
    common.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    PemReport { per_model, common_critical: common.into_iter().map(|(k, _)| k).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_corpus::{CorpusConfig, Dataset};
    use mpass_detectors::Detector;
    use rand::SeedableRng;

    /// A synthetic detector that only looks at the data section's entropy
    /// and the code section's suspicious opcodes — so PEM must rank code
    /// and data on top.
    struct CodeDataOracle;

    impl Detector for CodeDataOracle {
        fn name(&self) -> &str {
            "oracle"
        }
        fn score(&self, bytes: &[u8]) -> f32 {
            let Ok(pe) = mpass_pe::PeFile::parse(bytes) else { return 1.0 };
            let mut s = 0.0f32;
            for sec in pe.sections() {
                match sec.kind() {
                    SectionKind::Code => {
                        let sus =
                            mpass_detectors::features::suspicious_api_count(sec.data());
                        s += (sus as f32 * 0.2).min(0.5);
                    }
                    SectionKind::Data if sec.entropy() > 6.0 => {
                        s += 0.4;
                    }
                    _ => {}
                }
            }
            s.min(1.0)
        }
    }

    impl DetectorExt for CodeDataOracle {}

    #[test]
    fn pem_finds_code_and_data_for_an_oracle() {
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 8,
            n_benign: 0,
            seed: 3,
            no_slack_fraction: 0.0,
        });
        let samples: Vec<&Sample> = ds.malware();
        let oracle = CodeDataOracle;
        let models: Vec<(&str, &dyn DetectorExt)> = vec![("oracle", &oracle)];
        let report = run_pem(&models, &samples, &PemConfig::default());
        let top2 = report.per_model[0].top_k(2);
        assert!(top2.contains(&SectionKind::Code), "top2 = {top2:?}");
        assert!(top2.contains(&SectionKind::Data), "top2 = {top2:?}");
        assert!(report.common_critical.contains(&SectionKind::Code));
        assert!(report.common_critical.contains(&SectionKind::Data));
    }

    #[test]
    fn exact_shapley_efficiency_axiom() {
        // Σ φᵢ = f(all) − f(none).
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 2,
            n_benign: 0,
            seed: 4,
            no_slack_fraction: 0.0,
        });
        let image = &ds.samples[0].image;
        let oracle = CodeDataOracle;
        let mut scorer = SampleScorer::new(&oracle, image);
        let phi = shapley_exact(&mut scorer, image.section_count());
        let full = oracle.score(scorer.plan.ablated(u64::MAX)) as f64;
        let none = oracle.score(scorer.plan.ablated(0)) as f64;
        let sum: f64 = phi.iter().sum();
        assert!((sum - (full - none)).abs() < 1e-6, "sum {sum} vs {}", full - none);
    }

    #[test]
    fn sampled_shapley_approximates_exact() {
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 1,
            n_benign: 0,
            seed: 5,
            no_slack_fraction: 0.0,
        });
        let image = &ds.samples[0].image;
        let oracle = CodeDataOracle;
        let n = image.section_count();
        let mut scorer = SampleScorer::new(&oracle, image);
        let exact = shapley_exact(&mut scorer, n);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let sampled = shapley_sampled(&mut scorer, n, 200, &mut rng);
        for (e, s) in exact.iter().zip(&sampled) {
            assert!((e - s).abs() < 0.1, "exact {e} vs sampled {s}");
        }
    }

    #[test]
    fn ablation_keeps_structure() {
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 1,
            n_benign: 0,
            seed: 6,
            no_slack_fraction: 0.0,
        });
        let sample = &ds.samples[0];
        let pe = sample.pe().unwrap();
        let mut plan = AblationPlan::new(&sample.image);
        let re = mpass_pe::PeFile::parse(plan.ablated(0b10)).unwrap();
        assert_eq!(re.sections().len(), pe.sections().len());
        // Section 1 kept, section 0 zeroed.
        assert!(re.sections()[0].data().iter().all(|&b| b == 0));
        assert_eq!(re.sections()[1].data(), pe.sections()[1].data());
    }

    /// Reference implementation of ablation — clone the parsed file, zero
    /// the unkept sections' data, re-serialize — against which the
    /// serialize-once incremental plan must be byte-exact, including when
    /// the plan is reused across a mask sequence.
    #[test]
    fn plan_matches_naive_ablation_across_mask_sequences() {
        let naive = |pe: &mpass_pe::PeFile, keep_mask: u64| -> Vec<u8> {
            let mut ablated = pe.clone();
            for (i, s) in ablated.sections_mut().iter_mut().enumerate() {
                if keep_mask & (1u64 << i) == 0 {
                    s.data_mut().iter_mut().for_each(|b| *b = 0);
                }
            }
            ablated.to_bytes()
        };
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 3,
            n_benign: 0,
            seed: 7,
            no_slack_fraction: 0.0,
        });
        for sample in &ds.samples {
            let pe = sample.pe().unwrap();
            let n = pe.sections().len();
            let mut plan = AblationPlan::new(&sample.image);
            // Walk masks in a deliberately non-monotonic order so the
            // incremental patching both zeroes and restores spans.
            let full = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
            let masks =
                [0, full, 0b1, full & !0b1, 0b10, full, 0b101 & full, 0, full];
            for &mask in &masks {
                assert_eq!(
                    plan.ablated(mask),
                    &naive(pe, mask)[..],
                    "{}: mask {mask:#b}",
                    sample.name
                );
            }
        }
    }

    /// The `u64` subset-mask arithmetic caps participating sections at 64;
    /// section-richer files must fall back to the largest 64 by size
    /// instead of overflowing `1u64 << i`.
    #[test]
    fn tracked_sections_cap_at_64_by_size() {
        let small: Vec<usize> = (0..5).map(|i| i * 10).collect();
        assert_eq!(tracked_sections(&small), vec![0, 1, 2, 3, 4]);
        // 70 sections; sizes ascending, so the 6 smallest (indices 0..6)
        // must be dropped and the remaining 64 kept in file order.
        let rich: Vec<usize> = (0..70).map(|i| i + 1).collect();
        let tracked = tracked_sections(&rich);
        assert_eq!(tracked.len(), 64);
        assert_eq!(tracked, (6..70).collect::<Vec<_>>());
        // Bit shifts over the tracked set stay in range.
        assert!(tracked.len() <= 64);
    }

    /// White-box models score masks through an incremental session; the
    /// resulting Shapley values must agree with full-forward scoring of
    /// the same model up to the tabled-vs-naive conv tolerance.
    #[test]
    fn session_shapley_matches_full_scoring() {
        use mpass_detectors::train::training_pairs;
        use mpass_detectors::{ByteConvConfig, MalConv};

        /// Same model, white-box interface hidden — forces the
        /// full-`raw_score` fallback path.
        struct Masked<'a>(&'a MalConv);
        impl Detector for Masked<'_> {
            fn name(&self) -> &str {
                "masked"
            }
            fn score(&self, bytes: &[u8]) -> f32 {
                self.0.score(bytes)
            }
            fn raw_score(&self, bytes: &[u8]) -> f32 {
                self.0.raw_score(bytes)
            }
        }
        impl DetectorExt for Masked<'_> {}

        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 6,
            n_benign: 6,
            seed: 8,
            no_slack_fraction: 0.0,
        });
        let samples: Vec<&Sample> = ds.samples.iter().collect();
        let pairs = training_pairs(&samples);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut malconv = MalConv::new(ByteConvConfig::tiny(), &mut rng);
        malconv.train(&pairs, 3, 5e-3, &mut rng);
        assert!(
            (&malconv as &dyn DetectorExt).as_white_box().is_some(),
            "MalConv must expose the session path"
        );

        for sample in ds.malware().into_iter().take(2) {
            let image = &sample.image;
            let n = image.section_count();
            let mut fast = SampleScorer::new(&malconv, image);
            assert!(fast.session.is_some());
            let phi_fast = shapley_exact(&mut fast, n);
            let masked = Masked(&malconv);
            let mut full = SampleScorer::new(&masked, image);
            assert!(full.session.is_none());
            let phi_full = shapley_exact(&mut full, n);
            for (a, b) in phi_fast.iter().zip(&phi_full) {
                assert!((a - b).abs() < 1e-3, "{}: φ {a} vs {b}", sample.name);
            }
        }
    }

    #[test]
    fn top2_over_top3_ratio() {
        let ranking = ModelRanking {
            model: "m".into(),
            ranking: vec![
                (SectionKind::Code, 0.6),
                (SectionKind::Data, 0.3),
                (SectionKind::Resource, 0.1),
            ],
        };
        assert!((ranking.top2_over_top3().unwrap() - 3.0).abs() < 1e-9);
    }
}
