//! The Problem-space Explainability Method (PEM, §III-B / Algorithm 1).
//!
//! PEM treats each PE *section* as one attribute of the malware and
//! computes its Shapley value (Eq. 1) for each known model's decision
//! margin (`raw_score`, the pre-sigmoid logit — probabilities saturate and
//! flatten the marginals):
//! the marginal effect of a section's presence, averaged over all subsets
//! of the other sections. Ablating a section zeroes its raw bytes while
//! keeping the file structure intact (the problem-space analogue of
//! feature removal). Per-model section rankings are averaged over a
//! malware population and intersected across models, yielding the common
//! critical sections — which the paper finds to be code and data, with the
//! top-2 scoring 1.3–6.0× above the third-ranked section.
//!
//! Sections are identified by their semantic [`SectionKind`] so that the
//! ranking aggregates across samples with hostile/unusual section names.

use mpass_corpus::Sample;
use mpass_detectors::Detector;
use mpass_engine::metrics as trace;
use mpass_pe::{PeFile, SectionKind};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// PEM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PemConfig {
    /// Sections ranked per model; the final answer is the intersection of
    /// each model's top-k (Algorithm 1's `S̃ = S̃₁ ∩ … ∩ S̃_M`).
    pub top_k: usize,
    /// Samples with at most this many sections get exact Shapley values
    /// (2ⁿ subset enumeration); larger samples use permutation sampling.
    pub max_exact_sections: usize,
    /// Permutations sampled for large samples.
    pub permutations: usize,
    /// Seed for permutation sampling.
    pub seed: u64,
}

impl Default for PemConfig {
    fn default() -> Self {
        PemConfig { top_k: 4, max_exact_sections: 10, permutations: 16, seed: 0x0050_454D }
    }
}

/// Per-model section ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelRanking {
    /// Model name.
    pub model: String,
    /// Section kinds with their population-mean Shapley values, sorted
    /// descending (`E_f(φᵢ)` in Algorithm 1).
    pub ranking: Vec<(SectionKind, f64)>,
}

impl ModelRanking {
    /// The top-k kinds of this model, restricted to *positive* mean
    /// Shapley values: a section with φ ≤ 0 does not support the model's
    /// malicious decision and is never "critical", and models that
    /// attribute nothing positive to any section (header-focused models)
    /// should not inject arbitrary tie-order into the intersection.
    pub fn top_k(&self, k: usize) -> Vec<SectionKind> {
        self.ranking
            .iter()
            .filter(|(_, v)| *v > 0.0)
            .take(k)
            .map(|(s, _)| *s)
            .collect()
    }

    /// Ratio of the second-ranked mean Shapley value to the third-ranked —
    /// the paper reports 1.3–6.0× for top-2 (code/data) over top-3.
    pub fn top2_over_top3(&self) -> Option<f64> {
        let v2 = self.ranking.get(1)?.1;
        let v3 = self.ranking.get(2)?.1;
        if v3.abs() < 1e-12 {
            None
        } else {
            Some(v2 / v3)
        }
    }
}

/// The output of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PemReport {
    /// One ranking per known model.
    pub per_model: Vec<ModelRanking>,
    /// The common critical sections: intersection of every model's top-k,
    /// ordered by mean value across models.
    pub common_critical: Vec<SectionKind>,
}

/// Byte image of the sample with all sections *not* in `mask` ablated
/// (zeroed in place).
fn ablated_bytes(pe: &PeFile, keep_mask: u64) -> Vec<u8> {
    let mut ablated = pe.clone();
    for (i, s) in ablated.sections_mut().iter_mut().enumerate() {
        if keep_mask & (1u64 << i) == 0 {
            s.data_mut().iter_mut().for_each(|b| *b = 0);
        }
    }
    ablated.to_bytes()
}

/// Exact Shapley values over the sample's sections for one model, via
/// subset enumeration with score memoization.
fn shapley_exact(model: &dyn Detector, pe: &PeFile) -> Vec<f64> {
    let n = pe.sections().len();
    let mut score_cache: HashMap<u64, f64> = HashMap::new();
    let f = |mask: u64, cache: &mut HashMap<u64, f64>| -> f64 {
        match cache.entry(mask) {
            std::collections::hash_map::Entry::Occupied(e) => {
                trace::counter("pem/cache_hit", 1);
                *e.get()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                trace::counter("pem/cache_miss", 1);
                *e.insert(model.raw_score(&ablated_bytes(pe, mask)) as f64)
            }
        }
    };
    // Precompute factorials for the Shapley weights.
    let fact: Vec<f64> = (0..=n).scan(1.0f64, |acc, i| {
        if i > 0 {
            *acc *= i as f64;
        }
        Some(*acc)
    })
    .collect();
    let mut phi = vec![0.0f64; n];
    for (i, phi_i) in phi.iter_mut().enumerate() {
        let others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        for sub in 0u64..(1u64 << others.len()) {
            let mut mask = 0u64;
            let mut size = 0usize;
            for (bit, &j) in others.iter().enumerate() {
                if sub & (1 << bit) != 0 {
                    mask |= 1 << j;
                    size += 1;
                }
            }
            let w = fact[size] * fact[n - size - 1] / fact[n];
            let with = f(mask | (1 << i), &mut score_cache);
            let without = f(mask, &mut score_cache);
            *phi_i += w * (with - without);
        }
    }
    phi
}

/// Monte-Carlo Shapley via permutation sampling (for section-rich samples).
fn shapley_sampled(
    model: &dyn Detector,
    pe: &PeFile,
    permutations: usize,
    rng: &mut ChaCha8Rng,
) -> Vec<f64> {
    let n = pe.sections().len();
    let mut score_cache: HashMap<u64, f64> = HashMap::new();
    let f = |mask: u64, cache: &mut HashMap<u64, f64>| -> f64 {
        match cache.entry(mask) {
            std::collections::hash_map::Entry::Occupied(e) => {
                trace::counter("pem/cache_hit", 1);
                *e.get()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                trace::counter("pem/cache_miss", 1);
                *e.insert(model.raw_score(&ablated_bytes(pe, mask)) as f64)
            }
        }
    };
    let mut phi = vec![0.0f64; n];
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..permutations {
        order.shuffle(rng);
        let mut mask = 0u64;
        let mut prev = f(mask, &mut score_cache);
        for &i in &order {
            mask |= 1 << i;
            let cur = f(mask, &mut score_cache);
            phi[i] += cur - prev;
            prev = cur;
        }
    }
    for p in &mut phi {
        *p /= permutations as f64;
    }
    phi
}

/// Run Algorithm 1 over `samples` (the `C` population of randomly sampled
/// malware) against `models` (the known models `K`).
pub fn run_pem(
    models: &[(&str, &dyn Detector)],
    samples: &[&Sample],
    cfg: &PemConfig,
) -> PemReport {
    let _span = trace::span("stage/pem");
    let mut per_model = Vec::with_capacity(models.len());
    for (name, model) in models {
        // mean Shapley per kind across the population; kinds absent from a
        // sample contribute φ = 0 (Algorithm 1's else-branch).
        let mut sums: HashMap<SectionKind, f64> = HashMap::new();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        for sample in samples {
            let pe = &sample.pe;
            let n = pe.sections().len();
            let phi = if n <= cfg.max_exact_sections {
                shapley_exact(*model, pe)
            } else {
                shapley_sampled(*model, pe, cfg.permutations, &mut rng)
            };
            // Sum per kind within the sample (a sample may have several
            // sections of one kind).
            let mut per_kind: HashMap<SectionKind, f64> = HashMap::new();
            for (s, p) in pe.sections().iter().zip(&phi) {
                *per_kind.entry(s.kind()).or_insert(0.0) += p;
            }
            for (kind, v) in per_kind {
                *sums.entry(kind).or_insert(0.0) += v;
            }
        }
        let mut ranking: Vec<(SectionKind, f64)> = sums
            .into_iter()
            .map(|(k, v)| (k, v / samples.len().max(1) as f64))
            .collect();
        ranking.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        per_model.push(ModelRanking { model: (*name).to_owned(), ranking });
    }
    // Intersection of top-k across models, ordered by cross-model mean.
    // Models whose attributions are entirely non-positive contribute no
    // constraint (their top-k is empty by construction).
    let constraining: Vec<&ModelRanking> =
        per_model.iter().filter(|m| !m.top_k(cfg.top_k).is_empty()).collect();
    let mut common: Vec<(SectionKind, f64)> = Vec::new();
    if let Some(first) = constraining.first() {
        for kind in first.top_k(cfg.top_k) {
            if constraining.iter().all(|m| m.top_k(cfg.top_k).contains(&kind)) {
                let mean: f64 = per_model
                    .iter()
                    .map(|m| {
                        m.ranking
                            .iter()
                            .find(|(k, _)| *k == kind)
                            .map(|(_, v)| *v)
                            .unwrap_or(0.0)
                    })
                    .sum::<f64>()
                    / per_model.len() as f64;
                common.push((kind, mean));
            }
        }
    }
    common.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    PemReport { per_model, common_critical: common.into_iter().map(|(k, _)| k).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_corpus::{CorpusConfig, Dataset};

    /// A synthetic detector that only looks at the data section's entropy
    /// and the code section's suspicious opcodes — so PEM must rank code
    /// and data on top.
    struct CodeDataOracle;

    impl Detector for CodeDataOracle {
        fn name(&self) -> &str {
            "oracle"
        }
        fn score(&self, bytes: &[u8]) -> f32 {
            let Ok(pe) = PeFile::parse(bytes) else { return 1.0 };
            let mut s = 0.0f32;
            for sec in pe.sections() {
                match sec.kind() {
                    SectionKind::Code => {
                        let sus =
                            mpass_detectors::features::suspicious_api_count(sec.data());
                        s += (sus as f32 * 0.2).min(0.5);
                    }
                    SectionKind::Data if sec.entropy() > 6.0 => {
                        s += 0.4;
                    }
                    _ => {}
                }
            }
            s.min(1.0)
        }
    }

    #[test]
    fn pem_finds_code_and_data_for_an_oracle() {
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 8,
            n_benign: 0,
            seed: 3,
            no_slack_fraction: 0.0,
        });
        let samples: Vec<&Sample> = ds.malware();
        let oracle = CodeDataOracle;
        let models: Vec<(&str, &dyn Detector)> = vec![("oracle", &oracle)];
        let report = run_pem(&models, &samples, &PemConfig::default());
        let top2 = report.per_model[0].top_k(2);
        assert!(top2.contains(&SectionKind::Code), "top2 = {top2:?}");
        assert!(top2.contains(&SectionKind::Data), "top2 = {top2:?}");
        assert!(report.common_critical.contains(&SectionKind::Code));
        assert!(report.common_critical.contains(&SectionKind::Data));
    }

    #[test]
    fn exact_shapley_efficiency_axiom() {
        // Σ φᵢ = f(all) − f(none).
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 2,
            n_benign: 0,
            seed: 4,
            no_slack_fraction: 0.0,
        });
        let pe = &ds.samples[0].pe;
        let oracle = CodeDataOracle;
        let phi = shapley_exact(&oracle, pe);
        let full = oracle.score(&ablated_bytes(pe, u64::MAX)) as f64;
        let none = oracle.score(&ablated_bytes(pe, 0)) as f64;
        let sum: f64 = phi.iter().sum();
        assert!((sum - (full - none)).abs() < 1e-6, "sum {sum} vs {}", full - none);
    }

    #[test]
    fn sampled_shapley_approximates_exact() {
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 1,
            n_benign: 0,
            seed: 5,
            no_slack_fraction: 0.0,
        });
        let pe = &ds.samples[0].pe;
        let oracle = CodeDataOracle;
        let exact = shapley_exact(&oracle, pe);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let sampled = shapley_sampled(&oracle, pe, 200, &mut rng);
        for (e, s) in exact.iter().zip(&sampled) {
            assert!((e - s).abs() < 0.1, "exact {e} vs sampled {s}");
        }
    }

    #[test]
    fn ablation_keeps_structure() {
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 1,
            n_benign: 0,
            seed: 6,
            no_slack_fraction: 0.0,
        });
        let pe = &ds.samples[0].pe;
        let bytes = ablated_bytes(pe, 0b10);
        let re = PeFile::parse(&bytes).unwrap();
        assert_eq!(re.sections().len(), pe.sections().len());
        // Section 1 kept, section 0 zeroed.
        assert!(re.sections()[0].data().iter().all(|&b| b == 0));
        assert_eq!(re.sections()[1].data(), pe.sections()[1].data());
    }

    #[test]
    fn top2_over_top3_ratio() {
        let ranking = ModelRanking {
            model: "m".into(),
            ranking: vec![
                (SectionKind::Code, 0.6),
                (SectionKind::Data, 0.3),
                (SectionKind::Resource, 0.1),
            ],
        };
        assert!((ranking.top2_over_top3().unwrap() - 3.0).abs() < 1e-9);
    }
}
