//! Ensemble-transfer perturbation optimization (§III-D, Eq. 2–3).
//!
//! The attack minimizes ℒ_opt = Σ_F ℒ(F(x + M·δ), benign) over the known
//! models F. The matrix `M` of Eq. 2 has two kinds of non-zero rows:
//! independently optimizable bytes (gap filler, free space, overlay) and
//! *coupled* pairs — a benign cover byte `j` together with its recovery
//! key `k = cover − original`. Both the cover byte and its induced key
//! byte are visible to the detectors, so the optimization treats them as a
//! single variable receiving gradient from **both** file positions; when
//! the variable maps back to a byte, the key moves with it and
//! functionality is preserved by construction.
//!
//! Optimization runs in embedding space: each model's byte-embedding
//! vectors at every tracked file offset form a continuous state driven by
//! Adam along the models' input gradients; bytes are recovered by a joint
//! nearest-neighbour step that, for coupled variables, scores a candidate
//! byte `b` by the distance of `e(b)` to the cover state *plus* the
//! distance of `e(b − original)` to the key state.

use crate::modify::{CoupledByte, ModifiedSample};
use mpass_detectors::{benign_loss, DetectorExt, WhiteBoxModel, WhiteBoxSession};
use mpass_engine::metrics as trace;
use mpass_ml::{Adam, ParamBuf};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Optimizer hyper-parameters. The paper uses Adam with η = 0.01 and
/// γ = 50 iterations; this reproduction spends a smaller per-round budget
/// (`rounds × iterations` ≤ γ) between hard-label queries, with a larger
/// step size to cover the same embedding-space distance in fewer steps
/// (Adam's normalized steps make lr × iterations the distance budget).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Adam learning rate η.
    pub lr: f32,
    /// Gradient iterations per call to [`EnsembleOptimizer::run`].
    pub iterations: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig { lr: 0.12, iterations: 6 }
    }
}

/// Index of the first minimum of `vals` under a strict-`<` first-win scan,
/// or `None` when nothing compares below +∞. Split into a min-reduction
/// and a first-equal scan so both passes vectorize; the selected index is
/// identical to the branchy scan's (`==` pairs ±0.0, and NaNs lose every
/// comparison in both formulations).
fn argmin256(vals: &[f32; 256]) -> Option<usize> {
    let mut best = f32::INFINITY;
    for &d in vals.iter() {
        if d < best {
            best = d;
        }
    }
    if best == f32::INFINITY {
        return None;
    }
    vals.iter().position(|&d| d == best)
}

/// One optimizable variable of Eq. 2.
#[derive(Debug, Clone, Copy)]
enum Var {
    /// Independent byte at a file offset; one tracked slot.
    Free { off: usize, slot: usize },
    /// Cover/key pair sharing one variable; two tracked slots.
    Coupled { pair: CoupledByte, cover_slot: usize, key_slot: usize },
}

/// Per-model continuous optimization state over all tracked slots.
struct ModelState {
    z: ParamBuf,
    dim: usize,
    window: usize,
    /// `‖e(b)‖²` for every candidate byte `b`, precomputed once: the
    /// mapping step ranks candidates by `‖e(b)‖² − 2⟨e(b), z⟩`, which
    /// orders identically to `‖e(b) − z‖²` (the `‖z‖²` term is constant
    /// per slot) without forming the difference vector.
    norms: Vec<f32>,
    /// Transposed embedding columns `et[c · 256 + b] = e(b)[c]`: the
    /// candidate sweep walks 256-wide contiguous rows (one axpy per
    /// embedding component) instead of 256 strided `dim`-length dots, so
    /// the compiler vectorizes across candidates. Accumulating component
    /// by component reproduces the sequential-dot rounding exactly.
    et: Vec<f32>,
}

/// The ensemble optimizer over one [`ModifiedSample`].
///
/// Holds one warm [`WhiteBoxSession`] per model: across the gradient
/// iterations (and across repeated [`EnsembleOptimizer::run`] calls of an
/// attack's query rounds) only the bytes the mapping step rewrote are
/// marked dirty, so each model re-scores a handful of conv windows instead
/// of its whole input window.
pub struct EnsembleOptimizer<'a> {
    models: Vec<&'a dyn WhiteBoxModel>,
    cfg: OptimizerConfig,
    vars: Vec<Var>,
    /// File offset of every tracked slot (cover offsets and key offsets).
    slot_offsets: Vec<usize>,
    states: Vec<ModelState>,
    adam: Adam,
    sessions: Vec<Box<dyn WhiteBoxSession + 'a>>,
    /// Byte spans rewritten since the sessions last scored the sample.
    dirty: Vec<Range<usize>>,
    /// Reusable input-gradient buffer shared across models and iterations.
    grad: Vec<f32>,
}

impl<'a> EnsembleOptimizer<'a> {
    /// Set up the optimizer for `sample` against `models`.
    pub fn new(
        models: Vec<&'a dyn WhiteBoxModel>,
        sample: &ModifiedSample,
        cfg: OptimizerConfig,
    ) -> Self {
        let max_window = models.iter().map(|m| m.window()).max().unwrap_or(0);
        let mut vars = Vec::new();
        let mut slot_offsets = Vec::new();
        for &off in &sample.free_offsets {
            if off < max_window {
                vars.push(Var::Free { off, slot: slot_offsets.len() });
                slot_offsets.push(off);
            }
        }
        for &pair in &sample.coupled {
            if pair.cover_offset < max_window {
                let cover_slot = slot_offsets.len();
                slot_offsets.push(pair.cover_offset);
                let key_slot = slot_offsets.len();
                slot_offsets.push(pair.key_offset);
                vars.push(Var::Coupled { pair, cover_slot, key_slot });
            }
        }
        let states = models
            .iter()
            .map(|m| {
                let dim = m.embedding().dim();
                let mut z = Vec::with_capacity(slot_offsets.len() * dim);
                for &off in &slot_offsets {
                    let byte = sample.bytes[off] as usize;
                    z.extend_from_slice(m.embedding().vector(byte));
                }
                let mut et = vec![0.0f32; dim * 256];
                for b in 0..256 {
                    for (c, &v) in m.embedding().vector(b).iter().enumerate() {
                        et[c * 256 + b] = v;
                    }
                }
                ModelState {
                    z: ParamBuf::new(z),
                    dim,
                    window: m.window(),
                    norms: m.embedding().squared_norms(256),
                    et,
                }
            })
            .collect();
        let sessions = models.iter().map(|&m| m.session()).collect();
        EnsembleOptimizer {
            models,
            adam: Adam::with_lr(cfg.lr),
            cfg,
            vars,
            slot_offsets,
            states,
            sessions,
            dirty: Vec::new(),
            grad: Vec::new(),
        }
    }

    /// Set up the optimizer from a mixed detector roster: members exposing
    /// a white-box interface ([`DetectorExt::as_white_box`]) become the
    /// known-model ensemble, the rest are skipped. Callers hold one roster
    /// instead of parallel `&dyn Detector` / `&dyn WhiteBoxModel` lists.
    pub fn from_roster(
        roster: &[&'a dyn DetectorExt],
        sample: &ModifiedSample,
        cfg: OptimizerConfig,
    ) -> Self {
        let models: Vec<&'a dyn WhiteBoxModel> =
            roster.iter().filter_map(|d| d.as_white_box()).collect();
        EnsembleOptimizer::new(models, sample, cfg)
    }

    /// Number of known models in the ensemble.
    pub fn model_count(&self) -> usize {
        self.models.len()
    }

    /// Number of variables under optimization.
    pub fn position_count(&self) -> usize {
        self.vars.len()
    }

    /// Current ensemble loss (sum of per-model benign-direction losses).
    /// A pure forward pass — no gradients, no sessions touched.
    pub fn ensemble_loss(&self, bytes: &[u8]) -> f32 {
        self.models.iter().map(|m| benign_loss(m.raw_score(bytes))).sum()
    }

    /// Ensemble loss of a whole candidate set in one pass per model,
    /// appended to `out` in input order. Each model scores the candidates
    /// through its batched margin path ([`Detector::raw_score_batch`]),
    /// so per-candidate dispatch and scratch setup are paid once per model
    /// instead of once per (model, candidate). Results are bit-identical
    /// to per-candidate [`EnsembleOptimizer::ensemble_loss`] calls.
    pub fn ensemble_loss_batch(&self, candidates: &[&[u8]], out: &mut Vec<f32>) {
        let start = out.len();
        out.extend(candidates.iter().map(|_| 0.0f32));
        let mut margins = Vec::with_capacity(candidates.len());
        for m in &self.models {
            margins.clear();
            m.raw_score_batch(candidates, &mut margins);
            for (total, &raw) in out[start..].iter_mut().zip(&margins) {
                *total += benign_loss(raw);
            }
        }
    }

    /// Fill `scores[b]` with `Σ_F ‖e_F(b)‖² − 2⟨e_F(b), z_F[slot]⟩` over
    /// the models that can see `slot` — the joint nearest-token objective
    /// up to a per-slot constant. One norm-table sweep per (model, slot),
    /// shared by free variables and both halves of a coupled pair.
    fn fill_slot_scores(&self, slot: usize, scores: &mut [f32; 256]) {
        let mut acc = [0.0f32; 256];
        let mut first = true;
        for state in &self.states {
            if self.slot_offsets[slot] >= state.window {
                continue; // invisible to this model
            }
            let z = &state.z.w[slot * state.dim..(slot + 1) * state.dim];
            // acc[b] = ⟨e(b), z⟩, accumulated component-by-component over
            // contiguous transposed columns — the same left-associated
            // addition sequence as a per-candidate sequential dot, but 256
            // candidates per vectorized pass. The ubiquitous dim = 4 case
            // fuses all components and the norm combine into one pass so
            // the accumulator never round-trips through memory.
            if let [z0, z1, z2, z3] = *z {
                let (c0, rest) = state.et.split_at(256);
                let (c1, rest) = rest.split_at(256);
                let (c2, c3) = rest.split_at(256);
                let it = scores
                    .iter_mut()
                    .zip(&state.norms)
                    .zip(c0.iter().zip(c1).zip(c2.iter().zip(c3)));
                if first {
                    for ((s, &n), ((&e0, &e1), (&e2, &e3))) in it {
                        let a = e0 * z0 + e1 * z1 + e2 * z2 + e3 * z3;
                        *s = n - 2.0 * a;
                    }
                } else {
                    for ((s, &n), ((&e0, &e1), (&e2, &e3))) in it {
                        let a = e0 * z0 + e1 * z1 + e2 * z2 + e3 * z3;
                        *s += n - 2.0 * a;
                    }
                }
                first = false;
                continue;
            }
            for (c, &zc) in z.iter().enumerate() {
                let col = &state.et[c * 256..(c + 1) * 256];
                if c == 0 {
                    for (a, &e) in acc.iter_mut().zip(col) {
                        *a = e * zc;
                    }
                } else {
                    for (a, &e) in acc.iter_mut().zip(col) {
                        *a += e * zc;
                    }
                }
            }
            if state.dim == 0 {
                acc.fill(0.0);
            }
            if first {
                for ((s, &n), &a) in scores.iter_mut().zip(&state.norms).zip(&acc) {
                    *s = n - 2.0 * a;
                }
                first = false;
            } else {
                for ((s, &n), &a) in scores.iter_mut().zip(&state.norms).zip(&acc) {
                    *s += n - 2.0 * a;
                }
            }
        }
        if first {
            scores.fill(0.0); // slot invisible to every model
        }
    }

    /// Run `cfg.iterations` gradient iterations, mutating the sample's
    /// bytes (and coupled keys) in place. Returns the ensemble loss after
    /// the final mapping step. Each iteration's pre-step ensemble loss is
    /// recorded to the `optimize/loss` metrics series, giving the sink a
    /// loss curve per shard at no extra inference cost.
    ///
    /// Inference runs through warm per-model sessions: between calls the
    /// optimizer remembers which bytes it rewrote, so `sample.bytes` must
    /// not be mutated by anyone else while this optimizer is alive (the
    /// attack loop only *queries* between rounds, which is read-only).
    pub fn run(&mut self, sample: &mut ModifiedSample) -> f32 {
        let mut cover_scores = [0.0f32; 256];
        let mut key_scores = [0.0f32; 256];
        let mut rotated = [0.0f32; 256];
        let mut combined = [0.0f32; 256];
        for _ in 0..self.cfg.iterations {
            // Gradient step on every model's embedding-space state. Only
            // the windows overlapping bytes rewritten by the previous
            // mapping step are recomputed.
            let mut iteration_loss = 0.0f32;
            for (sess, state) in self.sessions.iter_mut().zip(&mut self.states) {
                let loss = sess.loss_grad_delta(&sample.bytes, &self.dirty, &mut self.grad);
                iteration_loss += loss;
                for (slot, &off) in self.slot_offsets.iter().enumerate() {
                    if off >= state.window {
                        continue;
                    }
                    let g = &self.grad[off * state.dim..(off + 1) * state.dim];
                    state.z.g[slot * state.dim..(slot + 1) * state.dim].copy_from_slice(g);
                }
                self.adam.step(&mut state.z);
            }
            self.dirty.clear(); // every session has now seen those spans
            trace::series("optimize/loss", f64::from(iteration_loss));
            // Map back to bytes, jointly over models and (for coupled
            // variables) jointly over the cover and the induced key byte.
            for vi in 0..self.vars.len() {
                match self.vars[vi] {
                    Var::Free { off, slot } => {
                        self.fill_slot_scores(slot, &mut cover_scores);
                        let best = argmin256(&cover_scores)
                            .map_or(sample.bytes[off], |b| b as u8);
                        if best != sample.bytes[off] {
                            sample.bytes[off] = best;
                            self.dirty.push(off..off + 1);
                        }
                    }
                    Var::Coupled { pair, cover_slot, key_slot } => {
                        self.fill_slot_scores(cover_slot, &mut cover_scores);
                        self.fill_slot_scores(key_slot, &mut key_scores);
                        // Candidate `b` induces key `b − original`, so the
                        // key scores seen along the candidate axis are a
                        // rotation of `key_scores` — realign once and the
                        // joint objective is an elementwise sum instead of
                        // a per-candidate gather.
                        let o = pair.original as usize;
                        let split = 256 - o;
                        rotated[..o].copy_from_slice(&key_scores[split..]);
                        rotated[o..].copy_from_slice(&key_scores[..split]);
                        for ((d, &c), &k) in
                            combined.iter_mut().zip(&cover_scores).zip(&rotated)
                        {
                            *d = c + k;
                        }
                        let best = argmin256(&combined)
                            .map_or(sample.bytes[pair.cover_offset], |b| b as u8);
                        if best != sample.bytes[pair.cover_offset] {
                            sample.bytes[pair.cover_offset] = best;
                            sample.bytes[pair.key_offset] =
                                crate::recovery::rekey(best, pair.original);
                            self.dirty.push(pair.cover_offset..pair.cover_offset + 1);
                            self.dirty.push(pair.key_offset..pair.key_offset + 1);
                        }
                    }
                }
            }
        }
        // Final loss through the same incremental sessions — the mapping
        // step's spans are still dirty, so this re-scores a few windows
        // instead of re-running every model end to end.
        let mut total = 0.0;
        for sess in &mut self.sessions {
            total += benign_loss(sess.score_delta(&sample.bytes, &self.dirty));
        }
        self.dirty.clear();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modify::{modify, ModificationConfig};
    use mpass_corpus::{BenignPool, CorpusConfig, Dataset};
    use mpass_detectors::train::training_pairs;
    use mpass_detectors::{ByteConvConfig, MalConv, MalGcg, MalGcgConfig, NonNeg};
    use mpass_sandbox::Sandbox;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    struct World {
        ds: Dataset,
        pool: BenignPool,
        malconv: MalConv,
        nonneg: NonNeg,
        malgcg: MalGcg,
    }

    fn world() -> World {
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 14,
            n_benign: 14,
            seed: 41,
            no_slack_fraction: 0.0,
        });
        let pool = BenignPool::generate(4, 7);
        let samples: Vec<_> = ds.samples.iter().collect();
        let pairs = training_pairs(&samples);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut malconv = MalConv::new(ByteConvConfig::tiny(), &mut rng);
        malconv.train(&pairs, 5, 5e-3, &mut rng);
        let mut nonneg = NonNeg::new(ByteConvConfig::tiny(), &mut rng);
        nonneg.train(&pairs, 10, 5e-3, &mut rng);
        let mut malgcg = MalGcg::new(MalGcgConfig::tiny(), &mut rng);
        malgcg.train(&pairs, 5, 5e-3, &mut rng);
        World { ds, pool, malconv, nonneg, malgcg }
    }

    #[test]
    fn optimization_reduces_ensemble_loss() {
        let w = world();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let models: Vec<&dyn mpass_detectors::WhiteBoxModel> =
            vec![&w.malconv, &w.nonneg, &w.malgcg];
        let cfg = OptimizerConfig { lr: 0.05, iterations: 6 };
        // The whole candidate set is scored as one batch before the
        // optimizer rounds — one batched margin pass per model instead of
        // one forward per (model, candidate).
        let mut candidates: Vec<_> = w
            .ds
            .malware()
            .into_iter()
            .take(4)
            .map(|s| modify(s, &w.pool, &ModificationConfig::default(), &mut rng).unwrap())
            .collect();
        let mut before = Vec::new();
        {
            let probe = EnsembleOptimizer::new(models.clone(), &candidates[0], cfg);
            let byte_refs: Vec<&[u8]> =
                candidates.iter().map(|ms| ms.bytes.as_slice()).collect();
            probe.ensemble_loss_batch(&byte_refs, &mut before);
            // Batching is a throughput optimization, not a numerics change.
            for (i, ms) in candidates.iter().enumerate() {
                assert_eq!(before[i].to_bits(), probe.ensemble_loss(&ms.bytes).to_bits());
            }
        }
        let mut improved = 0;
        for (ms, before) in candidates.iter_mut().zip(before) {
            let mut opt = EnsembleOptimizer::new(models.clone(), ms, cfg);
            let after = opt.run(ms);
            if after < before {
                improved += 1;
            }
        }
        assert!(improved >= 3, "loss improved on only {improved}/4 samples");
    }

    #[test]
    fn optimization_preserves_functionality() {
        let w = world();
        let sandbox = Sandbox::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let models: Vec<&dyn mpass_detectors::WhiteBoxModel> =
            vec![&w.malconv, &w.malgcg];
        for s in w.ds.malware().into_iter().take(3) {
            let mut ms =
                modify(s, &w.pool, &ModificationConfig::default(), &mut rng).unwrap();
            let mut opt = EnsembleOptimizer::new(
                models.clone(),
                &ms,
                OptimizerConfig { lr: 0.05, iterations: 4 },
            );
            opt.run(&mut ms);
            let verdict = sandbox.verify_functionality(&s.bytes, &ms.bytes);
            assert!(verdict.is_preserved(), "{}: {verdict}", s.name);
            assert!(ms.reparse().is_ok());
        }
    }

    #[test]
    fn key_coupling_is_maintained_through_optimization() {
        let w = world();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let s = w.ds.malware()[0];
        let mut ms = modify(s, &w.pool, &ModificationConfig::default(), &mut rng).unwrap();
        let models: Vec<&dyn mpass_detectors::WhiteBoxModel> = vec![&w.malgcg];
        let mut opt = EnsembleOptimizer::new(
            models,
            &ms,
            OptimizerConfig { lr: 0.05, iterations: 3 },
        );
        opt.run(&mut ms);
        for c in &ms.coupled {
            let cover = ms.bytes[c.cover_offset];
            let key = ms.bytes[c.key_offset];
            assert_eq!(cover.wrapping_sub(key), c.original, "coupling violated");
        }
    }

    #[test]
    fn from_roster_keeps_only_white_box_members() {
        let w = world();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let s = w.ds.malware()[0];
        let ms = modify(s, &w.pool, &ModificationConfig::default(), &mut rng).unwrap();
        // A mixed roster: two gradient-capable models and one opaque stub.
        struct Opaque;
        impl mpass_detectors::Detector for Opaque {
            fn name(&self) -> &str {
                "opaque"
            }
            fn score(&self, _: &[u8]) -> f32 {
                1.0
            }
        }
        impl DetectorExt for Opaque {}
        let opaque = Opaque;
        let roster: Vec<&dyn DetectorExt> = vec![&w.malconv, &opaque, &w.malgcg];
        let opt = EnsembleOptimizer::from_roster(&roster, &ms, OptimizerConfig::default());
        assert_eq!(opt.model_count(), 2);
    }

    #[test]
    fn positions_beyond_window_are_excluded() {
        let w = world();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let s = w.ds.malware()[0];
        let ms = modify(s, &w.pool, &ModificationConfig::default(), &mut rng).unwrap();
        let models: Vec<&dyn mpass_detectors::WhiteBoxModel> = vec![&w.malconv];
        let opt = EnsembleOptimizer::new(models, &ms, OptimizerConfig::default());
        // tiny window = 2048; most of the file lies beyond it.
        assert!(opt.position_count() <= ms.position_count());
        assert!(opt.position_count() > 0, "some positions must be visible");
    }
}
