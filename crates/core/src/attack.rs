//! The hard-label black-box attack loop (Fig. 1) and the shared attack
//! abstractions every method in the evaluation implements.

use crate::modify::{modify, ModificationConfig, ModifyError};
use crate::optimize::{EnsembleOptimizer, OptimizerConfig};
use mpass_corpus::{BenignPool, Sample};
use mpass_detectors::{Detector, Verdict, WhiteBoxModel};
use mpass_engine::metrics as trace;
use mpass_engine::{QueryBudget, QueryBudgetExhausted};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A query-counted, budgeted hard-label oracle around a [`Detector`].
///
/// This is the *only* interface attacks get to the target: no scores, no
/// gradients — exactly the paper's threat model. The allowance is an
/// explicit [`QueryBudget`]; exhaustion is a typed error rather than a
/// `None` that reads like a missing verdict.
pub struct HardLabelTarget<'a> {
    detector: &'a dyn Detector,
    budget: QueryBudget,
}

impl<'a> HardLabelTarget<'a> {
    /// Wrap `detector` with a budget of `max_queries`.
    pub fn new(detector: &'a dyn Detector, max_queries: usize) -> Self {
        Self::with_budget(detector, QueryBudget::new(max_queries))
    }

    /// Wrap `detector` with an explicit budget (e.g. a remaining
    /// allowance carried over from another phase).
    pub fn with_budget(detector: &'a dyn Detector, budget: QueryBudget) -> Self {
        HardLabelTarget { detector, budget }
    }

    /// Query the target. Fails with [`QueryBudgetExhausted`] once the
    /// budget is spent; a failed query consumes nothing.
    pub fn query(&mut self, bytes: &[u8]) -> Result<Verdict, QueryBudgetExhausted> {
        self.budget.try_consume()?;
        trace::counter("queries", 1);
        let _span = trace::span("stage/query");
        Ok(self.detector.classify(bytes))
    }

    /// Queries consumed so far.
    pub fn queries(&self) -> usize {
        self.budget.used()
    }

    /// Remaining budget.
    pub fn remaining(&self) -> usize {
        self.budget.remaining()
    }

    /// The budget state itself.
    pub fn budget(&self) -> &QueryBudget {
        &self.budget
    }

    /// The target's display name.
    pub fn name(&self) -> &str {
        self.detector.name()
    }
}

/// Result of attacking one sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// The attacked sample's name.
    pub sample: String,
    /// Whether an adversarial example bypassed the target.
    pub evaded: bool,
    /// Queries consumed for this sample.
    pub queries: usize,
    /// The final adversarial bytes (present when `evaded`).
    pub adversarial: Option<Vec<u8>>,
    /// Original file size.
    pub original_size: usize,
    /// Final file size (of the AE when evaded, else of the last attempt).
    pub final_size: usize,
}

impl AttackOutcome {
    /// File-size increment ratio (the paper's per-sample APR term).
    pub fn appending_rate(&self) -> f64 {
        (self.final_size as f64 - self.original_size as f64) / self.original_size.max(1) as f64
    }
}

/// An evasion attack under the hard-label threat model.
pub trait Attack {
    /// Display name used in result tables.
    fn name(&self) -> &str;

    /// Attack `sample` against `target` within the target's query budget.
    fn attack(&mut self, sample: &Sample, target: &mut HardLabelTarget<'_>) -> AttackOutcome;
}

/// Aggregate metrics over attack outcomes (paper §IV-A).
pub mod metrics {
    use super::AttackOutcome;
    use serde::{Deserialize, Serialize};

    /// ASR / AVQ / APR summary of one attack-vs-target run.
    #[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
    pub struct AttackStats {
        /// Attack success rate in percent.
        pub asr: f64,
        /// Average queries per successfully generated AE.
        pub avq: f64,
        /// Average appending (size-increment) rate in percent, over
        /// successful AEs.
        pub apr: f64,
        /// Number of samples attacked.
        pub samples: usize,
    }

    /// Summarize outcomes. AVQ and APR follow the paper's usage: they are
    /// computed over the samples for which an AE was successfully
    /// generated (failed samples would otherwise pin AVQ at the budget).
    pub fn summarize(outcomes: &[AttackOutcome]) -> AttackStats {
        let n = outcomes.len();
        let evaded: Vec<&AttackOutcome> = outcomes.iter().filter(|o| o.evaded).collect();
        let asr = 100.0 * evaded.len() as f64 / n.max(1) as f64;
        let avq = if evaded.is_empty() {
            0.0
        } else {
            evaded.iter().map(|o| o.queries as f64).sum::<f64>() / evaded.len() as f64
        };
        let apr = if evaded.is_empty() {
            0.0
        } else {
            100.0 * evaded.iter().map(|o| o.appending_rate()).sum::<f64>()
                / evaded.len() as f64
        };
        AttackStats { asr, avq, apr, samples: n }
    }
}

/// Configuration of the full MPass attack.
///
/// Construct via [`MPassConfig::builder`] (or keep [`Default`]). Fields
/// are private as of the engine redesign — the old field-literal /
/// struct-update syntax (`MPassConfig { seed, ..Default::default() }`)
/// is gone, because it silently accepted degenerate values like zero
/// restarts; the builder validates on [`MPassConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MPassConfig {
    /// Fresh modifications tried (each with new benign content and a new
    /// shuffle) before giving up, budget permitting.
    max_restarts: usize,
    /// Optimize-then-query rounds per modification.
    rounds_per_restart: usize,
    /// Modification engine settings.
    modification: ModificationConfig,
    /// Optimizer settings (η, iterations per round).
    optimizer: OptimizerConfig,
    /// Base seed; per-sample randomness derives from it and the sample
    /// name, so attacks are reproducible sample-by-sample.
    seed: u64,
}

impl Default for MPassConfig {
    fn default() -> Self {
        MPassConfig {
            max_restarts: 3,
            rounds_per_restart: 4,
            modification: ModificationConfig::default(),
            optimizer: OptimizerConfig::default(),
            seed: 0x4D50_4153,
        }
    }
}

impl MPassConfig {
    /// Start a builder pre-loaded with the validated defaults.
    pub fn builder() -> MPassConfigBuilder {
        MPassConfigBuilder::default()
    }

    /// Re-open this configuration as a builder, for deriving variants
    /// (ablations flip one knob and keep the rest).
    pub fn to_builder(&self) -> MPassConfigBuilder {
        MPassConfigBuilder { cfg: self.clone() }
    }

    pub fn max_restarts(&self) -> usize {
        self.max_restarts
    }

    pub fn rounds_per_restart(&self) -> usize {
        self.rounds_per_restart
    }

    pub fn modification(&self) -> &ModificationConfig {
        &self.modification
    }

    pub fn optimizer(&self) -> OptimizerConfig {
        self.optimizer
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Why an [`MPassConfigBuilder`] refused to produce a config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MPassConfigError {
    /// `max_restarts` must be at least 1.
    ZeroRestarts,
    /// `rounds_per_restart` must be at least 1.
    ZeroRounds,
    /// The optimizer learning rate must be finite and positive.
    BadLearningRate,
}

impl std::fmt::Display for MPassConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MPassConfigError::ZeroRestarts => write!(f, "max_restarts must be >= 1"),
            MPassConfigError::ZeroRounds => write!(f, "rounds_per_restart must be >= 1"),
            MPassConfigError::BadLearningRate => {
                write!(f, "optimizer.lr must be finite and > 0")
            }
        }
    }
}

impl std::error::Error for MPassConfigError {}

/// Typed builder for [`MPassConfig`]; every setter keeps the remaining
/// fields at their defaults, and [`MPassConfigBuilder::build`] validates
/// the combination.
#[derive(Debug, Clone, Default)]
pub struct MPassConfigBuilder {
    cfg: MPassConfig,
}

impl MPassConfigBuilder {
    pub fn max_restarts(mut self, n: usize) -> Self {
        self.cfg.max_restarts = n;
        self
    }

    pub fn rounds_per_restart(mut self, n: usize) -> Self {
        self.cfg.rounds_per_restart = n;
        self
    }

    pub fn modification(mut self, modification: ModificationConfig) -> Self {
        self.cfg.modification = modification;
        self
    }

    pub fn optimizer(mut self, optimizer: OptimizerConfig) -> Self {
        self.cfg.optimizer = optimizer;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<MPassConfig, MPassConfigError> {
        if self.cfg.max_restarts == 0 {
            return Err(MPassConfigError::ZeroRestarts);
        }
        if self.cfg.rounds_per_restart == 0 {
            return Err(MPassConfigError::ZeroRounds);
        }
        // `optimizer.iterations == 0` is deliberately allowed: it disables
        // the optimization stage, which the design ablation sweeps over.
        if !(self.cfg.optimizer.lr.is_finite() && self.cfg.optimizer.lr > 0.0) {
            return Err(MPassConfigError::BadLearningRate);
        }
        Ok(self.cfg)
    }
}

/// The MPass attack: modification with runtime recovery, then ensemble
/// transfer optimization, under a hard-label query budget.
pub struct MPassAttack<'a> {
    models: Vec<&'a dyn WhiteBoxModel>,
    pool: &'a BenignPool,
    cfg: MPassConfig,
}

impl<'a> MPassAttack<'a> {
    /// Assemble the attack from known models and a benign-content pool.
    pub fn new(
        models: Vec<&'a dyn WhiteBoxModel>,
        pool: &'a BenignPool,
        cfg: MPassConfig,
    ) -> Self {
        MPassAttack { models, pool, cfg }
    }

    fn sample_rng(&self, sample: &Sample) -> ChaCha8Rng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in sample.name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        ChaCha8Rng::seed_from_u64(self.cfg.seed ^ h)
    }
}

impl Attack for MPassAttack<'_> {
    fn name(&self) -> &str {
        "MPass"
    }

    fn attack(&mut self, sample: &Sample, target: &mut HardLabelTarget<'_>) -> AttackOutcome {
        let mut rng = self.sample_rng(sample);
        let original_size = sample.size();
        let mut last_size = original_size;
        for _restart in 0..self.cfg.max_restarts {
            let modified = {
                let _span = trace::span("stage/modify");
                modify(sample, self.pool, &self.cfg.modification, &mut rng)
            };
            let mut ms = match modified {
                Ok(ms) => ms,
                Err(ModifyError::NoEntrySection | ModifyError::Pe(_)) => break,
            };
            last_size = ms.bytes.len();
            match target.query(&ms.bytes) {
                Ok(Verdict::Benign) => {
                    return AttackOutcome {
                        sample: sample.name.clone(),
                        evaded: true,
                        queries: target.queries(),
                        adversarial: Some(ms.bytes),
                        original_size,
                        final_size: last_size,
                    }
                }
                Ok(Verdict::Malicious) => {}
                Err(QueryBudgetExhausted { .. }) => break,
            }
            let mut opt =
                EnsembleOptimizer::new(self.models.clone(), &ms, self.cfg.optimizer);
            for _round in 0..self.cfg.rounds_per_restart {
                {
                    let _span = trace::span("stage/optimize");
                    opt.run(&mut ms);
                }
                last_size = ms.bytes.len();
                match target.query(&ms.bytes) {
                    Ok(Verdict::Benign) => {
                        return AttackOutcome {
                            sample: sample.name.clone(),
                            evaded: true,
                            queries: target.queries(),
                            adversarial: Some(ms.bytes),
                            original_size,
                            final_size: last_size,
                        }
                    }
                    Ok(Verdict::Malicious) => {}
                    Err(QueryBudgetExhausted { .. }) => {
                        return AttackOutcome {
                            sample: sample.name.clone(),
                            evaded: false,
                            queries: target.queries(),
                            adversarial: None,
                            original_size,
                            final_size: last_size,
                        }
                    }
                }
            }
        }
        AttackOutcome {
            sample: sample.name.clone(),
            evaded: false,
            queries: target.queries(),
            adversarial: None,
            original_size,
            final_size: last_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_corpus::{CorpusConfig, Dataset};
    use mpass_detectors::train::training_pairs;
    use mpass_detectors::{ByteConvConfig, MalConv, MalGcg, MalGcgConfig};
    use mpass_sandbox::Sandbox;

    struct World {
        ds: Dataset,
        pool: BenignPool,
        malconv: MalConv,
        malgcg: MalGcg,
    }

    fn world() -> World {
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 16,
            n_benign: 16,
            seed: 51,
            no_slack_fraction: 0.1,
        });
        let pool = BenignPool::generate(4, 17);
        let samples: Vec<_> = ds.samples.iter().collect();
        let pairs = training_pairs(&samples);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut malconv = MalConv::new(ByteConvConfig::tiny(), &mut rng);
        malconv.train(&pairs, 6, 5e-3, &mut rng);
        let mut malgcg = MalGcg::new(MalGcgConfig::tiny(), &mut rng);
        malgcg.train(&pairs, 6, 5e-3, &mut rng);
        World { ds, pool, malconv, malgcg }
    }

    #[test]
    fn target_budget_enforced() {
        let w = world();
        let mut t = HardLabelTarget::new(&w.malconv, 2);
        assert!(t.query(&w.ds.samples[0].bytes).is_ok());
        assert!(t.query(&w.ds.samples[0].bytes).is_ok());
        assert_eq!(
            t.query(&w.ds.samples[0].bytes),
            Err(QueryBudgetExhausted { limit: 2 })
        );
        assert_eq!(t.queries(), 2);
        assert_eq!(t.remaining(), 0);
        assert!(t.budget().is_exhausted());
    }

    #[test]
    fn exhausted_queries_consume_nothing() {
        let w = world();
        let mut t = HardLabelTarget::new(&w.malconv, 1);
        assert!(t.query(&w.ds.samples[0].bytes).is_ok());
        for _ in 0..5 {
            assert!(t.query(&w.ds.samples[0].bytes).is_err());
        }
        assert_eq!(t.queries(), 1);
    }

    #[test]
    fn target_accepts_explicit_budget() {
        let w = world();
        let mut budget = QueryBudget::new(3);
        budget.try_consume().unwrap();
        let mut t = HardLabelTarget::with_budget(&w.malconv, budget);
        assert_eq!(t.remaining(), 2);
        assert!(t.query(&w.ds.samples[0].bytes).is_ok());
        assert_eq!(t.queries(), 2);
    }

    #[test]
    fn builder_validates_and_round_trips() {
        let cfg = MPassConfig::builder()
            .max_restarts(5)
            .rounds_per_restart(2)
            .seed(99)
            .build()
            .unwrap();
        assert_eq!(cfg.max_restarts(), 5);
        assert_eq!(cfg.rounds_per_restart(), 2);
        assert_eq!(cfg.seed(), 99);
        // Unset knobs keep the defaults.
        assert_eq!(cfg.modification(), &ModificationConfig::default());

        // Variants derive from an existing config.
        let variant = cfg.to_builder().seed(1).build().unwrap();
        assert_eq!(variant.max_restarts(), 5);
        assert_eq!(variant.seed(), 1);

        assert_eq!(
            MPassConfig::builder().max_restarts(0).build(),
            Err(MPassConfigError::ZeroRestarts)
        );
        assert_eq!(
            MPassConfig::builder().rounds_per_restart(0).build(),
            Err(MPassConfigError::ZeroRounds)
        );
        // Zero iterations disables optimization (a supported ablation).
        assert!(MPassConfig::builder()
            .optimizer(OptimizerConfig { lr: 0.05, iterations: 0 })
            .build()
            .is_ok());
        assert_eq!(
            MPassConfig::builder()
                .optimizer(OptimizerConfig { lr: -1.0, iterations: 3 })
                .build(),
            Err(MPassConfigError::BadLearningRate)
        );
    }

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(MPassConfig::builder().build().unwrap(), MPassConfig::default());
    }

    #[test]
    fn mpass_evades_malconv_with_few_queries() {
        let w = world();
        // Attack MalConv using MalGcg as the known model (transfer).
        let mut attack = MPassAttack::new(
            vec![&w.malgcg],
            &w.pool,
            MPassConfig::default(),
        );
        let mut outcomes = Vec::new();
        for s in w.ds.malware().into_iter().take(6) {
            let mut target = HardLabelTarget::new(&w.malconv, 100);
            outcomes.push(attack.attack(s, &mut target));
        }
        let stats = metrics::summarize(&outcomes);
        // Toy scale: one tiny surrogate, six samples — a sanity floor that
        // transfer happens at all; full-scale numbers live in
        // mpass-experiments.
        assert!(stats.asr >= 30.0, "ASR {}", stats.asr);
        assert!(stats.avq <= 25.0, "AVQ {}", stats.avq);
    }

    #[test]
    fn successful_aes_preserve_functionality() {
        let w = world();
        let sandbox = Sandbox::new();
        let mut attack =
            MPassAttack::new(vec![&w.malgcg], &w.pool, MPassConfig::default());
        for s in w.ds.malware().into_iter().take(4) {
            let mut target = HardLabelTarget::new(&w.malconv, 100);
            let outcome = attack.attack(s, &mut target);
            if let Some(ae) = &outcome.adversarial {
                let verdict = sandbox.verify_functionality(&s.bytes, ae);
                assert!(verdict.is_preserved(), "{}: {verdict}", s.name);
            }
        }
    }

    #[test]
    fn attack_is_reproducible() {
        let w = world();
        let s = w.ds.malware()[0];
        let run = || {
            let mut attack =
                MPassAttack::new(vec![&w.malgcg], &w.pool, MPassConfig::default());
            let mut target = HardLabelTarget::new(&w.malconv, 100);
            attack.attack(s, &mut target)
        };
        let a = run();
        let b = run();
        assert_eq!(a.evaded, b.evaded);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.adversarial, b.adversarial);
    }

    #[test]
    fn attack_records_metrics_when_collector_installed() {
        let w = world();
        let s = w.ds.malware()[0];
        mpass_engine::metrics::install(mpass_engine::Collector::default());
        mpass_engine::metrics::begin_sample(&s.name);
        let mut attack =
            MPassAttack::new(vec![&w.malgcg], &w.pool, MPassConfig::default());
        let mut target = HardLabelTarget::new(&w.malconv, 100);
        let outcome = attack.attack(s, &mut target);
        mpass_engine::metrics::end_sample();
        let shard = mpass_engine::metrics::take().unwrap().finish("test", 0.0);
        assert_eq!(shard.counters["queries"], outcome.queries as u64);
        assert_eq!(shard.samples.len(), 1);
        assert_eq!(
            shard.samples[0].counters["queries"],
            outcome.queries as u64
        );
        assert!(shard.timings.contains_key("stage/modify"));
        assert!(shard.timings.contains_key("stage/query"));
    }

    #[test]
    fn metrics_summarize_correctly() {
        let outcomes = vec![
            AttackOutcome {
                sample: "a".into(),
                evaded: true,
                queries: 2,
                adversarial: Some(vec![]),
                original_size: 100,
                final_size: 150,
            },
            AttackOutcome {
                sample: "b".into(),
                evaded: true,
                queries: 4,
                adversarial: Some(vec![]),
                original_size: 100,
                final_size: 250,
            },
            AttackOutcome {
                sample: "c".into(),
                evaded: false,
                queries: 100,
                adversarial: None,
                original_size: 100,
                final_size: 100,
            },
        ];
        let stats = metrics::summarize(&outcomes);
        assert!((stats.asr - 200.0 / 3.0).abs() < 1e-9);
        assert!((stats.avq - 3.0).abs() < 1e-9);
        assert!((stats.apr - 100.0).abs() < 1e-9); // (50% + 150%)/2
        assert_eq!(stats.samples, 3);
    }

    #[test]
    fn empty_outcomes_summarize_to_zero() {
        let stats = metrics::summarize(&[]);
        assert_eq!(stats.asr, 0.0);
        assert_eq!(stats.avq, 0.0);
        assert_eq!(stats.samples, 0);
    }
}
