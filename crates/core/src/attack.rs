//! The hard-label black-box attack loop (Fig. 1) and the shared attack
//! abstractions every method in the evaluation implements.

use crate::modify::{modify, ModificationConfig};
use crate::optimize::{EnsembleOptimizer, OptimizerConfig};
use mpass_corpus::{BenignPool, Sample};
use mpass_detectors::{Detector, Oracle, Verdict, WhiteBoxModel};
use mpass_engine::metrics as trace;
use mpass_engine::{
    CircuitBreaker, OracleFault, QueryBudget, QueryBudgetExhausted, QueryError, RetryPolicy,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The transport under a [`HardLabelTarget`]: an in-process detector
/// that never fails, or an [`Oracle`] channel that can fault.
///
/// (An enum rather than a single `&dyn Oracle` field so that plain
/// `&dyn Detector` construction keeps working — trait objects don't
/// unsize-coerce to other trait objects.)
enum Channel<'a> {
    Reliable(&'a dyn Detector),
    Unreliable(&'a dyn Oracle),
}

impl Channel<'_> {
    fn submit(&self, bytes: &[u8]) -> Result<Verdict, OracleFault> {
        match self {
            Channel::Reliable(det) => Ok(det.classify(bytes)),
            Channel::Unreliable(oracle) => oracle.submit(bytes),
        }
    }

    /// Batched submission: one verdict-or-fault per item, in input order.
    fn submit_batch(&self, items: &[&[u8]], out: &mut Vec<Result<Verdict, OracleFault>>) {
        match self {
            Channel::Reliable(det) => {
                let mut verdicts = Vec::with_capacity(items.len());
                det.classify_batch(items, &mut verdicts);
                out.extend(verdicts.into_iter().map(Ok));
            }
            Channel::Unreliable(oracle) => oracle.submit_batch(items, out),
        }
    }

    fn name(&self) -> &str {
        match self {
            Channel::Reliable(det) => det.name(),
            Channel::Unreliable(oracle) => oracle.name(),
        }
    }
}

/// A query-counted, budgeted hard-label oracle around a [`Detector`]
/// (or any fallible [`Oracle`] channel).
///
/// This is the *only* interface attacks get to the target: no scores, no
/// gradients — exactly the paper's threat model. The allowance is an
/// explicit [`QueryBudget`]; exhaustion is a typed error rather than a
/// `None` that reads like a missing verdict.
///
/// ## Budget policy
///
/// The budget meters **delivered verdicts**: each successful query
/// consumes exactly one unit, and a failed query — budget pre-check,
/// transient attempts, retries, breaker refusals — consumes nothing.
/// This keeps the threat model's "N oracle answers" semantics exact and
/// makes transient faults semantically transparent: a retried query
/// yields the same verdict at the same budget position as on a reliable
/// channel. Retry pressure is still observable through the
/// `oracle/retry`, `oracle/backoff_ms` and `oracle/breaker_open`
/// metrics counters.
pub struct HardLabelTarget<'a> {
    channel: Channel<'a>,
    budget: QueryBudget,
    policy: RetryPolicy,
    breaker: CircuitBreaker,
    retry_seed: u64,
    validate_ae: bool,
}

impl<'a> HardLabelTarget<'a> {
    /// Wrap `detector` with a budget of `max_queries`.
    pub fn new(detector: &'a dyn Detector, max_queries: usize) -> Self {
        Self::with_budget(detector, QueryBudget::new(max_queries))
    }

    /// Wrap `detector` with an explicit budget (e.g. a remaining
    /// allowance carried over from another phase).
    pub fn with_budget(detector: &'a dyn Detector, budget: QueryBudget) -> Self {
        HardLabelTarget {
            channel: Channel::Reliable(detector),
            budget,
            policy: RetryPolicy::none(),
            breaker: CircuitBreaker::default(),
            retry_seed: 0,
            validate_ae: false,
        }
    }

    /// Wrap a fallible [`Oracle`] channel, applying `policy` to failed
    /// submissions.
    pub fn unreliable(oracle: &'a dyn Oracle, budget: QueryBudget, policy: RetryPolicy) -> Self {
        HardLabelTarget {
            channel: Channel::Unreliable(oracle),
            budget,
            policy,
            breaker: CircuitBreaker::default(),
            retry_seed: 0,
            validate_ae: false,
        }
    }

    /// Key the deterministic backoff jitter (builder-style).
    pub fn with_retry_seed(mut self, seed: u64) -> Self {
        self.retry_seed = seed;
        self
    }

    /// Gate every submission behind adversarial-example validation
    /// (builder-style): candidate bytes must parse as a PE and round-trip
    /// (`parse(to_bytes(pe)) == pe`) before they reach the oracle.
    /// Invalid candidates fail with [`QueryError::InvalidCandidate`],
    /// consume no budget, and are counted in `oracle/ae_rejected`.
    pub fn with_ae_validation(mut self) -> Self {
        self.validate_ae = true;
        self
    }

    /// Whether the AE validation gate is active.
    pub fn validates_ae(&self) -> bool {
        self.validate_ae
    }

    /// Query the target. Fails with [`QueryError::BudgetExhausted`] once
    /// the budget is spent; on an unreliable channel, failed submissions
    /// are retried per the [`RetryPolicy`] and surface as the other
    /// [`QueryError`] variants when the policy gives up. Only delivered
    /// verdicts consume budget (see the type-level docs).
    pub fn query(&mut self, bytes: &[u8]) -> Result<Verdict, QueryError> {
        if self.budget.is_exhausted() {
            return Err(QueryBudgetExhausted { limit: self.budget.limit() }.into());
        }
        if self.validate_ae && !candidate_is_valid(bytes) {
            trace::counter("oracle/ae_rejected", 1);
            return Err(QueryError::InvalidCandidate);
        }
        if !self.breaker.allows() {
            trace::counter("oracle/breaker_open", 1);
            return Err(QueryError::Fatal);
        }
        let _span = trace::span("stage/query");
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.channel.submit(bytes) {
                Ok(verdict) => {
                    self.breaker.record_success();
                    self.budget
                        .try_consume()
                        .expect("budget pre-checked before submitting");
                    trace::counter("queries", 1);
                    return Ok(verdict);
                }
                Err(OracleFault::Fatal) => {
                    self.breaker.record_failure(&self.policy);
                    return Err(QueryError::Fatal);
                }
                Err(fault) => {
                    if attempt >= self.policy.max_attempts.max(1) {
                        self.breaker.record_failure(&self.policy);
                        return Err(match fault {
                            OracleFault::RateLimited { retry_after_ms } => {
                                QueryError::RateLimited { retry_after_ms }
                            }
                            _ => QueryError::Transient { attempts: attempt },
                        });
                    }
                    trace::counter("oracle/retry", 1);
                    let hint = match fault {
                        OracleFault::RateLimited { retry_after_ms } => retry_after_ms,
                        _ => 0,
                    };
                    let backoff = self.policy.backoff_ms(attempt, self.retry_seed).max(hint);
                    trace::counter("oracle/backoff_ms", backoff);
                    if self.policy.sleep && backoff > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(backoff));
                    }
                }
            }
        }
    }

    /// Query the target with a whole candidate batch, appending one
    /// result per item to `out` in input order.
    ///
    /// Semantics mirror N sequential [`HardLabelTarget::query`] calls:
    ///
    /// * **AE validation is per candidate** — invalid items fail with
    ///   [`QueryError::InvalidCandidate`], are never submitted, and
    ///   consume no budget.
    /// * **Budget is metered per delivered verdict.** Each wave submits at
    ///   most `budget.remaining()` candidates, so a delivery can always
    ///   pay; items the budget defers are only submitted if an earlier
    ///   item failed to deliver, and fail with
    ///   [`QueryError::BudgetExhausted`] otherwise — exactly the
    ///   sequential pre-check order.
    /// * **Only the faulted subset is retried.** Delivered and fatal items
    ///   leave the batch; transient/rate-limited items re-enter the next
    ///   wave with the same per-attempt backoff, counters, and
    ///   `max_attempts` cutoff as a sequential retry loop.
    ///
    /// Batch and sequential paths consume the same budget for the same
    /// outcomes; on a fault-injecting oracle the *schedule alignment*
    /// differs (a batch advances the oracle's submission index item by
    /// item before any retry), so individual faults may land on different
    /// items than a sequential interleaving — transparency holds for
    /// budget accounting, not for fault placement. Both halves of that
    /// statement are pinned by `tests/batch_equivalence.rs`
    /// (`fault_placement_diverges_while_budget_accounting_stays_exact`),
    /// and the retry-before-deferred wave ordering by
    /// `retries_resubmit_ahead_of_budget_deferred_first_attempts`.
    pub fn query_batch(
        &mut self,
        items: &[&[u8]],
        out: &mut Vec<Result<Verdict, QueryError>>,
    ) {
        let start = out.len();
        out.extend(items.iter().map(|_| Err(QueryError::Fatal)));
        let mut unresolved: Vec<usize> = Vec::with_capacity(items.len());
        for (i, bytes) in items.iter().enumerate() {
            if self.validate_ae && !candidate_is_valid(bytes) {
                trace::counter("oracle/ae_rejected", 1);
                out[start + i] = Err(QueryError::InvalidCandidate);
            } else {
                unresolved.push(i);
            }
        }
        let mut attempts = vec![0u32; items.len()];
        let mut batch: Vec<&[u8]> = Vec::new();
        let mut results: Vec<Result<Verdict, OracleFault>> = Vec::new();
        while !unresolved.is_empty() {
            if self.budget.is_exhausted() {
                for &i in &unresolved {
                    out[start + i] =
                        Err(QueryBudgetExhausted { limit: self.budget.limit() }.into());
                }
                return;
            }
            if !self.breaker.allows() {
                for &i in &unresolved {
                    trace::counter("oracle/breaker_open", 1);
                    out[start + i] = Err(QueryError::Fatal);
                }
                return;
            }
            let wave_len = unresolved.len().min(self.budget.remaining());
            let mut deferred = unresolved.split_off(wave_len);
            let wave = std::mem::take(&mut unresolved);
            batch.clear();
            batch.extend(wave.iter().map(|&i| items[i]));
            results.clear();
            {
                let _span = trace::span("stage/query");
                self.channel.submit_batch(&batch, &mut results);
            }
            let mut retry: Vec<usize> = Vec::new();
            for (&i, res) in wave.iter().zip(results.drain(..)) {
                match res {
                    Ok(verdict) => {
                        self.breaker.record_success();
                        self.budget
                            .try_consume()
                            .expect("wave sized to the remaining budget");
                        trace::counter("queries", 1);
                        out[start + i] = Ok(verdict);
                    }
                    Err(OracleFault::Fatal) => {
                        self.breaker.record_failure(&self.policy);
                        out[start + i] = Err(QueryError::Fatal);
                    }
                    Err(fault) => {
                        attempts[i] += 1;
                        if attempts[i] >= self.policy.max_attempts.max(1) {
                            self.breaker.record_failure(&self.policy);
                            out[start + i] = Err(match fault {
                                OracleFault::RateLimited { retry_after_ms } => {
                                    QueryError::RateLimited { retry_after_ms }
                                }
                                _ => QueryError::Transient { attempts: attempts[i] },
                            });
                        } else {
                            trace::counter("oracle/retry", 1);
                            let hint = match fault {
                                OracleFault::RateLimited { retry_after_ms } => retry_after_ms,
                                _ => 0,
                            };
                            let backoff =
                                self.policy.backoff_ms(attempts[i], self.retry_seed).max(hint);
                            trace::counter("oracle/backoff_ms", backoff);
                            if self.policy.sleep && backoff > 0 {
                                std::thread::sleep(std::time::Duration::from_millis(backoff));
                            }
                            retry.push(i);
                        }
                    }
                }
            }
            // Retries go ahead of budget-deferred first attempts, matching
            // the order a sequential loop would reach them in.
            retry.append(&mut deferred);
            unresolved = retry;
        }
    }

    /// Queries consumed so far.
    pub fn queries(&self) -> usize {
        self.budget.used()
    }

    /// Remaining budget.
    pub fn remaining(&self) -> usize {
        self.budget.remaining()
    }

    /// The budget state itself.
    pub fn budget(&self) -> &QueryBudget {
        &self.budget
    }

    /// The retry policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The per-target circuit breaker state.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The target's display name.
    pub fn name(&self) -> &str {
        self.channel.name()
    }
}

// The AE validation predicate lives in [`crate::validate`] so the oracle
// gate here and campaign quarantine share one definition.
use crate::validate::candidate_is_valid;

/// Result of attacking one sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// The attacked sample's name.
    pub sample: String,
    /// Whether an adversarial example bypassed the target.
    pub evaded: bool,
    /// Queries consumed for this sample.
    pub queries: usize,
    /// The final adversarial bytes (present when `evaded`).
    pub adversarial: Option<Vec<u8>>,
    /// Original file size.
    pub original_size: usize,
    /// Final file size (of the AE when evaded, else of the last attempt).
    pub final_size: usize,
}

impl AttackOutcome {
    /// File-size increment ratio (the paper's per-sample APR term).
    pub fn appending_rate(&self) -> f64 {
        (self.final_size as f64 - self.original_size as f64) / self.original_size.max(1) as f64
    }
}

/// An evasion attack under the hard-label threat model.
pub trait Attack {
    /// Display name used in result tables.
    fn name(&self) -> &str;

    /// Attack `sample` against `target` within the target's query budget.
    fn attack(&mut self, sample: &Sample, target: &mut HardLabelTarget<'_>) -> AttackOutcome;

    /// Whether this attack carries learned state across samples within
    /// one campaign (RLA's Q-table, MAB's bandit arms). Campaign
    /// journals may replay *per-sample* outcomes only for stateless
    /// attacks — skipping a sample of a stateful attack would desync
    /// its learning trajectory — so the conservative default is `true`;
    /// stateless attacks override to opt in to sample-level resume.
    fn stateful_across_samples(&self) -> bool {
        true
    }
}

/// Aggregate metrics over attack outcomes (paper §IV-A).
pub mod metrics {
    use super::AttackOutcome;
    use serde::{Deserialize, Serialize};

    /// ASR / AVQ / APR summary of one attack-vs-target run.
    #[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
    pub struct AttackStats {
        /// Attack success rate in percent.
        pub asr: f64,
        /// Average queries per successfully generated AE.
        pub avq: f64,
        /// Average appending (size-increment) rate in percent, over
        /// successful AEs.
        pub apr: f64,
        /// Number of samples attacked.
        pub samples: usize,
    }

    /// Summarize outcomes. AVQ and APR follow the paper's usage: they are
    /// computed over the samples for which an AE was successfully
    /// generated (failed samples would otherwise pin AVQ at the budget).
    pub fn summarize(outcomes: &[AttackOutcome]) -> AttackStats {
        let n = outcomes.len();
        let evaded: Vec<&AttackOutcome> = outcomes.iter().filter(|o| o.evaded).collect();
        let asr = 100.0 * evaded.len() as f64 / n.max(1) as f64;
        let avq = if evaded.is_empty() {
            0.0
        } else {
            evaded.iter().map(|o| o.queries as f64).sum::<f64>() / evaded.len() as f64
        };
        let apr = if evaded.is_empty() {
            0.0
        } else {
            100.0 * evaded.iter().map(|o| o.appending_rate()).sum::<f64>()
                / evaded.len() as f64
        };
        AttackStats { asr, avq, apr, samples: n }
    }
}

/// Configuration of the full MPass attack.
///
/// Construct via [`MPassConfig::builder`] (or keep [`Default`]). Fields
/// are private as of the engine redesign — the old field-literal /
/// struct-update syntax (`MPassConfig { seed, ..Default::default() }`)
/// is gone, because it silently accepted degenerate values like zero
/// restarts; the builder validates on [`MPassConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MPassConfig {
    /// Fresh modifications tried (each with new benign content and a new
    /// shuffle) before giving up, budget permitting.
    max_restarts: usize,
    /// Optimize-then-query rounds per modification.
    rounds_per_restart: usize,
    /// Modification engine settings.
    modification: ModificationConfig,
    /// Optimizer settings (η, iterations per round).
    optimizer: OptimizerConfig,
    /// Base seed; per-sample randomness derives from it and the sample
    /// name, so attacks are reproducible sample-by-sample.
    seed: u64,
}

impl Default for MPassConfig {
    fn default() -> Self {
        MPassConfig {
            max_restarts: 3,
            rounds_per_restart: 4,
            modification: ModificationConfig::default(),
            optimizer: OptimizerConfig::default(),
            seed: 0x4D50_4153,
        }
    }
}

impl MPassConfig {
    /// Start a builder pre-loaded with the validated defaults.
    pub fn builder() -> MPassConfigBuilder {
        MPassConfigBuilder::default()
    }

    /// Re-open this configuration as a builder, for deriving variants
    /// (ablations flip one knob and keep the rest).
    pub fn to_builder(&self) -> MPassConfigBuilder {
        MPassConfigBuilder { cfg: self.clone() }
    }

    pub fn max_restarts(&self) -> usize {
        self.max_restarts
    }

    pub fn rounds_per_restart(&self) -> usize {
        self.rounds_per_restart
    }

    pub fn modification(&self) -> &ModificationConfig {
        &self.modification
    }

    pub fn optimizer(&self) -> OptimizerConfig {
        self.optimizer
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Why an [`MPassConfigBuilder`] refused to produce a config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MPassConfigError {
    /// `max_restarts` must be at least 1.
    ZeroRestarts,
    /// `rounds_per_restart` must be at least 1.
    ZeroRounds,
    /// The optimizer learning rate must be finite and positive.
    BadLearningRate,
}

impl std::fmt::Display for MPassConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MPassConfigError::ZeroRestarts => write!(f, "max_restarts must be >= 1"),
            MPassConfigError::ZeroRounds => write!(f, "rounds_per_restart must be >= 1"),
            MPassConfigError::BadLearningRate => {
                write!(f, "optimizer.lr must be finite and > 0")
            }
        }
    }
}

impl std::error::Error for MPassConfigError {}

/// Typed builder for [`MPassConfig`]; every setter keeps the remaining
/// fields at their defaults, and [`MPassConfigBuilder::build`] validates
/// the combination.
#[derive(Debug, Clone, Default)]
pub struct MPassConfigBuilder {
    cfg: MPassConfig,
}

impl MPassConfigBuilder {
    pub fn max_restarts(mut self, n: usize) -> Self {
        self.cfg.max_restarts = n;
        self
    }

    pub fn rounds_per_restart(mut self, n: usize) -> Self {
        self.cfg.rounds_per_restart = n;
        self
    }

    pub fn modification(mut self, modification: ModificationConfig) -> Self {
        self.cfg.modification = modification;
        self
    }

    pub fn optimizer(mut self, optimizer: OptimizerConfig) -> Self {
        self.cfg.optimizer = optimizer;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<MPassConfig, MPassConfigError> {
        if self.cfg.max_restarts == 0 {
            return Err(MPassConfigError::ZeroRestarts);
        }
        if self.cfg.rounds_per_restart == 0 {
            return Err(MPassConfigError::ZeroRounds);
        }
        // `optimizer.iterations == 0` is deliberately allowed: it disables
        // the optimization stage, which the design ablation sweeps over.
        if !(self.cfg.optimizer.lr.is_finite() && self.cfg.optimizer.lr > 0.0) {
            return Err(MPassConfigError::BadLearningRate);
        }
        Ok(self.cfg)
    }
}

/// The MPass attack: modification with runtime recovery, then ensemble
/// transfer optimization, under a hard-label query budget.
pub struct MPassAttack<'a> {
    models: Vec<&'a dyn WhiteBoxModel>,
    pool: &'a BenignPool,
    cfg: MPassConfig,
}

impl<'a> MPassAttack<'a> {
    /// Assemble the attack from known models and a benign-content pool.
    pub fn new(
        models: Vec<&'a dyn WhiteBoxModel>,
        pool: &'a BenignPool,
        cfg: MPassConfig,
    ) -> Self {
        MPassAttack { models, pool, cfg }
    }

    fn sample_rng(&self, sample: &Sample) -> ChaCha8Rng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in sample.name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        ChaCha8Rng::seed_from_u64(self.cfg.seed ^ h)
    }
}

impl Attack for MPassAttack<'_> {
    fn name(&self) -> &str {
        "MPass"
    }

    /// MPass derives all randomness from `(seed, sample name)` and
    /// mutates nothing across samples, so journaled outcomes can be
    /// replayed per sample.
    fn stateful_across_samples(&self) -> bool {
        false
    }

    fn attack(&mut self, sample: &Sample, target: &mut HardLabelTarget<'_>) -> AttackOutcome {
        let mut rng = self.sample_rng(sample);
        let original_size = sample.size();
        let mut last_size = original_size;
        for _restart in 0..self.cfg.max_restarts {
            let modified = {
                let _span = trace::span("stage/modify");
                modify(sample, self.pool, &self.cfg.modification, &mut rng)
            };
            let mut ms = match modified {
                Ok(ms) => ms,
                Err(_) => break,
            };
            last_size = ms.bytes.len();
            match target.query(&ms.bytes) {
                Ok(Verdict::Benign) => {
                    return AttackOutcome {
                        sample: sample.name.clone(),
                        evaded: true,
                        queries: target.queries(),
                        adversarial: Some(ms.bytes),
                        original_size,
                        final_size: last_size,
                    }
                }
                Ok(Verdict::Malicious) => {}
                // A candidate that failed AE validation consumed no budget;
                // a fresh restart can still produce a valid one.
                Err(QueryError::InvalidCandidate) => continue,
                // Budget spent or channel down: either way no more
                // verdicts are coming for this sample.
                Err(_) => break,
            }
            let mut opt =
                EnsembleOptimizer::new(self.models.clone(), &ms, self.cfg.optimizer);
            for _round in 0..self.cfg.rounds_per_restart {
                {
                    let _span = trace::span("stage/optimize");
                    opt.run(&mut ms);
                }
                last_size = ms.bytes.len();
                match target.query(&ms.bytes) {
                    Ok(Verdict::Benign) => {
                        return AttackOutcome {
                            sample: sample.name.clone(),
                            evaded: true,
                            queries: target.queries(),
                            adversarial: Some(ms.bytes),
                            original_size,
                            final_size: last_size,
                        }
                    }
                    Ok(Verdict::Malicious) => {}
                    // An optimizer round that corrupted the candidate is
                    // treated like a rejection: later rounds keep
                    // perturbing and may restore validity.
                    Err(QueryError::InvalidCandidate) => {}
                    Err(_) => {
                        return AttackOutcome {
                            sample: sample.name.clone(),
                            evaded: false,
                            queries: target.queries(),
                            adversarial: None,
                            original_size,
                            final_size: last_size,
                        }
                    }
                }
            }
        }
        AttackOutcome {
            sample: sample.name.clone(),
            evaded: false,
            queries: target.queries(),
            adversarial: None,
            original_size,
            final_size: last_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_corpus::{CorpusConfig, Dataset};
    use mpass_detectors::train::training_pairs;
    use mpass_detectors::{ByteConvConfig, MalConv, MalGcg, MalGcgConfig};
    use mpass_sandbox::Sandbox;

    struct World {
        ds: Dataset,
        pool: BenignPool,
        malconv: MalConv,
        malgcg: MalGcg,
    }

    fn world() -> World {
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 16,
            n_benign: 16,
            seed: 51,
            no_slack_fraction: 0.1,
        });
        let pool = BenignPool::generate(4, 17);
        let samples: Vec<_> = ds.samples.iter().collect();
        let pairs = training_pairs(&samples);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut malconv = MalConv::new(ByteConvConfig::tiny(), &mut rng);
        malconv.train(&pairs, 6, 5e-3, &mut rng);
        let mut malgcg = MalGcg::new(MalGcgConfig::tiny(), &mut rng);
        malgcg.train(&pairs, 6, 5e-3, &mut rng);
        World { ds, pool, malconv, malgcg }
    }

    #[test]
    fn target_budget_enforced() {
        let w = world();
        let mut t = HardLabelTarget::new(&w.malconv, 2);
        assert!(t.query(&w.ds.samples[0].bytes).is_ok());
        assert!(t.query(&w.ds.samples[0].bytes).is_ok());
        assert_eq!(
            t.query(&w.ds.samples[0].bytes),
            Err(QueryError::BudgetExhausted(QueryBudgetExhausted { limit: 2 }))
        );
        assert_eq!(t.queries(), 2);
        assert_eq!(t.remaining(), 0);
        assert!(t.budget().is_exhausted());
    }

    #[test]
    fn exhausted_queries_consume_nothing() {
        let w = world();
        let mut t = HardLabelTarget::new(&w.malconv, 1);
        assert!(t.query(&w.ds.samples[0].bytes).is_ok());
        for _ in 0..5 {
            assert!(t.query(&w.ds.samples[0].bytes).is_err());
        }
        assert_eq!(t.queries(), 1);
    }

    #[test]
    fn target_accepts_explicit_budget() {
        let w = world();
        let mut budget = QueryBudget::new(3);
        budget.try_consume().unwrap();
        let mut t = HardLabelTarget::with_budget(&w.malconv, budget);
        assert_eq!(t.remaining(), 2);
        assert!(t.query(&w.ds.samples[0].bytes).is_ok());
        assert_eq!(t.queries(), 2);
    }

    /// A budget partially spent in one phase must be honored — not
    /// reset — when the remainder is re-wrapped for a later phase (the
    /// verification pass carries over the attack's leftover allowance).
    #[test]
    fn with_budget_carry_over_across_rewraps() {
        let w = world();
        let probe = &w.ds.samples[0].bytes;
        let mut t = HardLabelTarget::new(&w.malconv, 5);
        for _ in 0..3 {
            assert!(t.query(probe).is_ok());
        }
        // Phase boundary: hand the same budget state to a new wrapper
        // (around a different detector, as the verification pass does).
        let carried = t.budget().clone();
        let mut v = HardLabelTarget::with_budget(&w.malgcg, carried);
        assert_eq!(v.queries(), 3, "spent queries must carry over");
        assert_eq!(v.remaining(), 2);
        assert!(v.query(probe).is_ok());
        assert!(v.query(probe).is_ok());
        assert!(matches!(
            v.query(probe),
            Err(QueryError::BudgetExhausted(QueryBudgetExhausted { limit: 5 }))
        ));
        assert_eq!(v.queries(), 5);
    }

    #[test]
    fn ae_validation_gate_rejects_malformed_candidates() {
        let w = world();
        mpass_engine::metrics::install(mpass_engine::Collector::default());
        let mut t = HardLabelTarget::new(&w.malconv, 3).with_ae_validation();
        assert!(t.validates_ae());
        // Raw garbage is not a PE: rejected before submission, no budget.
        assert_eq!(t.query(b"MZ garbage"), Err(QueryError::InvalidCandidate));
        assert_eq!(t.queries(), 0);
        // A well-formed sample passes the gate and reaches the detector.
        assert!(t.query(&w.ds.samples[0].bytes).is_ok());
        assert_eq!(t.queries(), 1);
        let shard = mpass_engine::metrics::take().unwrap().finish("t", 0.0);
        assert_eq!(shard.counters["oracle/ae_rejected"], 1);
    }

    #[test]
    fn ae_validation_gate_is_off_by_default() {
        let w = world();
        let mut t = HardLabelTarget::new(&w.malconv, 3);
        assert!(!t.validates_ae());
        // Non-PE probe bytes reach the detector unharmed.
        assert!(t.query(b"x").is_ok());
        assert_eq!(t.queries(), 1);
    }

    /// An oracle whose first submission of every query faults, so each
    /// delivered verdict costs exactly one retry.
    struct FlakyOnce<'a> {
        inner: &'a dyn Detector,
        fault: OracleFault,
        calls: std::sync::Mutex<u64>,
    }

    impl<'a> FlakyOnce<'a> {
        fn new(inner: &'a dyn Detector, fault: OracleFault) -> Self {
            FlakyOnce { inner, fault, calls: std::sync::Mutex::new(0) }
        }
    }

    impl Oracle for FlakyOnce<'_> {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn submit(&self, bytes: &[u8]) -> Result<Verdict, OracleFault> {
            let mut calls = self.calls.lock().unwrap();
            *calls += 1;
            if *calls % 2 == 1 {
                return Err(self.fault);
            }
            Ok(self.inner.classify(bytes))
        }
    }

    /// Documented budget policy: one unit per delivered verdict; failed
    /// and retried submissions consume nothing.
    #[test]
    fn retried_queries_consume_one_budget_unit_per_verdict() {
        let w = world();
        let probe = &w.ds.samples[0].bytes;
        let oracle = FlakyOnce::new(&w.malconv, OracleFault::Transient);
        mpass_engine::metrics::install(mpass_engine::Collector::default());
        let mut t =
            HardLabelTarget::unreliable(&oracle, QueryBudget::new(3), RetryPolicy::default());
        for _ in 0..3 {
            // Every query needs a retry, yet delivers the same verdict
            // as the bare detector and costs exactly one unit.
            assert_eq!(t.query(probe), Ok(w.malconv.classify(probe)));
        }
        assert_eq!(t.queries(), 3);
        assert!(matches!(t.query(probe), Err(QueryError::BudgetExhausted(_))));
        assert_eq!(t.queries(), 3, "failed query consumed nothing");
        let shard = mpass_engine::metrics::take().unwrap().finish("t", 0.0);
        assert_eq!(shard.counters["oracle/retry"], 3);
        assert_eq!(shard.counters["queries"], 3);
    }

    /// Rate-limit hints surface in the backoff and in the terminal
    /// error when retries run out.
    #[test]
    fn rate_limited_channel_exhausts_retries_with_hint() {
        struct AlwaysLimited;
        impl Oracle for AlwaysLimited {
            fn name(&self) -> &str {
                "limited"
            }
            fn submit(&self, _: &[u8]) -> Result<Verdict, OracleFault> {
                Err(OracleFault::RateLimited { retry_after_ms: 40 })
            }
        }
        let policy = RetryPolicy { max_attempts: 3, ..RetryPolicy::default() };
        let mut t = HardLabelTarget::unreliable(&AlwaysLimited, QueryBudget::new(5), policy);
        assert_eq!(t.query(b"x"), Err(QueryError::RateLimited { retry_after_ms: 40 }));
        assert_eq!(t.queries(), 0, "no verdict, no budget");
    }

    /// After `breaker_threshold` consecutive failed queries the breaker
    /// opens and fails fast without touching the channel or the budget.
    #[test]
    fn breaker_opens_and_fails_fast() {
        struct Down;
        impl Oracle for Down {
            fn name(&self) -> &str {
                "down"
            }
            fn submit(&self, _: &[u8]) -> Result<Verdict, OracleFault> {
                Err(OracleFault::Fatal)
            }
        }
        let policy = RetryPolicy {
            breaker_threshold: 2,
            breaker_cooldown: 3,
            ..RetryPolicy::default()
        };
        mpass_engine::metrics::install(mpass_engine::Collector::default());
        let mut t = HardLabelTarget::unreliable(&Down, QueryBudget::new(10), policy);
        assert_eq!(t.query(b"x"), Err(QueryError::Fatal));
        assert_eq!(t.query(b"x"), Err(QueryError::Fatal)); // trips breaker
        assert!(t.breaker().is_open());
        for _ in 0..3 {
            assert_eq!(t.query(b"x"), Err(QueryError::Fatal)); // fail-fast
        }
        let shard = mpass_engine::metrics::take().unwrap().finish("t", 0.0);
        assert_eq!(shard.counters["oracle/breaker_open"], 3);
        assert_eq!(t.queries(), 0);
    }

    /// End to end: injected transient faults are semantically
    /// transparent — the attack reaches the same outcome against the
    /// faulted channel as against the bare detector, with non-zero
    /// retry counters as the only trace.
    #[test]
    fn injected_faults_are_transparent_to_the_attack() {
        let w = world();
        let s = w.ds.malware()[0];
        let reliable = {
            let mut attack =
                MPassAttack::new(vec![&w.malgcg], &w.pool, MPassConfig::default());
            let mut target = HardLabelTarget::new(&w.malconv, 100);
            attack.attack(s, &mut target)
        };
        // The attack may need only a couple of submissions, so sweep
        // schedule seeds: every seed must be transparent, and at least
        // one must actually inject faults. burst_cap 2 < max_attempts 4
        // keeps every query answerable within its retries.
        let mut total_faults = 0;
        let mut total_retries = 0;
        for seed in 0..8u64 {
            let profile = mpass_detectors::FaultProfile {
                transient: 0.5,
                rate_limited: 0.2,
                ..mpass_detectors::FaultProfile::seeded(seed)
            };
            let oracle = mpass_detectors::UnreliableOracle::new(&w.malconv, profile);
            mpass_engine::metrics::install(mpass_engine::Collector::default());
            let faulted = {
                let mut attack =
                    MPassAttack::new(vec![&w.malgcg], &w.pool, MPassConfig::default());
                let mut target = HardLabelTarget::unreliable(
                    &oracle,
                    QueryBudget::new(100),
                    RetryPolicy::default(),
                )
                .with_retry_seed(seed);
                attack.attack(s, &mut target)
            };
            let shard = mpass_engine::metrics::take().unwrap().finish("t", 0.0);
            assert_eq!(faulted.evaded, reliable.evaded, "seed {seed}");
            assert_eq!(faulted.queries, reliable.queries, "seed {seed}");
            assert_eq!(faulted.adversarial, reliable.adversarial, "seed {seed}");
            total_faults += oracle.faults_injected();
            total_retries += shard.counters.get("oracle/retry").copied().unwrap_or(0);
        }
        assert!(total_faults > 0, "no seed injected any fault");
        assert_eq!(total_retries, total_faults, "every injected fault costs one retry");
    }

    #[test]
    fn builder_validates_and_round_trips() {
        let cfg = MPassConfig::builder()
            .max_restarts(5)
            .rounds_per_restart(2)
            .seed(99)
            .build()
            .unwrap();
        assert_eq!(cfg.max_restarts(), 5);
        assert_eq!(cfg.rounds_per_restart(), 2);
        assert_eq!(cfg.seed(), 99);
        // Unset knobs keep the defaults.
        assert_eq!(cfg.modification(), &ModificationConfig::default());

        // Variants derive from an existing config.
        let variant = cfg.to_builder().seed(1).build().unwrap();
        assert_eq!(variant.max_restarts(), 5);
        assert_eq!(variant.seed(), 1);

        assert_eq!(
            MPassConfig::builder().max_restarts(0).build(),
            Err(MPassConfigError::ZeroRestarts)
        );
        assert_eq!(
            MPassConfig::builder().rounds_per_restart(0).build(),
            Err(MPassConfigError::ZeroRounds)
        );
        // Zero iterations disables optimization (a supported ablation).
        assert!(MPassConfig::builder()
            .optimizer(OptimizerConfig { lr: 0.05, iterations: 0 })
            .build()
            .is_ok());
        assert_eq!(
            MPassConfig::builder()
                .optimizer(OptimizerConfig { lr: -1.0, iterations: 3 })
                .build(),
            Err(MPassConfigError::BadLearningRate)
        );
    }

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(MPassConfig::builder().build().unwrap(), MPassConfig::default());
    }

    #[test]
    fn mpass_evades_malconv_with_few_queries() {
        let w = world();
        // Attack MalConv using MalGcg as the known model (transfer).
        let mut attack = MPassAttack::new(
            vec![&w.malgcg],
            &w.pool,
            MPassConfig::default(),
        );
        let mut outcomes = Vec::new();
        for s in w.ds.malware().into_iter().take(6) {
            let mut target = HardLabelTarget::new(&w.malconv, 100);
            outcomes.push(attack.attack(s, &mut target));
        }
        let stats = metrics::summarize(&outcomes);
        // Toy scale: one tiny surrogate, six samples — a sanity floor that
        // transfer happens at all; full-scale numbers live in
        // mpass-experiments.
        assert!(stats.asr >= 30.0, "ASR {}", stats.asr);
        assert!(stats.avq <= 25.0, "AVQ {}", stats.avq);
    }

    #[test]
    fn successful_aes_preserve_functionality() {
        let w = world();
        let sandbox = Sandbox::new();
        let mut attack =
            MPassAttack::new(vec![&w.malgcg], &w.pool, MPassConfig::default());
        for s in w.ds.malware().into_iter().take(4) {
            let mut target = HardLabelTarget::new(&w.malconv, 100);
            let outcome = attack.attack(s, &mut target);
            if let Some(ae) = &outcome.adversarial {
                // Validate through the batched digest path the campaign
                // uses: baseline once per sample, candidates against it.
                let baseline = sandbox.baseline_digest(&s.bytes).unwrap();
                let verdicts = sandbox.validate_batch(&baseline, &[ae]);
                assert!(verdicts[0].is_preserved(), "{}: {}", s.name, verdicts[0]);
            }
        }
    }

    #[test]
    fn attack_is_reproducible() {
        let w = world();
        let s = w.ds.malware()[0];
        let run = || {
            let mut attack =
                MPassAttack::new(vec![&w.malgcg], &w.pool, MPassConfig::default());
            let mut target = HardLabelTarget::new(&w.malconv, 100);
            attack.attack(s, &mut target)
        };
        let a = run();
        let b = run();
        assert_eq!(a.evaded, b.evaded);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.adversarial, b.adversarial);
    }

    #[test]
    fn attack_records_metrics_when_collector_installed() {
        let w = world();
        let s = w.ds.malware()[0];
        mpass_engine::metrics::install(mpass_engine::Collector::default());
        mpass_engine::metrics::begin_sample(&s.name);
        let mut attack =
            MPassAttack::new(vec![&w.malgcg], &w.pool, MPassConfig::default());
        let mut target = HardLabelTarget::new(&w.malconv, 100);
        let outcome = attack.attack(s, &mut target);
        mpass_engine::metrics::end_sample();
        let shard = mpass_engine::metrics::take().unwrap().finish("test", 0.0);
        assert_eq!(shard.counters["queries"], outcome.queries as u64);
        assert_eq!(shard.samples.len(), 1);
        assert_eq!(
            shard.samples[0].counters["queries"],
            outcome.queries as u64
        );
        assert!(shard.timings.contains_key("stage/modify"));
        assert!(shard.timings.contains_key("stage/query"));
    }

    #[test]
    fn metrics_summarize_correctly() {
        let outcomes = vec![
            AttackOutcome {
                sample: "a".into(),
                evaded: true,
                queries: 2,
                adversarial: Some(vec![]),
                original_size: 100,
                final_size: 150,
            },
            AttackOutcome {
                sample: "b".into(),
                evaded: true,
                queries: 4,
                adversarial: Some(vec![]),
                original_size: 100,
                final_size: 250,
            },
            AttackOutcome {
                sample: "c".into(),
                evaded: false,
                queries: 100,
                adversarial: None,
                original_size: 100,
                final_size: 100,
            },
        ];
        let stats = metrics::summarize(&outcomes);
        assert!((stats.asr - 200.0 / 3.0).abs() < 1e-9);
        assert!((stats.avq - 3.0).abs() < 1e-9);
        assert!((stats.apr - 100.0).abs() < 1e-9); // (50% + 150%)/2
        assert_eq!(stats.samples, 3);
    }

    #[test]
    fn empty_outcomes_summarize_to_zero() {
        let stats = metrics::summarize(&[]);
        assert_eq!(stats.asr, 0.0);
        assert_eq!(stats.avq, 0.0);
        assert_eq!(stats.samples, 0);
    }
}
