//! The hard-label black-box attack loop (Fig. 1) and the shared attack
//! abstractions every method in the evaluation implements.

use crate::modify::{modify, ModificationConfig, ModifyError};
use crate::optimize::{EnsembleOptimizer, OptimizerConfig};
use mpass_corpus::{BenignPool, Sample};
use mpass_detectors::{Detector, Verdict, WhiteBoxModel};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A query-counted, budgeted hard-label oracle around a [`Detector`].
///
/// This is the *only* interface attacks get to the target: no scores, no
/// gradients — exactly the paper's threat model.
pub struct HardLabelTarget<'a> {
    detector: &'a dyn Detector,
    queries: usize,
    max_queries: usize,
}

impl<'a> HardLabelTarget<'a> {
    /// Wrap `detector` with a budget of `max_queries`.
    pub fn new(detector: &'a dyn Detector, max_queries: usize) -> Self {
        HardLabelTarget { detector, queries: 0, max_queries }
    }

    /// Query the target. Returns `None` once the budget is exhausted.
    pub fn query(&mut self, bytes: &[u8]) -> Option<Verdict> {
        if self.queries >= self.max_queries {
            return None;
        }
        self.queries += 1;
        Some(self.detector.classify(bytes))
    }

    /// Queries consumed so far.
    pub fn queries(&self) -> usize {
        self.queries
    }

    /// Remaining budget.
    pub fn remaining(&self) -> usize {
        self.max_queries - self.queries
    }

    /// The target's display name.
    pub fn name(&self) -> &str {
        self.detector.name()
    }
}

/// Result of attacking one sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// The attacked sample's name.
    pub sample: String,
    /// Whether an adversarial example bypassed the target.
    pub evaded: bool,
    /// Queries consumed for this sample.
    pub queries: usize,
    /// The final adversarial bytes (present when `evaded`).
    pub adversarial: Option<Vec<u8>>,
    /// Original file size.
    pub original_size: usize,
    /// Final file size (of the AE when evaded, else of the last attempt).
    pub final_size: usize,
}

impl AttackOutcome {
    /// File-size increment ratio (the paper's per-sample APR term).
    pub fn appending_rate(&self) -> f64 {
        (self.final_size as f64 - self.original_size as f64) / self.original_size.max(1) as f64
    }
}

/// An evasion attack under the hard-label threat model.
pub trait Attack {
    /// Display name used in result tables.
    fn name(&self) -> &str;

    /// Attack `sample` against `target` within the target's query budget.
    fn attack(&mut self, sample: &Sample, target: &mut HardLabelTarget<'_>) -> AttackOutcome;
}

/// Aggregate metrics over attack outcomes (paper §IV-A).
pub mod metrics {
    use super::AttackOutcome;
    use serde::{Deserialize, Serialize};

    /// ASR / AVQ / APR summary of one attack-vs-target run.
    #[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
    pub struct AttackStats {
        /// Attack success rate in percent.
        pub asr: f64,
        /// Average queries per successfully generated AE.
        pub avq: f64,
        /// Average appending (size-increment) rate in percent, over
        /// successful AEs.
        pub apr: f64,
        /// Number of samples attacked.
        pub samples: usize,
    }

    /// Summarize outcomes. AVQ and APR follow the paper's usage: they are
    /// computed over the samples for which an AE was successfully
    /// generated (failed samples would otherwise pin AVQ at the budget).
    pub fn summarize(outcomes: &[AttackOutcome]) -> AttackStats {
        let n = outcomes.len();
        let evaded: Vec<&AttackOutcome> = outcomes.iter().filter(|o| o.evaded).collect();
        let asr = 100.0 * evaded.len() as f64 / n.max(1) as f64;
        let avq = if evaded.is_empty() {
            0.0
        } else {
            evaded.iter().map(|o| o.queries as f64).sum::<f64>() / evaded.len() as f64
        };
        let apr = if evaded.is_empty() {
            0.0
        } else {
            100.0 * evaded.iter().map(|o| o.appending_rate()).sum::<f64>()
                / evaded.len() as f64
        };
        AttackStats { asr, avq, apr, samples: n }
    }
}

/// Configuration of the full MPass attack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MPassConfig {
    /// Fresh modifications tried (each with new benign content and a new
    /// shuffle) before giving up, budget permitting.
    pub max_restarts: usize,
    /// Optimize-then-query rounds per modification.
    pub rounds_per_restart: usize,
    /// Modification engine settings.
    pub modification: ModificationConfig,
    /// Optimizer settings (η, iterations per round).
    pub optimizer: OptimizerConfig,
    /// Base seed; per-sample randomness derives from it and the sample
    /// name, so attacks are reproducible sample-by-sample.
    pub seed: u64,
}

impl Default for MPassConfig {
    fn default() -> Self {
        MPassConfig {
            max_restarts: 3,
            rounds_per_restart: 4,
            modification: ModificationConfig::default(),
            optimizer: OptimizerConfig::default(),
            seed: 0x4D50_4153,
        }
    }
}

/// The MPass attack: modification with runtime recovery, then ensemble
/// transfer optimization, under a hard-label query budget.
pub struct MPassAttack<'a> {
    models: Vec<&'a dyn WhiteBoxModel>,
    pool: &'a BenignPool,
    cfg: MPassConfig,
}

impl<'a> MPassAttack<'a> {
    /// Assemble the attack from known models and a benign-content pool.
    pub fn new(
        models: Vec<&'a dyn WhiteBoxModel>,
        pool: &'a BenignPool,
        cfg: MPassConfig,
    ) -> Self {
        MPassAttack { models, pool, cfg }
    }

    fn sample_rng(&self, sample: &Sample) -> ChaCha8Rng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in sample.name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        ChaCha8Rng::seed_from_u64(self.cfg.seed ^ h)
    }
}

impl Attack for MPassAttack<'_> {
    fn name(&self) -> &str {
        "MPass"
    }

    fn attack(&mut self, sample: &Sample, target: &mut HardLabelTarget<'_>) -> AttackOutcome {
        let mut rng = self.sample_rng(sample);
        let original_size = sample.size();
        let mut last_size = original_size;
        for _restart in 0..self.cfg.max_restarts {
            let ms = match modify(sample, self.pool, &self.cfg.modification, &mut rng) {
                Ok(ms) => ms,
                Err(ModifyError::NoEntrySection | ModifyError::Pe(_)) => break,
            };
            let mut ms = ms;
            last_size = ms.bytes.len();
            match target.query(&ms.bytes) {
                Some(Verdict::Benign) => {
                    return AttackOutcome {
                        sample: sample.name.clone(),
                        evaded: true,
                        queries: target.queries(),
                        adversarial: Some(ms.bytes),
                        original_size,
                        final_size: last_size,
                    }
                }
                Some(Verdict::Malicious) => {}
                None => break,
            }
            let mut opt =
                EnsembleOptimizer::new(self.models.clone(), &ms, self.cfg.optimizer);
            for _round in 0..self.cfg.rounds_per_restart {
                opt.run(&mut ms);
                last_size = ms.bytes.len();
                match target.query(&ms.bytes) {
                    Some(Verdict::Benign) => {
                        return AttackOutcome {
                            sample: sample.name.clone(),
                            evaded: true,
                            queries: target.queries(),
                            adversarial: Some(ms.bytes),
                            original_size,
                            final_size: last_size,
                        }
                    }
                    Some(Verdict::Malicious) => {}
                    None => {
                        return AttackOutcome {
                            sample: sample.name.clone(),
                            evaded: false,
                            queries: target.queries(),
                            adversarial: None,
                            original_size,
                            final_size: last_size,
                        }
                    }
                }
            }
        }
        AttackOutcome {
            sample: sample.name.clone(),
            evaded: false,
            queries: target.queries(),
            adversarial: None,
            original_size,
            final_size: last_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_corpus::{CorpusConfig, Dataset};
    use mpass_detectors::train::training_pairs;
    use mpass_detectors::{ByteConvConfig, MalConv, MalGcg, MalGcgConfig};
    use mpass_sandbox::Sandbox;

    struct World {
        ds: Dataset,
        pool: BenignPool,
        malconv: MalConv,
        malgcg: MalGcg,
    }

    fn world() -> World {
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 16,
            n_benign: 16,
            seed: 51,
            no_slack_fraction: 0.1,
        });
        let pool = BenignPool::generate(4, 17);
        let samples: Vec<_> = ds.samples.iter().collect();
        let pairs = training_pairs(&samples);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut malconv = MalConv::new(ByteConvConfig::tiny(), &mut rng);
        malconv.train(&pairs, 6, 5e-3, &mut rng);
        let mut malgcg = MalGcg::new(MalGcgConfig::tiny(), &mut rng);
        malgcg.train(&pairs, 6, 5e-3, &mut rng);
        World { ds, pool, malconv, malgcg }
    }

    #[test]
    fn target_budget_enforced() {
        let w = world();
        let mut t = HardLabelTarget::new(&w.malconv, 2);
        assert!(t.query(&w.ds.samples[0].bytes).is_some());
        assert!(t.query(&w.ds.samples[0].bytes).is_some());
        assert!(t.query(&w.ds.samples[0].bytes).is_none());
        assert_eq!(t.queries(), 2);
        assert_eq!(t.remaining(), 0);
    }

    #[test]
    fn mpass_evades_malconv_with_few_queries() {
        let w = world();
        // Attack MalConv using MalGcg as the known model (transfer).
        let mut attack = MPassAttack::new(
            vec![&w.malgcg],
            &w.pool,
            MPassConfig::default(),
        );
        let mut outcomes = Vec::new();
        for s in w.ds.malware().into_iter().take(6) {
            let mut target = HardLabelTarget::new(&w.malconv, 100);
            outcomes.push(attack.attack(s, &mut target));
        }
        let stats = metrics::summarize(&outcomes);
        // Toy scale: one tiny surrogate, six samples — a sanity floor that
        // transfer happens at all; full-scale numbers live in
        // mpass-experiments.
        assert!(stats.asr >= 30.0, "ASR {}", stats.asr);
        assert!(stats.avq <= 25.0, "AVQ {}", stats.avq);
    }

    #[test]
    fn successful_aes_preserve_functionality() {
        let w = world();
        let sandbox = Sandbox::new();
        let mut attack =
            MPassAttack::new(vec![&w.malgcg], &w.pool, MPassConfig::default());
        for s in w.ds.malware().into_iter().take(4) {
            let mut target = HardLabelTarget::new(&w.malconv, 100);
            let outcome = attack.attack(s, &mut target);
            if let Some(ae) = &outcome.adversarial {
                let verdict = sandbox.verify_functionality(&s.bytes, ae);
                assert!(verdict.is_preserved(), "{}: {verdict}", s.name);
            }
        }
    }

    #[test]
    fn attack_is_reproducible() {
        let w = world();
        let s = w.ds.malware()[0];
        let run = || {
            let mut attack =
                MPassAttack::new(vec![&w.malgcg], &w.pool, MPassConfig::default());
            let mut target = HardLabelTarget::new(&w.malconv, 100);
            attack.attack(s, &mut target)
        };
        let a = run();
        let b = run();
        assert_eq!(a.evaded, b.evaded);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.adversarial, b.adversarial);
    }

    #[test]
    fn metrics_summarize_correctly() {
        let outcomes = vec![
            AttackOutcome {
                sample: "a".into(),
                evaded: true,
                queries: 2,
                adversarial: Some(vec![]),
                original_size: 100,
                final_size: 150,
            },
            AttackOutcome {
                sample: "b".into(),
                evaded: true,
                queries: 4,
                adversarial: Some(vec![]),
                original_size: 100,
                final_size: 250,
            },
            AttackOutcome {
                sample: "c".into(),
                evaded: false,
                queries: 100,
                adversarial: None,
                original_size: 100,
                final_size: 100,
            },
        ];
        let stats = metrics::summarize(&outcomes);
        assert!((stats.asr - 200.0 / 3.0).abs() < 1e-9);
        assert!((stats.avq - 3.0).abs() < 1e-9);
        assert!((stats.apr - 100.0).abs() < 1e-9); // (50% + 150%)/2
        assert_eq!(stats.samples, 3);
    }

    #[test]
    fn empty_outcomes_summarize_to_zero() {
        let stats = metrics::summarize(&[]);
        assert_eq!(stats.asr, 0.0);
        assert_eq!(stats.avq, 0.0);
        assert_eq!(stats.samples, 0);
    }
}
