//! # mpass-core — the MPass attack
//!
//! Implementation of *MPass: Bypassing Learning-based Static Malware
//! Detectors* (DAC 2023). The attack is a hard-label black-box evasion
//! pipeline with three components, mapped to modules:
//!
//! 1. **[`pem`]** — the Problem-space Explainability Method (Algorithm 1):
//!    Shapley values over PE sections on an ensemble of known models,
//!    identifying code and data sections as the common critical positions.
//! 2. **[`recovery`] + [`shuffle`] + [`modify`]** — malware modification
//!    (§III-C): encode the critical sections with additive keys, inject a
//!    runtime-recovery stub into a new section (or fall back to overlay
//!    appending when the section table is full), retarget the entry point,
//!    and shuffle the stub's instructions with jump chains and benign
//!    filler so the stub carries no fixed byte pattern.
//! 3. **[`optimize`]** — perturbation optimization (§III-D, Eq. 2–3):
//!    perturbable bytes are lifted into each known model's embedding
//!    space, driven toward the benign label by Adam under the key-coupling
//!    matrix `M`, and mapped back to discrete bytes.
//!
//! [`attack::MPassAttack`] glues the pipeline into the paper's query loop
//! (Fig. 1): modify → query → optimize → query … until the hard-label
//! target accepts the sample or the query budget is exhausted.
//!
//! The [`attack::Attack`] trait and [`attack::metrics`] (ASR/AVQ/APR) are
//! shared with the baselines in `mpass-baselines`.

pub mod attack;
pub mod modify;
pub mod optimize;
pub mod pem;
pub mod recovery;
pub mod shuffle;
pub mod validate;

pub use attack::{
    Attack, AttackOutcome, HardLabelTarget, MPassAttack, MPassConfig, MPassConfigBuilder,
    MPassConfigError,
};
pub use modify::{ModificationConfig, ModificationMode, ModifiedSample, ModifyError};
pub use mpass_engine::{
    CircuitBreaker, OracleFault, QueryBudget, QueryBudgetExhausted, QueryError, RetryPolicy,
};
pub use optimize::OptimizerConfig;
pub use pem::{PemConfig, PemReport};
pub use recovery::{generate_recovery_stub, EncodedRegion, StubInstr};
pub use shuffle::{layout_sequential, layout_shuffled, StubLayout};
