//! Malware modification (§III-C): the paper's Fig. 1 workflow step that
//! turns a malware sample into a function-preserving, perturbable carrier.
//!
//! * The critical **code and data sections** (as identified by PEM) are
//!   overwritten with benign cover content; additive keys are computed so
//!   the runtime-recovery stub restores the originals before execution.
//! * A **new section** receives the keys, the (shuffled) recovery stub and
//!   extra benign perturbation space; the entry point is retargeted at the
//!   stub. When the section table has no room, the engine degrades to the
//!   paper's **overlay appending** fallback (no encoding possible — there
//!   is nowhere executable to put a stub).
//! * **Semantics-free header fields** (timestamp, image version) are
//!   randomized, as RL-Attack does.
//!
//! The output records every *optimizable byte*: independent positions
//! (gap filler, free space, overlay) and coupled positions (benign cover
//! bytes whose keys must co-move — the `(j, k) ∈ J` pairs behind Eq. 2's
//! matrix `M`).

use crate::recovery::{compute_keys, generate_recovery_stub, EncodedRegion};
use crate::shuffle::{layout_sequential, layout_shuffled};
use mpass_binary::{BinaryError, BinaryFormat, BinaryImage, SectionKind};
use mpass_corpus::{BenignPool, Sample};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from the modification engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModifyError {
    /// The underlying container manipulation failed.
    Binary(BinaryError),
    /// The sample has no section containing the entry point.
    NoEntrySection,
    /// A virtual address does not fit the stub's 32-bit address space.
    AddressOverflow(u64),
}

impl fmt::Display for ModifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModifyError::Binary(e) => write!(f, "container manipulation failed: {e}"),
            ModifyError::NoEntrySection => write!(f, "entry point maps into no section"),
            ModifyError::AddressOverflow(va) => {
                write!(f, "virtual address {va:#x} exceeds the stub's 32-bit space")
            }
        }
    }
}

impl std::error::Error for ModifyError {}

impl From<BinaryError> for ModifyError {
    fn from(e: BinaryError) -> Self {
        ModifyError::Binary(e)
    }
}

/// Narrow a virtual address to the stub's `u32` address space.
fn va32(va: u64) -> Result<u32, ModifyError> {
    u32::try_from(va).map_err(|_| ModifyError::AddressOverflow(va))
}

/// Which perturbation carrier the engine produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModificationMode {
    /// Full pipeline: encoded sections + new section with stub/keys.
    NewSection,
    /// Fallback for images whose section table is full: overlay appending
    /// plus header edits only.
    OverlayAppend,
}

/// Configuration of the modification engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModificationConfig {
    /// Encode code-kind sections.
    pub encode_code: bool,
    /// Encode data-kind sections.
    pub encode_data: bool,
    /// Shuffle the stub (the paper's anti-pattern-learning strategy).
    pub shuffle: bool,
    /// Maximum shuffle gap between stub cells, in 8-byte units.
    pub max_gap_units: usize,
    /// Extra benign perturbation space appended after the stub (bytes).
    pub perturb_space: usize,
    /// Bytes appended in the overlay fallback mode.
    pub overlay_space: usize,
    /// Randomize semantics-free header fields.
    pub edit_header: bool,
    /// Ablation switch (Table V): modify *non-critical* sections
    /// (read-only data, resources, relocations) instead of code/data,
    /// still via the recovery machinery since read-only data may be read
    /// at runtime.
    pub other_sections_instead: bool,
}

impl Default for ModificationConfig {
    fn default() -> Self {
        ModificationConfig {
            encode_code: true,
            encode_data: true,
            shuffle: true,
            max_gap_units: 3,
            perturb_space: 2048,
            overlay_space: 4096,
            edit_header: true,
            other_sections_instead: false,
        }
    }
}

/// A byte whose value the optimizer may choose, paired with the key byte
/// that must co-move to preserve functionality (`key = cover − original`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoupledByte {
    /// File offset of the benign cover byte (inside an encoded section).
    pub cover_offset: usize,
    /// File offset of its key byte (inside the new section).
    pub key_offset: usize,
    /// The original malware byte this position must recover to.
    pub original: u8,
}

/// A modified, perturbable sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModifiedSample {
    /// Serialized image bytes — the authoritative artifact. The optimizer
    /// mutates these in place at the recorded offsets.
    pub bytes: Vec<u8>,
    /// Which carrier mode was used.
    pub mode: ModificationMode,
    /// Independent optimizable file offsets (gap filler, free space,
    /// overlay). Never executed; mutate freely.
    pub free_offsets: Vec<usize>,
    /// Coupled cover/key positions (Eq. 2's `J` corpus).
    pub coupled: Vec<CoupledByte>,
}

impl ModifiedSample {
    /// Total number of optimizable byte positions.
    pub fn position_count(&self) -> usize {
        self.free_offsets.len() + self.coupled.len()
    }

    /// Write `value` at optimizable position `index` (indices first cover
    /// `free_offsets`, then `coupled`), maintaining key coupling.
    ///
    /// # Panics
    ///
    /// Panics when `index ≥ position_count()`.
    pub fn set_position(&mut self, index: usize, value: u8) {
        if index < self.free_offsets.len() {
            let off = self.free_offsets[index];
            self.bytes[off] = value;
        } else {
            let c = self.coupled[index - self.free_offsets.len()];
            self.bytes[c.cover_offset] = value;
            self.bytes[c.key_offset] = crate::recovery::rekey(value, c.original);
        }
    }

    /// The file offset a position index refers to (the cover offset for
    /// coupled positions — the byte the detector sees at that index).
    pub fn position_offset(&self, index: usize) -> usize {
        if index < self.free_offsets.len() {
            self.free_offsets[index]
        } else {
            self.coupled[index - self.free_offsets.len()].cover_offset
        }
    }

    /// Current byte value at a position index.
    pub fn position_value(&self, index: usize) -> u8 {
        self.bytes[self.position_offset(index)]
    }

    /// Re-parse the current bytes (for structural assertions).
    ///
    /// # Errors
    ///
    /// Propagates [`BinaryError`] if the bytes were corrupted — which would
    /// indicate a bug, since optimizable positions never overlap structure.
    pub fn reparse(&self) -> Result<BinaryImage, BinaryError> {
        BinaryImage::parse_auto(&self.bytes)
    }
}

/// Section kinds modified in the Other-sec ablation.
fn is_other_modifiable(kind: SectionKind) -> bool {
    matches!(
        kind,
        SectionKind::ReadOnlyData | SectionKind::Resource | SectionKind::Relocation
    )
}

/// Run the modification engine on `sample`.
///
/// The engine is container-neutral: it edits the sample through the
/// [`BinaryFormat`] trait, so PE and Mach-O malware flow through the same
/// encode → stub → retarget pipeline. The PE path draws from `rng` in
/// exactly the order the PE-only engine did, keeping seeded attacks
/// byte-identical.
///
/// # Errors
///
/// Returns [`ModifyError`] when the sample's entry point is unmappable or
/// container manipulation fails for reasons other than a full section
/// table (that case triggers the overlay fallback instead).
pub fn modify<R: Rng + ?Sized>(
    sample: &Sample,
    pool: &BenignPool,
    cfg: &ModificationConfig,
    rng: &mut R,
) -> Result<ModifiedSample, ModifyError> {
    let mut image = sample.image.clone();
    let original_entry = va32(image.entry_point())?;
    if image.section_index_containing_va(original_entry as u64).is_none() {
        return Err(ModifyError::NoEntrySection);
    }

    if cfg.edit_header {
        // Each backend randomizes its own loader-ignored fields; the PE
        // draw order (timestamp, then major/minor image version) is part of
        // its stability contract.
        image.randomize_free_headers(&mut &mut *rng);
    }

    // The full pipeline adds two sections: a resource-kind section for the
    // decoding keys (resources are routinely high-entropy — icons,
    // compressed manifests — so the keys raise no entropy flags there) and
    // a code section for the stub plus perturbation space.
    if !image.can_add_sections(2) {
        return Ok(overlay_fallback(image, pool, cfg, rng));
    }

    // ---- select and encode target sections ----
    let select = |kind: SectionKind| -> bool {
        if cfg.other_sections_instead {
            is_other_modifiable(kind)
        } else {
            (cfg.encode_code && kind == SectionKind::Code)
                || (cfg.encode_data && kind == SectionKind::Data)
        }
    };
    let metas: Vec<_> =
        (0..image.section_count()).filter_map(|i| image.section_meta(i)).collect();
    let target_idx: Vec<usize> = metas
        .iter()
        .enumerate()
        .filter(|(i, m)| {
            select(m.kind) && image.section_data(*i).is_some_and(|d| !d.is_empty())
        })
        .map(|(i, _)| i)
        .collect();

    let mut regions: Vec<EncodedRegion> = Vec::with_capacity(target_idx.len());
    let mut keys_blob: Vec<u8> = Vec::new();
    let mut originals: Vec<Vec<u8>> = Vec::with_capacity(target_idx.len());
    let new_va = va32(image.next_free_va())?;
    for &i in &target_idx {
        let original = image.section_data(i).unwrap_or_default().to_vec();
        let len = original.len();
        let cover = pool.random_chunk(len, rng);
        let keys = compute_keys(&original, &cover);
        regions.push(EncodedRegion {
            rva: va32(metas[i].virtual_address)?,
            len: len as u32,
            key_rva: new_va + keys_blob.len() as u32,
        });
        keys_blob.extend_from_slice(&keys);
        originals.push(original);
        if let Some(data) = image.section_data_mut(i) {
            data.copy_from_slice(&cover);
        }
    }

    // ---- keys section (resource-kind) ----
    let keys_name = random_section_name(image.format(), rng);
    let keys_va = image.add_section(&keys_name, keys_blob.clone(), SectionKind::Resource)?;
    debug_assert_eq!(keys_va, new_va as u64, "next_free_va must predict add_section");

    // ---- stub section: [stub (shuffled)][free space] ----
    let stub_base = va32(image.next_free_va())?;
    let stub = generate_recovery_stub(&regions, original_entry);
    let (stub_bytes, filler_ranges) = if cfg.shuffle {
        // Separate stream for filler content so the closure does not alias
        // the layout rng.
        let mut filler_rng = rand_chacha::ChaCha8Rng::seed_from_u64(rng.gen());
        let mut filler = |len: usize| pool.random_chunk(len, &mut filler_rng);
        let layout = layout_shuffled(&stub, stub_base, cfg.max_gap_units, &mut filler, rng);
        (layout.bytes, layout.filler_ranges)
    } else {
        (layout_sequential(&stub, stub_base), Vec::new())
    };
    let free_space = pool.random_chunk(cfg.perturb_space, rng);
    let mut section_content = stub_bytes.clone();
    section_content.extend_from_slice(&free_space);

    let stub_name = loop {
        let name = random_section_name(image.format(), rng);
        if name != keys_name {
            break name;
        }
    };
    let got_va = image.add_section(&stub_name, section_content, SectionKind::Code)?;
    debug_assert_eq!(got_va, stub_base as u64, "next_free_va must predict add_section");
    image.set_entry_point(stub_base as u64)?;
    image.finalize();

    // ---- record optimizable positions as file offsets ----
    let bytes = image.to_bytes();
    let file_offset_of = |name: &str| -> usize {
        (0..image.section_count())
            .filter_map(|i| image.section_meta(i))
            .find(|m| m.name == name)
            .map(|m| m.file_offset)
            .unwrap_or_default()
    };
    let keys_raw = file_offset_of(&keys_name);
    let stub_off = file_offset_of(&stub_name);
    let mut free_offsets: Vec<usize> = Vec::new();
    for (a, b) in &filler_ranges {
        free_offsets.extend(stub_off + a..stub_off + b);
    }
    let free_space_off = stub_off + stub_bytes.len();
    free_offsets.extend(free_space_off..free_space_off + cfg.perturb_space);

    let mut coupled = Vec::new();
    let mut key_cursor = keys_raw;
    for (region_i, &i) in target_idx.iter().enumerate() {
        let cover_base = image.section_meta(i).map(|m| m.file_offset).unwrap_or_default();
        let original = &originals[region_i];
        for (j, &orig) in original.iter().enumerate() {
            coupled.push(CoupledByte {
                cover_offset: cover_base + j,
                key_offset: key_cursor + j,
                original: orig,
            });
        }
        key_cursor += original.len();
    }

    Ok(ModifiedSample { bytes, mode: ModificationMode::NewSection, free_offsets, coupled })
}

/// The overlay-appending fallback for images without header space.
fn overlay_fallback<R: Rng + ?Sized>(
    mut image: BinaryImage,
    pool: &BenignPool,
    cfg: &ModificationConfig,
    rng: &mut R,
) -> ModifiedSample {
    let chunk = pool.random_chunk(cfg.overlay_space, rng);
    let overlay_start = image.to_bytes().len();
    image.append_overlay(&chunk);
    image.finalize();
    let bytes = image.to_bytes();
    let free_offsets: Vec<usize> = (overlay_start..overlay_start + chunk.len()).collect();
    ModifiedSample {
        bytes,
        mode: ModificationMode::OverlayAppend,
        free_offsets,
        coupled: Vec::new(),
    }
}

/// A random section name in the target container's naming convention
/// (`.xxxx` for PE, `__xxxx` for Mach-O). The rng draw count is identical
/// across formats.
fn random_section_name<R: Rng + ?Sized>(format: mpass_binary::Format, rng: &mut R) -> String {
    let len = rng.gen_range(3..=6);
    let mut name = String::from(match format {
        mpass_binary::Format::Pe => ".",
        mpass_binary::Format::MachO => "__",
    });
    for _ in 0..len {
        name.push((b'a' + rng.gen_range(0..26u8)) as char);
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpass_corpus::{CorpusConfig, Dataset};
    use mpass_sandbox::Sandbox;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn world() -> (Dataset, BenignPool) {
        let ds = Dataset::generate(&CorpusConfig {
            n_malware: 10,
            n_benign: 4,
            seed: 31,
            no_slack_fraction: 0.3,
        });
        let pool = BenignPool::generate(4, 99);
        (ds, pool)
    }

    #[test]
    fn modification_preserves_functionality() {
        let (ds, pool) = world();
        let sandbox = Sandbox::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for s in ds.malware() {
            let ms = modify(s, &pool, &ModificationConfig::default(), &mut rng).unwrap();
            let verdict = sandbox.verify_functionality(&s.bytes, &ms.bytes);
            assert!(verdict.is_preserved(), "{}: {verdict} (mode {:?})", s.name, ms.mode);
        }
    }

    #[test]
    fn no_slack_samples_take_overlay_fallback() {
        let (ds, pool) = world();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut saw_overlay = false;
        let mut saw_newsec = false;
        for s in ds.malware() {
            let ms = modify(s, &pool, &ModificationConfig::default(), &mut rng).unwrap();
            match ms.mode {
                ModificationMode::OverlayAppend => saw_overlay = true,
                ModificationMode::NewSection => saw_newsec = true,
            }
        }
        assert!(saw_overlay && saw_newsec);
    }

    #[test]
    fn cover_hides_suspicious_api_opcodes() {
        let (ds, pool) = world();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let s = ds.malware().into_iter().find(|s| s.pe().unwrap().can_add_section()).unwrap();
        let ms = modify(s, &pool, &ModificationConfig::default(), &mut rng).unwrap();
        let img = ms.reparse().unwrap();
        let pe = img.as_pe().unwrap();
        let orig_code = s
            .pe()
            .unwrap()
            .sections()
            .iter()
            .find(|x| x.kind() == SectionKind::Code)
            .unwrap()
            .data()
            .to_vec();
        let new_code = pe
            .sections()
            .iter()
            .find(|x| x.kind() == SectionKind::Code && !x.data().is_empty())
            .unwrap()
            .data()
            .to_vec();
        assert_ne!(orig_code, new_code, "cover must replace original code");
        let sus_orig = mpass_detectors::features::suspicious_api_count(&orig_code);
        let sus_cover = mpass_detectors::features::suspicious_api_count(&new_code);
        assert!(sus_orig >= 3);
        assert!(sus_cover < sus_orig, "cover leaks API opcodes: {sus_cover} vs {sus_orig}");
    }

    #[test]
    fn set_position_maintains_coupling_and_functionality() {
        let (ds, pool) = world();
        let sandbox = Sandbox::new();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let s = ds.malware().into_iter().find(|s| s.pe().unwrap().can_add_section()).unwrap();
        let mut ms = modify(s, &pool, &ModificationConfig::default(), &mut rng).unwrap();
        let n = ms.position_count();
        for idx in (0..n).step_by(7) {
            ms.set_position(idx, (idx % 251) as u8);
        }
        let verdict = sandbox.verify_functionality(&s.bytes, &ms.bytes);
        assert!(verdict.is_preserved(), "{verdict}");
    }

    #[test]
    fn positions_are_unique_and_in_bounds() {
        let (ds, pool) = world();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let s = ds.malware().into_iter().find(|s| s.pe().unwrap().can_add_section()).unwrap();
        let ms = modify(s, &pool, &ModificationConfig::default(), &mut rng).unwrap();
        let mut all: Vec<usize> = ms.free_offsets.clone();
        all.extend(ms.coupled.iter().map(|c| c.cover_offset));
        all.extend(ms.coupled.iter().map(|c| c.key_offset));
        assert!(all.iter().all(|&o| o < ms.bytes.len()));
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before, "offset collision");
    }

    #[test]
    fn shuffle_off_still_preserves() {
        let (ds, pool) = world();
        let sandbox = Sandbox::new();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let cfg = ModificationConfig { shuffle: false, ..ModificationConfig::default() };
        for s in ds.malware().into_iter().take(4) {
            let ms = modify(s, &pool, &cfg, &mut rng).unwrap();
            assert!(sandbox.verify_functionality(&s.bytes, &ms.bytes).is_preserved());
        }
    }

    #[test]
    fn other_sec_mode_leaves_code_and_data_alone() {
        let (ds, pool) = world();
        let sandbox = Sandbox::new();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let cfg =
            ModificationConfig { other_sections_instead: true, ..ModificationConfig::default() };
        let s = ds.malware().into_iter().find(|s| s.pe().unwrap().can_add_section()).unwrap();
        let ms = modify(s, &pool, &cfg, &mut rng).unwrap();
        let img = ms.reparse().unwrap();
        let pe = img.as_pe().unwrap();
        for kind in [SectionKind::Code, SectionKind::Data] {
            let orig = s.pe().unwrap().sections().iter().find(|x| x.kind() == kind).unwrap();
            let new = pe.section(&orig.name()).unwrap();
            assert_eq!(orig.data(), new.data(), "{kind} must be untouched");
        }
        assert!(sandbox.verify_functionality(&s.bytes, &ms.bytes).is_preserved());
    }

    #[test]
    fn two_runs_differ_by_randomness() {
        let (ds, pool) = world();
        let s = ds.malware()[0];
        let mut r1 = ChaCha8Rng::seed_from_u64(8);
        let mut r2 = ChaCha8Rng::seed_from_u64(9);
        let a = modify(s, &pool, &ModificationConfig::default(), &mut r1).unwrap();
        let b = modify(s, &pool, &ModificationConfig::default(), &mut r2).unwrap();
        assert_ne!(a.bytes, b.bytes, "shuffle/benign-content randomness must differ");
    }
}
