//! Runtime-recovery stub generation (§III-C).
//!
//! MPass encodes the malware's code and data sections with additive keys
//! (`key = benign − original`, byte-wise wrapping) and injects a stub that
//! restores them at load time (`original = benign − key`), saves and
//! restores register context, and transfers control to the original entry
//! point. The stub is produced as a list of [`StubInstr`] — instructions
//! with *symbolic* jump targets — so the shuffle engine can permute the
//! physical layout and re-patch every relative displacement.

use mpass_vm::{Instr, Reg};
use serde::{Deserialize, Serialize};

/// One section region encoded with keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedRegion {
    /// RVA of the encoded bytes.
    pub rva: u32,
    /// Length in bytes.
    pub len: u32,
    /// RVA of the key stream (same length).
    pub key_rva: u32,
}

/// A stub instruction with its control-flow intent made explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StubInstr {
    /// An ordinary instruction; any relative displacement it carries is
    /// meaningless (non-jump).
    Plain(Instr),
    /// A control transfer to another stub instruction, identified by its
    /// *index* in the stub sequence. The displacement in `template` is a
    /// placeholder to be patched by layout.
    JumpTo {
        /// Jump instruction whose displacement will be patched.
        template: Instr,
        /// Index of the target stub instruction.
        target_index: usize,
    },
    /// A control transfer to an absolute RVA outside the stub (the original
    /// entry point).
    JumpExternal {
        /// Jump instruction whose displacement will be patched.
        template: Instr,
        /// Absolute target RVA.
        target_rva: u32,
    },
}

impl StubInstr {
    /// The underlying instruction template.
    pub fn instr(&self) -> Instr {
        match *self {
            StubInstr::Plain(i) => i,
            StubInstr::JumpTo { template, .. } => template,
            StubInstr::JumpExternal { template, .. } => template,
        }
    }
}

/// Registers the stub clobbers and therefore context-saves around the
/// recovery loop (the paper's "restore contexts (e.g., registers)").
const CLOBBERED: [Reg; 5] = [Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5];

/// Generate the recovery stub for `regions`, ending with a jump to
/// `original_entry`.
///
/// The decode loop per region is:
///
/// ```text
///     movi r1, region.rva      ; cursor over encoded bytes
///     movi r2, region.key_rva  ; cursor over keys
///     movi r3, region.len      ; remaining count
/// L:  jz   r3, end
///     ld8  r4, [r1]            ; b (benign byte currently on disk)
///     ld8  r5, [r2]            ; k (key)
///     sub  r4, r5              ; x = b - k   (paper's recovery equation)
///     st8  [r1], r4
///     addi r1, 1
///     addi r2, 1
///     addi r3, -1
///     jmp  L
/// end: ...
/// ```
///
/// Registers are pushed on entry and popped before the final external jump
/// so the original program starts with its expected context.
pub fn generate_recovery_stub(regions: &[EncodedRegion], original_entry: u32) -> Vec<StubInstr> {
    let mut out: Vec<StubInstr> = Vec::new();
    for r in CLOBBERED {
        out.push(StubInstr::Plain(Instr::Push(r)));
    }
    for region in regions {
        let loop_head = out.len() + 3; // index of the jz below
        out.push(StubInstr::Plain(Instr::Movi(Reg::R1, region.rva as i32)));
        out.push(StubInstr::Plain(Instr::Movi(Reg::R2, region.key_rva as i32)));
        out.push(StubInstr::Plain(Instr::Movi(Reg::R3, region.len as i32)));
        debug_assert_eq!(out.len(), loop_head);
        let end = loop_head + 9; // index one past the back-jump
        out.push(StubInstr::JumpTo { template: Instr::Jz(Reg::R3, 0), target_index: end });
        out.push(StubInstr::Plain(Instr::Ld8(Reg::R4, Reg::R1, 0)));
        out.push(StubInstr::Plain(Instr::Ld8(Reg::R5, Reg::R2, 0)));
        out.push(StubInstr::Plain(Instr::Sub(Reg::R4, Reg::R5)));
        out.push(StubInstr::Plain(Instr::St8(Reg::R4, Reg::R1, 0)));
        out.push(StubInstr::Plain(Instr::Addi(Reg::R1, 1)));
        out.push(StubInstr::Plain(Instr::Addi(Reg::R2, 1)));
        out.push(StubInstr::Plain(Instr::Addi(Reg::R3, -1)));
        out.push(StubInstr::JumpTo { template: Instr::Jmp(0), target_index: loop_head });
        debug_assert_eq!(out.len(), end);
    }
    for r in CLOBBERED.iter().rev() {
        out.push(StubInstr::Plain(Instr::Pop(*r)));
    }
    out.push(StubInstr::JumpExternal { template: Instr::Jmp(0), target_rva: original_entry });
    out
}

/// Compute the additive key stream for replacing `original` with `benign`:
/// `key[i] = benign[i] − original[i]` (wrapping), so that the stub's
/// `benign − key` restores `original`.
///
/// # Panics
///
/// Panics when lengths differ.
pub fn compute_keys(original: &[u8], benign: &[u8]) -> Vec<u8> {
    assert_eq!(original.len(), benign.len(), "key stream length mismatch");
    benign.iter().zip(original).map(|(&b, &x)| b.wrapping_sub(x)).collect()
}

/// Re-derive the key byte after the benign cover byte changed during
/// optimization: `key' = new_cover − original`.
pub fn rekey(new_cover: u8, original: u8) -> u8 {
    new_cover.wrapping_sub(original)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shuffle::layout_sequential;
    use mpass_vm::Vm;

    #[test]
    fn keys_invert() {
        let original: Vec<u8> = (0..=255u8).collect();
        let benign: Vec<u8> = (0..=255u8).map(|b| b.wrapping_mul(7).wrapping_add(3)).collect();
        let keys = compute_keys(&original, &benign);
        for i in 0..256 {
            assert_eq!(benign[i].wrapping_sub(keys[i]), original[i]);
            assert_eq!(rekey(benign[i], original[i]), keys[i]);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn key_length_mismatch_panics() {
        let _ = compute_keys(&[1, 2], &[1]);
    }

    #[test]
    fn stub_structure() {
        let regions = [
            EncodedRegion { rva: 0x1000, len: 16, key_rva: 0x5000 },
            EncodedRegion { rva: 0x2000, len: 8, key_rva: 0x5010 },
        ];
        let stub = generate_recovery_stub(&regions, 0x1004);
        // 5 pushes + 2*(3 setup + 9 loop) + 5 pops + 1 external jump.
        assert_eq!(stub.len(), 5 + 2 * 12 + 5 + 1);
        assert!(matches!(stub.last(), Some(StubInstr::JumpExternal { target_rva: 0x1004, .. })));
        // All JumpTo targets are in range.
        for s in &stub {
            if let StubInstr::JumpTo { target_index, .. } = s {
                assert!(*target_index < stub.len());
            }
        }
    }

    /// End-to-end: encode a memory region, run the stub in the VM, verify
    /// the region is restored and control reaches the original entry.
    #[test]
    fn stub_recovers_region_in_vm() {
        // Memory image: "original program" at 0x100 is [movi r7, 42; halt].
        let mut image = vec![0u8; 0x1000];
        let prog: Vec<u8> = [Instr::Movi(Reg::R7, 42), Instr::Halt]
            .iter()
            .flat_map(|i| i.encode())
            .collect();
        let original = prog.clone();
        // Benign cover bytes at 0x100.
        let benign: Vec<u8> = (0..original.len()).map(|i| (i as u8).wrapping_mul(31)).collect();
        let keys = compute_keys(&original, &benign);
        image[0x100..0x100 + benign.len()].copy_from_slice(&benign);
        // Keys at 0x300.
        image[0x300..0x300 + keys.len()].copy_from_slice(&keys);
        // Stub at 0x500, jumping to 0x100 when done.
        let stub = generate_recovery_stub(
            &[EncodedRegion { rva: 0x100, len: original.len() as u32, key_rva: 0x300 }],
            0x100,
        );
        let stub_bytes = layout_sequential(&stub, 0x500);
        image[0x500..0x500 + stub_bytes.len()].copy_from_slice(&stub_bytes);

        let mut vm = Vm::from_image(image, 0x500);
        let exec = vm.run_in_place();
        assert!(exec.completed(), "outcome {:?}", exec.outcome);
        assert_eq!(vm.regs()[7], 42, "original program must have run");
        assert_eq!(&vm.memory()[0x100..0x100 + original.len()], &original[..]);
    }

    /// The stub restores register context before jumping on.
    #[test]
    fn stub_preserves_registers() {
        let mut image = vec![0u8; 0x1000];
        // Original entry at 0x100: halt immediately (registers inspectable).
        image[0x100..0x108].copy_from_slice(&Instr::Halt.encode());
        // One dummy region of 4 bytes at 0x200.
        let original = [9u8, 8, 7, 6];
        let benign = [1u8, 2, 3, 4];
        let keys = compute_keys(&original, &benign);
        image[0x200..0x204].copy_from_slice(&benign);
        image[0x300..0x304].copy_from_slice(&keys);
        let stub = generate_recovery_stub(
            &[EncodedRegion { rva: 0x200, len: 4, key_rva: 0x300 }],
            0x100,
        );
        let bytes = layout_sequential(&stub, 0x500);
        image[0x500..0x500 + bytes.len()].copy_from_slice(&bytes);
        let mut vm = Vm::from_image(image, 0x500);
        let exec = vm.run_in_place();
        assert!(exec.completed());
        // r1..r5 were pushed at entry (all zero) and popped before the jump.
        for r in 1..=5 {
            assert_eq!(vm.regs()[r], 0, "r{r} not restored");
        }
        assert_eq!(&vm.memory()[0x200..0x204], &original);
    }
}
