//! Structural candidate validation shared by the attack pipeline.
//!
//! Two gates in the pipeline apply the same structural predicate — the
//! oracle channel's AE-validation gate
//! ([`HardLabelTarget::with_ae_validation`](crate::attack::HardLabelTarget::with_ae_validation)),
//! which refuses to submit malformed candidates, and campaign ingestion,
//! which quarantines samples whose bytes would destabilize the mutation
//! machinery. Both demand that the bytes parse as a PE *and* survive a
//! serialize→parse round trip unchanged, so every byte string that crosses
//! either boundary is a well-formed, reproducible image.
//!
//! This module is that predicate, stated once: [`candidate_is_valid`] for
//! the boolean gate, [`candidate_reject_reason`] when the caller journals
//! a diagnostic, and [`validate_candidates`] for batch use ahead of a
//! query wave. Behavioural (trace-digest) validation is a separate,
//! costlier layer — see `mpass_sandbox::Sandbox::validate_batch`.

use mpass_pe::PeFile;

/// The structural AE validation predicate: the candidate must parse and
/// its parsed form must survive a serialize→parse round trip unchanged.
pub fn candidate_is_valid(bytes: &[u8]) -> bool {
    candidate_reject_reason(bytes).is_none()
}

/// `None` when `bytes` pass the structural predicate; otherwise the
/// diagnostic reason they are rejected or quarantined with.
pub fn candidate_reject_reason(bytes: &[u8]) -> Option<String> {
    match PeFile::parse(bytes) {
        Err(e) => Some(format!("does not parse: {e}")),
        Ok(pe) => match PeFile::parse(&pe.to_bytes()) {
            Err(e) => Some(format!("round-trip does not re-parse: {e}")),
            Ok(pe2) if pe2 != pe => Some("round-trip does not reproduce the image".to_owned()),
            Ok(_) => None,
        },
    }
}

/// Apply the structural predicate to a batch of candidates, in input
/// order — the up-front sweep [`query_batch`](crate::attack::HardLabelTarget::query_batch)
/// runs before spending any oracle budget.
pub fn validate_candidates(candidates: &[&[u8]]) -> Vec<bool> {
    candidates.iter().map(|c| candidate_is_valid(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn garbage_is_rejected_with_reason() {
        assert!(!candidate_is_valid(b"MZ garbage"));
        let reason = candidate_reject_reason(b"MZ garbage").unwrap();
        assert!(reason.starts_with("does not parse: "), "{reason}");
    }

    #[test]
    fn batch_matches_scalar_predicate() {
        let good = {
            let mut pe = mpass_pe::PeBuilder::new();
            pe.add_section(".text", vec![0u8; 8], mpass_pe::SectionFlags::CODE).unwrap();
            pe.set_entry_section(".text", 0).unwrap();
            pe.build().unwrap().to_bytes()
        };
        let bad = vec![0u8; 32];
        let flags = validate_candidates(&[&good, &bad, &good]);
        assert_eq!(flags, vec![true, false, true]);
        for (bytes, flag) in [(&good, true), (&bad, false)] {
            assert_eq!(candidate_is_valid(bytes), flag);
        }
    }
}
