//! The [`BinaryFormat`] trait: the one API every container backend speaks.

use crate::{BinaryError, Format, ImportSummary, ModifiableRegion, SectionKind, SectionMeta};
use rand::RngCore;

/// A parsed, editable, re-serializable binary container.
///
/// This is the contract the whole attack pipeline is written against:
/// corpus generation builds images through it, feature extraction reads
/// them, the shuffle + recovery-stub attack edits them, PEM ablates their
/// file spans and the sandbox maps them for execution. `mpass-pe` and
/// `mpass-macho` are the two backends; `mpass-binary` wraps them in a
/// closed enum for storage.
///
/// Invariants every implementation must uphold:
///
/// * **Round trip** — `parse(to_bytes(x)) == x` for any `x` the backend
///   accepts (each backend exposes its own inherent `parse`, since a
///   constructor cannot live on a dyn-compatible trait).
/// * **Address honesty** — `entry_point`, section metadata and
///   `read_virtual`/`write_virtual` all use the same native address space
///   (RVAs for PE, absolute `vmaddr` for Mach-O).
/// * **No panics** — malformed state surfaces as [`BinaryError`], never as
///   a panic; backends deny `unwrap`/`expect`/`panic` outside tests.
pub trait BinaryFormat {
    /// Which container format this image is.
    fn format(&self) -> Format;

    /// Serialize back to on-disk bytes.
    fn to_bytes(&self) -> Vec<u8>;

    /// Total size of the serialized file in bytes.
    fn file_len(&self) -> usize {
        self.to_bytes().len()
    }

    /// Number of sections in the image.
    fn section_count(&self) -> usize;

    /// Format-neutral metadata for section `index`.
    fn section_meta(&self, index: usize) -> Option<SectionMeta>;

    /// Raw data of section `index`.
    fn section_data(&self, index: usize) -> Option<&[u8]>;

    /// Mutable raw data of section `index`.
    fn section_data_mut(&mut self, index: usize) -> Option<&mut [u8]>;

    /// Append a section; returns the virtual address it was placed at.
    fn add_section(
        &mut self,
        name: &str,
        data: Vec<u8>,
        kind: SectionKind,
    ) -> Result<u64, BinaryError>;

    /// True when `n` more sections fit without displacing existing data.
    fn can_add_sections(&self, n: usize) -> bool;

    /// The virtual address the next added section would receive.
    fn next_free_va(&self) -> u64;

    /// Virtual address execution starts at.
    fn entry_point(&self) -> u64;

    /// Retarget the entry point to `va` (must map into a section).
    fn set_entry_point(&mut self, va: u64) -> Result<(), BinaryError>;

    /// Index of the section whose mapped extent contains `va`.
    fn section_index_containing_va(&self, va: u64) -> Option<usize>;

    /// File offset backing virtual address `va`, when it has raw backing.
    fn va_to_file_offset(&self, va: u64) -> Option<usize>;

    /// Read `len` bytes of mapped memory starting at `va` (zero filled
    /// where nothing maps).
    fn read_virtual(&self, va: u64, len: usize) -> Vec<u8>;

    /// Write into mapped sections starting at `va`.
    fn write_virtual(&mut self, va: u64, bytes: &[u8]) -> Result<(), BinaryError>;

    /// Bytes past the last section's raw data (ignored by loaders).
    fn overlay(&self) -> &[u8];

    /// Append bytes to the overlay.
    fn append_overlay(&mut self, bytes: &[u8]);

    /// Truncate the overlay to `len` bytes.
    fn truncate_overlay(&mut self, len: usize);

    /// Map the image as the loader would, failing when the mapped size
    /// exceeds `max_bytes`.
    fn map_image_bounded(&self, max_bytes: usize) -> Result<Vec<u8>, BinaryError>;

    /// Randomize the header fields the loader ignores (timestamps, version
    /// stamps, reserved words) — the header leg of the paper's modifiable
    /// positions. Draw order is part of each backend's stability contract:
    /// seeded attacks must replay identically.
    fn randomize_free_headers(&mut self, rng: &mut dyn RngCore);

    /// Recompute any derived header fields (checksums) after edits.
    fn finalize(&mut self);

    /// The link/build timestamp field, or 0 when the format carries none.
    fn timestamp(&self) -> u32 {
        0
    }

    /// Enumerate every byte span of the serialized file that can be
    /// rewritten without changing behaviour (§III-B's modifiable
    /// positions, per format).
    fn modifiable_positions(&self) -> Vec<ModifiableRegion>;

    /// Summarize the imported API surface; `None` when the image declares
    /// no import metadata (distinct from an empty table).
    fn imports_summary(&self) -> Option<ImportSummary> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The trait must stay dyn-compatible: `Box<dyn BinaryFormat>` is one
    // of the two sanctioned consumption styles.
    #[test]
    fn trait_is_dyn_compatible() {
        fn _takes_dyn(_: &dyn BinaryFormat) {}
    }
}
