//! Format-neutral per-section metadata and the modifiable-position
//! inventory.

use crate::SectionKind;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// A format-neutral view of one section, snapshotted from a backend.
///
/// Virtual addresses are in each backend's native address space: RVAs for
/// PE (image-relative), absolute `vmaddr` values for Mach-O. Consumers must
/// treat them as opaque coordinates that are only comparable within one
/// image — exactly how the VM, the recovery stub and the feature extractor
/// already use them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SectionMeta {
    /// Display name (`.text` for PE, `__text` for Mach-O).
    pub name: String,
    /// Role classification.
    pub kind: SectionKind,
    /// Address the section is mapped at.
    pub virtual_address: u64,
    /// Size when mapped (may exceed the raw size).
    pub virtual_size: u64,
    /// File offset of the raw data (0 when the section carries none).
    pub file_offset: usize,
    /// Raw data length on disk.
    pub file_size: usize,
    /// True when the name is conventional for its format — detectors
    /// penalize images whose sections carry invented names.
    pub standard_name: bool,
    /// Executable when mapped.
    pub executable: bool,
    /// Writable when mapped.
    pub writable: bool,
}

impl SectionMeta {
    /// The raw byte span this section occupies in the serialized file.
    pub fn file_range(&self) -> Range<usize> {
        self.file_offset..self.file_offset.saturating_add(self.file_size)
    }

    /// True when `va` falls inside the mapped extent of this section.
    pub fn contains_va(&self, va: u64) -> bool {
        let size = self.virtual_size.max(self.file_size as u64);
        va >= self.virtual_address && va < self.virtual_address.saturating_add(size)
    }
}

/// Why a byte span is modifiable without breaking functionality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModifiableKind {
    /// Alignment slack between a section's used bytes and its on-disk
    /// extent.
    SectionSlack,
    /// Unclaimed bytes inside the header region (between the last header
    /// structure and the first section's raw data).
    HeaderGap,
    /// Bytes past the last section's raw data; ignored by loaders.
    Overlay,
    /// A header field the loader does not interpret (timestamps, version
    /// stamps, reserved words).
    HeaderField,
}

/// One byte span of the serialized file an attacker may freely rewrite.
///
/// This is the paper's "modifiable position" inventory lifted to the
/// format-neutral layer: §III-B enumerates the PE spans (header slack,
/// section slack, overlay); each backend reports its own equivalents.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModifiableRegion {
    /// Why these bytes are free.
    pub kind: ModifiableKind,
    /// File offset of the span in `to_bytes()` output.
    pub file_offset: usize,
    /// Span length in bytes.
    pub len: usize,
}

impl ModifiableRegion {
    /// The byte span as a range over the serialized file.
    pub fn file_range(&self) -> Range<usize> {
        self.file_offset..self.file_offset.saturating_add(self.len)
    }
}

/// Format-neutral summary of an image's imported API surface.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImportSummary {
    /// Number of distinct libraries (DLLs / dylibs) referenced.
    pub libraries: usize,
    /// Total imported symbols, including by-ordinal entries that carry no
    /// name.
    pub symbol_count: usize,
    /// Imported symbol names, in on-disk order.
    pub symbols: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> SectionMeta {
        SectionMeta {
            name: ".text".into(),
            kind: SectionKind::Code,
            virtual_address: 0x1000,
            virtual_size: 0x600,
            file_offset: 0x400,
            file_size: 0x400,
            standard_name: true,
            executable: true,
            writable: false,
        }
    }

    #[test]
    fn file_range_and_va_containment() {
        let m = meta();
        assert_eq!(m.file_range(), 0x400..0x800);
        assert!(m.contains_va(0x1000));
        assert!(m.contains_va(0x15FF));
        assert!(!m.contains_va(0xFFF));
        assert!(!m.contains_va(0x1000 + 0x600));
    }

    #[test]
    fn import_summary_defaults_empty() {
        let s = ImportSummary::default();
        assert_eq!((s.libraries, s.symbol_count, s.symbols.len()), (0, 0, 0));
    }
}
