//! Format-neutral section classification.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What role a section plays, independent of container format.
///
/// PE sections classify by conventional name (`.text`, `.data`, ...) with a
/// characteristics fallback; Mach-O sections by their segment/section names
/// (`__TEXT,__text`, ...) with a flags fallback. Both funnel into this one
/// vocabulary so that attack strategies and feature extractors can reason
/// about "the code section" without caring which container holds it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SectionKind {
    /// Executable code (`.text` and friends).
    Code,
    /// Writable initialized data (`.data`).
    Data,
    /// Read-only data (`.rdata`).
    ReadOnlyData,
    /// Resources (`.rsrc`).
    Resource,
    /// Relocations (`.reloc`).
    Relocation,
    /// Import-related (`.idata`).
    Import,
    /// Uninitialized data (`.bss`).
    Bss,
    /// Thread-local storage (`.tls`).
    Tls,
    /// Anything else (packer stubs, attacker-created sections, ...).
    Other,
}

/// The format-neutral facts a backend knows about a section's permissions,
/// used as the fallback when its name is unconventional.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SectionTraits {
    /// Marked as (or attributed with) executable code.
    pub code: bool,
    /// Occupies address space without file backing.
    pub uninitialized: bool,
    /// Carries initialized data.
    pub initialized_data: bool,
    /// Writable when mapped.
    pub writable: bool,
}

impl SectionKind {
    /// Classify from permission traits alone (the shared name-independent
    /// fallback; backends consult their conventional-name tables first).
    pub fn from_traits(traits: SectionTraits) -> SectionKind {
        if traits.code {
            SectionKind::Code
        } else if traits.uninitialized {
            SectionKind::Bss
        } else if traits.initialized_data && traits.writable {
            SectionKind::Data
        } else if traits.initialized_data {
            SectionKind::ReadOnlyData
        } else {
            SectionKind::Other
        }
    }

    /// True for the two kinds the paper identifies as most critical.
    pub fn is_critical_in_paper(self) -> bool {
        matches!(self, SectionKind::Code | SectionKind::Data)
    }
}

impl fmt::Display for SectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SectionKind::Code => "code",
            SectionKind::Data => "data",
            SectionKind::ReadOnlyData => "rdata",
            SectionKind::Resource => "resource",
            SectionKind::Relocation => "reloc",
            SectionKind::Import => "import",
            SectionKind::Bss => "bss",
            SectionKind::Tls => "tls",
            SectionKind::Other => "other",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_fallback_ordering_matches_the_pe_rules() {
        // Code wins over everything; uninitialized over data; writable
        // initialized data is Data; read-only initialized data is
        // ReadOnlyData; nothing set is Other.
        let t = |code, uninitialized, initialized_data, writable| SectionTraits {
            code,
            uninitialized,
            initialized_data,
            writable,
        };
        assert_eq!(SectionKind::from_traits(t(true, true, true, true)), SectionKind::Code);
        assert_eq!(SectionKind::from_traits(t(false, true, true, true)), SectionKind::Bss);
        assert_eq!(SectionKind::from_traits(t(false, false, true, true)), SectionKind::Data);
        assert_eq!(
            SectionKind::from_traits(t(false, false, true, false)),
            SectionKind::ReadOnlyData
        );
        assert_eq!(SectionKind::from_traits(t(false, false, false, true)), SectionKind::Other);
    }

    #[test]
    fn critical_kinds_are_code_and_data() {
        assert!(SectionKind::Code.is_critical_in_paper());
        assert!(SectionKind::Data.is_critical_in_paper());
        assert!(!SectionKind::Resource.is_critical_in_paper());
        assert!(!SectionKind::Other.is_critical_in_paper());
    }
}
