//! # mpass-binfmt — the format-neutral binary-container layer
//!
//! MPass's attack pipeline (shuffle + recovery stub, PEM section
//! attribution, modifiable-position perturbation) is conceptually
//! container-agnostic: it needs sections it can classify and rewrite, an
//! entry point it can retarget, slack it can fill and bytes it can
//! re-serialize. This crate defines that contract once:
//!
//! * [`BinaryFormat`] — the trait every backend implements (`mpass-pe`,
//!   `mpass-macho`).
//! * [`Format`] / [`detect_format`] — container identification by magic.
//! * [`SectionKind`] — the shared section-role vocabulary.
//! * [`SectionMeta`], [`ModifiableRegion`], [`ImportSummary`] — the
//!   format-neutral views consumers read.
//! * [`BinaryError`] — typed failures with the format detail erased.
//! * [`ParseMode`] — loader-tolerant vs. strict ingestion, shared by both
//!   backends.
//!
//! The crate deliberately has no backend dependencies; `mpass-binary`
//! closes the loop with a `BinaryImage` enum over the concrete backends.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
#![deny(missing_docs)]

mod error;
mod kind;
mod meta;
mod traits;

pub use error::BinaryError;
pub use kind::{SectionKind, SectionTraits};
pub use meta::{ImportSummary, ModifiableKind, ModifiableRegion, SectionMeta};
pub use traits::BinaryFormat;

use serde::{Deserialize, Serialize};
use std::fmt;

/// How tolerant parsing is of structural anomalies.
///
/// `LoaderTolerant` mirrors what a real loader would accept; `Strict`
/// additionally rejects anomalies so build/edit pipelines fail fast on
/// corrupt intermediates instead of propagating them. Both backends honor
/// both modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ParseMode {
    /// Enforce only what mapping requires: magics, alignment sanity and
    /// in-bounds raw extents for sections that carry data.
    #[default]
    LoaderTolerant,
    /// Additionally reject structural anomalies a linker would never emit
    /// (escaping section tables, overlapping raw data, overflowing
    /// extents, undersized image sizes).
    Strict,
}

/// A supported container format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Format {
    /// Windows Portable Executable.
    Pe,
    /// Apple Mach object format (64-bit).
    MachO,
}

impl Format {
    /// The conventional short name (`pe`, `macho`) used by CLI flags.
    pub fn short_name(self) -> &'static str {
        match self {
            Format::Pe => "pe",
            Format::MachO => "macho",
        }
    }

    /// Parse a CLI-style format name (the inverse of [`short_name`]).
    ///
    /// [`short_name`]: Format::short_name
    pub fn from_short_name(name: &str) -> Option<Format> {
        match name {
            "pe" => Some(Format::Pe),
            "macho" | "mach-o" => Some(Format::MachO),
            _ => None,
        }
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Mach-O 64-bit magic, little endian on disk (`cf fa ed fe`).
pub const MH_MAGIC_64: u32 = 0xFEED_FACF;
/// Mach-O 64-bit magic, byte swapped (`fe ed fa cf` on disk).
pub const MH_CIGAM_64: u32 = 0xCFFA_EDFE;
/// Mach-O 32-bit magic (unsupported variant, still detected).
pub const MH_MAGIC_32: u32 = 0xFEED_FACE;
/// Fat/universal wrapper magic (big endian on disk: `ca fe ba be`).
pub const FAT_MAGIC: u32 = 0xCAFE_BABE;

/// Identify the container format of `bytes` by magic.
///
/// `MZ` detects as PE; any of the Mach-O family magics (64-bit, byte
/// swapped, 32-bit, fat wrapper) detect as Mach-O — the backend then
/// reports unsupported variants with a typed error, so that "this is a fat
/// binary" and "this is not an executable at all" stay distinguishable.
pub fn detect_format(bytes: &[u8]) -> Result<Format, BinaryError> {
    let mut found = [0u8; 4];
    for (dst, src) in found.iter_mut().zip(bytes) {
        *dst = *src;
    }
    if bytes.len() >= 2 && &bytes[..2] == b"MZ" {
        return Ok(Format::Pe);
    }
    if bytes.len() >= 4 {
        let le = u32::from_le_bytes(found);
        let be = u32::from_be_bytes(found);
        if le == MH_MAGIC_64
            || le == MH_CIGAM_64
            || le == MH_MAGIC_32
            || be == FAT_MAGIC
        {
            return Ok(Format::MachO);
        }
    }
    Err(BinaryError::UnknownMagic { found })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magic_detection() {
        assert_eq!(detect_format(b"MZ\x90\x00rest"), Ok(Format::Pe));
        assert_eq!(detect_format(&0xFEED_FACF_u32.to_le_bytes()), Ok(Format::MachO));
        assert_eq!(detect_format(&0xFEED_FACE_u32.to_le_bytes()), Ok(Format::MachO));
        assert_eq!(detect_format(&0xCAFE_BABE_u32.to_be_bytes()), Ok(Format::MachO));
        assert_eq!(
            detect_format(b"\x7fELF"),
            Err(BinaryError::UnknownMagic { found: *b"\x7fELF" })
        );
        assert_eq!(detect_format(b"M"), Err(BinaryError::UnknownMagic { found: [b'M', 0, 0, 0] }));
        assert_eq!(detect_format(&[]), Err(BinaryError::UnknownMagic { found: [0; 4] }));
    }

    #[test]
    fn format_names_round_trip() {
        for f in [Format::Pe, Format::MachO] {
            assert_eq!(Format::from_short_name(f.short_name()), Some(f));
            assert_eq!(f.to_string(), f.short_name());
        }
        assert_eq!(Format::from_short_name("elf"), None);
        assert_eq!(Format::from_short_name("mach-o"), Some(Format::MachO));
    }
}
